// Quickstart: the whole Learning-to-Schedule pipeline in one file.
//
//  1. Build a small training corpus by running Spark jobs on the simulated
//     geo-distributed cluster (the §5.2 workflow, shrunk to run in seconds).
//  2. Train the three supervised models on the logged telemetry.
//  3. Schedule a new job with each model and show the predicted ranking
//     next to the counterfactual truth.
//
// Run:  ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "core/scheduler.hpp"
#include "core/trainer.hpp"
#include "exp/collector.hpp"
#include "exp/envgen.hpp"
#include "exp/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace lts;

  // ---- 1. Collect training data (tiny corpus: 8 configs x 6 nodes x 2). --
  std::printf("Collecting training data (this runs ~100 simulated jobs)...\n");
  auto matrix = exp::paper_scenario_matrix();
  matrix.resize(8);  // quickstart subset; the benches run the full matrix
  exp::CollectorOptions collect;
  collect.repeats = 2;
  collect.base_seed = 7;
  const CsvTable log = exp::collect_training_data(matrix, collect);
  std::printf("  %zu training rows collected\n", log.num_rows());

  // ---- 2. Train the paper's three models. -------------------------------
  const ml::Dataset data = core::Trainer::dataset_from_log(log);
  AsciiTable model_table({"model", "test RMSE (s)", "test R^2"});
  std::vector<std::pair<std::string, std::shared_ptr<const ml::Regressor>>>
      models;
  for (const std::string name : {"linear", "xgboost", "random_forest"}) {
    std::unique_ptr<ml::Regressor> fitted;
    const auto report = core::Trainer::train_and_evaluate(
        name, data, /*test_fraction=*/0.25, /*seed=*/3, Json(), &fitted);
    model_table.add_row_numeric(name, {report.test_rmse, report.test_r2});
    models.emplace_back(name, std::shared_ptr<const ml::Regressor>(
                                  std::move(fitted)));
  }
  std::printf("%s", model_table.render("Holdout quality").c_str());

  // ---- 3. Schedule a fresh job and compare with the truth. ---------------
  spark::JobConfig job;
  job.app = spark::AppType::kSort;
  job.input_records = 1000000;
  job.executors = 4;

  const std::uint64_t seed = 20260705;
  exp::SimEnv env(seed, collect.env);
  env.warmup();
  const auto snapshot = env.snapshot();

  std::printf("\nScheduling a sort of %lld records:\n",
              static_cast<long long>(job.input_records));
  for (const auto& [name, model] : models) {
    core::LtsScheduler scheduler(
        core::TelemetryFetcher(env.tsdb(), env.node_names()), model);
    const auto decision = scheduler.schedule_from_snapshot(snapshot, job);
    std::printf("  %-14s -> %s (predicted %.1fs)\n", name.c_str(),
                decision.selected().c_str(),
                decision.ranking.front().predicted_duration);
    if (name == "random_forest") {
      // The Job Builder's manifest for the winning decision.
      std::printf("\n--- manifest (random_forest pick) ---\n%s\n",
                  scheduler.build_manifest(job, "quickstart-sort", decision)
                      .c_str());
    }
  }

  // Counterfactual truth: run the identical scenario on every node.
  std::printf("Counterfactual durations per driver node:\n");
  for (std::size_t n = 0; n < 6; ++n) {
    exp::SimEnv cf(seed, collect.env);
    cf.warmup();
    const auto result = cf.run_job(job, n, seed ^ 0xf00dULL);
    std::printf("  %-8s %.2fs\n", cf.node_names()[n].c_str(),
                result.duration());
  }
  return 0;
}
