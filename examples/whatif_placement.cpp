// What-if placement explorer.
//
// For a handful of randomized cluster states, prints each node's live
// telemetry (what the scheduler sees) next to the counterfactual job
// duration with the driver pinned there (what actually happens). This is
// the clearest way to see the signal the supervised models learn: loaded /
// distant nodes run the same job slower.
//
// Usage: whatif_placement [seed] [app] [records]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/envgen.hpp"
#include "exp/scenario.hpp"
#include "util/table.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace lts;
  const std::uint64_t base_seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 101;
  spark::JobConfig job;
  job.app = argc > 2 ? spark::app_type_from_string(argv[2])
                     : spark::AppType::kSort;
  job.input_records = argc > 3 ? std::atoll(argv[3]) : 1000000;
  job.executors = 4;

  for (int trial = 0; trial < 3; ++trial) {
    const std::uint64_t seed = base_seed + 17ULL * trial;
    std::printf("=== seed %llu, %s of %lld records ===\n",
                static_cast<unsigned long long>(seed),
                spark::to_string(job.app),
                static_cast<long long>(job.input_records));

    // One environment to describe the state...
    exp::SimEnv probe(seed);
    probe.warmup();
    std::printf("background pods: %zu\n", probe.num_background_pods());
    for (std::size_t b = 0; b < probe.num_background_pods(); ++b) {
      const auto& bg = probe.background_pod(b);
      std::printf("  bg-%zu: client=%s server=%s\n", b,
                  probe.node_names()[bg.client_node()].c_str(),
                  probe.node_names()[bg.server_node()].c_str());
    }
    const auto snap = probe.snapshot();

    // ...and one environment per counterfactual run.
    AsciiTable table({"node", "site", "rtt_mean(ms)", "tx(MB/s)", "rx(MB/s)",
                      "cpu_load", "mem_free(GiB)", "duration(s)"});
    for (std::size_t n = 0; n < probe.node_names().size(); ++n) {
      exp::SimEnv env(seed);
      env.warmup();
      const auto result = env.run_job(job, n, seed ^ 0xf00dULL);
      const auto& t = snap.nodes[n];
      table.add_row({
          t.node,
          env.cluster().node(n).site(),
          strformat("%.1f", t.rtt_mean * 1e3),
          strformat("%.1f", t.tx_rate / 1e6),
          strformat("%.1f", t.rx_rate / 1e6),
          strformat("%.2f", t.cpu_load),
          strformat("%.2f", t.mem_available / (1024.0 * 1024 * 1024)),
          strformat("%.2f", result.duration()),
      });
    }
    std::printf("%s\n", table.render().c_str());
  }
  return 0;
}
