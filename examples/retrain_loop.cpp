// Retraining loop: the paper's deployability story (§2.4, §8) end to end.
//
// Simulates the life of a production deployment: an initial model trained
// on a small corpus, then periodic retraining as the logger accumulates
// more executions. After each round the example reports holdout RMSE and
// the Top-1 accuracy on fresh scenarios, plus how long retraining took —
// showing that retraining "does not require system downtime or large-scale
// infrastructure" (the model is a file; swap it atomically).
#include <chrono>
#include <cstdio>
#include <memory>

#include "core/scheduler.hpp"
#include "core/trainer.hpp"
#include "exp/collector.hpp"
#include "exp/evaluate.hpp"
#include "exp/scenario.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace lts;
  const auto matrix = exp::paper_scenario_matrix();

  AsciiTable table({"round", "corpus rows", "holdout RMSE (s)",
                    "Top-1", "Top-2", "retrain (ms)"});

  core::TrainingLogger accumulated;
  int round = 0;
  for (const int repeats : {1, 2, 4}) {
    ++round;
    // Collect another tranche of executions (fresh seeds per round) and
    // append to the running corpus, exactly as the Logger would in
    // production.
    exp::CollectorOptions collect;
    collect.repeats = repeats;
    collect.base_seed = 1000ULL * static_cast<std::uint64_t>(round);
    const CsvTable tranche = exp::collect_training_data(matrix, collect);
    for (std::size_t i = 0; i < tranche.num_rows(); ++i) {
      accumulated.log(core::TrainingLogger::parse_row(tranche, i));
    }

    const ml::Dataset data =
        core::Trainer::dataset_from_log(accumulated.table());
    const auto start = std::chrono::steady_clock::now();
    std::unique_ptr<ml::Regressor> fitted;
    const auto report = core::Trainer::train_and_evaluate(
        "random_forest", data, 0.2, 7, Json(), &fitted);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);

    // Accuracy on fresh scenarios with the freshly trained model.
    std::vector<std::pair<std::string, std::shared_ptr<const ml::Regressor>>>
        models;
    models.emplace_back("random_forest", std::shared_ptr<const ml::Regressor>(
                                             std::move(fitted)));
    exp::EvalOptions eval;
    eval.num_scenarios = 40;
    eval.base_seed = 420000;
    eval.truth_repeats = 1;
    const auto result = exp::evaluate_methods(models, matrix, eval);
    const auto& acc = result.by_method("random_forest");

    table.add_row({std::to_string(round),
                   std::to_string(accumulated.size()),
                   strformat("%.2f", report.test_rmse),
                   strformat("%.3f", acc.top1), strformat("%.3f", acc.top2),
                   std::to_string(elapsed.count())});
  }
  std::printf("%s", table.render("Retraining loop").c_str());

  // Deployment artifact: persist and reload the final model.
  const ml::Dataset final_data =
      core::Trainer::dataset_from_log(accumulated.table());
  const auto model = core::Trainer::train("random_forest", final_data);
  ml::save_model(*model, "/tmp/lts_model.json");
  const auto reloaded = ml::load_model("/tmp/lts_model.json");
  std::printf("\nmodel saved to /tmp/lts_model.json and reloaded (%s, "
              "fitted=%s)\n",
              reloaded->name().c_str(),
              reloaded->is_fitted() ? "true" : "false");
  return 0;
}
