// Sort campaign: the paper's §4 telemetry study as a runnable example.
//
// Runs a batch of Sort jobs in a living cluster with background contention,
// prints per-run durations and the per-node latency / transmit-bandwidth
// telemetry (the data behind Figures 2 and 3), then shows how the measured
// asymmetry translates into placement quality by running the final job on
// the best and worst candidate node.
//
// Usage: sort_campaign [seed] [runs]
#include <cstdio>
#include <cstdlib>

#include "exp/envgen.hpp"
#include "exp/figures.hpp"
#include "util/string_util.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lts;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 118;
  const int runs = argc > 2 ? std::atoi(argv[2]) : 5;

  spark::JobConfig sort_config;
  sort_config.app = spark::AppType::kSort;
  sort_config.input_records = 1000000;
  sort_config.executors = 4;

  exp::FigureOptions options;
  options.seed = seed;
  options.runs = runs;
  options.driver_node = 0;
  const auto figures = exp::figure_sort_telemetry(sort_config, options);

  std::printf("%d Sort runs (driver pinned on node-1):\n", runs);
  for (int r = 0; r < runs; ++r) {
    std::printf("  run %d: %s\n", r + 1,
                human_duration(figures.run_durations[static_cast<std::size_t>(
                    r)]).c_str());
  }

  AsciiTable table({"node", "avg latency (ms)", "avg tx (MB/s)"});
  for (std::size_t i = 0; i < figures.avg_latency_ms.nodes.size(); ++i) {
    table.add_row({figures.avg_latency_ms.nodes[i],
                   strformat("%.2f", figures.avg_latency_ms.values[i]),
                   strformat("%.1f", figures.avg_tx_mbps.values[i])});
  }
  std::printf("%s", table.render("Per-node telemetry over the campaign")
                        .c_str());

  // Show what the asymmetry is worth: same job, best vs worst node by
  // measured latency.
  std::size_t best = 0, worst = 0;
  for (std::size_t i = 1; i < figures.avg_latency_ms.values.size(); ++i) {
    if (figures.avg_latency_ms.values[i] <
        figures.avg_latency_ms.values[best]) {
      best = i;
    }
    if (figures.avg_latency_ms.values[i] >
        figures.avg_latency_ms.values[worst]) {
      worst = i;
    }
  }
  exp::SimEnv env_best(seed);
  env_best.warmup();
  const auto run_best = env_best.run_job(sort_config, best, seed ^ 0xBEEF);
  exp::SimEnv env_worst(seed);
  env_worst.warmup();
  const auto run_worst = env_worst.run_job(sort_config, worst, seed ^ 0xBEEF);
  std::printf(
      "\nCounterfactual: driver on %s (lowest latency) -> %.1fs; on %s "
      "(highest latency) -> %.1fs (%.0f%% slower)\n",
      figures.avg_latency_ms.nodes[best].c_str(), run_best.duration(),
      figures.avg_latency_ms.nodes[worst].c_str(), run_worst.duration(),
      100.0 * (run_worst.duration() / run_best.duration() - 1.0));
  return 0;
}
