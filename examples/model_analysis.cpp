// Model analysis: the interpretability story of §3.2.3 made concrete.
//
// Trains the random forest on a paper-scale corpus, then prints three
// complementary views of what it learned:
//   1. impurity feature importances (the tree-internal view),
//   2. permutation importances on held-out data (model-agnostic view),
//   3. partial dependence of predicted duration on the key telemetry
//      features — the shape a cluster operator would sanity-check
//      ("more RTT means slower, saturating utilization means much slower").
#include <cstdio>
#include <memory>

#include "core/trainer.hpp"
#include "exp/collector.hpp"
#include "exp/scenario.hpp"
#include "ml/analysis.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace lts;
  auto matrix = exp::paper_scenario_matrix();
  exp::CollectorOptions collect;
  collect.repeats = 5;
  collect.base_seed = 12000;
  std::printf("Collecting 1800 samples...\n");
  const CsvTable log = exp::collect_training_data(matrix, collect);
  const ml::Dataset data = core::Trainer::dataset_from_log(log);

  Rng split_rng(7);
  auto [train, holdout] = data.train_test_split(0.25, split_rng);
  const auto model = core::Trainer::train("random_forest", train);

  // ---- importances, both flavors ----------------------------------------
  const auto impurity = model->feature_importances();
  const auto permutation = ml::permutation_importance(*model, holdout);
  AsciiTable table({"feature", "impurity", "permutation (RMSE +s)"});
  for (std::size_t f = 0; f < data.feature_names().size(); ++f) {
    table.add_row({data.feature_names()[f], strformat("%.3f", impurity[f]),
                   strformat("%.3f", permutation.importance[f])});
  }
  std::printf("%s", table
                        .render(strformat("Feature importances (holdout "
                                          "baseline RMSE %.2fs)",
                                          permutation.baseline_rmse))
                        .c_str());

  // ---- partial dependence on the headline telemetry features ------------
  for (const std::string feature :
       {"rtt_mean_ms", "tx_rate_mbps", "cpu_load", "mem_available_gib"}) {
    const auto f = static_cast<std::size_t>(
        std::find(data.feature_names().begin(), data.feature_names().end(),
                  feature) -
        data.feature_names().begin());
    const auto pd = ml::partial_dependence(*model, holdout, f, 8);
    std::printf("\npartial dependence: %s\n", feature.c_str());
    for (std::size_t g = 0; g < pd.grid.size(); ++g) {
      // Poor man's bar chart: scaled to the response range.
      double lo = pd.response[0], hi = pd.response[0];
      for (const double r : pd.response) {
        lo = std::min(lo, r);
        hi = std::max(hi, r);
      }
      const int bars =
          hi > lo ? static_cast<int>(40.0 * (pd.response[g] - lo) /
                                     (hi - lo))
                  : 0;
      std::printf("  %10.2f | %-40s %.2fs\n", pd.grid[g],
                  std::string(static_cast<std::size_t>(bars), '#').c_str(),
                  pd.response[g]);
    }
  }
  return 0;
}
