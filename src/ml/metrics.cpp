#include "ml/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/common.hpp"
#include "util/stats.hpp"

namespace lts::ml {

double rmse(std::span<const double> truth, std::span<const double> pred) {
  LTS_REQUIRE(truth.size() == pred.size() && !truth.empty(),
              "rmse: bad input sizes");
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - pred[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(truth.size()));
}

double mae(std::span<const double> truth, std::span<const double> pred) {
  LTS_REQUIRE(truth.size() == pred.size() && !truth.empty(),
              "mae: bad input sizes");
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    acc += std::abs(truth[i] - pred[i]);
  }
  return acc / static_cast<double>(truth.size());
}

double r2_score(std::span<const double> truth, std::span<const double> pred) {
  LTS_REQUIRE(truth.size() == pred.size() && truth.size() >= 2,
              "r2_score: bad input sizes");
  const double m = mean(truth);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - m) * (truth[i] - m);
  }
  if (ss_tot <= 0.0) return ss_res <= 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double mape(std::span<const double> truth, std::span<const double> pred,
            double eps) {
  LTS_REQUIRE(truth.size() == pred.size() && !truth.empty(),
              "mape: bad input sizes");
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (std::abs(truth[i]) <= eps) continue;
    acc += std::abs((truth[i] - pred[i]) / truth[i]);
    ++count;
  }
  return count > 0 ? acc / static_cast<double>(count) : 0.0;
}

std::vector<std::size_t> argsort_ascending(std::span<const double> values) {
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return values[a] < values[b];
  });
  return order;
}

bool topk_hit_min(std::span<const double> truth, std::span<const double> pred,
                  int k) {
  LTS_REQUIRE(truth.size() == pred.size() && !truth.empty(),
              "topk_hit_min: bad input sizes");
  LTS_REQUIRE(k >= 1, "topk_hit_min: k must be >= 1");
  const std::size_t best_true =
      static_cast<std::size_t>(std::min_element(truth.begin(), truth.end()) -
                               truth.begin());
  const auto order = argsort_ascending(pred);
  const std::size_t limit =
      std::min(static_cast<std::size_t>(k), order.size());
  for (std::size_t i = 0; i < limit; ++i) {
    if (order[i] == best_true) return true;
  }
  return false;
}

}  // namespace lts::ml
