// Regressor interface and registry.
//
// The scheduler core only sees this interface (§3.2.3 "Supervised Learning
// Model"): fit on historical (features, duration) pairs, predict durations
// at decision time. The registry maps the paper's model names ("linear",
// "random_forest", "xgboost") to factories so Table 4 can iterate model
// families uniformly. Models serialize to JSON for offline training /
// online serving separation (§2.4 deployability).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "util/json.hpp"

namespace lts::ml {

/// A prediction with (optional) model uncertainty. Ensemble models expose
/// their spread; point models report zero.
struct Prediction {
  double mean = 0.0;
  double stddev = 0.0;
};

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on the dataset; may be called again to retrain from scratch.
  virtual void fit(const Dataset& data) = 0;

  /// Retrains on a fresh window, warm-starting from the current state when
  /// the model family supports it (online retraining, §2.4). The default
  /// simply refits from scratch; ensembles override: the random forest
  /// replaces its oldest trees with trees grown on the new window, and the
  /// boosted model continues boosting against its current predictions.
  /// Falls back to fit() when the model is unfitted or the feature width
  /// changed. Deterministic for a given (state, data).
  virtual void refit(const Dataset& data) { fit(data); }

  /// Predicts the target for one feature vector. Requires is_fitted().
  virtual double predict_row(std::span<const double> features) const = 0;

  /// Batched prediction over a row-major feature block: `rows` vectors of
  /// `cols` doubles each, contiguous in `x`; one prediction per row is
  /// written to `out` (size >= rows). Bit-identical to predict_row on each
  /// row — tree ensembles override this with a flattened SoA traversal that
  /// accumulates in the same order as the pointer walk (the serving hot
  /// path); the default loops predict_row.
  virtual void predict_batch(std::span<const double> x, std::size_t rows,
                             std::size_t cols, std::span<double> out) const;

  std::vector<double> predict(const Matrix& x) const;

  /// Point prediction plus uncertainty. The default wraps predict_row with
  /// zero spread; ensembles override (random forest: stddev across trees).
  virtual Prediction predict_with_uncertainty(
      std::span<const double> features) const {
    return Prediction{predict_row(features), 0.0};
  }

  virtual bool is_fitted() const = 0;

  /// Registry name ("linear", "random_forest", "xgboost").
  virtual std::string name() const = 0;

  /// Serializes hyperparameters + learned state.
  virtual Json to_json() const = 0;

  /// Restores learned state from to_json() output.
  virtual void from_json(const Json& j) = 0;

  /// Per-feature importance scores summing to 1 (all-zero for models
  /// without a natural importance, e.g. before fitting).
  virtual std::vector<double> feature_importances() const { return {}; }
};

/// Wraps any regressor to fit on log(target) and predict back in the
/// original scale. Job durations are positive and heteroscedastic (long
/// jobs have proportionally larger variance); fitting in log space stops
/// SSE-based tree splits from being dominated by the long-job regime. The
/// ranking a scheduler derives is invariant to this monotone transform.
class LogTargetRegressor : public Regressor {
 public:
  explicit LogTargetRegressor(std::unique_ptr<Regressor> inner);

  void fit(const Dataset& data) override;
  void refit(const Dataset& data) override;
  double predict_row(std::span<const double> features) const override;
  void predict_batch(std::span<const double> x, std::size_t rows,
                     std::size_t cols, std::span<double> out) const override;
  bool is_fitted() const override;
  Prediction predict_with_uncertainty(
      std::span<const double> features) const override;
  std::string name() const override { return inner_->name(); }
  Json to_json() const override;
  void from_json(const Json& j) override;
  std::vector<double> feature_importances() const override;

  const Regressor& inner() const { return *inner_; }

 private:
  std::unique_ptr<Regressor> inner_;
};

/// Creates a model by registry name with optional hyperparameter overrides
/// (a JSON object whose keys match the model's parameter names). Throws on
/// unknown names so experiment configs fail loudly.
std::unique_ptr<Regressor> create_regressor(const std::string& name,
                                            const Json& params = Json());

/// Names available in the registry, in a stable order.
std::vector<std::string> registered_regressors();

/// Round-trips a model through its serialized form (type tag included).
/// The envelope additionally carries `model_version`, a monotonically
/// increasing counter stamped by the online retraining loop so operators
/// can tell which refit produced a deployed artifact (0 = offline-trained,
/// never hot-swapped). Envelopes written before versioning load as 0.
Json model_to_json(const Regressor& model, std::uint64_t model_version = 0);
std::unique_ptr<Regressor> model_from_json(const Json& j);

/// Version stamp of a serialized envelope (0 when absent). Throws the same
/// diagnostics as model_from_json on a malformed envelope.
std::uint64_t model_version_from_json(const Json& j);

/// Writes the model atomically: the serialized envelope lands in
/// `<path>.tmp` first, the stream is checked after write and close, and
/// only then is the temporary renamed over `path`. A crash or full disk
/// mid-write therefore never leaves a truncated model where a serving
/// loop (or the retraining hot-swap) would load it.
void save_model(const Regressor& model, const std::string& path,
                std::uint64_t model_version = 0);

/// A deserialized model plus its envelope version stamp.
struct LoadedModel {
  std::unique_ptr<Regressor> model;
  std::uint64_t version = 0;
};

/// Loads an envelope, reporting the path in any failure diagnostic
/// (unreadable file, malformed JSON, unknown model type, missing keys).
LoadedModel load_model_envelope(const std::string& path);
std::unique_ptr<Regressor> load_model(const std::string& path);

}  // namespace lts::ml
