// CART regression tree with variance (SSE) splitting — the building block
// of the random forest.
#pragma once

#include <cstdint>
#include <optional>

#include "ml/colindex.hpp"
#include "ml/flat.hpp"
#include "ml/model.hpp"
#include "util/rng.hpp"

namespace lts::ml {

struct TreeParams {
  int max_depth = 12;
  int min_samples_split = 2;
  int min_samples_leaf = 1;
  /// Features considered per split; 0 = all. Random forests pass a subset
  /// size here to decorrelate trees.
  int max_features = 0;
  /// Minimum SSE decrease a split must achieve.
  double min_impurity_decrease = 0.0;

  static TreeParams from_json(const Json& j);
  Json to_json() const;
};

struct TreeNode {
  int feature = -1;         // -1 marks a leaf
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  double value = 0.0;       // leaf prediction (mean of targets)
  int n_samples = 0;

  bool is_leaf() const { return feature < 0; }
};

class DecisionTreeRegressor : public Regressor {
 public:
  explicit DecisionTreeRegressor(TreeParams params = {},
                                 std::uint64_t seed = 7);

  void fit(const Dataset& data) override;

  /// Fits on a row subset (duplicates allowed — bootstrap bags). `rng`
  /// drives per-split feature subsampling when params.max_features > 0.
  /// `presorted`, when given, must index every row of `data` once (the
  /// forest builds it one time per window); the tree then stamps out its
  /// bag's columns by multiplicity streaming instead of re-sorting.
  void fit_on(const Dataset& data, std::span<const std::size_t> rows,
              Rng& rng, const SortedColumns* presorted = nullptr);

  double predict_row(std::span<const double> features) const override;
  void predict_batch(std::span<const double> x, std::size_t rows,
                     std::size_t cols, std::span<double> out) const override;
  bool is_fitted() const override { return !nodes_.empty(); }
  std::string name() const override { return "decision_tree"; }
  Json to_json() const override;
  void from_json(const Json& j) override;
  std::vector<double> feature_importances() const override;

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  int depth() const;
  std::size_t num_leaves() const;

 private:
  struct Split {
    int feature = -1;
    double threshold = 0.0;
    double gain = 0.0;  // SSE decrease
  };

  // Reusable per-fit training state: the per-feature sorted column indexes
  // (built once in fit_on, repartitioned down the recursion), the
  // candidate-feature list, and the per-feature scan result slots. Nothing
  // here is allocated per node.
  struct SplitScratch {
    std::vector<std::size_t> features;
    std::vector<Split> feature_best;  // one slot per candidate feature
    std::vector<std::uint32_t> mult;  // bag multiplicity per dataset row
    SortedColumns columns;
  };

  int build(const Dataset& data, std::vector<std::size_t>& rows,
            std::size_t begin, std::size_t end, int depth, Rng& rng,
            SplitScratch& scratch);
  /// Regenerates flat_ from nodes_; called wherever nodes_ changes
  /// (fit_on, from_json). flat_ is derived state, never serialized.
  void rebuild_flat();
  /// Exact greedy split search over scratch.columns segment [begin, end)
  /// (the same index range `rows` spans in the row array). `sum` is the
  /// node's target total, already accumulated in row order by build().
  /// Candidate features scan independently — in parallel on the global
  /// pool for wide nodes — and reduce in feature order, reproducing the
  /// sequential strict-`>` selection bit for bit.
  std::optional<Split> best_split(const Dataset& data,
                                  std::span<const std::size_t> rows,
                                  std::size_t begin, std::size_t end,
                                  double sum, Rng& rng,
                                  SplitScratch& scratch) const;

  TreeParams params_;
  std::uint64_t seed_;
  std::size_t num_features_ = 0;
  std::vector<TreeNode> nodes_;
  FlatEnsemble flat_;  // SoA mirror of nodes_ for batched prediction
  std::vector<double> importance_;  // raw SSE decrease per feature
};

}  // namespace lts::ml
