#include "ml/analysis.hpp"

#include <algorithm>
#include <numeric>

#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace lts::ml {

PermutationImportance permutation_importance(const Regressor& model,
                                             const Dataset& data,
                                             int repeats,
                                             std::uint64_t seed) {
  LTS_REQUIRE(model.is_fitted(), "permutation_importance: model not fitted");
  LTS_REQUIRE(data.size() >= 4, "permutation_importance: dataset too small");
  LTS_REQUIRE(repeats >= 1, "permutation_importance: repeats >= 1");

  PermutationImportance result;
  result.feature_names = data.feature_names();
  if (result.feature_names.empty()) {
    result.feature_names.resize(data.num_features());
  }

  std::vector<double> baseline_pred;
  baseline_pred.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    baseline_pred.push_back(model.predict_row(data.row(i)));
  }
  result.baseline_rmse = rmse(data.y(), baseline_pred);

  Rng rng(seed);
  Matrix working = data.x();
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    double total_increase = 0.0;
    for (int r = 0; r < repeats; ++r) {
      // Shuffle column f in `working` (Fisher–Yates on that column only).
      std::vector<double> column(data.size());
      for (std::size_t i = 0; i < data.size(); ++i) {
        column[i] = working(i, f);
      }
      rng.shuffle(column);
      for (std::size_t i = 0; i < data.size(); ++i) {
        working(i, f) = column[i];
      }
      std::vector<double> pred;
      pred.reserve(data.size());
      for (std::size_t i = 0; i < data.size(); ++i) {
        pred.push_back(model.predict_row(working.row(i)));
      }
      total_increase +=
          std::max(0.0, rmse(data.y(), pred) - result.baseline_rmse);
      // Restore the column.
      for (std::size_t i = 0; i < data.size(); ++i) {
        working(i, f) = data.x()(i, f);
      }
    }
    result.importance.push_back(total_increase / repeats);
  }
  return result;
}

PartialDependence partial_dependence(const Regressor& model,
                                     const Dataset& data,
                                     std::size_t feature_index,
                                     int grid_points, std::size_t sample_rows,
                                     std::uint64_t seed) {
  LTS_REQUIRE(model.is_fitted(), "partial_dependence: model not fitted");
  LTS_REQUIRE(feature_index < data.num_features(),
              "partial_dependence: feature index out of range");
  LTS_REQUIRE(grid_points >= 2, "partial_dependence: need >= 2 grid points");

  PartialDependence result;
  result.feature = data.feature_names().empty()
                       ? std::to_string(feature_index)
                       : data.feature_names()[feature_index];

  // Quantile-spaced grid over the observed values.
  std::vector<double> values(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    values[i] = data.x()(i, feature_index);
  }
  std::sort(values.begin(), values.end());
  for (int g = 0; g < grid_points; ++g) {
    const double q = static_cast<double>(g) / (grid_points - 1);
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1));
    result.grid.push_back(values[idx]);
  }
  result.grid.erase(std::unique(result.grid.begin(), result.grid.end()),
                    result.grid.end());

  // Marginalize over a sample of rows.
  Rng rng(seed);
  std::vector<std::size_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  if (rows.size() > sample_rows) {
    rng.shuffle(rows);
    rows.resize(sample_rows);
  }
  std::vector<double> x;
  for (const double grid_value : result.grid) {
    double total = 0.0;
    for (const std::size_t row : rows) {
      x.assign(data.row(row).begin(), data.row(row).end());
      x[feature_index] = grid_value;
      total += model.predict_row(x);
    }
    result.response.push_back(total / static_cast<double>(rows.size()));
  }
  return result;
}

}  // namespace lts::ml
