// FlatEnsemble: a flattened, contiguous packing of a tree ensemble for
// cache-friendly batched inference (the serving hot path).
//
// The training representations (DecisionTreeRegressor's TreeNode vector,
// GradientBoostedTrees' per-tree GbtNode vectors) chase pointers node by
// node, which is fine for one row but wastes the cache when the scheduler
// scores every (pod, node) candidate of a whole queue. FlatEnsemble packs
// every tree of the ensemble into one contiguous array of 16-byte nodes —
// the split threshold plus tree-LOCAL int16 feature/child indices, so a
// whole tree (up to 32k nodes) stays small enough to sit in L1 while a
// block of rows walks it — and traverses a block of rows through one tree
// at a time with a branchless inner loop:
//
//   - leaves are rewritten to self-loops (left == right == self) with probe
//     feature 0 and threshold +inf, so iterating each tree up to `depth`
//     times lands every row on its leaf with only in-bounds loads and no
//     per-step is_leaf branch; a block whose rows have all parked exits the
//     depth loop early (detected with one XOR-OR per lane, no extra loads);
//   - leaf values live in a parallel array read once per (tree, row) after
//     the walk, keeping the per-step working set at 16 bytes per node;
//   - per row the tree values accumulate in tree order starting from
//     `init`, then divide by `divisor`, reproducing the exact floating-
//     point accumulation of the pointer walk: the forest's
//     (t0 + t1 + ...)/n and the GBT's ((base + t0) + t1) + ... are summed
//     in the same order, so predictions are bit-identical, not just close.
//
// Ensembles rebuild their FlatEnsemble eagerly at the end of fit/refit/
// from_json; it is derived state and is never serialized. A tree too large
// for int16 local indexing (> 32767 nodes, impossible under the default
// depth caps) makes try_add_tree return false; ensembles then clear the
// flat form and predict_batch falls back to the scalar pointer walk.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace lts::ml {

class FlatEnsemble {
 public:
  /// One packed tree node: 16 bytes, 16-byte aligned, one cache line holds
  /// four. The three 16-bit fields — feature, then the tree-LOCAL left and
  /// right child indices (node 0 is the root, so locals fit 15 bits for
  /// trees up to 32767 nodes) — share one 64-bit word, so the walk reads a
  /// whole node in two loads (threshold + meta) instead of four; on a
  /// two-load-port core the per-step cost is load-bound and this matters.
  struct alignas(16) FlatNode {
    double threshold = 0.0;
    std::uint64_t meta = 0;  // feature | left << 16 | right << 32

    static std::uint64_t pack(std::uint64_t feature, std::uint64_t left,
                              std::uint64_t right) {
      return feature | (left << 16) | (right << 32);
    }
  };

  /// Largest tree representable with int16 local child indices.
  static constexpr std::size_t kMaxTreeNodes = 32767;

  void clear();

  /// Appends one tree, or returns false (ensemble unchanged) if the tree
  /// exceeds kMaxTreeNodes — the caller should clear() and serve through
  /// its scalar path instead. `Node` must expose feature/threshold/left/
  /// right/value and is_leaf(); node 0 is the root and children follow
  /// their parent in the array (the preorder layout build() and from_json
  /// produce), which is what makes the single-pass depth computation valid.
  template <typename Node>
  bool try_add_tree(std::span<const Node> nodes) {
    if (nodes.size() > kMaxTreeNodes) return false;
    tree_base_.push_back(static_cast<std::int32_t>(nodes_.size()));
    std::vector<std::int32_t> depth_of(nodes.size(), 0);
    std::int32_t max_depth = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const Node& n = nodes[i];
      FlatNode flat;
      if (n.is_leaf()) {
        // Self-looping leaf: extra fixed-depth iterations re-select the
        // leaf via an in-bounds load of feature 0 (x <= +inf goes left;
        // a NaN feature goes right; both point back here).
        flat.threshold = std::numeric_limits<double>::infinity();
        flat.meta = FlatNode::pack(0, i, i);
      } else {
        flat.threshold = n.threshold;
        flat.meta = FlatNode::pack(static_cast<std::uint64_t>(n.feature),
                                   static_cast<std::uint64_t>(n.left),
                                   static_cast<std::uint64_t>(n.right));
        const auto l = static_cast<std::size_t>(n.left);
        const auto r = static_cast<std::size_t>(n.right);
        depth_of[l] = depth_of[i] + 1;
        depth_of[r] = depth_of[i] + 1;
        max_depth = std::max(max_depth, depth_of[l]);
      }
      nodes_.push_back(flat);
      value_.push_back(n.value);
    }
    depths_.push_back(max_depth);
    return true;
  }

  /// out[r] = (init + sum of tree leaf values, in tree order) / divisor.
  void set_init(double init) { init_ = init; }
  void set_divisor(double divisor) { divisor_ = divisor; }

  std::size_t num_trees() const { return tree_base_.size(); }
  std::size_t num_nodes() const { return nodes_.size(); }
  bool empty() const { return tree_base_.empty(); }

  /// Batched prediction over a row-major feature block: `rows` vectors of
  /// `cols` doubles each, contiguous at `x`; one prediction per row written
  /// to `out`. No feature is loaded when every tree is a single leaf, so
  /// cols may be 0 only in that degenerate case.
  void predict(const double* x, std::size_t rows, std::size_t cols,
               double* out) const;

  /// Batched accumulate: inout[r] += leaf value of every tree, in tree
  /// order — predict() without the init seed and the divisor, for callers
  /// folding this ensemble into a running total (the GBT's per-round
  /// prediction update). The per-row addition order is exactly
  /// `inout[r] += tree0; inout[r] += tree1; ...`, so the result is
  /// bit-identical to the scalar walk it replaces.
  void accumulate(const double* x, std::size_t rows, std::size_t cols,
                  double* inout) const;

 private:
  /// Shared batched walker behind predict/accumulate: seeds each row's
  /// output from init_ and divides by divisor_ only when kSeed.
  template <bool kSeed>
  void walk_block(const double* x, std::size_t rows, std::size_t cols,
                  double* out) const;

  std::vector<FlatNode> nodes_;       // all trees, concatenated
  std::vector<double> value_;         // leaf payloads, parallel to nodes_
  std::vector<std::int32_t> tree_base_;  // per-tree offset into nodes_
  std::vector<std::int32_t> depths_;  // per-tree max root-to-leaf depth
  double init_ = 0.0;
  double divisor_ = 1.0;
};

}  // namespace lts::ml
