// SortedColumns: per-feature sorted column indexes for exact greedy split
// finding — the training-side sibling of FlatEnsemble's serving layout.
//
// The naive CART/GBT split search re-gathers and re-std::sorts every
// candidate feature at every tree node, an O(nodes x features x n log n)
// pattern that dominates fit/refit wall time once training runs inside the
// serving loop (core::OnlineTrainer). SortedColumns sorts each feature
// column ONCE per fit and then maintains node membership through the
// recursion sklearn-style: after a split, every column's segment is
// repartitioned IN PLACE and STABLY around the chosen threshold, so each
// node owns a contiguous, still-sorted slice [begin, end) of every column
// and the per-node scan degenerates to a linear sweep.
//
// Bit-identity with the per-node-sort implementation is load-bearing (the
// golden replay and the champion/challenger gate both compare serialized
// models byte for byte), and it falls out of two invariants:
//
//   1. The build comparators reproduce today's sort keys exactly — the
//      tree sorts (value, target) pairs, the GBT sorts (value, row) pairs —
//      so the root segment is the very sequence std::sort used to produce.
//      Ties beyond those keys are broken by row id, which cannot matter:
//      fully-tied entries are interchangeable in every downstream sum.
//   2. A stable partition of a sorted sequence leaves both halves sorted
//      and preserves tie order, so every descendant node's slice is again
//      exactly what a fresh gather + sort would have produced, and the
//      prefix-sum accumulation order — hence every gain, threshold, and
//      chosen split — is unchanged down to the last ULP.
//
// EXPERIMENTS.md ("Training-path overhaul") carries the full argument.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/matrix.hpp"

namespace lts::ml {

/// Test hook: globally disables the ThreadPool fan-out of the per-feature
/// split scan and column builds (everything runs on the calling thread).
/// Results are bit-identical either way — the differential suite in
/// tests/train_test.cpp pins exactly that — so this is a scheduling knob,
/// never a correctness one. Defaults to enabled.
void set_parallel_split_scan(bool enabled);
bool parallel_split_scan_enabled();

/// Below this many occurrences a node's scan is not worth fanning out:
/// the pool submit/join overhead exceeds the linear sweep. Deep-tree nodes
/// are almost all below it; the wide nodes near the root are what matter.
inline constexpr std::size_t kParallelScanMinRows = 1024;

/// True when work of `n` occurrences across `cols` independent columns
/// should use ThreadPool::global() (respects the test hook above).
bool use_parallel_columns(std::size_t n, std::size_t cols);

class SortedColumns {
 public:
  /// Tree presort: one column per dataset feature over the given row
  /// OCCURRENCES (duplicates allowed — bootstrap bags), each sorted by
  /// (feature value, target, row). Matches DecisionTreeRegressor's
  /// per-node std::sort over (x, y) pairs.
  void build_by_value_target(const Matrix& x, const std::vector<double>& y,
                             std::span<const std::size_t> rows);

  /// GBT presort: one column per dataset feature over ALL dataset rows,
  /// each sorted by (feature value, row). Matches GradientBoostedTrees'
  /// per-node std::sort over (x, row) pairs. Built once per fit/refit;
  /// per-round subsets are carved out with assign_filtered.
  void build_by_value_row(const Matrix& x);

  /// Rebuilds this index as the subsequence of `from` whose rows are
  /// marked in `keep` (indexed by dataset row id), restricted to the given
  /// feature ids — the per-boosting-round row/column subsample. A
  /// subsequence of a sorted column is sorted, so no re-sort happens.
  /// `kept` must equal the number of marked occurrences.
  void assign_filtered(const SortedColumns& from,
                       const std::vector<unsigned char>& keep,
                       std::size_t kept,
                       std::span<const std::size_t> features);

  /// Rebuilds this index as the bootstrap expansion of `from` (an index
  /// over every dataset row, one occurrence each): occurrence k of every
  /// column is emitted mult[row_k] times, in `from`'s order. Duplicates of
  /// a row are fully tied — equal on every sort key — so the streamed
  /// order is exactly what gathering the bag and sorting it would produce,
  /// at O(rows + total) per column instead of O(total log total). This is
  /// what lets a forest sort the window once and stamp out per-tree
  /// indexes for every bag. `total` must equal the sum of `mult`.
  void assign_bootstrap(const SortedColumns& from,
                        std::span<const std::uint32_t> mult,
                        std::size_t total);

  /// Occurrences per column.
  std::size_t size() const { return n_; }
  std::size_t num_cols() const { return cols_; }

  /// Column `c` as parallel (value, row) arrays. For build_by_* indexes,
  /// column c is dataset feature c; for assign_filtered indexes, column c
  /// is the c-th entry of the feature list passed in.
  const double* x_col(std::size_t c) const { return x_.data() + c * n_; }
  const std::uint32_t* row_col(std::size_t c) const {
    return row_.data() + c * n_;
  }

  /// Stable in-place two-way partition of segment [begin, end) of EVERY
  /// column around `x <= threshold` on `split_col`. Returns the boundary
  /// (begin + number of occurrences that went left), which must equal the
  /// row array's std::partition midpoint — callers assert exactly that.
  /// The split column itself is untouched: x is its primary sort key, so
  /// its left side is already exactly the segment prefix. Scratch is
  /// reused across calls; nothing allocates in the steady state.
  std::size_t repartition(std::size_t begin, std::size_t end,
                          std::size_t split_col, double threshold);

  /// True when `row` went left in the most recent repartition() — the same
  /// boolean `x(row, split_col) <= threshold` evaluates to, off bitwise
  /// the same doubles, so a std::partition of the row array under this
  /// predicate behaves exactly like one under the matrix lookup (without
  /// the scattered matrix reads).
  bool went_left(std::size_t row) const { return goes_left_[row] != 0; }

 private:
  std::size_t n_ = 0;          // occurrences per column
  std::size_t cols_ = 0;       // number of columns
  std::size_t num_rows_ = 0;   // dataset rows (sizes the goes_left_ mask)
  std::vector<double> x_;             // [c * n_ + k], sorted per column
  std::vector<std::uint32_t> row_;    // dataset row of each occurrence
  std::vector<double> tmp_x_;         // repartition right-side scratch
  std::vector<std::uint32_t> tmp_row_;
  std::vector<unsigned char> goes_left_;  // indexed by dataset row id
};

}  // namespace lts::ml
