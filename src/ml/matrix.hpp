// Dense row-major matrix and the small linear-algebra kernel the ML module
// needs (Cholesky solve for ridge regression). Deliberately minimal: LTS
// models are trees and small linear systems, not BLAS workloads.
#pragma once

#include <span>
#include <vector>

#include "util/common.hpp"

namespace lts::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  std::span<const double> row(std::size_t r) const;
  std::span<double> row(std::size_t r);

  /// Appends a row; fixes the column count on first push.
  void push_row(std::span<const double> values);

  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b for symmetric positive-definite A via Cholesky
/// factorization. A is consumed (factored in place). Throws lts::Error if A
/// is not positive definite.
std::vector<double> solve_cholesky(Matrix a, std::vector<double> b);

}  // namespace lts::ml
