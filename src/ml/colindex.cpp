#include "ml/colindex.hpp"

#include <algorithm>
#include <atomic>

#include "util/common.hpp"
#include "util/thread_pool.hpp"

namespace lts::ml {
namespace {

std::atomic<bool> g_parallel_split_scan{true};

}  // namespace

void set_parallel_split_scan(bool enabled) {
  g_parallel_split_scan.store(enabled, std::memory_order_relaxed);
}

bool parallel_split_scan_enabled() {
  return g_parallel_split_scan.load(std::memory_order_relaxed);
}

bool use_parallel_columns(std::size_t n, std::size_t cols) {
  return parallel_split_scan_enabled() && cols > 1 &&
         n >= kParallelScanMinRows;
}

void SortedColumns::build_by_value_target(const Matrix& x,
                                          const std::vector<double>& y,
                                          std::span<const std::size_t> rows) {
  n_ = rows.size();
  cols_ = x.cols();
  num_rows_ = x.rows();
  x_.resize(cols_ * n_);
  row_.resize(cols_ * n_);
  tmp_x_.resize(n_);
  tmp_row_.resize(n_);
  goes_left_.resize(num_rows_);

  struct Entry {
    double x;
    double y;
    std::uint32_t row;
  };
  auto build_one = [&](std::size_t f) {
    // Per-column scratch: one allocation per (fit, feature), never per
    // node, and column builds on different features are independent.
    std::vector<Entry> entries(n_);
    for (std::size_t k = 0; k < n_; ++k) {
      const auto r = rows[k];
      entries[k] = Entry{x(r, f), y[r], static_cast<std::uint32_t>(r)};
    }
    // The (x, y) prefix matches the pre-overhaul per-node sort key; the
    // trailing row id only orders fully-tied occurrences, which are
    // interchangeable in every downstream prefix sum.
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                if (a.x != b.x) return a.x < b.x;
                if (a.y != b.y) return a.y < b.y;
                return a.row < b.row;
              });
    double* cx = x_.data() + f * n_;
    std::uint32_t* cr = row_.data() + f * n_;
    for (std::size_t k = 0; k < n_; ++k) {
      cx[k] = entries[k].x;
      cr[k] = entries[k].row;
    }
  };
  if (use_parallel_columns(n_, cols_)) {
    // lts-lint: shared-guarded(partitioned: column f writes only the f-th slices of x_/row_; inputs are read-only)
    ThreadPool::global().parallel_for(cols_, [&](std::size_t f) {
      build_one(f);
    });
  } else {
    for (std::size_t f = 0; f < cols_; ++f) build_one(f);
  }
}

void SortedColumns::build_by_value_row(const Matrix& x) {
  n_ = x.rows();
  cols_ = x.cols();
  num_rows_ = x.rows();
  x_.resize(cols_ * n_);
  row_.resize(cols_ * n_);
  tmp_x_.resize(n_);
  tmp_row_.resize(n_);
  goes_left_.resize(num_rows_);

  struct Entry {
    double x;
    std::uint32_t row;
  };
  auto build_one = [&](std::size_t f) {
    std::vector<Entry> entries(n_);
    for (std::size_t r = 0; r < n_; ++r) {
      entries[r] = Entry{x(r, f), static_cast<std::uint32_t>(r)};
    }
    // (x, row) is exactly the pre-overhaul per-node sort key: GBT rows are
    // distinct, so this order is unique.
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                if (a.x != b.x) return a.x < b.x;
                return a.row < b.row;
              });
    double* cx = x_.data() + f * n_;
    std::uint32_t* cr = row_.data() + f * n_;
    for (std::size_t k = 0; k < n_; ++k) {
      cx[k] = entries[k].x;
      cr[k] = entries[k].row;
    }
  };
  if (use_parallel_columns(n_, cols_)) {
    // lts-lint: shared-guarded(partitioned: column f writes only the f-th slices of x_/row_; the matrix is read-only)
    ThreadPool::global().parallel_for(cols_, [&](std::size_t f) {
      build_one(f);
    });
  } else {
    for (std::size_t f = 0; f < cols_; ++f) build_one(f);
  }
}

void SortedColumns::assign_filtered(const SortedColumns& from,
                                    const std::vector<unsigned char>& keep,
                                    std::size_t kept,
                                    std::span<const std::size_t> features) {
  LTS_ASSERT(this != &from);
  n_ = kept;
  cols_ = features.size();
  num_rows_ = from.num_rows_;
  x_.resize(cols_ * n_);
  row_.resize(cols_ * n_);
  tmp_x_.resize(n_);
  tmp_row_.resize(n_);
  goes_left_.resize(num_rows_);

  auto filter_one = [&](std::size_t c) {
    const double* sx = from.x_col(features[c]);
    const std::uint32_t* sr = from.row_col(features[c]);
    double* cx = x_.data() + c * n_;
    std::uint32_t* cr = row_.data() + c * n_;
    std::size_t k = 0;
    for (std::size_t i = 0; i < from.n_; ++i) {
      if (keep[sr[i]]) {
        cx[k] = sx[i];
        cr[k] = sr[i];
        ++k;
      }
    }
    LTS_ASSERT(k == kept);
  };
  if (use_parallel_columns(from.n_, cols_)) {
    // lts-lint: shared-guarded(partitioned: column c writes only the c-th slices of x_/row_; `from` and the mask are read-only)
    ThreadPool::global().parallel_for(cols_, [&](std::size_t c) {
      filter_one(c);
    });
  } else {
    for (std::size_t c = 0; c < cols_; ++c) filter_one(c);
  }
}

void SortedColumns::assign_bootstrap(const SortedColumns& from,
                                     std::span<const std::uint32_t> mult,
                                     std::size_t total) {
  LTS_ASSERT(this != &from);
  LTS_ASSERT(mult.size() == from.num_rows_);
  n_ = total;
  cols_ = from.cols_;
  num_rows_ = from.num_rows_;
  x_.resize(cols_ * n_);
  row_.resize(cols_ * n_);
  tmp_x_.resize(n_);
  tmp_row_.resize(n_);
  goes_left_.resize(num_rows_);

  auto expand_one = [&](std::size_t c) {
    const double* sx = from.x_col(c);
    const std::uint32_t* sr = from.row_col(c);
    double* cx = x_.data() + c * n_;
    std::uint32_t* cr = row_.data() + c * n_;
    std::size_t k = 0;
    for (std::size_t i = 0; i < from.n_; ++i) {
      const double x = sx[i];
      const std::uint32_t r = sr[i];
      for (std::uint32_t m = mult[r]; m > 0; --m) {
        cx[k] = x;
        cr[k] = r;
        ++k;
      }
    }
    LTS_ASSERT(k == total);
  };
  if (use_parallel_columns(n_, cols_)) {
    // lts-lint: shared-guarded(partitioned: column c writes only the c-th slices of x_/row_; `from` and the multiplicities are read-only)
    ThreadPool::global().parallel_for(cols_, [&](std::size_t c) {
      expand_one(c);
    });
  } else {
    for (std::size_t c = 0; c < cols_; ++c) expand_one(c);
  }
}

std::size_t SortedColumns::repartition(std::size_t begin, std::size_t end,
                                       std::size_t split_col,
                                       double threshold) {
  LTS_ASSERT(split_col < cols_ && begin < end && end <= n_);
  // Mark each dataset row's side once, off the split column's own values
  // (bitwise the same doubles a matrix lookup would see). Duplicate
  // occurrences of a row share the mark by construction. The left count
  // doubles as the boundary: x is the split column's primary sort key, so
  // its own segment is already partitioned — the left side is exactly the
  // prefix — and it never needs to move.
  std::size_t mid = begin;
  {
    const double* xs = x_col(split_col);
    const std::uint32_t* rs = row_col(split_col);
    for (std::size_t k = begin; k < end; ++k) {
      const bool left = xs[k] <= threshold;
      goes_left_[rs[k]] = left ? 1 : 0;
      mid += left ? 1 : 0;
    }
  }

  // Stable two-way partition of every other column's segment: left side
  // compacts forward in place (the write cursor never passes the read
  // cursor), the right side stages in persistent scratch and copies back
  // behind it.
  for (std::size_t c = 0; c < cols_; ++c) {
    if (c == split_col) continue;  // already the sorted left prefix
    double* cx = x_.data() + c * n_;
    std::uint32_t* cr = row_.data() + c * n_;
    std::size_t l = begin;
    std::size_t t = 0;
    for (std::size_t k = begin; k < end; ++k) {
      if (goes_left_[cr[k]]) {
        cx[l] = cx[k];
        cr[l] = cr[k];
        ++l;
      } else {
        tmp_x_[t] = cx[k];
        tmp_row_[t] = cr[k];
        ++t;
      }
    }
    std::copy(tmp_x_.begin(),
              tmp_x_.begin() + static_cast<std::ptrdiff_t>(t), cx + l);
    std::copy(tmp_row_.begin(),
              tmp_row_.begin() + static_cast<std::ptrdiff_t>(t), cr + l);
    LTS_ASSERT(l == mid);  // every column holds the same row multiset
  }
  return mid;
}

}  // namespace lts::ml
