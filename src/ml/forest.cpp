#include "ml/forest.hpp"

#include <cmath>
#include <numeric>

#include "ml/metrics.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace lts::ml {

ForestParams ForestParams::from_json(const Json& j) {
  ForestParams p;
  if (j.contains("n_estimators")) {
    p.n_estimators = j.at("n_estimators").as_int();
  }
  if (j.contains("tree")) p.tree = TreeParams::from_json(j.at("tree"));
  if (j.contains("bootstrap")) p.bootstrap = j.at("bootstrap").as_bool();
  if (j.contains("max_features")) {
    p.max_features = j.at("max_features").as_int();
  }
  if (j.contains("seed")) {
    p.seed = static_cast<std::uint64_t>(j.at("seed").as_double());
  }
  if (j.contains("compute_oob")) {
    p.compute_oob = j.at("compute_oob").as_bool();
  }
  return p;
}

Json ForestParams::to_json() const {
  Json j = Json::object();
  j["n_estimators"] = n_estimators;
  j["tree"] = tree.to_json();
  j["bootstrap"] = bootstrap;
  j["max_features"] = max_features;
  j["seed"] = static_cast<double>(seed);
  j["compute_oob"] = compute_oob;
  return j;
}

RandomForestRegressor::RandomForestRegressor(ForestParams params)
    : params_(params) {
  LTS_REQUIRE(params_.n_estimators >= 1,
              "ForestParams: need at least one tree");
}

std::vector<std::unique_ptr<DecisionTreeRegressor>>
RandomForestRegressor::grow_trees(
    const Dataset& data, std::size_t count, std::uint64_t salt,
    std::vector<std::vector<std::size_t>>* bags) {
  const std::size_t n = data.size();

  TreeParams tree_params = params_.tree;
  tree_params.max_features =
      params_.max_features > 0
          ? params_.max_features
          : std::max(1, static_cast<int>(num_features_) / 3);

  std::vector<std::unique_ptr<DecisionTreeRegressor>> grown(count);
  if (bags != nullptr) bags->assign(count, {});

  // Sort the window's feature columns once and share the result across
  // every bag: each tree streams its bootstrap columns out of this presort
  // by multiplicity instead of re-sorting, so the O(n log n) per column is
  // paid once per window rather than once per tree.
  SortedColumns presorted;
  {
    std::vector<std::size_t> all_rows(n);
    std::iota(all_rows.begin(), all_rows.end(), std::size_t{0});
    presorted.build_by_value_target(data.x(), data.y(), all_rows);
  }

  // Each tree gets an independent Rng derived from (seed, salt, tree
  // index), so training is deterministic regardless of thread
  // interleaving. salt=0 is the initial fit; refits advance it so new
  // windows grow different trees.
  ThreadPool& pool = pool_ ? *pool_ : ThreadPool::global();
  // lts-lint: shared-guarded(partitioned: tree b writes only grown[b] and (*bags)[b]; data/params/presorted are read-only)
  pool.parallel_for(count, [&](std::size_t b) {
    Rng rng((params_.seed + salt) * 0x9e3779b97f4a7c15ULL + b * 2 + 1);
    std::vector<std::size_t> rows;
    rows.reserve(n);
    if (params_.bootstrap) {
      for (std::size_t i = 0; i < n; ++i) {
        rows.push_back(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
      }
    } else {
      rows.resize(n);
      std::iota(rows.begin(), rows.end(), std::size_t{0});
    }
    auto tree = std::make_unique<DecisionTreeRegressor>(tree_params);
    tree->fit_on(data, rows, rng, &presorted);
    grown[b] = std::move(tree);
    if (bags != nullptr) (*bags)[b] = std::move(rows);
  });
  return grown;
}

void RandomForestRegressor::fit(const Dataset& data) {
  LTS_REQUIRE(!data.empty(), "RandomForest: empty training set");
  num_features_ = data.num_features();
  const std::size_t n = data.size();
  const auto n_trees = static_cast<std::size_t>(params_.n_estimators);

  refit_generation_ = 0;
  std::vector<std::vector<std::size_t>> bags;
  trees_ = grow_trees(data, n_trees, /*salt=*/0, &bags);
  rebuild_flat();

  if (params_.compute_oob && params_.bootstrap) {
    std::vector<double> oob_sum(n, 0.0);
    std::vector<int> oob_count(n, 0);
    std::vector<char> in_bag(n);
    for (std::size_t b = 0; b < n_trees; ++b) {
      std::fill(in_bag.begin(), in_bag.end(), 0);
      for (const std::size_t r : bags[b]) in_bag[r] = 1;
      for (std::size_t i = 0; i < n; ++i) {
        if (!in_bag[i]) {
          oob_sum[i] += trees_[b]->predict_row(data.row(i));
          ++oob_count[i];
        }
      }
    }
    std::vector<double> truth, preds;
    for (std::size_t i = 0; i < n; ++i) {
      if (oob_count[i] > 0) {
        truth.push_back(data.target(i));
        preds.push_back(oob_sum[i] / oob_count[i]);
      }
    }
    oob_r2_ = truth.size() >= 2 ? r2_score(truth, preds)
                                : std::numeric_limits<double>::quiet_NaN();
  }
}

void RandomForestRegressor::refit(const Dataset& data) {
  LTS_REQUIRE(!data.empty(), "RandomForest: empty training set");
  if (!is_fitted() || data.num_features() != num_features_) {
    fit(data);
    return;
  }
  // Replace the oldest half of the ensemble with trees grown on the new
  // window. Kept trees rotate to the front, so repeated refits age them
  // out in FIFO order and the forest blends the last few windows.
  ++refit_generation_;
  const std::size_t replaced = std::max<std::size_t>(1, trees_.size() / 2);
  auto fresh = grow_trees(data, replaced, refit_generation_, nullptr);
  std::vector<std::unique_ptr<DecisionTreeRegressor>> next;
  next.reserve(trees_.size());
  for (std::size_t i = replaced; i < trees_.size(); ++i) {
    next.push_back(std::move(trees_[i]));
  }
  for (auto& tree : fresh) next.push_back(std::move(tree));
  trees_ = std::move(next);
  rebuild_flat();
  // OOB score would mix windows; clear it rather than report a stale one.
  oob_r2_ = std::numeric_limits<double>::quiet_NaN();
}

void RandomForestRegressor::rebuild_flat() {
  flat_.clear();
  if (trees_.empty()) return;  // unfitted round-trip: nothing to flatten
  for (const auto& tree : trees_) {
    if (!flat_.try_add_tree(std::span<const TreeNode>(tree->nodes()))) {
      flat_.clear();  // oversized tree: serve through the scalar walk
      return;
    }
  }
  // predict_row computes (t0 + t1 + ...)/n; the same divisor reproduces it
  // bit for bit because the flat kernel sums in tree order too.
  flat_.set_divisor(static_cast<double>(trees_.size()));
}

void RandomForestRegressor::predict_batch(std::span<const double> x,
                                          std::size_t rows, std::size_t cols,
                                          std::span<double> out) const {
  LTS_REQUIRE(is_fitted(), "RandomForest: not fitted");
  LTS_REQUIRE(cols == num_features_, "RandomForest: feature width mismatch");
  LTS_REQUIRE(x.size() >= rows * cols,
              "RandomForest: feature block smaller than rows * cols");
  LTS_REQUIRE(out.size() >= rows, "RandomForest: output span too small");
  if (flat_.empty()) {  // oversized tree bailed out of flattening
    Regressor::predict_batch(x, rows, cols, out);
    return;
  }
  flat_.predict(x.data(), rows, cols, out.data());
}

double RandomForestRegressor::predict_row(
    std::span<const double> features) const {
  LTS_REQUIRE(is_fitted(), "RandomForest: not fitted");
  double total = 0.0;
  for (const auto& tree : trees_) {
    total += tree->predict_row(features);
  }
  return total / static_cast<double>(trees_.size());
}

Prediction RandomForestRegressor::predict_with_uncertainty(
    std::span<const double> features) const {
  LTS_REQUIRE(is_fitted(), "RandomForest: not fitted");
  RunningStats stats;
  for (const auto& tree : trees_) {
    stats.add(tree->predict_row(features));
  }
  return Prediction{stats.mean(), stats.stddev()};
}

const DecisionTreeRegressor& RandomForestRegressor::tree(
    std::size_t i) const {
  LTS_REQUIRE(i < trees_.size(), "RandomForest: tree index out of range");
  return *trees_[i];
}

Json RandomForestRegressor::to_json() const {
  Json j = Json::object();
  j["params"] = params_.to_json();
  j["num_features"] = num_features_;
  j["refit_generation"] = static_cast<double>(refit_generation_);
  JsonArray trees;
  trees.reserve(trees_.size());
  for (const auto& tree : trees_) {
    trees.push_back(tree->to_json());
  }
  j["trees"] = Json(std::move(trees));
  return j;
}

void RandomForestRegressor::from_json(const Json& j) {
  params_ = ForestParams::from_json(j.at("params"));
  num_features_ = static_cast<std::size_t>(j.at("num_features").as_double());
  refit_generation_ =
      j.contains("refit_generation")
          ? static_cast<std::uint64_t>(j.at("refit_generation").as_double())
          : 0;
  trees_.clear();
  for (const auto& entry : j.at("trees").as_array()) {
    auto tree = std::make_unique<DecisionTreeRegressor>();
    tree->from_json(entry);
    trees_.push_back(std::move(tree));
  }
  rebuild_flat();
}

std::vector<double> RandomForestRegressor::feature_importances() const {
  if (trees_.empty()) return {};
  std::vector<double> total(num_features_, 0.0);
  for (const auto& tree : trees_) {
    const auto imp = tree->feature_importances();
    for (std::size_t f = 0; f < total.size() && f < imp.size(); ++f) {
      total[f] += imp[f];
    }
  }
  const double sum = std::accumulate(total.begin(), total.end(), 0.0);
  if (sum > 0.0) {
    for (auto& v : total) v /= sum;
  }
  return total;
}

}  // namespace lts::ml
