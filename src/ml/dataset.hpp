// Supervised-learning dataset: a feature matrix, a target vector, and the
// feature names that make model introspection (importances, serialized
// schemas) meaningful.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "ml/matrix.hpp"
#include "util/rng.hpp"

namespace lts::ml {

class Dataset {
 public:
  Dataset() = default;
  Dataset(Matrix x, std::vector<double> y,
          std::vector<std::string> feature_names);

  std::size_t size() const { return y_.size(); }
  std::size_t num_features() const { return x_.cols(); }
  bool empty() const { return y_.empty(); }

  const Matrix& x() const { return x_; }
  const std::vector<double>& y() const { return y_; }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  std::span<const double> row(std::size_t i) const { return x_.row(i); }
  double target(std::size_t i) const { return y_[i]; }

  void add_row(std::span<const double> features, double target);
  void set_feature_names(std::vector<std::string> names);

  /// New dataset containing the given rows (duplicates allowed — used for
  /// bootstrap resampling).
  Dataset select(std::span<const std::size_t> indices) const;

  /// Deterministic shuffled split; `test_fraction` of rows go to .second.
  std::pair<Dataset, Dataset> train_test_split(double test_fraction,
                                               Rng& rng) const;

 private:
  Matrix x_;
  std::vector<double> y_;
  std::vector<std::string> feature_names_;
};

}  // namespace lts::ml
