// Feature preprocessing: standardization and categorical one-hot encoding.
//
// The core FeatureConstructor emits numeric vectors directly, but the
// preprocessing stage exists for the broader "train on existing logs"
// workflow (§2.3): raw CSV logs carry categorical columns (application
// type, node name) that must be encoded before model fitting.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "util/json.hpp"

namespace lts::ml {

/// Zero-mean unit-variance scaling per column; constant columns pass
/// through unchanged.
class StandardScaler {
 public:
  void fit(const Matrix& x);
  bool is_fitted() const { return !mean_.empty(); }

  Matrix transform(const Matrix& x) const;
  std::vector<double> transform_row(std::span<const double> row) const;
  Matrix inverse_transform(const Matrix& z) const;

  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return std_; }

  Json to_json() const;
  static StandardScaler from_json(const Json& j);

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

/// Maps string categories to one-hot vectors; unseen categories at
/// transform time map to the all-zero vector (tolerated, not an error —
/// tree models are robust to it, matching the paper's robustness claims).
class OneHotEncoder {
 public:
  void fit(std::span<const std::string> values);
  bool is_fitted() const { return !categories_.empty(); }

  std::size_t num_categories() const { return categories_.size(); }
  const std::vector<std::string>& categories() const { return categories_; }

  std::vector<double> transform_one(const std::string& value) const;
  /// Index of a category, -1 if unseen.
  int category_index(const std::string& value) const;

  Json to_json() const;
  static OneHotEncoder from_json(const Json& j);

 private:
  std::vector<std::string> categories_;  // sorted, deduplicated
};

}  // namespace lts::ml
