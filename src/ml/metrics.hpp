// Regression and ranking quality metrics.
#pragma once

#include <span>
#include <vector>

namespace lts::ml {

double rmse(std::span<const double> truth, std::span<const double> pred);
double mae(std::span<const double> truth, std::span<const double> pred);

/// Coefficient of determination; can be negative for models worse than the
/// mean predictor.
double r2_score(std::span<const double> truth, std::span<const double> pred);

/// Mean absolute percentage error over entries with |truth| > eps.
double mape(std::span<const double> truth, std::span<const double> pred,
            double eps = 1e-9);

/// Top-k hit: does the index of the true minimum appear among the k
/// smallest predicted values? This is exactly the paper's Top-1/Top-2
/// node-selection accuracy criterion applied to one scheduling decision
/// (candidates = nodes, values = durations; smaller is better).
bool topk_hit_min(std::span<const double> truth, std::span<const double> pred,
                  int k);

/// Indices of `values` sorted ascending (stable).
std::vector<std::size_t> argsort_ascending(std::span<const double> values);

}  // namespace lts::ml
