// Random forest regressor: bootstrap-bagged CART trees with per-split
// feature subsampling. The paper's best-performing model family (Table 4).
#pragma once

#include <memory>

#include "ml/tree.hpp"

namespace lts {
class ThreadPool;
}

namespace lts::ml {

struct ForestParams {
  int n_estimators = 100;
  TreeParams tree;
  bool bootstrap = true;
  /// Features per split: 0 selects the regression heuristic max(1, p/3).
  int max_features = 0;
  std::uint64_t seed = 42;
  /// Compute the out-of-bag R^2 during fit (costs one pass per tree).
  bool compute_oob = false;

  static ForestParams from_json(const Json& j);
  Json to_json() const;
};

class RandomForestRegressor : public Regressor {
 public:
  explicit RandomForestRegressor(ForestParams params = {});

  void fit(const Dataset& data) override;
  /// Warm-start retrain: replaces the oldest half of the ensemble with
  /// trees grown on `data` (the newest window), keeping the rest, so the
  /// forest tracks drift while retaining smoothing from earlier windows.
  /// Each refit advances a generation counter that salts the per-tree Rng,
  /// making every generation's trees distinct yet deterministic. Falls back
  /// to fit() when unfitted or the feature width changed. The out-of-bag
  /// score is cleared (it would mix windows).
  void refit(const Dataset& data) override;
  double predict_row(std::span<const double> features) const override;
  void predict_batch(std::span<const double> x, std::size_t rows,
                     std::size_t cols, std::span<double> out) const override;
  /// Mean and standard deviation of the per-tree predictions: the classic
  /// bagging uncertainty estimate.
  Prediction predict_with_uncertainty(
      std::span<const double> features) const override;
  bool is_fitted() const override { return !trees_.empty(); }
  std::string name() const override { return "random_forest"; }
  Json to_json() const override;
  void from_json(const Json& j) override;
  std::vector<double> feature_importances() const override;

  const ForestParams& params() const { return params_; }
  std::size_t num_trees() const { return trees_.size(); }
  const DecisionTreeRegressor& tree(std::size_t i) const;

  /// Out-of-bag R^2; NaN unless compute_oob was set at fit time.
  double oob_r2() const { return oob_r2_; }

  /// Number of refit() calls since the last full fit() (serialized, so a
  /// reloaded model continues its deterministic retrain sequence).
  std::uint64_t refit_generation() const { return refit_generation_; }

  /// Trains on `pool` instead of the process-global one (nullptr restores
  /// the default). Each tree derives its Rng from (seed, tree index), so the
  /// fitted model is identical for any pool size — the determinism test
  /// exercises exactly this.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

 private:
  /// Grows `count` trees on `data` with Rngs derived from (seed, salt,
  /// tree index); the shared worker body of fit() and refit().
  std::vector<std::unique_ptr<DecisionTreeRegressor>> grow_trees(
      const Dataset& data, std::size_t count, std::uint64_t salt,
      std::vector<std::vector<std::size_t>>* bags);
  /// Re-flattens the whole ensemble (in tree order, with the tree count as
  /// the mean divisor); called wherever trees_ changes.
  void rebuild_flat();

  ForestParams params_;
  ThreadPool* pool_ = nullptr;
  std::vector<std::unique_ptr<DecisionTreeRegressor>> trees_;
  FlatEnsemble flat_;  // SoA mirror of trees_ for batched prediction
  std::size_t num_features_ = 0;
  std::uint64_t refit_generation_ = 0;
  double oob_r2_ = std::numeric_limits<double>::quiet_NaN();
};

}  // namespace lts::ml
