#include "ml/matrix.hpp"

#include <cmath>

namespace lts::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  Matrix m;
  for (const auto& r : rows) {
    m.push_row(std::span<const double>(r.data(), r.size()));
  }
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  LTS_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  LTS_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::span<const double> Matrix::row(std::size_t r) const {
  LTS_ASSERT(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<double> Matrix::row(std::size_t r) {
  LTS_ASSERT(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

void Matrix::push_row(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = values.size();
  }
  LTS_REQUIRE(values.size() == cols_, "Matrix: row width mismatch");
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

std::vector<double> solve_cholesky(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  LTS_REQUIRE(a.cols() == n, "solve_cholesky: matrix not square");
  LTS_REQUIRE(b.size() == n, "solve_cholesky: dimension mismatch");

  // Factor A = L L^T, storing L in the lower triangle.
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= a(j, k) * a(j, k);
    LTS_REQUIRE(diag > 0.0, "solve_cholesky: matrix not positive definite");
    const double ljj = std::sqrt(diag);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= a(i, k) * a(j, k);
      a(i, j) = v / ljj;
    }
  }
  // Forward solve L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= a(i, k) * b[k];
    b[i] = v / a(i, i);
  }
  // Back solve L^T x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double v = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= a(k, ii) * b[k];
    b[ii] = v / a(ii, ii);
  }
  return b;
}

}  // namespace lts::ml
