// Ridge / ordinary least squares linear regression — the paper's simple,
// interpretable baseline model.
//
// Features are standardized internally (zero mean, unit variance) before
// solving the regularized normal equations with a Cholesky factorization;
// this keeps the system well-conditioned when byte-scale features (memory)
// meet second-scale features (RTT).
#pragma once

#include "ml/model.hpp"

namespace lts::ml {

struct LinearParams {
  /// L2 penalty on standardized coefficients; 0 gives OLS (a tiny jitter is
  /// still added for numerical rank safety).
  double l2 = 1e-6;

  static LinearParams from_json(const Json& j);
  Json to_json() const;
};

class LinearRegression : public Regressor {
 public:
  explicit LinearRegression(LinearParams params = {});

  void fit(const Dataset& data) override;
  double predict_row(std::span<const double> features) const override;
  bool is_fitted() const override { return fitted_; }
  std::string name() const override { return "linear"; }
  Json to_json() const override;
  void from_json(const Json& j) override;
  std::vector<double> feature_importances() const override;

  /// Coefficients in original (unstandardized) feature space.
  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }

 private:
  LinearParams params_;
  bool fitted_ = false;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

}  // namespace lts::ml
