#include "ml/validate.hpp"

#include <cmath>
#include <numeric>

#include "ml/metrics.hpp"
#include "util/stats.hpp"

namespace lts::ml {

std::vector<std::pair<std::vector<std::size_t>, std::vector<std::size_t>>>
kfold_indices(std::size_t n, int k, Rng& rng) {
  LTS_REQUIRE(k >= 2, "kfold: k must be >= 2");
  LTS_REQUIRE(n >= static_cast<std::size_t>(k), "kfold: not enough samples");
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  std::vector<std::pair<std::vector<std::size_t>, std::vector<std::size_t>>>
      folds(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t fold = i % static_cast<std::size_t>(k);
    folds[fold].second.push_back(order[i]);
  }
  for (int f = 0; f < k; ++f) {
    auto& [train, test] = folds[static_cast<std::size_t>(f)];
    for (int g = 0; g < k; ++g) {
      if (g == f) continue;
      const auto& other = folds[static_cast<std::size_t>(g)].second;
      train.insert(train.end(), other.begin(), other.end());
    }
  }
  return folds;
}

CvResult cross_validate(
    const std::function<std::unique_ptr<Regressor>()>& factory,
    const Dataset& data, int k, std::uint64_t seed) {
  Rng rng(seed);
  const auto folds = kfold_indices(data.size(), k, rng);
  CvResult result;
  for (const auto& [train_idx, test_idx] : folds) {
    const Dataset train = data.select(train_idx);
    const Dataset test = data.select(test_idx);
    auto model = factory();
    model->fit(train);
    std::vector<double> preds;
    preds.reserve(test.size());
    for (std::size_t i = 0; i < test.size(); ++i) {
      preds.push_back(model->predict_row(test.row(i)));
    }
    result.fold_rmse.push_back(rmse(test.y(), preds));
    result.fold_r2.push_back(test.size() >= 2 ? r2_score(test.y(), preds)
                                              : 0.0);
  }
  result.mean_rmse = mean(result.fold_rmse);
  result.stddev_rmse = stddev(result.fold_rmse);
  result.mean_r2 = mean(result.fold_r2);
  return result;
}

GridSearchResult grid_search(
    const std::function<std::unique_ptr<Regressor>(const Json&)>& make_model,
    const std::vector<Json>& param_grid, const Dataset& data, int k,
    std::uint64_t seed) {
  LTS_REQUIRE(!param_grid.empty(), "grid_search: empty grid");
  GridSearchResult result;
  result.best_rmse = std::numeric_limits<double>::infinity();
  for (const auto& params : param_grid) {
    const auto cv = cross_validate(
        [&] { return make_model(params); }, data, k, seed);
    result.all.emplace_back(params, cv.mean_rmse);
    if (cv.mean_rmse < result.best_rmse) {
      result.best_rmse = cv.mean_rmse;
      result.best_params = params;
    }
  }
  return result;
}

}  // namespace lts::ml
