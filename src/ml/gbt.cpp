#include "ml/gbt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/metrics.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace lts::ml {

GbtParams GbtParams::from_json(const Json& j) {
  GbtParams p;
  if (j.contains("n_rounds")) p.n_rounds = j.at("n_rounds").as_int();
  if (j.contains("learning_rate")) {
    p.learning_rate = j.at("learning_rate").as_double();
  }
  if (j.contains("max_depth")) p.max_depth = j.at("max_depth").as_int();
  if (j.contains("reg_lambda")) p.reg_lambda = j.at("reg_lambda").as_double();
  if (j.contains("gamma")) p.gamma = j.at("gamma").as_double();
  if (j.contains("min_child_weight")) {
    p.min_child_weight = j.at("min_child_weight").as_double();
  }
  if (j.contains("subsample")) p.subsample = j.at("subsample").as_double();
  if (j.contains("colsample")) p.colsample = j.at("colsample").as_double();
  if (j.contains("early_stopping_rounds")) {
    p.early_stopping_rounds = j.at("early_stopping_rounds").as_int();
  }
  if (j.contains("validation_fraction")) {
    p.validation_fraction = j.at("validation_fraction").as_double();
  }
  if (j.contains("seed")) {
    p.seed = static_cast<std::uint64_t>(j.at("seed").as_double());
  }
  return p;
}

Json GbtParams::to_json() const {
  Json j = Json::object();
  j["n_rounds"] = n_rounds;
  j["learning_rate"] = learning_rate;
  j["max_depth"] = max_depth;
  j["reg_lambda"] = reg_lambda;
  j["gamma"] = gamma;
  j["min_child_weight"] = min_child_weight;
  j["subsample"] = subsample;
  j["colsample"] = colsample;
  j["early_stopping_rounds"] = early_stopping_rounds;
  j["validation_fraction"] = validation_fraction;
  j["seed"] = static_cast<double>(seed);
  return j;
}

GradientBoostedTrees::GradientBoostedTrees(GbtParams params)
    : params_(params) {
  LTS_REQUIRE(params_.n_rounds >= 1, "GbtParams: n_rounds must be >= 1");
  LTS_REQUIRE(params_.learning_rate > 0.0 && params_.learning_rate <= 1.0,
              "GbtParams: learning_rate must be in (0, 1]");
  LTS_REQUIRE(params_.max_depth >= 1, "GbtParams: max_depth must be >= 1");
  LTS_REQUIRE(params_.reg_lambda >= 0.0, "GbtParams: reg_lambda must be >= 0");
  LTS_REQUIRE(params_.subsample > 0.0 && params_.subsample <= 1.0,
              "GbtParams: subsample must be in (0, 1]");
  LTS_REQUIRE(params_.colsample > 0.0 && params_.colsample <= 1.0,
              "GbtParams: colsample must be in (0, 1]");
}

struct GradientBoostedTrees::TreeBuildContext {
  const Dataset* data = nullptr;
  const std::vector<double>* grad = nullptr;
  const std::vector<double>* hess = nullptr;
  std::span<const std::size_t> feature_pool;  // columns usable this round
  const GbtParams* params = nullptr;
  std::vector<double>* importance = nullptr;
  SortedColumns* cols = nullptr;  // this round's presorted columns
  std::vector<GbtSplit>* feature_best = nullptr;  // per-column result slots
};

int GradientBoostedTrees::build_node(TreeBuildContext& ctx,
                                     std::vector<std::size_t>& rows,
                                     std::size_t begin, std::size_t end,
                                     int depth, std::vector<GbtNode>& tree) {
  const auto& grad = *ctx.grad;
  const auto& hess = *ctx.hess;
  double g_total = 0.0, h_total = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    g_total += grad[rows[i]];
    h_total += hess[rows[i]];
  }
  const double lambda = ctx.params->reg_lambda;

  const int node_index = static_cast<int>(tree.size());
  tree.push_back(GbtNode{});
  // Leaf weight (may be overwritten by a split below); shrinkage applied
  // here so prediction is a plain sum over trees.
  tree[static_cast<std::size_t>(node_index)].value =
      -g_total / (h_total + lambda) * ctx.params->learning_rate;

  if (depth >= ctx.params->max_depth || end - begin < 2) return node_index;

  // Exact greedy split search over the round's feature pool. Each pool
  // column sweeps its presorted slice [begin, end) — the (x, row) sequence
  // the per-node gather + std::sort used to produce (colindex.hpp), so the
  // g/h prefixes accumulate in the same order and every gain and threshold
  // is bit-identical. Columns touch only their own result slot, which makes
  // the fan-out below both safe and deterministic.
  const std::size_t n = end - begin;
  const double parent_term = g_total * g_total / (h_total + lambda);
  std::vector<GbtSplit>& slots = *ctx.feature_best;
  slots.assign(ctx.cols->num_cols(), GbtSplit{});
  const auto scan_one = [&](std::size_t c) {
    const double* xs = ctx.cols->x_col(c) + begin;
    const std::uint32_t* rs = ctx.cols->row_col(c) + begin;
    GbtSplit cand;
    double g_left = 0.0, h_left = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      g_left += grad[rs[i]];
      h_left += hess[rs[i]];
      if (xs[i] == xs[i + 1]) continue;
      const double h_right = h_total - h_left;
      if (h_left < ctx.params->min_child_weight ||
          h_right < ctx.params->min_child_weight) {
        continue;
      }
      const double g_right = g_total - g_left;
      const double gain =
          0.5 * (g_left * g_left / (h_left + lambda) +
                 g_right * g_right / (h_right + lambda) - parent_term) -
          ctx.params->gamma;
      if (gain > cand.gain) {
        cand.gain = gain;
        cand.feature = static_cast<int>(ctx.feature_pool[c]);
        cand.column = static_cast<int>(c);
        // The midpoint of two adjacent doubles can round up onto the right
        // value; `x <= threshold` would then send every row left and the
        // partition assert below would fire. Snap to the left value, which
        // always separates (it is strictly below xs[i + 1]).
        double threshold = (xs[i] + xs[i + 1]) / 2.0;
        if (threshold >= xs[i + 1]) threshold = xs[i];
        cand.threshold = threshold;
      }
    }
    slots[c] = cand;
  };
  if (use_parallel_columns(n, ctx.cols->num_cols())) {
    // lts-lint: shared-guarded(partitioned: column c writes only feature_best[c]; columns and grad/hess are read-only)
    ThreadPool::global().parallel_for(ctx.cols->num_cols(),
                                      [&](std::size_t c) { scan_one(c); });
  } else {
    for (std::size_t c = 0; c < ctx.cols->num_cols(); ++c) scan_one(c);
  }

  // Reduce the per-column slots in pool order under the same strict `>`
  // the sequential loop applied: the earliest column attaining the maximal
  // gain wins in both formulations.
  GbtSplit best;
  for (const GbtSplit& cand : slots) {
    if (cand.gain > best.gain) best = cand;
  }
  if (best.feature < 0) return node_index;

  (*ctx.importance)[static_cast<std::size_t>(best.feature)] += best.gain;

  // Carry the sorted columns through the split first: repartition marks
  // every row's side off the split column's own values — bitwise the
  // doubles a matrix lookup would return — and the row partition below
  // reuses those marks instead of re-gathering from the matrix.
  const std::size_t col_mid = ctx.cols->repartition(
      begin, end, static_cast<std::size_t>(best.column), best.threshold);

  const auto mid_it = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(begin),
      rows.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t r) { return ctx.cols->went_left(r); });
  const std::size_t mid = static_cast<std::size_t>(mid_it - rows.begin());
  LTS_ASSERT(mid > begin && mid < end);
  LTS_ASSERT(col_mid == mid);

  const int left = build_node(ctx, rows, begin, mid, depth + 1, tree);
  const int right = build_node(ctx, rows, mid, end, depth + 1, tree);
  auto& node = tree[static_cast<std::size_t>(node_index)];
  node.feature = best.feature;
  node.threshold = best.threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

void GradientBoostedTrees::fit(const Dataset& data) {
  LTS_REQUIRE(data.size() >= 4, "GBT: need at least 4 samples");
  num_features_ = data.num_features();
  trees_.clear();
  importance_.assign(num_features_, 0.0);
  best_val_rmse_ = std::numeric_limits<double>::quiet_NaN();
  Rng rng(params_.seed);

  // Optional holdout for early stopping.
  std::vector<std::size_t> train_rows(data.size());
  std::iota(train_rows.begin(), train_rows.end(), std::size_t{0});
  std::vector<std::size_t> val_rows;
  if (params_.early_stopping_rounds > 0 &&
      params_.validation_fraction > 0.0) {
    rng.shuffle(train_rows);
    const auto n_val = static_cast<std::size_t>(
        std::max(1.0, params_.validation_fraction *
                          static_cast<double>(data.size())));
    if (n_val + 4 <= data.size()) {
      val_rows.assign(train_rows.end() - static_cast<std::ptrdiff_t>(n_val),
                      train_rows.end());
      train_rows.resize(train_rows.size() - n_val);
    }
  }

  base_score_ = mean(data.y());
  // Scratch-backed training state (capacity retained across fits) plus the
  // dataset-wide presorted columns every round's subsample filters from.
  FitScratch& s = scratch_;
  s.dataset_cols.build_by_value_row(data.x());
  s.pred.assign(data.size(), base_score_);
  s.grad.assign(data.size(), 0.0);
  s.hess.assign(data.size(), 1.0);

  double best_rmse = std::numeric_limits<double>::infinity();
  int rounds_since_best = 0;
  std::size_t best_n_trees = 0;

  for (int round = 0; round < params_.n_rounds; ++round) {
    boost_one_round(data, train_rows, s.pred, s.grad, s.hess, rng);

    if (!val_rows.empty()) {
      double acc = 0.0;
      for (const std::size_t i : val_rows) {
        const double d = s.pred[i] - data.target(i);
        acc += d * d;
      }
      const double val_rmse =
          std::sqrt(acc / static_cast<double>(val_rows.size()));
      if (val_rmse + 1e-12 < best_rmse) {
        best_rmse = val_rmse;
        best_n_trees = trees_.size();
        rounds_since_best = 0;
      } else if (++rounds_since_best >= params_.early_stopping_rounds) {
        break;
      }
    }
  }
  if (!val_rows.empty() && best_n_trees > 0) {
    trees_.resize(best_n_trees);  // roll back to the best iteration
    best_val_rmse_ = best_rmse;
  }
  fitted_ = true;
  rebuild_flat();
}

void GradientBoostedTrees::boost_one_round(
    const Dataset& data, const std::vector<std::size_t>& train_rows,
    std::vector<double>& pred, std::vector<double>& grad,
    std::vector<double>& hess, Rng& rng) {
  for (const std::size_t i : train_rows) {
    grad[i] = pred[i] - data.target(i);  // d/dp 1/2 (p - y)^2
  }
  // Row subsample for this round (scratch-backed, capacity retained).
  FitScratch& s = scratch_;
  std::vector<std::size_t>& rows = s.rows;
  rows.clear();
  rows.reserve(train_rows.size());
  if (params_.subsample < 1.0) {
    for (const std::size_t i : train_rows) {
      if (rng.uniform() < params_.subsample) rows.push_back(i);
    }
    if (rows.size() < 2) rows.assign(train_rows.begin(), train_rows.end());
  } else {
    rows.assign(train_rows.begin(), train_rows.end());
  }
  // Column subsample.
  TreeBuildContext ctx;
  ctx.data = &data;
  ctx.grad = &grad;
  ctx.hess = &hess;
  ctx.params = &params_;
  ctx.importance = &importance_;
  if (params_.colsample < 1.0) {
    const auto k = static_cast<std::size_t>(std::max(
        1.0, params_.colsample * static_cast<double>(num_features_)));
    rng.sample_without_replacement(num_features_, k, s.feature_pool);
  } else {
    s.feature_pool.resize(num_features_);
    std::iota(s.feature_pool.begin(), s.feature_pool.end(), std::size_t{0});
  }
  ctx.feature_pool = s.feature_pool;

  // Carve this round's presorted columns out of the dataset-wide index:
  // mark the sampled rows, then filter each pooled feature's column. A
  // subsequence of a sorted column is sorted by the same key, so the slice
  // matches a fresh gather + sort bit for bit.
  s.sampled.assign(data.size(), 0);
  for (const std::size_t r : rows) s.sampled[r] = 1;
  s.round_cols.assign_filtered(s.dataset_cols, s.sampled, rows.size(),
                               s.feature_pool);
  ctx.cols = &s.round_cols;
  ctx.feature_best = &s.feature_best;

  std::vector<GbtNode> tree;
  build_node(ctx, rows, 0, rows.size(), 0, tree);
  // Update all predictions (train + validation) with the new tree — one
  // batched flat traversal whose per-row addition is exactly the scalar
  // `pred[i] += tree_predict(...)` it replaces.
  s.round_flat.clear();
  if (s.round_flat.try_add_tree(std::span<const GbtNode>(tree))) {
    s.round_flat.accumulate(data.x().data().data(), data.size(),
                            num_features_, pred.data());
  } else {  // oversized tree: fall back to the scalar walk
    for (std::size_t i = 0; i < data.size(); ++i) {
      pred[i] += tree_predict(tree, data.row(i));
    }
  }
  trees_.push_back(std::move(tree));
}

void GradientBoostedTrees::refit(const Dataset& data) {
  const auto reset_cap =
      3 * static_cast<std::size_t>(std::max(1, params_.n_rounds));
  if (!fitted_ || data.num_features() != num_features_ ||
      trees_.size() >= reset_cap) {
    fit(data);
    return;
  }
  LTS_REQUIRE(data.size() >= 4, "GBT: need at least 4 samples");
  // Continued boosting against the current ensemble's residuals on the new
  // window. The Rng is salted by the ensemble size so consecutive refits
  // draw fresh subsamples yet stay deterministic for a given model state.
  Rng rng(params_.seed + 0x5bd1e995ULL * (trees_.size() + 1));
  std::vector<std::size_t> train_rows(data.size());
  std::iota(train_rows.begin(), train_rows.end(), std::size_t{0});
  // Seed predictions from the current ensemble (same batched kernel
  // Regressor::predict rides) into the reusable scratch buffer.
  FitScratch& s = scratch_;
  s.dataset_cols.build_by_value_row(data.x());
  s.pred.assign(data.size(), 0.0);
  predict_batch(data.x().data(), data.size(), num_features_, s.pred);
  s.grad.assign(data.size(), 0.0);
  s.hess.assign(data.size(), 1.0);

  const int extra = std::max(1, params_.n_rounds / 4);
  for (int round = 0; round < extra; ++round) {
    boost_one_round(data, train_rows, s.pred, s.grad, s.hess, rng);
  }
  best_val_rmse_ = std::numeric_limits<double>::quiet_NaN();
  rebuild_flat();
}

void GradientBoostedTrees::rebuild_flat() {
  flat_.clear();
  for (const auto& tree : trees_) {
    if (!flat_.try_add_tree(std::span<const GbtNode>(tree))) {
      flat_.clear();  // oversized tree: serve through the scalar walk
      return;
    }
  }
  // predict_row computes ((base + t0) + t1) + ...; seeding the accumulator
  // with base_score_ reproduces that addition order bit for bit.
  flat_.set_init(base_score_);
}

void GradientBoostedTrees::predict_batch(std::span<const double> x,
                                         std::size_t rows, std::size_t cols,
                                         std::span<double> out) const {
  LTS_REQUIRE(fitted_, "GBT: not fitted");
  LTS_REQUIRE(cols == num_features_, "GBT: feature width mismatch");
  LTS_REQUIRE(x.size() >= rows * cols,
              "GBT: feature block smaller than rows * cols");
  LTS_REQUIRE(out.size() >= rows, "GBT: output span too small");
  if (flat_.empty() && !trees_.empty()) {  // oversized tree bailed out
    Regressor::predict_batch(x, rows, cols, out);
    return;
  }
  flat_.predict(x.data(), rows, cols, out.data());
}

double GradientBoostedTrees::tree_predict(const std::vector<GbtNode>& tree,
                                          std::span<const double> features) {
  int idx = 0;
  while (!tree[static_cast<std::size_t>(idx)].is_leaf()) {
    const auto& node = tree[static_cast<std::size_t>(idx)];
    idx = features[static_cast<std::size_t>(node.feature)] <= node.threshold
              ? node.left
              : node.right;
  }
  return tree[static_cast<std::size_t>(idx)].value;
}

double GradientBoostedTrees::predict_row(
    std::span<const double> features) const {
  LTS_REQUIRE(fitted_, "GBT: not fitted");
  LTS_REQUIRE(features.size() == num_features_,
              "GBT: feature width mismatch");
  double y = base_score_;
  for (const auto& tree : trees_) {
    y += tree_predict(tree, features);
  }
  return y;
}

Json GradientBoostedTrees::to_json() const {
  Json j = Json::object();
  j["params"] = params_.to_json();
  j["fitted"] = fitted_;
  j["base_score"] = base_score_;
  j["num_features"] = num_features_;
  JsonArray trees;
  trees.reserve(trees_.size());
  for (const auto& tree : trees_) {
    JsonArray nodes;
    nodes.reserve(tree.size());
    for (const auto& node : tree) {
      JsonArray fields;
      fields.emplace_back(node.feature);
      fields.emplace_back(node.threshold);
      fields.emplace_back(node.left);
      fields.emplace_back(node.right);
      fields.emplace_back(node.value);
      nodes.emplace_back(std::move(fields));
    }
    trees.emplace_back(std::move(nodes));
  }
  j["trees"] = Json(std::move(trees));
  j["importance"] = Json::from_doubles(importance_);
  return j;
}

void GradientBoostedTrees::from_json(const Json& j) {
  params_ = GbtParams::from_json(j.at("params"));
  fitted_ = j.at("fitted").as_bool();
  base_score_ = j.at("base_score").as_double();
  num_features_ = static_cast<std::size_t>(j.at("num_features").as_double());
  trees_.clear();
  for (const auto& tree_json : j.at("trees").as_array()) {
    std::vector<GbtNode> tree;
    for (const auto& entry : tree_json.as_array()) {
      const auto& f = entry.as_array();
      LTS_REQUIRE(f.size() == 5, "GBT: malformed node");
      GbtNode node;
      node.feature = f[0].as_int();
      node.threshold = f[1].as_double();
      node.left = f[2].as_int();
      node.right = f[3].as_int();
      node.value = f[4].as_double();
      tree.push_back(node);
    }
    trees_.push_back(std::move(tree));
  }
  importance_ = j.at("importance").to_doubles();
  rebuild_flat();
}

std::vector<double> GradientBoostedTrees::feature_importances() const {
  std::vector<double> imp = importance_;
  const double total = std::accumulate(imp.begin(), imp.end(), 0.0);
  if (total > 0.0) {
    for (auto& v : imp) v /= total;
  }
  return imp;
}

}  // namespace lts::ml
