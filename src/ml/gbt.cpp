#include "ml/gbt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/metrics.hpp"
#include "util/stats.hpp"

namespace lts::ml {

GbtParams GbtParams::from_json(const Json& j) {
  GbtParams p;
  if (j.contains("n_rounds")) p.n_rounds = j.at("n_rounds").as_int();
  if (j.contains("learning_rate")) {
    p.learning_rate = j.at("learning_rate").as_double();
  }
  if (j.contains("max_depth")) p.max_depth = j.at("max_depth").as_int();
  if (j.contains("reg_lambda")) p.reg_lambda = j.at("reg_lambda").as_double();
  if (j.contains("gamma")) p.gamma = j.at("gamma").as_double();
  if (j.contains("min_child_weight")) {
    p.min_child_weight = j.at("min_child_weight").as_double();
  }
  if (j.contains("subsample")) p.subsample = j.at("subsample").as_double();
  if (j.contains("colsample")) p.colsample = j.at("colsample").as_double();
  if (j.contains("early_stopping_rounds")) {
    p.early_stopping_rounds = j.at("early_stopping_rounds").as_int();
  }
  if (j.contains("validation_fraction")) {
    p.validation_fraction = j.at("validation_fraction").as_double();
  }
  if (j.contains("seed")) {
    p.seed = static_cast<std::uint64_t>(j.at("seed").as_double());
  }
  return p;
}

Json GbtParams::to_json() const {
  Json j = Json::object();
  j["n_rounds"] = n_rounds;
  j["learning_rate"] = learning_rate;
  j["max_depth"] = max_depth;
  j["reg_lambda"] = reg_lambda;
  j["gamma"] = gamma;
  j["min_child_weight"] = min_child_weight;
  j["subsample"] = subsample;
  j["colsample"] = colsample;
  j["early_stopping_rounds"] = early_stopping_rounds;
  j["validation_fraction"] = validation_fraction;
  j["seed"] = static_cast<double>(seed);
  return j;
}

GradientBoostedTrees::GradientBoostedTrees(GbtParams params)
    : params_(params) {
  LTS_REQUIRE(params_.n_rounds >= 1, "GbtParams: n_rounds must be >= 1");
  LTS_REQUIRE(params_.learning_rate > 0.0 && params_.learning_rate <= 1.0,
              "GbtParams: learning_rate must be in (0, 1]");
  LTS_REQUIRE(params_.max_depth >= 1, "GbtParams: max_depth must be >= 1");
  LTS_REQUIRE(params_.reg_lambda >= 0.0, "GbtParams: reg_lambda must be >= 0");
  LTS_REQUIRE(params_.subsample > 0.0 && params_.subsample <= 1.0,
              "GbtParams: subsample must be in (0, 1]");
  LTS_REQUIRE(params_.colsample > 0.0 && params_.colsample <= 1.0,
              "GbtParams: colsample must be in (0, 1]");
}

struct GradientBoostedTrees::TreeBuildContext {
  const Dataset* data = nullptr;
  const std::vector<double>* grad = nullptr;
  const std::vector<double>* hess = nullptr;
  std::vector<std::size_t> feature_pool;  // columns usable this round
  const GbtParams* params = nullptr;
  std::vector<double>* importance = nullptr;
};

int GradientBoostedTrees::build_node(TreeBuildContext& ctx,
                                     std::vector<std::size_t>& rows,
                                     std::size_t begin, std::size_t end,
                                     int depth, std::vector<GbtNode>& tree) {
  const auto& grad = *ctx.grad;
  const auto& hess = *ctx.hess;
  double g_total = 0.0, h_total = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    g_total += grad[rows[i]];
    h_total += hess[rows[i]];
  }
  const double lambda = ctx.params->reg_lambda;

  const int node_index = static_cast<int>(tree.size());
  tree.push_back(GbtNode{});
  // Leaf weight (may be overwritten by a split below); shrinkage applied
  // here so prediction is a plain sum over trees.
  tree[static_cast<std::size_t>(node_index)].value =
      -g_total / (h_total + lambda) * ctx.params->learning_rate;

  if (depth >= ctx.params->max_depth || end - begin < 2) return node_index;

  // Exact greedy split search over the round's feature pool.
  double best_gain = 0.0;
  int best_feature = -1;
  double best_threshold = 0.0;
  const double parent_term = g_total * g_total / (h_total + lambda);
  std::vector<std::pair<double, std::size_t>> vals;  // (x, row)
  vals.reserve(end - begin);
  for (const std::size_t f : ctx.feature_pool) {
    vals.clear();
    for (std::size_t i = begin; i < end; ++i) {
      vals.emplace_back(ctx.data->x()(rows[i], f), rows[i]);
    }
    std::sort(vals.begin(), vals.end());
    double g_left = 0.0, h_left = 0.0;
    for (std::size_t i = 0; i + 1 < vals.size(); ++i) {
      g_left += grad[vals[i].second];
      h_left += hess[vals[i].second];
      if (vals[i].first == vals[i + 1].first) continue;
      const double h_right = h_total - h_left;
      if (h_left < ctx.params->min_child_weight ||
          h_right < ctx.params->min_child_weight) {
        continue;
      }
      const double g_right = g_total - g_left;
      const double gain =
          0.5 * (g_left * g_left / (h_left + lambda) +
                 g_right * g_right / (h_right + lambda) - parent_term) -
          ctx.params->gamma;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = (vals[i].first + vals[i + 1].first) / 2.0;
      }
    }
  }
  if (best_feature < 0) return node_index;

  (*ctx.importance)[static_cast<std::size_t>(best_feature)] += best_gain;

  const auto mid_it = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(begin),
      rows.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t r) {
        return ctx.data->x()(r, static_cast<std::size_t>(best_feature)) <=
               best_threshold;
      });
  const std::size_t mid = static_cast<std::size_t>(mid_it - rows.begin());
  LTS_ASSERT(mid > begin && mid < end);

  const int left = build_node(ctx, rows, begin, mid, depth + 1, tree);
  const int right = build_node(ctx, rows, mid, end, depth + 1, tree);
  auto& node = tree[static_cast<std::size_t>(node_index)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

void GradientBoostedTrees::fit(const Dataset& data) {
  LTS_REQUIRE(data.size() >= 4, "GBT: need at least 4 samples");
  num_features_ = data.num_features();
  trees_.clear();
  importance_.assign(num_features_, 0.0);
  best_val_rmse_ = std::numeric_limits<double>::quiet_NaN();
  Rng rng(params_.seed);

  // Optional holdout for early stopping.
  std::vector<std::size_t> train_rows(data.size());
  std::iota(train_rows.begin(), train_rows.end(), std::size_t{0});
  std::vector<std::size_t> val_rows;
  if (params_.early_stopping_rounds > 0 &&
      params_.validation_fraction > 0.0) {
    rng.shuffle(train_rows);
    const auto n_val = static_cast<std::size_t>(
        std::max(1.0, params_.validation_fraction *
                          static_cast<double>(data.size())));
    if (n_val + 4 <= data.size()) {
      val_rows.assign(train_rows.end() - static_cast<std::ptrdiff_t>(n_val),
                      train_rows.end());
      train_rows.resize(train_rows.size() - n_val);
    }
  }

  base_score_ = mean(data.y());
  std::vector<double> pred(data.size(), base_score_);
  std::vector<double> grad(data.size(), 0.0);
  std::vector<double> hess(data.size(), 1.0);

  double best_rmse = std::numeric_limits<double>::infinity();
  int rounds_since_best = 0;
  std::size_t best_n_trees = 0;

  for (int round = 0; round < params_.n_rounds; ++round) {
    boost_one_round(data, train_rows, pred, grad, hess, rng);

    if (!val_rows.empty()) {
      double acc = 0.0;
      for (const std::size_t i : val_rows) {
        const double d = pred[i] - data.target(i);
        acc += d * d;
      }
      const double val_rmse =
          std::sqrt(acc / static_cast<double>(val_rows.size()));
      if (val_rmse + 1e-12 < best_rmse) {
        best_rmse = val_rmse;
        best_n_trees = trees_.size();
        rounds_since_best = 0;
      } else if (++rounds_since_best >= params_.early_stopping_rounds) {
        break;
      }
    }
  }
  if (!val_rows.empty() && best_n_trees > 0) {
    trees_.resize(best_n_trees);  // roll back to the best iteration
    best_val_rmse_ = best_rmse;
  }
  fitted_ = true;
  rebuild_flat();
}

void GradientBoostedTrees::boost_one_round(
    const Dataset& data, const std::vector<std::size_t>& train_rows,
    std::vector<double>& pred, std::vector<double>& grad,
    std::vector<double>& hess, Rng& rng) {
  for (const std::size_t i : train_rows) {
    grad[i] = pred[i] - data.target(i);  // d/dp 1/2 (p - y)^2
  }
  // Row subsample for this round.
  std::vector<std::size_t> rows;
  if (params_.subsample < 1.0) {
    for (const std::size_t i : train_rows) {
      if (rng.uniform() < params_.subsample) rows.push_back(i);
    }
    if (rows.size() < 2) rows = train_rows;
  } else {
    rows = train_rows;
  }
  // Column subsample.
  TreeBuildContext ctx;
  ctx.data = &data;
  ctx.grad = &grad;
  ctx.hess = &hess;
  ctx.params = &params_;
  ctx.importance = &importance_;
  if (params_.colsample < 1.0) {
    const auto k = static_cast<std::size_t>(std::max(
        1.0, params_.colsample * static_cast<double>(num_features_)));
    ctx.feature_pool = rng.sample_without_replacement(num_features_, k);
  } else {
    ctx.feature_pool.resize(num_features_);
    std::iota(ctx.feature_pool.begin(), ctx.feature_pool.end(),
              std::size_t{0});
  }

  std::vector<GbtNode> tree;
  build_node(ctx, rows, 0, rows.size(), 0, tree);
  // Update all predictions (train + validation) with the new tree.
  for (std::size_t i = 0; i < data.size(); ++i) {
    pred[i] += tree_predict(tree, data.row(i));
  }
  trees_.push_back(std::move(tree));
}

void GradientBoostedTrees::refit(const Dataset& data) {
  const auto reset_cap =
      3 * static_cast<std::size_t>(std::max(1, params_.n_rounds));
  if (!fitted_ || data.num_features() != num_features_ ||
      trees_.size() >= reset_cap) {
    fit(data);
    return;
  }
  LTS_REQUIRE(data.size() >= 4, "GBT: need at least 4 samples");
  // Continued boosting against the current ensemble's residuals on the new
  // window. The Rng is salted by the ensemble size so consecutive refits
  // draw fresh subsamples yet stay deterministic for a given model state.
  Rng rng(params_.seed + 0x5bd1e995ULL * (trees_.size() + 1));
  std::vector<std::size_t> train_rows(data.size());
  std::iota(train_rows.begin(), train_rows.end(), std::size_t{0});
  std::vector<double> pred = predict(data.x());
  std::vector<double> grad(data.size(), 0.0);
  std::vector<double> hess(data.size(), 1.0);

  const int extra = std::max(1, params_.n_rounds / 4);
  for (int round = 0; round < extra; ++round) {
    boost_one_round(data, train_rows, pred, grad, hess, rng);
  }
  best_val_rmse_ = std::numeric_limits<double>::quiet_NaN();
  rebuild_flat();
}

void GradientBoostedTrees::rebuild_flat() {
  flat_.clear();
  for (const auto& tree : trees_) {
    if (!flat_.try_add_tree(std::span<const GbtNode>(tree))) {
      flat_.clear();  // oversized tree: serve through the scalar walk
      return;
    }
  }
  // predict_row computes ((base + t0) + t1) + ...; seeding the accumulator
  // with base_score_ reproduces that addition order bit for bit.
  flat_.set_init(base_score_);
}

void GradientBoostedTrees::predict_batch(std::span<const double> x,
                                         std::size_t rows, std::size_t cols,
                                         std::span<double> out) const {
  LTS_REQUIRE(fitted_, "GBT: not fitted");
  LTS_REQUIRE(cols == num_features_, "GBT: feature width mismatch");
  LTS_REQUIRE(x.size() >= rows * cols,
              "GBT: feature block smaller than rows * cols");
  LTS_REQUIRE(out.size() >= rows, "GBT: output span too small");
  if (flat_.empty() && !trees_.empty()) {  // oversized tree bailed out
    Regressor::predict_batch(x, rows, cols, out);
    return;
  }
  flat_.predict(x.data(), rows, cols, out.data());
}

double GradientBoostedTrees::tree_predict(const std::vector<GbtNode>& tree,
                                          std::span<const double> features) {
  int idx = 0;
  while (!tree[static_cast<std::size_t>(idx)].is_leaf()) {
    const auto& node = tree[static_cast<std::size_t>(idx)];
    idx = features[static_cast<std::size_t>(node.feature)] <= node.threshold
              ? node.left
              : node.right;
  }
  return tree[static_cast<std::size_t>(idx)].value;
}

double GradientBoostedTrees::predict_row(
    std::span<const double> features) const {
  LTS_REQUIRE(fitted_, "GBT: not fitted");
  LTS_REQUIRE(features.size() == num_features_,
              "GBT: feature width mismatch");
  double y = base_score_;
  for (const auto& tree : trees_) {
    y += tree_predict(tree, features);
  }
  return y;
}

Json GradientBoostedTrees::to_json() const {
  Json j = Json::object();
  j["params"] = params_.to_json();
  j["fitted"] = fitted_;
  j["base_score"] = base_score_;
  j["num_features"] = num_features_;
  JsonArray trees;
  trees.reserve(trees_.size());
  for (const auto& tree : trees_) {
    JsonArray nodes;
    nodes.reserve(tree.size());
    for (const auto& node : tree) {
      JsonArray fields;
      fields.emplace_back(node.feature);
      fields.emplace_back(node.threshold);
      fields.emplace_back(node.left);
      fields.emplace_back(node.right);
      fields.emplace_back(node.value);
      nodes.emplace_back(std::move(fields));
    }
    trees.emplace_back(std::move(nodes));
  }
  j["trees"] = Json(std::move(trees));
  j["importance"] = Json::from_doubles(importance_);
  return j;
}

void GradientBoostedTrees::from_json(const Json& j) {
  params_ = GbtParams::from_json(j.at("params"));
  fitted_ = j.at("fitted").as_bool();
  base_score_ = j.at("base_score").as_double();
  num_features_ = static_cast<std::size_t>(j.at("num_features").as_double());
  trees_.clear();
  for (const auto& tree_json : j.at("trees").as_array()) {
    std::vector<GbtNode> tree;
    for (const auto& entry : tree_json.as_array()) {
      const auto& f = entry.as_array();
      LTS_REQUIRE(f.size() == 5, "GBT: malformed node");
      GbtNode node;
      node.feature = f[0].as_int();
      node.threshold = f[1].as_double();
      node.left = f[2].as_int();
      node.right = f[3].as_int();
      node.value = f[4].as_double();
      tree.push_back(node);
    }
    trees_.push_back(std::move(tree));
  }
  importance_ = j.at("importance").to_doubles();
  rebuild_flat();
}

std::vector<double> GradientBoostedTrees::feature_importances() const {
  std::vector<double> imp = importance_;
  const double total = std::accumulate(imp.begin(), imp.end(), 0.0);
  if (total > 0.0) {
    for (auto& v : imp) v /= total;
  }
  return imp;
}

}  // namespace lts::ml
