// Model validation utilities: K-fold cross-validation and a small grid
// search, used by the offline Trainer to pick hyperparameters and by the
// EXPERIMENTS.md methodology to report honest generalization numbers.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/model.hpp"

namespace lts::ml {

/// Deterministic K-fold split: returns, per fold, (train indices, test
/// indices) covering the dataset exactly once on the test side.
std::vector<std::pair<std::vector<std::size_t>, std::vector<std::size_t>>>
kfold_indices(std::size_t n, int k, Rng& rng);

struct CvResult {
  std::vector<double> fold_rmse;
  double mean_rmse = 0.0;
  double stddev_rmse = 0.0;
  std::vector<double> fold_r2;
  double mean_r2 = 0.0;
};

/// Runs K-fold CV with a fresh model from `factory` per fold.
CvResult cross_validate(
    const std::function<std::unique_ptr<Regressor>()>& factory,
    const Dataset& data, int k, std::uint64_t seed = 1);

struct GridSearchResult {
  Json best_params;
  double best_rmse = 0.0;
  std::vector<std::pair<Json, double>> all;  // (params, mean rmse)
};

/// Evaluates every parameter set with K-fold CV; picks the lowest RMSE.
/// `make_model` builds a model from one parameter object.
GridSearchResult grid_search(
    const std::function<std::unique_ptr<Regressor>(const Json&)>& make_model,
    const std::vector<Json>& param_grid, const Dataset& data, int k,
    std::uint64_t seed = 1);

}  // namespace lts::ml
