#include "ml/linear.hpp"

#include <cmath>

#include "ml/matrix.hpp"
#include "util/stats.hpp"

namespace lts::ml {

LinearParams LinearParams::from_json(const Json& j) {
  LinearParams p;
  if (j.contains("l2")) p.l2 = j.at("l2").as_double();
  return p;
}

Json LinearParams::to_json() const {
  Json j = Json::object();
  j["l2"] = l2;
  return j;
}

LinearRegression::LinearRegression(LinearParams params) : params_(params) {
  LTS_REQUIRE(params_.l2 >= 0.0, "LinearRegression: l2 must be >= 0");
}

void LinearRegression::fit(const Dataset& data) {
  LTS_REQUIRE(data.size() >= 2, "LinearRegression: need at least 2 samples");
  const std::size_t n = data.size();
  const std::size_t p = data.num_features();

  // Standardize features; constant columns get weight zero via std=1 trick.
  std::vector<double> mu(p, 0.0), sigma(p, 0.0);
  for (std::size_t j = 0; j < p; ++j) {
    RunningStats stats;
    for (std::size_t i = 0; i < n; ++i) stats.add(data.x()(i, j));
    mu[j] = stats.mean();
    sigma[j] = stats.stddev() > 1e-12 ? stats.stddev() : 1.0;
  }
  const double y_mean = mean(data.y());

  // Normal equations on standardized, centered data: (Z^T Z + lambda I) w =
  // Z^T (y - y_mean).
  Matrix a(p, p, 0.0);
  std::vector<double> b(p, 0.0);
  std::vector<double> z(p, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = data.row(i);
    for (std::size_t j = 0; j < p; ++j) z[j] = (row[j] - mu[j]) / sigma[j];
    const double yc = data.target(i) - y_mean;
    for (std::size_t j = 0; j < p; ++j) {
      b[j] += z[j] * yc;
      for (std::size_t k = j; k < p; ++k) a(j, k) += z[j] * z[k];
    }
  }
  const double ridge =
      std::max(params_.l2, 1e-10) * static_cast<double>(n);
  for (std::size_t j = 0; j < p; ++j) {
    a(j, j) += ridge;
    for (std::size_t k = 0; k < j; ++k) a(j, k) = a(k, j);
  }
  const std::vector<double> w = solve_cholesky(std::move(a), std::move(b));

  // Fold standardization back into original-space coefficients.
  coef_.assign(p, 0.0);
  intercept_ = y_mean;
  for (std::size_t j = 0; j < p; ++j) {
    coef_[j] = w[j] / sigma[j];
    intercept_ -= coef_[j] * mu[j];
  }
  fitted_ = true;
}

double LinearRegression::predict_row(std::span<const double> features) const {
  LTS_REQUIRE(fitted_, "LinearRegression: not fitted");
  LTS_REQUIRE(features.size() == coef_.size(),
              "LinearRegression: feature width mismatch");
  double y = intercept_;
  for (std::size_t j = 0; j < coef_.size(); ++j) {
    y += coef_[j] * features[j];
  }
  return y;
}

Json LinearRegression::to_json() const {
  Json j = Json::object();
  j["params"] = params_.to_json();
  j["fitted"] = fitted_;
  if (fitted_) {
    j["coef"] = Json::from_doubles(coef_);
    j["intercept"] = intercept_;
  }
  return j;
}

void LinearRegression::from_json(const Json& j) {
  params_ = LinearParams::from_json(j.at("params"));
  fitted_ = j.at("fitted").as_bool();
  if (fitted_) {
    coef_ = j.at("coef").to_doubles();
    intercept_ = j.at("intercept").as_double();
  }
}

std::vector<double> LinearRegression::feature_importances() const {
  if (!fitted_) return {};
  // |coefficient| share — crude but standard for linear baselines.
  std::vector<double> imp(coef_.size(), 0.0);
  double total = 0.0;
  for (std::size_t j = 0; j < coef_.size(); ++j) {
    imp[j] = std::abs(coef_[j]);
    total += imp[j];
  }
  if (total > 0.0) {
    for (auto& v : imp) v /= total;
  }
  return imp;
}

}  // namespace lts::ml
