// Gradient-boosted decision trees in the XGBoost formulation.
//
// Squared-error objective with second-order (Newton) boosting: per round,
// gradients g_i = pred_i - y_i and hessians h_i = 1 are fed to a regression
// tree grown by exact greedy split search maximizing the regularized gain
//
//   gain = 1/2 [ G_L^2/(H_L+lambda) + G_R^2/(H_R+lambda)
//                - (G_L+G_R)^2/(H_L+H_R+lambda) ] - gamma
//
// with leaf weight -G/(H+lambda), shrunk by the learning rate. Row and
// column subsampling plus early stopping on a validation split match the
// XGBoost knobs the paper tuned.
#pragma once

#include <memory>

#include "ml/colindex.hpp"
#include "ml/flat.hpp"
#include "ml/model.hpp"
#include "util/rng.hpp"

namespace lts::ml {

struct GbtParams {
  int n_rounds = 300;
  double learning_rate = 0.08;
  int max_depth = 4;
  double reg_lambda = 1.0;        // L2 on leaf weights
  double gamma = 0.0;             // min gain to split
  double min_child_weight = 1.0;  // min hessian sum per child
  double subsample = 1.0;         // row fraction per round
  double colsample = 1.0;         // feature fraction per round
  /// > 0 holds out validation_fraction of rows and stops after this many
  /// rounds without RMSE improvement.
  int early_stopping_rounds = 0;
  double validation_fraction = 0.15;
  std::uint64_t seed = 42;

  static GbtParams from_json(const Json& j);
  Json to_json() const;
};

/// One boosted tree: flat node array (feature < 0 marks a leaf whose
/// `value` is the shrunken leaf weight).
struct GbtNode {
  int feature = -1;
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  double value = 0.0;

  bool is_leaf() const { return feature < 0; }
};

class GradientBoostedTrees : public Regressor {
 public:
  explicit GradientBoostedTrees(GbtParams params = {});

  void fit(const Dataset& data) override;
  /// Warm-start retrain: continues boosting against the current ensemble's
  /// residuals on the new window for n_rounds/4 extra rounds (no early
  /// stopping — retraining windows are small). Falls back to a full fit()
  /// when unfitted, the feature width changed, or the ensemble has grown
  /// past 3x n_rounds (bounding memory and predict cost under a long
  /// retraining stream). Feature importances keep accumulating; the stored
  /// validation RMSE is cleared (it described an older window).
  void refit(const Dataset& data) override;
  double predict_row(std::span<const double> features) const override;
  void predict_batch(std::span<const double> x, std::size_t rows,
                     std::size_t cols, std::span<double> out) const override;
  bool is_fitted() const override { return fitted_; }
  std::string name() const override { return "xgboost"; }
  Json to_json() const override;
  void from_json(const Json& j) override;
  std::vector<double> feature_importances() const override;

  const GbtParams& params() const { return params_; }
  std::size_t num_trees() const { return trees_.size(); }
  double base_score() const { return base_score_; }
  /// Best validation RMSE when early stopping was active, else NaN.
  double best_validation_rmse() const { return best_val_rmse_; }

 private:
  struct TreeBuildContext;

  /// Per-candidate-column split scan result (dataset feature id, not pool
  /// position; `column` is the round-column index for repartitioning).
  struct GbtSplit {
    int feature = -1;
    int column = -1;
    double threshold = 0.0;
    double gain = 0.0;
  };

  // Reusable training scratch, retained across rounds and refits (lint
  // rule R8): the dataset-wide presorted columns, the per-round filtered
  // columns, and every per-round vector that used to be allocated fresh.
  struct FitScratch {
    SortedColumns dataset_cols;  // all rows x all features, by (value, row)
    SortedColumns round_cols;    // this round's rows x pooled features
    std::vector<unsigned char> sampled;  // dataset-row mask for the round
    std::vector<std::size_t> rows;
    std::vector<std::size_t> feature_pool;
    std::vector<GbtSplit> feature_best;  // per-column scan slots
    std::vector<double> pred;
    std::vector<double> grad;
    std::vector<double> hess;
    FlatEnsemble round_flat;  // single-tree batched prediction update
  };

  int build_node(TreeBuildContext& ctx, std::vector<std::size_t>& rows,
                 std::size_t begin, std::size_t end, int depth,
                 std::vector<GbtNode>& tree);
  /// One boosting round: gradient refresh over train_rows, row/column
  /// subsample draws from `rng`, grow a tree, update `pred` for every row,
  /// append the tree. Shared by fit() and refit().
  void boost_one_round(const Dataset& data,
                       const std::vector<std::size_t>& train_rows,
                       std::vector<double>& pred, std::vector<double>& grad,
                       std::vector<double>& hess, Rng& rng);
  static double tree_predict(const std::vector<GbtNode>& tree,
                             std::span<const double> features);
  /// Re-flattens the ensemble (tree order, base_score as the accumulator
  /// seed); called wherever trees_ or base_score_ changes.
  void rebuild_flat();

  GbtParams params_;
  bool fitted_ = false;
  double base_score_ = 0.0;
  std::size_t num_features_ = 0;
  std::vector<std::vector<GbtNode>> trees_;
  FlatEnsemble flat_;  // SoA mirror of trees_ for batched prediction
  std::vector<double> importance_;  // raw gain per feature
  double best_val_rmse_ = std::numeric_limits<double>::quiet_NaN();
  FitScratch scratch_;
};

}  // namespace lts::ml
