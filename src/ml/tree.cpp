#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/thread_pool.hpp"

namespace lts::ml {

TreeParams TreeParams::from_json(const Json& j) {
  TreeParams p;
  if (j.contains("max_depth")) p.max_depth = j.at("max_depth").as_int();
  if (j.contains("min_samples_split")) {
    p.min_samples_split = j.at("min_samples_split").as_int();
  }
  if (j.contains("min_samples_leaf")) {
    p.min_samples_leaf = j.at("min_samples_leaf").as_int();
  }
  if (j.contains("max_features")) {
    p.max_features = j.at("max_features").as_int();
  }
  if (j.contains("min_impurity_decrease")) {
    p.min_impurity_decrease = j.at("min_impurity_decrease").as_double();
  }
  return p;
}

Json TreeParams::to_json() const {
  Json j = Json::object();
  j["max_depth"] = max_depth;
  j["min_samples_split"] = min_samples_split;
  j["min_samples_leaf"] = min_samples_leaf;
  j["max_features"] = max_features;
  j["min_impurity_decrease"] = min_impurity_decrease;
  return j;
}

DecisionTreeRegressor::DecisionTreeRegressor(TreeParams params,
                                             std::uint64_t seed)
    : params_(params), seed_(seed) {
  LTS_REQUIRE(params_.max_depth >= 1, "TreeParams: max_depth must be >= 1");
  LTS_REQUIRE(params_.min_samples_leaf >= 1,
              "TreeParams: min_samples_leaf must be >= 1");
  LTS_REQUIRE(params_.min_samples_split >= 2,
              "TreeParams: min_samples_split must be >= 2");
}

void DecisionTreeRegressor::fit(const Dataset& data) {
  std::vector<std::size_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  Rng rng(seed_);
  fit_on(data, rows, rng);
}

void DecisionTreeRegressor::fit_on(const Dataset& data,
                                   std::span<const std::size_t> rows,
                                   Rng& rng,
                                   const SortedColumns* presorted) {
  LTS_REQUIRE(!rows.empty(), "DecisionTree: empty training set");
  num_features_ = data.num_features();
  nodes_.clear();
  importance_.assign(num_features_, 0.0);
  std::vector<std::size_t> working(rows.begin(), rows.end());
  SplitScratch scratch;
  // Sort every feature column once; build() then keeps each column's
  // segment aligned with the row partition, so no node ever re-sorts.
  // With a window-level presort on hand (forest fits share one across all
  // bags), even that sort disappears: the bag's columns stream out of the
  // presorted order by multiplicity, and duplicates of a row are fully
  // tied so the result is byte-for-byte the sorted bag.
  if (presorted != nullptr && presorted->size() == data.size() &&
      presorted->num_cols() == num_features_) {
    scratch.mult.assign(data.size(), 0);
    for (const std::size_t r : working) ++scratch.mult[r];
    scratch.columns.assign_bootstrap(*presorted, scratch.mult,
                                     working.size());
  } else {
    scratch.columns.build_by_value_target(data.x(), data.y(), working);
  }
  build(data, working, 0, working.size(), 0, rng, scratch);
  rebuild_flat();
}

void DecisionTreeRegressor::rebuild_flat() {
  flat_.clear();
  // An unfitted tree round-tripped through JSON has no nodes; leave the
  // flat form empty rather than register a rootless tree. A tree too large
  // to flatten (beyond any default depth cap) also stays empty —
  // predict_batch then falls back to the scalar walk.
  if (nodes_.empty()) return;
  if (!flat_.try_add_tree(std::span<const TreeNode>(nodes_))) flat_.clear();
}

int DecisionTreeRegressor::build(const Dataset& data,
                                 std::vector<std::size_t>& rows,
                                 std::size_t begin, std::size_t end,
                                 int depth, Rng& rng, SplitScratch& scratch) {
  const std::size_t n = end - begin;
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += data.target(rows[i]);
  const double node_mean = sum / static_cast<double>(n);

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(TreeNode{});
  nodes_[static_cast<std::size_t>(node_index)].value = node_mean;
  nodes_[static_cast<std::size_t>(node_index)].n_samples =
      static_cast<int>(n);

  const bool can_split =
      depth < params_.max_depth &&
      n >= static_cast<std::size_t>(params_.min_samples_split) &&
      n >= 2 * static_cast<std::size_t>(params_.min_samples_leaf);
  if (!can_split) return node_index;

  const auto split = best_split(
      data, std::span<const std::size_t>(rows.data() + begin, n), begin, end,
      sum, rng, scratch);
  if (!split.has_value()) return node_index;

  // Carry the sorted columns through the split first: repartition marks
  // every occurrence's side off the split column's own values — bitwise
  // the doubles a matrix lookup would return — and the row partition below
  // reuses those marks instead of re-gathering from the matrix.
  const std::size_t col_mid = scratch.columns.repartition(
      begin, end, static_cast<std::size_t>(split->feature),
      split->threshold);

  // Partition rows in place around the threshold.
  const auto mid_it = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(begin),
      rows.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t r) { return scratch.columns.went_left(r); });
  const std::size_t mid =
      static_cast<std::size_t>(mid_it - rows.begin());
  LTS_ASSERT(mid > begin && mid < end);
  LTS_ASSERT(col_mid == mid);

  importance_[static_cast<std::size_t>(split->feature)] += split->gain;

  const int left = build(data, rows, begin, mid, depth + 1, rng, scratch);
  const int right = build(data, rows, mid, end, depth + 1, rng, scratch);
  auto& node = nodes_[static_cast<std::size_t>(node_index)];
  node.feature = split->feature;
  node.threshold = split->threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

std::optional<DecisionTreeRegressor::Split>
DecisionTreeRegressor::best_split(const Dataset& data,
                                  std::span<const std::size_t> rows,
                                  std::size_t begin, std::size_t end,
                                  double sum, Rng& rng,
                                  SplitScratch& scratch) const {
  const std::size_t n = rows.size();
  LTS_ASSERT(end - begin == n);
  // `sum` arrives from build(), accumulated over the same rows in the same
  // order — the identical double this loop used to recompute.
  double sumsq = 0.0;
  for (const std::size_t r : rows) {
    const double y = data.target(r);
    sumsq += y * y;
  }
  const double parent_sse = sumsq - sum * sum / static_cast<double>(n);
  if (parent_sse <= 1e-12) return std::nullopt;  // pure node

  // Candidate features: all, or a fresh random subset (random forest mode).
  // Both buffers live in `scratch`, reused across every node of the fit.
  std::vector<std::size_t>& features = scratch.features;
  if (params_.max_features > 0 &&
      static_cast<std::size_t>(params_.max_features) < num_features_) {
    rng.sample_without_replacement(
        num_features_, static_cast<std::size_t>(params_.max_features),
        features);
  } else {
    features.resize(num_features_);
    std::iota(features.begin(), features.end(), std::size_t{0});
  }

  const auto min_leaf = static_cast<std::size_t>(params_.min_samples_leaf);
  scratch.feature_best.assign(features.size(), Split{});
  // Each candidate feature sweeps its own presorted slice [begin, end) —
  // the exact (x, y) sequence the per-node gather + std::sort used to
  // produce (colindex.hpp carries the argument) — so left_sum accumulates
  // in the same order and every gain and threshold is bit-identical.
  // Features touch only their own result slot, which makes the fan-out
  // below both safe and deterministic.
  const auto scan_one = [&](std::size_t fi) {
    const std::size_t f = features[fi];
    const double* xs = scratch.columns.x_col(f) + begin;
    const std::uint32_t* rs = scratch.columns.row_col(f) + begin;
    Split cand;
    double left_sum = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      left_sum += data.target(rs[i]);
      if (i + 1 < min_leaf || n - i - 1 < min_leaf) continue;
      if (xs[i] == xs[i + 1]) continue;  // no boundary here
      const double nl = static_cast<double>(i + 1);
      const double nr = static_cast<double>(n - i - 1);
      const double right_sum = sum - left_sum;
      // SSE decrease = parent_sse - (left_sse + right_sse); the sumsq terms
      // cancel, leaving the between-group variance gain below.
      const double gain = left_sum * left_sum / nl +
                          right_sum * right_sum / nr -
                          sum * sum / static_cast<double>(n);
      if (gain > cand.gain) {
        cand.feature = static_cast<int>(f);
        // The midpoint of two adjacent doubles can round up onto the right
        // value; `x <= threshold` would then send both sides left and the
        // split would partition nothing. Snap to the left value, which
        // always separates (it is strictly below xs[i + 1]).
        double threshold = (xs[i] + xs[i + 1]) / 2.0;
        if (threshold >= xs[i + 1]) threshold = xs[i];
        cand.threshold = threshold;
        cand.gain = gain;
      }
    }
    scratch.feature_best[fi] = cand;
  };
  if (use_parallel_columns(n, features.size())) {
    // lts-lint: shared-guarded(partitioned: feature fi writes only feature_best[fi]; columns and targets are read-only)
    ThreadPool::global().parallel_for(features.size(),
                                      [&](std::size_t fi) { scan_one(fi); });
  } else {
    for (std::size_t fi = 0; fi < features.size(); ++fi) scan_one(fi);
  }

  // Reduce the per-feature slots in feature order under the same strict `>`
  // the sequential loop applied: the earliest feature attaining the maximal
  // gain wins in both formulations.
  Split best;
  for (const Split& cand : scratch.feature_best) {
    if (cand.gain > best.gain) best = cand;
  }
  if (best.feature < 0 || best.gain < params_.min_impurity_decrease ||
      best.gain <= 1e-12) {
    return std::nullopt;
  }
  return best;
}

double DecisionTreeRegressor::predict_row(
    std::span<const double> features) const {
  LTS_REQUIRE(is_fitted(), "DecisionTree: not fitted");
  LTS_REQUIRE(features.size() == num_features_,
              "DecisionTree: feature width mismatch");
  int idx = 0;
  while (!nodes_[static_cast<std::size_t>(idx)].is_leaf()) {
    const auto& node = nodes_[static_cast<std::size_t>(idx)];
    idx = features[static_cast<std::size_t>(node.feature)] <= node.threshold
              ? node.left
              : node.right;
  }
  return nodes_[static_cast<std::size_t>(idx)].value;
}

void DecisionTreeRegressor::predict_batch(std::span<const double> x,
                                          std::size_t rows, std::size_t cols,
                                          std::span<double> out) const {
  LTS_REQUIRE(is_fitted(), "DecisionTree: not fitted");
  LTS_REQUIRE(cols == num_features_, "DecisionTree: feature width mismatch");
  LTS_REQUIRE(x.size() >= rows * cols,
              "DecisionTree: feature block smaller than rows * cols");
  LTS_REQUIRE(out.size() >= rows, "DecisionTree: output span too small");
  if (flat_.empty()) {  // oversized tree bailed out of flattening
    Regressor::predict_batch(x, rows, cols, out);
    return;
  }
  flat_.predict(x.data(), rows, cols, out.data());
}

Json DecisionTreeRegressor::to_json() const {
  Json j = Json::object();
  j["params"] = params_.to_json();
  j["num_features"] = num_features_;
  JsonArray nodes;
  nodes.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    JsonArray fields;
    fields.emplace_back(node.feature);
    fields.emplace_back(node.threshold);
    fields.emplace_back(node.left);
    fields.emplace_back(node.right);
    fields.emplace_back(node.value);
    fields.emplace_back(node.n_samples);
    nodes.emplace_back(std::move(fields));
  }
  j["nodes"] = Json(std::move(nodes));
  j["importance"] = Json::from_doubles(importance_);
  return j;
}

void DecisionTreeRegressor::from_json(const Json& j) {
  params_ = TreeParams::from_json(j.at("params"));
  num_features_ = static_cast<std::size_t>(j.at("num_features").as_double());
  nodes_.clear();
  for (const auto& entry : j.at("nodes").as_array()) {
    const auto& f = entry.as_array();
    LTS_REQUIRE(f.size() == 6, "DecisionTree: malformed node");
    TreeNode node;
    node.feature = f[0].as_int();
    node.threshold = f[1].as_double();
    node.left = f[2].as_int();
    node.right = f[3].as_int();
    node.value = f[4].as_double();
    node.n_samples = f[5].as_int();
    nodes_.push_back(node);
  }
  importance_ = j.at("importance").to_doubles();
  rebuild_flat();
}

std::vector<double> DecisionTreeRegressor::feature_importances() const {
  std::vector<double> imp = importance_;
  const double total = std::accumulate(imp.begin(), imp.end(), 0.0);
  if (total > 0.0) {
    for (auto& v : imp) v /= total;
  }
  return imp;
}

int DecisionTreeRegressor::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the node array.
  std::vector<int> depth_of(nodes_.size(), 0);
  int max_depth = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& node = nodes_[i];
    if (!node.is_leaf()) {
      depth_of[static_cast<std::size_t>(node.left)] =
          depth_of[i] + 1;
      depth_of[static_cast<std::size_t>(node.right)] =
          depth_of[i] + 1;
    }
    max_depth = std::max(max_depth, depth_of[i]);
  }
  return max_depth;
}

std::size_t DecisionTreeRegressor::num_leaves() const {
  std::size_t count = 0;
  for (const auto& node : nodes_) {
    if (node.is_leaf()) ++count;
  }
  return count;
}

}  // namespace lts::ml
