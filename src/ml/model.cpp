#include "ml/model.hpp"

#include <cmath>
#include <cstdio>

#include <fstream>
#include <sstream>

#include "ml/forest.hpp"
#include "ml/gbt.hpp"
#include "ml/linear.hpp"
#include "ml/tree.hpp"

namespace lts::ml {

void Regressor::predict_batch(std::span<const double> x, std::size_t rows,
                              std::size_t cols,
                              std::span<double> out) const {
  LTS_REQUIRE(x.size() >= rows * cols,
              "predict_batch: feature block smaller than rows * cols");
  LTS_REQUIRE(out.size() >= rows, "predict_batch: output span too small");
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = predict_row(x.subspan(r * cols, cols));
  }
}

std::vector<double> Regressor::predict(const Matrix& x) const {
  // Matrix rows are contiguous row-major, exactly the predict_batch block
  // layout, so bulk prediction (GBT refit residuals, evaluation sweeps)
  // rides the flattened kernels for free.
  std::vector<double> out(x.rows(), 0.0);
  predict_batch(x.data(), x.rows(), x.cols(), out);
  return out;
}

LogTargetRegressor::LogTargetRegressor(std::unique_ptr<Regressor> inner)
    : inner_(std::move(inner)) {
  LTS_REQUIRE(inner_ != nullptr, "LogTargetRegressor: null inner model");
}

namespace {

Dataset log_transformed(const Dataset& data) {
  std::vector<double> log_y;
  log_y.reserve(data.size());
  for (const double y : data.y()) {
    LTS_REQUIRE(y > 0.0, "LogTargetRegressor: targets must be positive");
    log_y.push_back(std::log(y));
  }
  Matrix x = data.x();
  return Dataset(std::move(x), std::move(log_y), data.feature_names());
}

}  // namespace

void LogTargetRegressor::fit(const Dataset& data) {
  inner_->fit(log_transformed(data));
}

void LogTargetRegressor::refit(const Dataset& data) {
  inner_->refit(log_transformed(data));
}

double LogTargetRegressor::predict_row(
    std::span<const double> features) const {
  return std::exp(inner_->predict_row(features));
}

void LogTargetRegressor::predict_batch(std::span<const double> x,
                                       std::size_t rows, std::size_t cols,
                                       std::span<double> out) const {
  // Same per-row computation as predict_row: exp of the inner prediction.
  inner_->predict_batch(x, rows, cols, out);
  for (std::size_t r = 0; r < rows; ++r) out[r] = std::exp(out[r]);
}

Prediction LogTargetRegressor::predict_with_uncertainty(
    std::span<const double> features) const {
  const Prediction log_space = inner_->predict_with_uncertainty(features);
  // First-order delta method: exp transform scales the spread by the
  // predicted value.
  const double mean = std::exp(log_space.mean);
  return Prediction{mean, mean * log_space.stddev};
}

bool LogTargetRegressor::is_fitted() const { return inner_->is_fitted(); }

Json LogTargetRegressor::to_json() const { return inner_->to_json(); }

void LogTargetRegressor::from_json(const Json& j) { inner_->from_json(j); }

std::vector<double> LogTargetRegressor::feature_importances() const {
  return inner_->feature_importances();
}

std::unique_ptr<Regressor> create_regressor(const std::string& name,
                                            const Json& params) {
  const Json p = params.is_object() ? params : Json::object();
  // "log_target": true wraps the model in a LogTargetRegressor. The inner
  // parameter parsers ignore the extra key.
  if (p.contains("log_target") && p.at("log_target").as_bool()) {
    Json inner_params = p;
    inner_params["log_target"] = false;
    return std::make_unique<LogTargetRegressor>(
        create_regressor(name, inner_params));
  }
  if (name == "linear") {
    return std::make_unique<LinearRegression>(LinearParams::from_json(p));
  }
  if (name == "decision_tree") {
    return std::make_unique<DecisionTreeRegressor>(TreeParams::from_json(p));
  }
  if (name == "random_forest") {
    return std::make_unique<RandomForestRegressor>(ForestParams::from_json(p));
  }
  if (name == "xgboost") {
    return std::make_unique<GradientBoostedTrees>(GbtParams::from_json(p));
  }
  throw Error("create_regressor: unknown model name '" + name + "'");
}

std::vector<std::string> registered_regressors() {
  return {"linear", "decision_tree", "random_forest", "xgboost"};
}

Json model_to_json(const Regressor& model, std::uint64_t model_version) {
  Json j = Json::object();
  j["type"] = model.name();
  j["log_target"] =
      dynamic_cast<const LogTargetRegressor*>(&model) != nullptr;
  j["model_version"] = static_cast<double>(model_version);
  j["state"] = model.to_json();
  return j;
}

namespace {

/// Structural checks up front so a corrupt envelope fails with one clear
/// message instead of whatever Json::at happens to throw first.
void require_envelope_shape(const Json& j) {
  LTS_REQUIRE(j.is_object(),
              "model envelope: expected a JSON object, got a different type");
  LTS_REQUIRE(j.contains("type") && j.at("type").is_string(),
              "model envelope: missing or non-string 'type' tag");
  LTS_REQUIRE(j.contains("state"),
              "model envelope: missing 'state' (learned parameters)");
}

}  // namespace

std::unique_ptr<Regressor> model_from_json(const Json& j) {
  require_envelope_shape(j);
  auto model = create_regressor(j.at("type").as_string());
  if (j.contains("log_target") && j.at("log_target").as_bool()) {
    model = std::make_unique<LogTargetRegressor>(std::move(model));
  }
  model->from_json(j.at("state"));
  return model;
}

std::uint64_t model_version_from_json(const Json& j) {
  require_envelope_shape(j);
  if (!j.contains("model_version")) return 0;  // pre-versioning envelope
  const double v = j.at("model_version").as_double();
  LTS_REQUIRE(v >= 0.0, "model envelope: negative model_version");
  return static_cast<std::uint64_t>(v);
}

void save_model(const Regressor& model, const std::string& path,
                std::uint64_t model_version) {
  // Write-then-rename: the serving path (and the retraining hot-swap loop)
  // must never observe a half-written model. Stream state is checked after
  // both the write and the close so ENOSPC or a failed flush surfaces as an
  // exception with the temporary cleaned up, leaving any previous model at
  // `path` intact.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc);
    LTS_REQUIRE(f.good(), "save_model: cannot open " + tmp);
    f << model_to_json(model, model_version).dump(2);
    f.flush();
    if (!f.good()) {
      f.close();
      std::remove(tmp.c_str());
      throw Error("save_model: write failed for " + tmp);
    }
    f.close();
    if (f.fail()) {
      std::remove(tmp.c_str());
      throw Error("save_model: close failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("save_model: cannot rename " + tmp + " to " + path);
  }
}

LoadedModel load_model_envelope(const std::string& path) {
  std::ifstream f(path);
  LTS_REQUIRE(f.good(), "load_model: cannot open " + path);
  std::stringstream buffer;
  buffer << f.rdbuf();
  try {
    const Json envelope = Json::parse(buffer.str());
    LoadedModel loaded;
    loaded.version = model_version_from_json(envelope);
    loaded.model = model_from_json(envelope);
    return loaded;
  } catch (const std::exception& e) {
    throw Error("load_model: " + path + ": " + e.what());
  }
}

std::unique_ptr<Regressor> load_model(const std::string& path) {
  return std::move(load_model_envelope(path).model);
}

}  // namespace lts::ml
