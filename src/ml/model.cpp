#include "ml/model.hpp"

#include <cmath>

#include <fstream>
#include <sstream>

#include "ml/forest.hpp"
#include "ml/gbt.hpp"
#include "ml/linear.hpp"
#include "ml/tree.hpp"

namespace lts::ml {

std::vector<double> Regressor::predict(const Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    out.push_back(predict_row(x.row(i)));
  }
  return out;
}

LogTargetRegressor::LogTargetRegressor(std::unique_ptr<Regressor> inner)
    : inner_(std::move(inner)) {
  LTS_REQUIRE(inner_ != nullptr, "LogTargetRegressor: null inner model");
}

void LogTargetRegressor::fit(const Dataset& data) {
  std::vector<double> log_y;
  log_y.reserve(data.size());
  for (const double y : data.y()) {
    LTS_REQUIRE(y > 0.0, "LogTargetRegressor: targets must be positive");
    log_y.push_back(std::log(y));
  }
  Matrix x = data.x();
  inner_->fit(Dataset(std::move(x), std::move(log_y), data.feature_names()));
}

double LogTargetRegressor::predict_row(
    std::span<const double> features) const {
  return std::exp(inner_->predict_row(features));
}

Prediction LogTargetRegressor::predict_with_uncertainty(
    std::span<const double> features) const {
  const Prediction log_space = inner_->predict_with_uncertainty(features);
  // First-order delta method: exp transform scales the spread by the
  // predicted value.
  const double mean = std::exp(log_space.mean);
  return Prediction{mean, mean * log_space.stddev};
}

bool LogTargetRegressor::is_fitted() const { return inner_->is_fitted(); }

Json LogTargetRegressor::to_json() const { return inner_->to_json(); }

void LogTargetRegressor::from_json(const Json& j) { inner_->from_json(j); }

std::vector<double> LogTargetRegressor::feature_importances() const {
  return inner_->feature_importances();
}

std::unique_ptr<Regressor> create_regressor(const std::string& name,
                                            const Json& params) {
  const Json p = params.is_object() ? params : Json::object();
  // "log_target": true wraps the model in a LogTargetRegressor. The inner
  // parameter parsers ignore the extra key.
  if (p.contains("log_target") && p.at("log_target").as_bool()) {
    Json inner_params = p;
    inner_params["log_target"] = false;
    return std::make_unique<LogTargetRegressor>(
        create_regressor(name, inner_params));
  }
  if (name == "linear") {
    return std::make_unique<LinearRegression>(LinearParams::from_json(p));
  }
  if (name == "decision_tree") {
    return std::make_unique<DecisionTreeRegressor>(TreeParams::from_json(p));
  }
  if (name == "random_forest") {
    return std::make_unique<RandomForestRegressor>(ForestParams::from_json(p));
  }
  if (name == "xgboost") {
    return std::make_unique<GradientBoostedTrees>(GbtParams::from_json(p));
  }
  throw Error("create_regressor: unknown model name '" + name + "'");
}

std::vector<std::string> registered_regressors() {
  return {"linear", "decision_tree", "random_forest", "xgboost"};
}

Json model_to_json(const Regressor& model) {
  Json j = Json::object();
  j["type"] = model.name();
  j["log_target"] =
      dynamic_cast<const LogTargetRegressor*>(&model) != nullptr;
  j["state"] = model.to_json();
  return j;
}

std::unique_ptr<Regressor> model_from_json(const Json& j) {
  auto model = create_regressor(j.at("type").as_string());
  if (j.contains("log_target") && j.at("log_target").as_bool()) {
    model = std::make_unique<LogTargetRegressor>(std::move(model));
  }
  model->from_json(j.at("state"));
  return model;
}

void save_model(const Regressor& model, const std::string& path) {
  std::ofstream f(path);
  LTS_REQUIRE(f.good(), "save_model: cannot open " + path);
  f << model_to_json(model).dump(2);
  LTS_REQUIRE(f.good(), "save_model: write failed for " + path);
}

std::unique_ptr<Regressor> load_model(const std::string& path) {
  std::ifstream f(path);
  LTS_REQUIRE(f.good(), "load_model: cannot open " + path);
  std::stringstream buffer;
  buffer << f.rdbuf();
  return model_from_json(Json::parse(buffer.str()));
}

}  // namespace lts::ml
