#include "ml/preprocess.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace lts::ml {

void StandardScaler::fit(const Matrix& x) {
  LTS_REQUIRE(x.rows() >= 1, "StandardScaler: empty matrix");
  const std::size_t p = x.cols();
  mean_.assign(p, 0.0);
  std_.assign(p, 1.0);
  for (std::size_t j = 0; j < p; ++j) {
    RunningStats stats;
    for (std::size_t i = 0; i < x.rows(); ++i) stats.add(x(i, j));
    mean_[j] = stats.mean();
    std_[j] = stats.stddev() > 1e-12 ? stats.stddev() : 1.0;
  }
}

Matrix StandardScaler::transform(const Matrix& x) const {
  LTS_REQUIRE(is_fitted(), "StandardScaler: not fitted");
  LTS_REQUIRE(x.cols() == mean_.size(), "StandardScaler: width mismatch");
  Matrix z(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      z(i, j) = (x(i, j) - mean_[j]) / std_[j];
    }
  }
  return z;
}

std::vector<double> StandardScaler::transform_row(
    std::span<const double> row) const {
  LTS_REQUIRE(is_fitted(), "StandardScaler: not fitted");
  LTS_REQUIRE(row.size() == mean_.size(), "StandardScaler: width mismatch");
  std::vector<double> z(row.size());
  for (std::size_t j = 0; j < row.size(); ++j) {
    z[j] = (row[j] - mean_[j]) / std_[j];
  }
  return z;
}

Matrix StandardScaler::inverse_transform(const Matrix& z) const {
  LTS_REQUIRE(is_fitted(), "StandardScaler: not fitted");
  LTS_REQUIRE(z.cols() == mean_.size(), "StandardScaler: width mismatch");
  Matrix x(z.rows(), z.cols());
  for (std::size_t i = 0; i < z.rows(); ++i) {
    for (std::size_t j = 0; j < z.cols(); ++j) {
      x(i, j) = z(i, j) * std_[j] + mean_[j];
    }
  }
  return x;
}

Json StandardScaler::to_json() const {
  Json j = Json::object();
  j["mean"] = Json::from_doubles(mean_);
  j["std"] = Json::from_doubles(std_);
  return j;
}

StandardScaler StandardScaler::from_json(const Json& j) {
  StandardScaler s;
  s.mean_ = j.at("mean").to_doubles();
  s.std_ = j.at("std").to_doubles();
  LTS_REQUIRE(s.mean_.size() == s.std_.size(),
              "StandardScaler: malformed JSON");
  return s;
}

void OneHotEncoder::fit(std::span<const std::string> values) {
  LTS_REQUIRE(!values.empty(), "OneHotEncoder: no values");
  categories_.assign(values.begin(), values.end());
  std::sort(categories_.begin(), categories_.end());
  categories_.erase(std::unique(categories_.begin(), categories_.end()),
                    categories_.end());
}

int OneHotEncoder::category_index(const std::string& value) const {
  const auto it =
      std::lower_bound(categories_.begin(), categories_.end(), value);
  if (it == categories_.end() || *it != value) return -1;
  return static_cast<int>(it - categories_.begin());
}

std::vector<double> OneHotEncoder::transform_one(
    const std::string& value) const {
  LTS_REQUIRE(is_fitted(), "OneHotEncoder: not fitted");
  std::vector<double> out(categories_.size(), 0.0);
  const int idx = category_index(value);
  if (idx >= 0) out[static_cast<std::size_t>(idx)] = 1.0;
  return out;
}

Json OneHotEncoder::to_json() const {
  Json j = Json::object();
  JsonArray cats;
  for (const auto& c : categories_) cats.emplace_back(c);
  j["categories"] = Json(std::move(cats));
  return j;
}

OneHotEncoder OneHotEncoder::from_json(const Json& j) {
  OneHotEncoder enc;
  for (const auto& c : j.at("categories").as_array()) {
    enc.categories_.push_back(c.as_string());
  }
  return enc;
}

}  // namespace lts::ml
