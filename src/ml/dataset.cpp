#include "ml/dataset.hpp"

#include <algorithm>
#include <numeric>

namespace lts::ml {

Dataset::Dataset(Matrix x, std::vector<double> y,
                 std::vector<std::string> feature_names)
    : x_(std::move(x)), y_(std::move(y)),
      feature_names_(std::move(feature_names)) {
  LTS_REQUIRE(x_.rows() == y_.size(), "Dataset: X/y row count mismatch");
  LTS_REQUIRE(feature_names_.empty() || feature_names_.size() == x_.cols(),
              "Dataset: feature name count mismatch");
}

void Dataset::add_row(std::span<const double> features, double target) {
  x_.push_row(features);
  y_.push_back(target);
}

void Dataset::set_feature_names(std::vector<std::string> names) {
  LTS_REQUIRE(x_.empty() || names.size() == x_.cols(),
              "Dataset: feature name count mismatch");
  feature_names_ = std::move(names);
}

Dataset Dataset::select(std::span<const std::size_t> indices) const {
  Dataset out;
  out.feature_names_ = feature_names_;
  for (const std::size_t i : indices) {
    LTS_REQUIRE(i < size(), "Dataset::select: index out of range");
    out.add_row(row(i), y_[i]);
  }
  return out;
}

std::pair<Dataset, Dataset> Dataset::train_test_split(double test_fraction,
                                                      Rng& rng) const {
  LTS_REQUIRE(test_fraction > 0.0 && test_fraction < 1.0,
              "train_test_split: fraction must be in (0, 1)");
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  const auto test_count = static_cast<std::size_t>(
      std::max<double>(1.0, test_fraction * static_cast<double>(size())));
  LTS_REQUIRE(test_count < size(), "train_test_split: dataset too small");
  const std::span<const std::size_t> test_idx(order.data(), test_count);
  const std::span<const std::size_t> train_idx(order.data() + test_count,
                                               size() - test_count);
  return {select(train_idx), select(test_idx)};
}

}  // namespace lts::ml
