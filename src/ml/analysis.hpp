// Model interpretation tools — the "interpretable feature importance" the
// paper cites as a reason to prefer tree ensembles (§3.2.3).
//
//   * permutation_importance: model-agnostic importance — how much held-out
//     RMSE degrades when one feature column is shuffled. Unlike impurity
//     importance it is comparable across model families and unbiased toward
//     high-cardinality features.
//   * partial_dependence: the model's average predicted response as one
//     feature sweeps its observed range, all else marginalized — "what does
//     the model think RTT does to job duration?"
#pragma once

#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/model.hpp"

namespace lts::ml {

struct PermutationImportance {
  std::vector<std::string> feature_names;
  /// Mean RMSE increase (absolute, in target units) per feature, over
  /// `repeats` shuffles.
  std::vector<double> importance;
  double baseline_rmse = 0.0;
};

/// Computes permutation importance of `model` on `data` (ideally held-out).
PermutationImportance permutation_importance(const Regressor& model,
                                             const Dataset& data,
                                             int repeats = 3,
                                             std::uint64_t seed = 17);

struct PartialDependence {
  std::string feature;
  std::vector<double> grid;    // swept feature values
  std::vector<double> response;  // mean prediction at each grid point
};

/// 1-D partial dependence of `model` over feature `feature_index`,
/// evaluated on `grid_points` quantile-spaced values of that feature in
/// `data`. `sample_rows` bounds the marginalization cost.
PartialDependence partial_dependence(const Regressor& model,
                                     const Dataset& data,
                                     std::size_t feature_index,
                                     int grid_points = 12,
                                     std::size_t sample_rows = 200,
                                     std::uint64_t seed = 17);

}  // namespace lts::ml
