#include "ml/flat.hpp"

#include <utility>

namespace lts::ml {

void FlatEnsemble::clear() {
  nodes_.clear();
  value_.clear();
  tree_base_.clear();
  depths_.clear();
  init_ = 0.0;
  divisor_ = 1.0;
}

void FlatEnsemble::predict(const double* x, std::size_t rows,
                           std::size_t cols, double* out) const {
  walk_block<true>(x, rows, cols, out);
}

void FlatEnsemble::accumulate(const double* x, std::size_t rows,
                              std::size_t cols, double* inout) const {
  walk_block<false>(x, rows, cols, inout);
}

template <bool kSeed>
void FlatEnsemble::walk_block(const double* x, std::size_t rows,
                              std::size_t cols, double* out) const {
  // Row blocking keeps a batch of rows cache-resident while trees stream
  // past them; per row, trees still accumulate in tree order (the loop over
  // trees is outside the accumulation into out[r]), so the sum order — and
  // therefore every bit of the result — matches the pointer walk.
  constexpr std::size_t kBlock = 128;
  std::uint32_t idx[kBlock];         // tree-local node index per lane
  std::uint32_t lanes[2][kBlock];    // active-lane lists, swapped per step
  const double* xrow[kBlock];  // per-lane row base, hoisted out of the walk
  const std::size_t n_trees = tree_base_.size();
  for (std::size_t r0 = 0; r0 < rows; r0 += kBlock) {
    const std::size_t bn = std::min(kBlock, rows - r0);
    for (std::size_t i = 0; i < bn; ++i) {
      if constexpr (kSeed) out[r0 + i] = init_;
      xrow[i] = x + (r0 + i) * cols;
    }
    for (std::size_t t = 0; t < n_trees; ++t) {
      const auto base = static_cast<std::size_t>(tree_base_[t]);
      const FlatNode* const tree = nodes_.data() + base;
      const double* const values = value_.data() + base;
      const std::int32_t depth = depths_[t];
      // A lane whose row has reached its leaf would only re-select that
      // leaf on every remaining step (self-loop), so each step rebuilds
      // the active list and drops parked lanes — in unbalanced trees the
      // mean leaf depth sits well below the max, and once a lane parks,
      // no later step can move it again (leaves self-loop), so dropping
      // is exact, not heuristic. idx[] keeps the final leaf of every
      // lane for the value gather below.
      std::uint32_t* active = lanes[0];
      std::uint32_t* parked = lanes[1];
      std::size_t na = bn;
      for (std::size_t i = 0; i < bn; ++i) {
        idx[i] = 0;  // local root
        active[i] = static_cast<std::uint32_t>(i);
      }
      for (std::int32_t step = 0; step < depth && na != 0; ++step) {
        std::size_t na2 = 0;
        for (std::size_t j = 0; j < na; ++j) {
          const std::uint32_t lane = active[j];
          const std::uint32_t cur = idx[lane];
          const FlatNode& n = tree[cur];
          const std::uint64_t m = n.meta;
          const double xv = xrow[lane][m & 0xffff];
          const auto left = static_cast<std::uint32_t>((m >> 16) & 0xffff);
          const auto right = static_cast<std::uint32_t>(m >> 32);
          // Mask-select instead of `?:`: the ternary tempts the compiler
          // into a data-dependent branch, and a 50/50 split direction
          // makes every step a likely mispredict. The comparison itself
          // is unchanged (NaN fails <=, so NaN still goes right), only
          // the selection is arithmetic. Self-looping leaves keep the
          // walk in bounds. The lane survives into the next step's list
          // with the same branchless discipline: an unconditional store
          // plus a conditional advance of the list length.
          const std::uint32_t go =
              0U - static_cast<std::uint32_t>(xv <= n.threshold);
          const std::uint32_t next = ((left ^ right) & go) ^ right;
          idx[lane] = next;
          parked[na2] = lane;
          na2 += (next != cur);
        }
        std::swap(active, parked);
        na = na2;
      }
      for (std::size_t i = 0; i < bn; ++i) {
        out[r0 + i] += values[idx[i]];
      }
    }
    // Division by the default 1.0 is exact, so the non-forest cases pay no
    // precision (or equivalence) cost for the unconditional divide.
    if constexpr (kSeed) {
      for (std::size_t i = 0; i < bn; ++i) out[r0 + i] /= divisor_;
    }
  }
}

}  // namespace lts::ml
