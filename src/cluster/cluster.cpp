#include "cluster/cluster.hpp"

#include <algorithm>

namespace lts::cluster {

ClusterSpec paper_cluster_spec() {
  ClusterSpec spec;
  spec.sites = {
      {"ucsd", {"node-1", "node-2"}},
      {"fiu", {"node-3", "node-4"}},
      {"sri", {"node-5", "node-6"}},
  };
  // Figure 4 shows RTTs along the inter-site edges. The paper figure's
  // numeric values are not in the text; these are real-world coast-to-coast
  // values for the three institutions: San Diego <-> Menlo Park is short,
  // anything to Miami crosses the continent.
  spec.wan_links = {
      {"ucsd", "sri", 0.012, 600e6},
      {"ucsd", "fiu", 0.068, 600e6},
      {"sri", "fiu", 0.078, 600e6},
  };
  // An 8 MB effective window keeps cross-country flows mildly RTT-bound
  // (~115 MB/s at 70 ms) without making every transfer latency-dominated:
  // bandwidth-heavy apps respond mostly to congestion, latency-heavy apps
  // (iterative barriers) mostly to RTT.
  spec.flow_options.tcp_window_bytes = 4.0 * 1024 * 1024;
  return spec;
}

Cluster::Cluster(sim::Engine& engine, const ClusterSpec& spec)
    : engine_(engine) {
  LTS_REQUIRE(!spec.sites.empty(), "Cluster: no sites");
  for (std::size_t si = 0; si < spec.sites.size(); ++si) {
    const auto& site = spec.sites[si];
    const net::VertexId router = topo_.add_router("router-" + site.name);
    topo_.set_vertex_site(router, static_cast<int>(si));
    site_names_.push_back(site.name);
    site_routers_.push_back(router);
    for (const auto& node_name : site.node_names) {
      const net::VertexId host = topo_.add_host(node_name);
      topo_.set_vertex_site(host, static_cast<int>(si));
      SimTime access_delay = spec.access_delay;
      if (!spec.node_access_extra_delay.empty()) {
        LTS_REQUIRE(nodes_.size() < spec.node_access_extra_delay.size(),
                    "Cluster: node_access_extra_delay too short");
        access_delay += spec.node_access_extra_delay[nodes_.size()];
      }
      Rate access_capacity = spec.access_capacity_bps;
      if (!spec.node_access_capacity.empty()) {
        LTS_REQUIRE(nodes_.size() < spec.node_access_capacity.size(),
                    "Cluster: node_access_capacity too short");
        access_capacity = spec.node_access_capacity[nodes_.size()];
      }
      const net::LinkId uplink =
          topo_.add_duplex_link(host, router, access_capacity, access_delay);
      node_uplinks_.push_back(uplink);
      nodes_.push_back(std::make_unique<Node>(engine_, node_name, site.name,
                                              host, spec.node_cores,
                                              spec.node_memory));
    }
  }
  if (!spec.site_core_delay.empty()) {
    LTS_REQUIRE(spec.site_core_delay.size() == spec.sites.size(),
                "Cluster: site_core_delay must list one delay per site");
    LTS_REQUIRE(spec.core_capacity_bps > 0.0,
                "Cluster: core_capacity_bps must be positive with a core");
    // The core router stays site-less: its trunks bridge sites by
    // construction, so the hierarchical solver treats all traffic crossing
    // them as coupled.
    const net::VertexId core = topo_.add_router("core");
    for (std::size_t si = 0; si < site_routers_.size(); ++si) {
      topo_.add_duplex_link(site_routers_[si], core, spec.core_capacity_bps,
                            spec.site_core_delay[si]);
    }
  }
  for (const auto& wan : spec.wan_links) {
    const auto find_router = [&](const std::string& name) {
      for (std::size_t i = 0; i < site_names_.size(); ++i) {
        if (site_names_[i] == name) return site_routers_[i];
      }
      throw Error("Cluster: unknown site in WAN link: " + name);
    };
    // One-way propagation is half the configured RTT; access links add their
    // (tiny) share on top.
    const net::LinkId forward = topo_.add_duplex_link(
        find_router(wan.site_a), find_router(wan.site_b), wan.capacity_bps,
        wan.rtt / 2.0);
    wan_links_.push_back(WanLink{wan.site_a, wan.site_b, forward});
  }
  node_down_.assign(nodes_.size(), 0);
  flows_ = std::make_unique<net::FlowManager>(engine_, topo_,
                                              spec.flow_options);
}

void Cluster::set_node_down(std::size_t node, bool down) {
  LTS_REQUIRE(node < node_down_.size(), "Cluster: node index");
  node_down_[node] = down ? 1 : 0;
}

bool Cluster::node_down(std::size_t node) const {
  LTS_REQUIRE(node < node_down_.size(), "Cluster: node index");
  return node_down_[node] != 0;
}

Node& Cluster::node(std::size_t i) {
  LTS_REQUIRE(i < nodes_.size(), "Cluster: node index out of range");
  return *nodes_[i];
}

const Node& Cluster::node(std::size_t i) const {
  LTS_REQUIRE(i < nodes_.size(), "Cluster: node index out of range");
  return *nodes_[i];
}

Node& Cluster::node_by_name(const std::string& name) {
  return node(node_index(name));
}

std::size_t Cluster::node_index(const std::string& name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->name() == name) return i;
  }
  throw Error("Cluster: no node named " + name);
}

std::vector<std::string> Cluster::node_names() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& n : nodes_) names.push_back(n->name());
  return names;
}

net::LinkId Cluster::node_uplink(std::size_t node) const {
  LTS_REQUIRE(node < node_uplinks_.size(), "Cluster: node index");
  return node_uplinks_[node];
}

net::LinkId Cluster::node_downlink(std::size_t node) const {
  // add_duplex_link creates the reverse direction as id + 1.
  return node_uplink(node) + 1;
}

SimTime Cluster::site_rtt(const std::string& site_a,
                          const std::string& site_b) const {
  const net::VertexId a = topo_.find_vertex("router-" + site_a);
  const net::VertexId b = topo_.find_vertex("router-" + site_b);
  LTS_REQUIRE(a != net::kNoVertex && b != net::kNoVertex,
              "Cluster: unknown site");
  if (a == b) return 0.0;
  return flows_->current_rtt(a, b);
}

}  // namespace lts::cluster
