#include "cluster/cpu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace lts::cluster {

namespace {
constexpr double kWorkEpsilon = 1e-9;
}

CpuPool::CpuPool(sim::Engine& engine, double cores)
    : engine_(engine), cores_(cores) {
  LTS_REQUIRE(cores > 0.0, "CpuPool: cores must be positive");
  last_update_ = engine_.now();
}

CpuTaskId CpuPool::run(double demand_cores, double work_core_seconds,
                       std::function<void()> on_complete) {
  LTS_REQUIRE(demand_cores > 0.0, "CpuPool: demand must be positive");
  LTS_REQUIRE(work_core_seconds > 0.0, "CpuPool: work must be positive");
  advance();
  Task task;
  task.demand = demand_cores;
  task.remaining = work_core_seconds;
  task.on_complete = std::move(on_complete);
  const CpuTaskId id = next_id_++;
  tasks_.emplace(id, std::move(task));
  recompute_rates();
  schedule_next_completion();
  return id;
}

CpuTaskId CpuPool::add_persistent(double demand_cores) {
  LTS_REQUIRE(demand_cores > 0.0, "CpuPool: demand must be positive");
  advance();
  Task task;
  task.demand = demand_cores;
  task.remaining = std::numeric_limits<double>::infinity();
  const CpuTaskId id = next_id_++;
  tasks_.emplace(id, std::move(task));
  recompute_rates();
  schedule_next_completion();
  return id;
}

void CpuPool::cancel(CpuTaskId id) {
  advance();
  if (tasks_.erase(id) > 0) {
    recompute_rates();
    schedule_next_completion();
  }
}

double CpuPool::utilization() const {
  return std::min(1.0, total_demand_ / cores_);
}

void CpuPool::advance() {
  const SimTime now = engine_.now();
  const SimTime dt = now - last_update_;
  if (dt <= 0.0) {
    last_update_ = now;
    return;
  }
  for (auto& [id, t] : tasks_) {
    if (std::isfinite(t.remaining)) {
      t.remaining = std::max(0.0, t.remaining - t.rate * dt);
    }
  }
  last_update_ = now;
}

void CpuPool::recompute_rates() {
  total_demand_ = 0.0;
  for (const auto& [id, t] : tasks_) total_demand_ += t.demand;
  // Processor sharing: everyone gets their demand if the node is
  // under-committed, otherwise rates shrink proportionally.
  const double scale =
      total_demand_ <= cores_ ? 1.0 : cores_ / total_demand_;
  for (auto& [id, t] : tasks_) {
    t.rate = t.demand * scale;
  }
}

void CpuPool::schedule_next_completion() {
  if (completion_event_ != sim::kInvalidEvent) {
    engine_.cancel(completion_event_);
    completion_event_ = sim::kInvalidEvent;
  }
  SimTime earliest = std::numeric_limits<SimTime>::infinity();
  for (const auto& [id, t] : tasks_) {
    if (!std::isfinite(t.remaining)) continue;
    LTS_ASSERT(t.rate > 0.0);
    earliest = std::min(earliest, t.remaining / t.rate);
  }
  if (!std::isfinite(earliest)) return;
  completion_event_ = engine_.schedule_in(
      std::max(earliest, 0.0), [this] { handle_completion_event(); });
}

void CpuPool::handle_completion_event() {
  completion_event_ = sim::kInvalidEvent;
  advance();
  std::vector<std::function<void()>> callbacks;
  for (auto it = tasks_.begin(); it != tasks_.end();) {
    // Done when remaining work is negligible OR would finish within a
    // nanosecond (guards against zero-progress loops once remaining/rate
    // underflows the clock's resolution at large timestamps).
    if (std::isfinite(it->second.remaining) &&
        it->second.remaining <=
            std::max(kWorkEpsilon, it->second.rate * 1e-9)) {
      if (it->second.on_complete) {
        callbacks.push_back(std::move(it->second.on_complete));
      }
      it = tasks_.erase(it);
    } else {
      ++it;
    }
  }
  recompute_rates();
  schedule_next_completion();
  for (auto& cb : callbacks) cb();
}

}  // namespace lts::cluster
