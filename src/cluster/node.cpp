#include "cluster/node.hpp"

#include <algorithm>

namespace lts::cluster {

Node::Node(sim::Engine& engine, std::string name, std::string site,
           net::VertexId vertex, double cores, Bytes memory)
    : name_(std::move(name)),
      site_(std::move(site)),
      vertex_(vertex),
      cpu_(engine, cores),
      memory_capacity_(memory) {
  LTS_REQUIRE(memory > 0.0, "Node: memory must be positive");
}

void Node::allocate_memory(Bytes bytes) {
  LTS_REQUIRE(bytes >= 0.0, "Node: negative allocation");
  memory_used_ += bytes;
}

void Node::release_memory(Bytes bytes) {
  LTS_REQUIRE(bytes >= 0.0, "Node: negative release");
  memory_used_ = std::max(0.0, memory_used_ - bytes);
}

}  // namespace lts::cluster
