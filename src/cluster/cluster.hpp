// Cluster facade: builds the multi-site topology and owns the nodes.
//
// Reproduces the paper's §5.1 setup shape: sites each hold some nodes; every
// node attaches to its site router through an access link; site routers are
// fully (or partially) meshed by WAN links whose propagation delays realize
// the inter-site RTTs of Figure 4. All traffic rides the simulated data
// plane (the FABNetv4 stand-in); there is no separate management network.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "net/flow.hpp"
#include "net/topology.hpp"
#include "simcore/engine.hpp"
#include "util/common.hpp"

namespace lts::cluster {

struct SiteSpec {
  std::string name;
  std::vector<std::string> node_names;
};

struct WanLinkSpec {
  std::string site_a;
  std::string site_b;
  SimTime rtt;          // round-trip propagation between the two routers
  Rate capacity_bps;    // per direction
};

struct ClusterSpec {
  std::vector<SiteSpec> sites;
  std::vector<WanLinkSpec> wan_links;
  double node_cores = 6.0;
  Bytes node_memory = 8.0 * 1024 * 1024 * 1024;  // 8 GB, per §5.1
  /// Effective per-VM NIC rate. The paper's slices have 100 Gbps physical
  /// NICs, but the achievable per-tenant rate on a shared testbed is far
  /// lower; a ~2 Gbps effective access link makes a node's *own* traffic
  /// (background pods, its executors' shuffles) the first bottleneck its
  /// driver-bound flows meet — the node-local congestion the paper's tx/rx
  /// features detect.
  Rate access_capacity_bps = 200e6;              // node <-> site router
  SimTime access_delay = 50e-6;                  // one-way
  /// Optional per-node extra access delay (indexed in global node order,
  /// i.e. sites in declaration order, nodes within site in order). Models
  /// per-VM virtualization/path differences on a shared testbed; the ping
  /// mesh observes it, which lets a scheduler tell two same-site nodes
  /// apart.
  std::vector<SimTime> node_access_extra_delay;
  /// Optional per-node access capacity (global node order, same indexing as
  /// node_access_extra_delay). Empty = every node gets access_capacity_bps.
  /// Models heterogeneous effective NIC speeds across a shared testbed.
  std::vector<Rate> node_access_capacity;
  /// Optional shared WAN core (the oversubscribed-backbone alternative to a
  /// pairwise wan_links mesh; both may coexist — routing picks the lower
  /// latency). When non-empty it must hold one one-way trunk delay per
  /// site: a single core router is added and every site router gets a
  /// duplex trunk of core_capacity_bps to it, so N sites share N trunks
  /// instead of N*(N-1)/2 dedicated circuits and inter-site traffic
  /// contends on them (RTT(a, b) = 2 * (delay[a] + delay[b])).
  std::vector<SimTime> site_core_delay;
  Rate core_capacity_bps = 0.0;
  net::FlowOptions flow_options;
};

/// Returns the cluster spec used throughout the paper's evaluation:
/// 3 sites (UCSD, FIU, SRI) x 2 nodes, 6 cores / 8 GB each, WAN RTTs in the
/// tens of milliseconds with UCSD<->SRI the short edge.
ClusterSpec paper_cluster_spec();

class Cluster {
 public:
  Cluster(sim::Engine& engine, const ClusterSpec& spec);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Engine& engine() { return engine_; }
  net::Topology& topology() { return topo_; }
  const net::Topology& topology() const { return topo_; }
  net::FlowManager& flows() { return *flows_; }
  const net::FlowManager& flows() const { return *flows_; }

  std::size_t num_nodes() const { return nodes_.size(); }
  Node& node(std::size_t i);
  const Node& node(std::size_t i) const;
  Node& node_by_name(const std::string& name);

  /// Index of the node with this name; throws if absent.
  std::size_t node_index(const std::string& name) const;

  std::vector<std::string> node_names() const;
  const std::vector<std::string>& site_names() const { return site_names_; }

  /// RTT between two site routers as currently measured (propagation +
  /// queueing); used by the Figure 4 reproduction.
  SimTime site_rtt(const std::string& site_a, const std::string& site_b) const;

  /// Directed access links of a node: uplink = node -> site router (carries
  /// the node's transmit traffic), downlink = router -> node (receive).
  /// Exposed for the rich-telemetry exporters (§8: link-level utilization
  /// and queueing delay).
  net::LinkId node_uplink(std::size_t node) const;
  net::LinkId node_downlink(std::size_t node) const;

  /// A WAN edge as built from the spec, with the forward link id (the
  /// reverse direction is forward + 1). Exposed for the fault injector,
  /// which degrades/partitions WAN links by site pair.
  struct WanLink {
    std::string site_a;
    std::string site_b;
    net::LinkId forward = -1;
  };
  const std::vector<WanLink>& wan_links() const { return wan_links_; }

  /// Liveness flag maintained by the fault injector. A down node stops
  /// answering pings and exporting telemetry (the exporters check this);
  /// its CPU/memory state is left untouched — work stalls rather than
  /// vanishes, like a hung host. All nodes start up.
  void set_node_down(std::size_t node, bool down);
  bool node_down(std::size_t node) const;

 private:
  sim::Engine& engine_;
  net::Topology topo_;
  std::unique_ptr<net::FlowManager> flows_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<net::LinkId> node_uplinks_;
  std::vector<std::string> site_names_;
  std::vector<net::VertexId> site_routers_;
  std::vector<WanLink> wan_links_;
  std::vector<char> node_down_;
};

}  // namespace lts::cluster
