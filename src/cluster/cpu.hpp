// Processor-sharing CPU model.
//
// Each node's cores are shared among runnable tasks, mirroring the Linux CFS
// behavior the paper's CPU-load feature observes: when total demand exceeds
// the core count every task slows proportionally. Task completion is handled
// like flow completion — a single next-event recomputed whenever the runnable
// set changes — so CPU contention composes with network contention in one
// event timeline.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "simcore/engine.hpp"
#include "util/common.hpp"

namespace lts::cluster {

using CpuTaskId = std::uint64_t;
inline constexpr CpuTaskId kInvalidCpuTask = 0;

class CpuPool {
 public:
  CpuPool(sim::Engine& engine, double cores);

  CpuPool(const CpuPool&) = delete;
  CpuPool& operator=(const CpuPool&) = delete;

  /// Runs a task needing `work` core-seconds at a parallelism of up to
  /// `demand` cores. `on_complete` fires when the work finishes; completion
  /// time stretches under contention.
  CpuTaskId run(double demand_cores, double work_core_seconds,
                std::function<void()> on_complete);

  /// Adds load without a completion (daemons, background services). Remove
  /// with cancel().
  CpuTaskId add_persistent(double demand_cores);

  /// Cancels a task (finished tasks are a no-op).
  void cancel(CpuTaskId id);

  double cores() const { return cores_; }

  /// Sum of the demands of all runnable tasks — the "load average"
  /// instantaneous input (number of runnable processes, §Table 1).
  double total_demand() const { return total_demand_; }

  /// Fraction of core capacity in use, in [0, 1].
  double utilization() const;

  std::size_t num_tasks() const { return tasks_.size(); }

 private:
  struct Task {
    double demand = 0.0;
    double remaining = 0.0;  // core-seconds; infinity for persistent
    double rate = 0.0;       // core-seconds per second
    std::function<void()> on_complete;
  };

  void advance();
  void recompute_rates();
  void schedule_next_completion();
  void handle_completion_event();

  sim::Engine& engine_;
  double cores_;
  double total_demand_ = 0.0;
  std::uint64_t next_id_ = 1;
  std::map<CpuTaskId, Task> tasks_;
  SimTime last_update_ = 0.0;
  sim::EventId completion_event_ = sim::kInvalidEvent;
};

}  // namespace lts::cluster
