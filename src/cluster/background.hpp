// Background load generator.
//
// Reproduces the paper's contention pod (§5.2): "a pod that repeatedly
// downloads a 10MB file over HTTP using curl", placed randomly on selected
// nodes during job execution. Each generator is a client pod on one node
// fetching from an HTTP server pod on another node: every fetch is a real
// simulated flow (server -> client) plus CPU demand on both ends, so it
// shows up in NIC counters, RTT inflation, and load average — the exact
// signals the scheduling model trains on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/cluster.hpp"
#include "net/flow.hpp"
#include "simcore/engine.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace lts::cluster {

struct BackgroundLoadOptions {
  Bytes fetch_bytes = 10.0 * 1024 * 1024;  // the paper's 10 MB file
  double client_cpu_demand = 0.5;          // curl + kernel while fetching
  double server_cpu_demand = 0.3;          // HTTP server while serving
  SimTime mean_pause = 0.15;               // think time between fetches
  int parallel_fetches = 1;                // concurrent curl loops in the pod
  /// Resident memory the pod pair holds while running (downloads buffered
  /// in page cache); makes contention visible to the memory telemetry.
  Bytes client_memory = 1.2 * 1024 * 1024 * 1024;
  Bytes server_memory = 0.6 * 1024 * 1024 * 1024;
};

/// One background pod pair (client + server). Runs until stop().
class BackgroundLoad {
 public:
  BackgroundLoad(Cluster& cluster, std::size_t client_node,
                 std::size_t server_node, BackgroundLoadOptions options,
                 Rng rng);
  ~BackgroundLoad();

  BackgroundLoad(const BackgroundLoad&) = delete;
  BackgroundLoad& operator=(const BackgroundLoad&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }

  std::size_t client_node() const { return client_; }
  std::size_t server_node() const { return server_; }
  std::uint64_t fetches_completed() const { return fetches_; }

 private:
  struct Loop {
    net::FlowId flow = net::kInvalidFlow;
    CpuTaskId client_cpu = kInvalidCpuTask;
    CpuTaskId server_cpu = kInvalidCpuTask;
    sim::EventId pause_event = sim::kInvalidEvent;
  };

  void begin_fetch(std::size_t loop_idx);
  void end_fetch(std::size_t loop_idx);

  Cluster& cluster_;
  std::size_t client_;
  std::size_t server_;
  BackgroundLoadOptions options_;
  Rng rng_;
  bool running_ = false;
  std::uint64_t fetches_ = 0;
  std::vector<Loop> loops_;
};

}  // namespace lts::cluster
