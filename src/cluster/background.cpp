#include "cluster/background.hpp"

namespace lts::cluster {

BackgroundLoad::BackgroundLoad(Cluster& cluster, std::size_t client_node,
                               std::size_t server_node,
                               BackgroundLoadOptions options, Rng rng)
    : cluster_(cluster),
      client_(client_node),
      server_(server_node),
      options_(options),
      rng_(rng) {
  LTS_REQUIRE(client_node != server_node,
              "BackgroundLoad: client and server must differ");
  LTS_REQUIRE(client_node < cluster.num_nodes() &&
                  server_node < cluster.num_nodes(),
              "BackgroundLoad: node index out of range");
  LTS_REQUIRE(options_.parallel_fetches >= 1,
              "BackgroundLoad: need at least one loop");
  loops_.resize(static_cast<std::size_t>(options_.parallel_fetches));
}

BackgroundLoad::~BackgroundLoad() { stop(); }

void BackgroundLoad::start() {
  if (running_) return;
  running_ = true;
  cluster_.node(client_).allocate_memory(options_.client_memory);
  cluster_.node(server_).allocate_memory(options_.server_memory);
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    // Desynchronize the loops so fetches do not start in lockstep.
    const SimTime stagger = rng_.uniform(0.0, options_.mean_pause);
    loops_[i].pause_event = cluster_.engine().schedule_in(
        stagger, [this, i] { begin_fetch(i); });
  }
}

void BackgroundLoad::stop() {
  if (!running_) return;
  running_ = false;
  cluster_.node(client_).release_memory(options_.client_memory);
  cluster_.node(server_).release_memory(options_.server_memory);
  for (auto& loop : loops_) {
    if (loop.pause_event != sim::kInvalidEvent) {
      cluster_.engine().cancel(loop.pause_event);
      loop.pause_event = sim::kInvalidEvent;
    }
    if (loop.flow != net::kInvalidFlow) {
      cluster_.flows().cancel(loop.flow);
      loop.flow = net::kInvalidFlow;
    }
    if (loop.client_cpu != kInvalidCpuTask) {
      cluster_.node(client_).cpu().cancel(loop.client_cpu);
      loop.client_cpu = kInvalidCpuTask;
    }
    if (loop.server_cpu != kInvalidCpuTask) {
      cluster_.node(server_).cpu().cancel(loop.server_cpu);
      loop.server_cpu = kInvalidCpuTask;
    }
  }
}

void BackgroundLoad::begin_fetch(std::size_t loop_idx) {
  if (!running_) return;
  Loop& loop = loops_[loop_idx];
  loop.pause_event = sim::kInvalidEvent;
  loop.client_cpu =
      cluster_.node(client_).cpu().add_persistent(options_.client_cpu_demand);
  loop.server_cpu =
      cluster_.node(server_).cpu().add_persistent(options_.server_cpu_demand);
  loop.flow = cluster_.flows().start(
      cluster_.node(server_).vertex(), cluster_.node(client_).vertex(),
      options_.fetch_bytes, [this, loop_idx] { end_fetch(loop_idx); });
}

void BackgroundLoad::end_fetch(std::size_t loop_idx) {
  Loop& loop = loops_[loop_idx];
  loop.flow = net::kInvalidFlow;
  cluster_.node(client_).cpu().cancel(loop.client_cpu);
  cluster_.node(server_).cpu().cancel(loop.server_cpu);
  loop.client_cpu = kInvalidCpuTask;
  loop.server_cpu = kInvalidCpuTask;
  ++fetches_;
  if (!running_) return;
  const SimTime pause = rng_.exponential(options_.mean_pause);
  loop.pause_event = cluster_.engine().schedule_in(
      pause, [this, loop_idx] { begin_fetch(loop_idx); });
}

}  // namespace lts::cluster
