// A simulated cluster node: CPU pool, memory accounting, and its attachment
// point in the network topology.
#pragma once

#include <memory>
#include <string>

#include "cluster/cpu.hpp"
#include "net/topology.hpp"
#include "simcore/engine.hpp"
#include "util/common.hpp"

namespace lts::cluster {

class Node {
 public:
  Node(sim::Engine& engine, std::string name, std::string site,
       net::VertexId vertex, double cores, Bytes memory);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const { return name_; }
  const std::string& site() const { return site_; }
  net::VertexId vertex() const { return vertex_; }

  CpuPool& cpu() { return cpu_; }
  const CpuPool& cpu() const { return cpu_; }

  double cores() const { return cpu_.cores(); }
  Bytes memory_capacity() const { return memory_capacity_; }
  Bytes memory_used() const { return memory_used_; }
  Bytes memory_available() const { return memory_capacity_ - memory_used_; }

  /// Reserves memory. Over-commit is allowed (the node starts swapping
  /// rather than OOM-killing in this model); memory_pressure() reports it.
  void allocate_memory(Bytes bytes);
  void release_memory(Bytes bytes);

  /// used / capacity; > 1 under over-commit.
  double memory_pressure() const { return memory_used_ / memory_capacity_; }

 private:
  std::string name_;
  std::string site_;
  net::VertexId vertex_;
  CpuPool cpu_;
  Bytes memory_capacity_;
  Bytes memory_used_ = 0.0;
};

}  // namespace lts::cluster
