// LtsScheduler: the paper's prediction-and-ranking pipeline (§3.2.3).
//
//   job request -> Telemetry Fetcher -> Feature Constructor
//               -> Supervised Model  -> Decision Module -> Job Builder
//
// It runs in user space, outside the (simulated) Kubernetes control plane:
// the output is a placement decision plus a nodeAffinity-pinned manifest,
// and binding happens through the ordinary API server.
#pragma once

#include <memory>
#include <string>

#include "core/decision.hpp"
#include "core/features.hpp"
#include "core/fetcher.hpp"
#include "core/job_builder.hpp"
#include "ml/model.hpp"
#include "spark/job.hpp"

namespace lts::core {

class LtsScheduler {
 public:
  /// `model` must already be fitted (offline training) on feature vectors
  /// of `features` layout. The scheduler does not own the TSDB; it queries
  /// through the fetcher.
  /// `risk_aversion` > 0 ranks nodes by predicted duration plus that many
  /// standard deviations of model uncertainty: a pessimistic policy that
  /// avoids placements the model is unsure about (extension beyond the
  /// paper; 0 reproduces its mean-duration ranking exactly).
  LtsScheduler(TelemetryFetcher fetcher,
               std::shared_ptr<const ml::Regressor> model,
               FeatureSet features = FeatureSet::kTable1,
               double risk_aversion = 0.0);

  /// Full pipeline: fetch telemetry as of `now`, score every candidate
  /// node, return the ranking.
  Decision schedule(const spark::JobConfig& config, SimTime now) const;

  /// Like schedule(), but from a pre-fetched snapshot (used when the caller
  /// already logged the same snapshot).
  Decision schedule_from_snapshot(const telemetry::ClusterSnapshot& snapshot,
                                  const spark::JobConfig& config) const;

  /// The manifest for a decision (Job Builder output).
  std::string build_manifest(const spark::JobConfig& config,
                             const std::string& job_name,
                             const Decision& decision) const;

  const TelemetryFetcher& fetcher() const { return fetcher_; }
  const ml::Regressor& model() const { return *model_; }
  FeatureSet feature_set() const { return features_; }

 private:
  TelemetryFetcher fetcher_;
  std::shared_ptr<const ml::Regressor> model_;
  FeatureSet features_;
  double risk_aversion_;
};

}  // namespace lts::core
