// LtsScheduler: the paper's prediction-and-ranking pipeline (§3.2.3).
//
//   job request -> Telemetry Fetcher -> Feature Constructor
//               -> Supervised Model  -> Decision Module -> Job Builder
//
// It runs in user space, outside the (simulated) Kubernetes control plane:
// the output is a placement decision plus a nodeAffinity-pinned manifest,
// and binding happens through the ordinary API server.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/decision.hpp"
#include "core/features.hpp"
#include "core/fetcher.hpp"
#include "core/job_builder.hpp"
#include "ml/model.hpp"
#include "spark/job.hpp"

namespace lts::core {

/// Fallback policy (fault tolerance): what the scheduler does when its
/// model or its telemetry is unusable. Off by default — then the scheduler
/// requires a fitted model and ranks exactly as the paper describes.
struct FallbackOptions {
  bool enabled = false;
  /// If fewer than this fraction of snapshot rows are fresh, distrust the
  /// whole snapshot and use the fallback ranking instead of the model.
  /// Default: at least a third of the cluster must be reporting.
  double min_fresh_fraction = 0.34;
  /// In the model path, push stale-telemetry nodes to the bottom of the
  /// ranking (their features are imputed guesses, not measurements).
  bool demote_stale = true;
};

class LtsScheduler {
 public:
  /// `model` must already be fitted (offline training) on feature vectors
  /// of `features` layout. The scheduler does not own the TSDB; it queries
  /// through the fetcher.
  /// `risk_aversion` > 0 ranks nodes by predicted duration plus that many
  /// standard deviations of model uncertainty: a pessimistic policy that
  /// avoids placements the model is unsure about (extension beyond the
  /// paper; 0 reproduces its mean-duration ranking exactly).
  /// With `fallback.enabled`, `model` may be null or unfitted — every
  /// decision then uses the fallback ranking (a default-kube-like
  /// spreading heuristic over whatever telemetry is fresh).
  LtsScheduler(TelemetryFetcher fetcher,
               std::shared_ptr<const ml::Regressor> model,
               FeatureSet features = FeatureSet::kTable1,
               double risk_aversion = 0.0,
               FallbackOptions fallback = {});

  /// Full pipeline: fetch telemetry as of `now`, score every candidate
  /// node, return the ranking.
  Decision schedule(const spark::JobConfig& config, SimTime now) const;

  /// Like schedule(), but from a pre-fetched snapshot (used when the caller
  /// already logged the same snapshot).
  Decision schedule_from_snapshot(const telemetry::ClusterSnapshot& snapshot,
                                  const spark::JobConfig& config) const;

  /// Batched serving path: ranks a whole queue of pending pods in one pass
  /// — one (cached) snapshot fetch, one feature block over every
  /// (pod, node) candidate, one batched model prediction. The decision
  /// sequence (nodes, scores, fallback/demotion flags, trace spans, metric
  /// counts) is bit-identical to calling schedule() once per config at the
  /// same `now`: predict_batch reproduces predict_row exactly, and the
  /// cached snapshot is keyed on (TSDB epoch, now) so it equals a fresh
  /// fetch by construction.
  std::vector<Decision> schedule_many(
      std::span<const spark::JobConfig> configs, SimTime now) const;

  /// Batched variant of schedule_from_snapshot: same contract, no fetch
  /// (and, like schedule_from_snapshot, no span of its own — phases land on
  /// whatever span the caller has open).
  std::vector<Decision> schedule_many_from_snapshot(
      const telemetry::ClusterSnapshot& snapshot,
      std::span<const spark::JobConfig> configs) const;

  /// The manifest for a decision (Job Builder output).
  std::string build_manifest(const spark::JobConfig& config,
                             const std::string& job_name,
                             const Decision& decision) const;

  /// Atomically replaces the serving model (the online-retraining hot
  /// swap). `model` must be fitted and non-null: a failed refit keeps the
  /// previous model by simply never calling this. In-flight decisions are
  /// unaffected — each decision snapshots the pointer once on entry and
  /// scores every candidate node with that same model.
  void set_model(std::shared_ptr<const ml::Regressor> model);

  /// The currently-serving model pointer (may be null in fallback mode).
  std::shared_ptr<const ml::Regressor> current_model() const;

  const TelemetryFetcher& fetcher() const { return fetcher_; }
  const ml::Regressor& model() const;
  bool has_usable_model() const;
  FeatureSet feature_set() const { return features_; }
  const FallbackOptions& fallback() const { return fallback_; }

 private:
  /// Default-kube-like spreading ranking over raw telemetry: prefer nodes
  /// with low CPU load and plenty of free memory. Used when the model or
  /// the snapshot cannot be trusted.
  Decision fallback_rank(const telemetry::ClusterSnapshot& snapshot) const;

  /// Shared body of the two batched entry points. With `own_spans`, every
  /// decision opens (or joins) a "schedule" span beginning at `span_begin`
  /// and marks a "fetch" phase first — mirroring schedule(); without, only
  /// the pipeline phases are marked — mirroring schedule_from_snapshot.
  std::vector<Decision> schedule_batch(
      const telemetry::ClusterSnapshot& snapshot,
      std::span<const spark::JobConfig> configs, bool own_spans,
      SimTime span_begin) const;

  TelemetryFetcher fetcher_;
  /// Guards model_ only: decisions copy the shared_ptr once, hot-swaps
  /// replace it. Everything else is immutable after construction.
  mutable std::mutex model_mutex_;
  std::shared_ptr<const ml::Regressor> model_;
  FeatureSet features_;
  double risk_aversion_;
  FallbackOptions fallback_;
};

}  // namespace lts::core
