#include "core/logger.hpp"

#include "util/string_util.hpp"

namespace lts::core {

std::vector<std::string> TrainingLogger::columns() {
  return {"scenario",  "node",        "snapshot_time", "rtt_mean",
          "rtt_max",   "rtt_std",     "tx_rate",       "rx_rate",
          "cpu_load",  "mem_available", "uplink_util", "downlink_util",
          "queue_delay", "active_flows", "app",        "input_records",
          "executors", "executor_memory", "shuffle_partitions",
          "iterations", "join_skew",  "duration",      "shuffle_bytes",
          "max_spill_penalty"};
}

TrainingLogger::TrainingLogger() : table_(columns()) {}

void TrainingLogger::log(const TrainingRecord& r) {
  table_.add_row({
      r.scenario_id,
      r.node,
      strformat("%.3f", r.snapshot_time),
      strformat("%.9g", r.telemetry.rtt_mean),
      strformat("%.9g", r.telemetry.rtt_max),
      strformat("%.9g", r.telemetry.rtt_std),
      strformat("%.9g", r.telemetry.tx_rate),
      strformat("%.9g", r.telemetry.rx_rate),
      strformat("%.9g", r.telemetry.cpu_load),
      strformat("%.9g", r.telemetry.mem_available),
      strformat("%.9g", r.telemetry.uplink_util),
      strformat("%.9g", r.telemetry.downlink_util),
      strformat("%.9g", r.telemetry.queue_delay),
      strformat("%.9g", r.telemetry.active_flows),
      spark::to_string(r.config.app),
      std::to_string(r.config.input_records),
      std::to_string(r.config.executors),
      strformat("%.9g", r.config.executor_memory),
      std::to_string(r.config.effective_shuffle_partitions()),
      std::to_string(r.config.iterations),
      strformat("%.9g", r.config.join_skew),
      strformat("%.9g", r.duration),
      strformat("%.9g", r.shuffle_bytes),
      strformat("%.9g", r.max_spill_penalty),
  });
}

void TrainingLogger::log_run(const std::string& scenario_id,
                             const telemetry::ClusterSnapshot& pre_launch,
                             const spark::JobConfig& config,
                             const spark::AppResult& result) {
  LTS_REQUIRE(result.completed, "TrainingLogger: job did not complete");
  TrainingRecord record;
  record.scenario_id = scenario_id;
  record.node = result.driver_node;
  record.snapshot_time = pre_launch.at;
  record.telemetry = pre_launch.by_name(result.driver_node);
  record.config = config;
  record.duration = result.duration();
  record.shuffle_bytes = result.total_shuffle_bytes;
  record.max_spill_penalty = result.max_spill_penalty;
  log(record);
}

void TrainingLogger::write_file(const std::string& path) const {
  table_.write_file(path);
}

TrainingRecord TrainingLogger::parse_row(const CsvTable& table,
                                         std::size_t row) {
  TrainingRecord r;
  r.scenario_id = table.cell(row, "scenario");
  r.node = table.cell(row, "node");
  r.snapshot_time = table.cell_double(row, "snapshot_time");
  r.telemetry.node = r.node;
  r.telemetry.rtt_mean = table.cell_double(row, "rtt_mean");
  r.telemetry.rtt_max = table.cell_double(row, "rtt_max");
  r.telemetry.rtt_std = table.cell_double(row, "rtt_std");
  r.telemetry.tx_rate = table.cell_double(row, "tx_rate");
  r.telemetry.rx_rate = table.cell_double(row, "rx_rate");
  r.telemetry.cpu_load = table.cell_double(row, "cpu_load");
  r.telemetry.mem_available = table.cell_double(row, "mem_available");
  // Rich columns are optional so logs from older schema versions load.
  if (table.has_col("uplink_util")) {
    r.telemetry.uplink_util = table.cell_double(row, "uplink_util");
    r.telemetry.downlink_util = table.cell_double(row, "downlink_util");
    r.telemetry.queue_delay = table.cell_double(row, "queue_delay");
    r.telemetry.active_flows = table.cell_double(row, "active_flows");
  }
  r.config.app = spark::app_type_from_string(table.cell(row, "app"));
  r.config.input_records =
      static_cast<std::int64_t>(table.cell_double(row, "input_records"));
  r.config.executors = static_cast<int>(table.cell_double(row, "executors"));
  r.config.executor_memory = table.cell_double(row, "executor_memory");
  r.config.shuffle_partitions =
      static_cast<int>(table.cell_double(row, "shuffle_partitions"));
  r.config.iterations = static_cast<int>(table.cell_double(row, "iterations"));
  r.config.join_skew = table.cell_double(row, "join_skew");
  r.duration = table.cell_double(row, "duration");
  r.shuffle_bytes = table.cell_double(row, "shuffle_bytes");
  r.max_spill_penalty = table.cell_double(row, "max_spill_penalty");
  return r;
}

}  // namespace lts::core
