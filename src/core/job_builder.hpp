// Job Builder (§3.2.3): turns a placement decision into Kubernetes objects —
// a declarative SparkApplication manifest with nodeAffinity injected for the
// selected node, plus the driver/executor PodSpecs the API server binds.
#pragma once

#include <string>

#include "k8s/manifest.hpp"
#include "k8s/resources.hpp"
#include "spark/job.hpp"

namespace lts::core {

class JobBuilder {
 public:
  /// Manifest spec with the node pin and dynamically populated parameters.
  static k8s::SparkJobManifestSpec manifest_spec(
      const spark::JobConfig& config, const std::string& job_name,
      const std::string& pinned_node);

  /// Rendered YAML (what would be `kubectl apply`d).
  static std::string render_manifest(const spark::JobConfig& config,
                                     const std::string& job_name,
                                     const std::string& pinned_node);

  /// Driver pod spec: carries the nodeAffinity pin.
  static k8s::PodSpec driver_pod(const spark::JobConfig& config,
                                 const std::string& job_name,
                                 const std::string& pinned_node);

  /// Executor pod spec #index: *no* affinity — executors are placed
  /// independently by the default scheduler (§4).
  static k8s::PodSpec executor_pod(const spark::JobConfig& config,
                                   const std::string& job_name, int index);
};

}  // namespace lts::core
