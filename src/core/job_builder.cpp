#include "core/job_builder.hpp"

#include "util/string_util.hpp"

namespace lts::core {

k8s::SparkJobManifestSpec JobBuilder::manifest_spec(
    const spark::JobConfig& config, const std::string& job_name,
    const std::string& pinned_node) {
  config.validate();
  k8s::SparkJobManifestSpec spec;
  spec.job_name = job_name;
  spec.app_type = spark::to_string(config.app);
  spec.input_records = config.input_records;
  spec.executors = config.executors;
  spec.driver_requests = {config.driver_cores, config.driver_memory};
  spec.executor_requests = {config.executor_cores, config.executor_memory};
  spec.pinned_node = pinned_node;
  spec.extra_conf["spark.sql.shuffle.partitions"] =
      std::to_string(config.effective_shuffle_partitions());
  if (config.app == spark::AppType::kPageRank) {
    spec.extra_conf["spark.lts.pagerank.iterations"] =
        std::to_string(config.iterations);
  }
  return spec;
}

std::string JobBuilder::render_manifest(const spark::JobConfig& config,
                                        const std::string& job_name,
                                        const std::string& pinned_node) {
  return k8s::render_spark_job_manifest(
      manifest_spec(config, job_name, pinned_node));
}

k8s::PodSpec JobBuilder::driver_pod(const spark::JobConfig& config,
                                    const std::string& job_name,
                                    const std::string& pinned_node) {
  k8s::PodSpec pod;
  pod.name = job_name + "-driver";
  pod.requests = {config.driver_cores, config.driver_memory};
  pod.labels["spark-role"] = "driver";
  pod.labels["app"] = job_name;
  if (!pinned_node.empty()) {
    pod.node_affinity = k8s::NodeAffinity{{pinned_node}};
  }
  return pod;
}

k8s::PodSpec JobBuilder::executor_pod(const spark::JobConfig& config,
                                      const std::string& job_name,
                                      int index) {
  k8s::PodSpec pod;
  pod.name = strformat("%s-exec-%d", job_name.c_str(), index + 1);
  pod.requests = {config.executor_cores, config.executor_memory};
  pod.labels["spark-role"] = "executor";
  pod.labels["app"] = job_name;
  return pod;
}

}  // namespace lts::core
