// Offline Trainer: converts the Logger's CSV corpus into an ml::Dataset via
// the Feature Constructor, fits any registered model, and reports holdout
// quality. This is the "train offline on historical executions, retrain
// without downtime" loop of §2.3/§2.4.
#pragma once

#include <memory>
#include <string>

#include "core/features.hpp"
#include "core/logger.hpp"
#include "ml/dataset.hpp"
#include "ml/model.hpp"
#include "util/csv.hpp"

namespace lts::core {

struct TrainReport {
  std::string model_name;
  std::size_t train_rows = 0;
  std::size_t test_rows = 0;
  double train_rmse = 0.0;
  double test_rmse = 0.0;
  double test_mae = 0.0;
  double test_r2 = 0.0;
  /// True when the dataset was too small to split: no model was trained,
  /// the metrics are meaningless, and `skip_reason` says why. Early online
  /// retraining windows hit this routinely; it must not be fatal.
  bool skipped = false;
  std::string skip_reason;
};

class Trainer {
 public:
  /// Builds the supervised dataset from a training log: each row becomes
  /// (FeatureConstructor vector, duration). `set` selects the paper's
  /// Table-1 features or the §8 rich extension.
  static ml::Dataset dataset_from_log(
      const CsvTable& log, FeatureSet set = FeatureSet::kTable1);

  /// Fits a fresh model of `model_name` (registry name) on `data`.
  /// `params` must be a JSON object (hyperparameter overrides) or null
  /// (use default_params); any other JSON type throws — a malformed
  /// hyperparameter file must fail loudly, not silently train on defaults.
  static std::unique_ptr<ml::Regressor> train(
      const std::string& model_name, const ml::Dataset& data,
      const Json& params = Json());

  /// Train/holdout split + fit + metrics, the honest-evaluation path.
  /// When `data` is too small to split, returns a report with
  /// `skipped = true` (and leaves `*out` untouched) instead of aborting —
  /// callers decide whether a skipped refit matters.
  static TrainReport train_and_evaluate(const std::string& model_name,
                                        const ml::Dataset& data,
                                        double test_fraction,
                                        std::uint64_t seed,
                                        const Json& params = Json(),
                                        std::unique_ptr<ml::Regressor>* out =
                                            nullptr);

  /// Default hyperparameters used throughout the paper reproduction, per
  /// model family (tuned once, recorded in EXPERIMENTS.md).
  static Json default_params(const std::string& model_name);
};

}  // namespace lts::core
