// Telemetry Fetcher (§3.2.3): queries the metrics server at scheduling time
// for the most recent telemetry snapshot of every candidate node.
//
// Serving-path addition: fetches are memoized behind an epoch-keyed cache,
// so a queue of pending pods scheduled at the same instant pays for one
// TSDB sweep instead of one per pod. The cache key is (tsdb epoch, now):
//
//   - build_snapshot is a pure function of (tsdb contents, now, options),
//     and the TSDB epoch advances on every append attempt, so an equal
//     epoch means a rebuild would return bit-identical rows;
//   - `now` is part of the key because the degradation pipeline
//     (annotate_staleness, impute_stale_nodes) is a function of `now` too —
//     a snapshot cached at t must never be reused at t' with t-relative
//     staleness flags (the cache and schedule_from_snapshot would otherwise
//     disagree on which nodes to demote);
//   - fault paths that change telemetry interpretation without appending
//     (node recovery's counter reset, exporter silence/unsilence) bump the
//     epoch explicitly, so no stale feature ever crosses an epoch boundary.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/snapshot.hpp"
#include "telemetry/tsdb.hpp"

namespace lts::core {

/// Degradation policy (fault tolerance): how the fetcher treats nodes whose
/// exporters stopped reporting. Off by default — the paper's pipeline
/// assumes healthy telemetry, and with `enabled = false` fetch() returns
/// exactly the raw snapshot it always has.
struct DegradationOptions {
  bool enabled = false;
  /// A node is stale if its exporter heartbeat is older than this (seconds)
  /// at snapshot time, or it never reported. A few scrape intervals.
  SimTime max_staleness = 10.0;
  /// Replace stale rows' telemetry with the median of the fresh rows, so a
  /// silent node scores as "average" instead of as a phantom idle node.
  bool impute = true;
};

class TelemetryFetcher {
 public:
  TelemetryFetcher(const telemetry::Tsdb& tsdb,
                   std::vector<std::string> node_names,
                   telemetry::SnapshotOptions options = {},
                   DegradationOptions degradation = {});

  /// Snapshot of all candidate nodes as of `now`. With degradation enabled,
  /// rows are annotated for staleness and (optionally) imputed. Served from
  /// the cache when (epoch, now) matches the previous fetch; the result is
  /// bit-identical either way.
  telemetry::ClusterSnapshot fetch(SimTime now) const;

  /// Like fetch(), but returns the shared cached snapshot without copying —
  /// the batched scheduling path holds this across a whole pod queue.
  /// Cache hits increment lts_snapshot_cache_hits_total; rebuilds (epoch
  /// advanced, different `now`, cold or disabled cache) increment
  /// lts_snapshot_cache_misses_total.
  std::shared_ptr<const telemetry::ClusterSnapshot> fetch_shared(
      SimTime now) const;

  /// Disabling bypasses memoization entirely (every fetch sweeps the TSDB);
  /// used by benchmarks to measure the uncached path honestly.
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }
  bool cache_enabled() const { return cache_enabled_; }

  const std::vector<std::string>& node_names() const { return node_names_; }
  const DegradationOptions& degradation() const { return degradation_; }

 private:
  /// Guarded single-entry memo. Held behind a shared_ptr so the by-value
  /// fetcher copies inside schedulers share one cache with their source.
  struct SnapshotCache {
    std::mutex mu;
    std::uint64_t epoch = 0;
    SimTime at = 0.0;
    std::shared_ptr<const telemetry::ClusterSnapshot> snapshot;  // null=cold
  };

  std::shared_ptr<const telemetry::ClusterSnapshot> build(SimTime now) const;

  const telemetry::Tsdb& tsdb_;
  std::vector<std::string> node_names_;
  telemetry::SnapshotOptions options_;
  DegradationOptions degradation_;
  std::shared_ptr<SnapshotCache> cache_;
  bool cache_enabled_ = true;
};

}  // namespace lts::core
