// Telemetry Fetcher (§3.2.3): queries the metrics server at scheduling time
// for the most recent telemetry snapshot of every candidate node.
#pragma once

#include <string>
#include <vector>

#include "telemetry/snapshot.hpp"
#include "telemetry/tsdb.hpp"

namespace lts::core {

class TelemetryFetcher {
 public:
  TelemetryFetcher(const telemetry::Tsdb& tsdb,
                   std::vector<std::string> node_names,
                   telemetry::SnapshotOptions options = {});

  /// Snapshot of all candidate nodes as of `now`.
  telemetry::ClusterSnapshot fetch(SimTime now) const;

  const std::vector<std::string>& node_names() const { return node_names_; }

 private:
  const telemetry::Tsdb& tsdb_;
  std::vector<std::string> node_names_;
  telemetry::SnapshotOptions options_;
};

}  // namespace lts::core
