// Telemetry Fetcher (§3.2.3): queries the metrics server at scheduling time
// for the most recent telemetry snapshot of every candidate node.
#pragma once

#include <string>
#include <vector>

#include "telemetry/snapshot.hpp"
#include "telemetry/tsdb.hpp"

namespace lts::core {

/// Degradation policy (fault tolerance): how the fetcher treats nodes whose
/// exporters stopped reporting. Off by default — the paper's pipeline
/// assumes healthy telemetry, and with `enabled = false` fetch() returns
/// exactly the raw snapshot it always has.
struct DegradationOptions {
  bool enabled = false;
  /// A node is stale if its exporter heartbeat is older than this (seconds)
  /// at snapshot time, or it never reported. A few scrape intervals.
  SimTime max_staleness = 10.0;
  /// Replace stale rows' telemetry with the median of the fresh rows, so a
  /// silent node scores as "average" instead of as a phantom idle node.
  bool impute = true;
};

class TelemetryFetcher {
 public:
  TelemetryFetcher(const telemetry::Tsdb& tsdb,
                   std::vector<std::string> node_names,
                   telemetry::SnapshotOptions options = {},
                   DegradationOptions degradation = {});

  /// Snapshot of all candidate nodes as of `now`. With degradation enabled,
  /// rows are annotated for staleness and (optionally) imputed.
  telemetry::ClusterSnapshot fetch(SimTime now) const;

  const std::vector<std::string>& node_names() const { return node_names_; }
  const DegradationOptions& degradation() const { return degradation_; }

 private:
  const telemetry::Tsdb& tsdb_;
  std::vector<std::string> node_names_;
  telemetry::SnapshotOptions options_;
  DegradationOptions degradation_;
};

}  // namespace lts::core
