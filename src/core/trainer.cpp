#include "core/trainer.hpp"

#include "core/features.hpp"
#include "ml/metrics.hpp"

namespace lts::core {

ml::Dataset Trainer::dataset_from_log(const CsvTable& log, FeatureSet set) {
  ml::Dataset data;
  data.set_feature_names(FeatureConstructor::feature_names(set));
  for (std::size_t i = 0; i < log.num_rows(); ++i) {
    const TrainingRecord r = TrainingLogger::parse_row(log, i);
    const auto x = FeatureConstructor::build(r.telemetry, r.config, set);
    data.add_row(x, r.duration);
  }
  return data;
}

std::unique_ptr<ml::Regressor> Trainer::train(const std::string& model_name,
                                              const ml::Dataset& data,
                                              const Json& params) {
  LTS_REQUIRE(params.is_null() || params.is_object(),
              "Trainer::train: params must be a JSON object or null "
              "(malformed hyperparameters are not silently replaced "
              "with defaults)");
  const Json effective =
      params.is_object() ? params : default_params(model_name);
  auto model = ml::create_regressor(model_name, effective);
  model->fit(data);
  return model;
}

TrainReport Trainer::train_and_evaluate(const std::string& model_name,
                                        const ml::Dataset& data,
                                        double test_fraction,
                                        std::uint64_t seed, const Json& params,
                                        std::unique_ptr<ml::Regressor>* out) {
  // Mirror Dataset::train_test_split's feasibility check so a too-small
  // dataset (routine for early retraining windows) reports a skip instead
  // of tripping its hard LTS_REQUIRE.
  const auto test_count = static_cast<std::size_t>(std::max(
      1.0, test_fraction * static_cast<double>(data.size())));
  // Also skip when the holdout would leave fewer than two training rows —
  // no regressor can fit on one row, so that split is infeasible too.
  if (data.size() < 2 || test_count >= data.size() ||
      data.size() - test_count < 2) {
    TrainReport skip;
    skip.model_name = model_name;
    skip.train_rows = data.size();
    skip.skipped = true;
    skip.skip_reason = "dataset too small to split (" +
                       std::to_string(data.size()) + " rows)";
    return skip;
  }

  Rng rng(seed);
  auto [train_set, test_set] = data.train_test_split(test_fraction, rng);
  auto model = train(model_name, train_set, params);

  TrainReport report;
  report.model_name = model_name;
  report.train_rows = train_set.size();
  report.test_rows = test_set.size();

  std::vector<double> train_pred;
  train_pred.reserve(train_set.size());
  for (std::size_t i = 0; i < train_set.size(); ++i) {
    train_pred.push_back(model->predict_row(train_set.row(i)));
  }
  report.train_rmse = ml::rmse(train_set.y(), train_pred);

  std::vector<double> test_pred;
  test_pred.reserve(test_set.size());
  for (std::size_t i = 0; i < test_set.size(); ++i) {
    test_pred.push_back(model->predict_row(test_set.row(i)));
  }
  report.test_rmse = ml::rmse(test_set.y(), test_pred);
  report.test_mae = ml::mae(test_set.y(), test_pred);
  report.test_r2 = ml::r2_score(test_set.y(), test_pred);

  if (out != nullptr) *out = std::move(model);
  return report;
}

Json Trainer::default_params(const std::string& model_name) {
  // Values selected by the ranking-accuracy tuning study recorded in
  // EXPERIMENTS.md. All models fit in log-duration space (see
  // ml::LogTargetRegressor for why).
  Json p = Json::object();
  p["log_target"] = true;
  if (model_name == "linear") {
    p["l2"] = 1e-3;
  } else if (model_name == "random_forest") {
    // Deep unpruned trees with an aggressive per-split feature draw
    // (3 of 15): the within-scenario telemetry differences are small next
    // to the job-configuration effects, and wide draws let every tree
    // burn its splits on input_records.
    p["n_estimators"] = 800;
    p["max_features"] = 3;
    Json tree = Json::object();
    tree["max_depth"] = 40;
    tree["min_samples_leaf"] = 1;
    p["tree"] = tree;
  } else if (model_name == "xgboost") {
    p["n_rounds"] = 1500;
    p["learning_rate"] = 0.03;
    p["max_depth"] = 5;
    p["reg_lambda"] = 1.0;
    p["min_child_weight"] = 2.0;
    p["subsample"] = 0.7;
    p["colsample"] = 0.7;
    p["early_stopping_rounds"] = 80;
    p["validation_fraction"] = 0.15;
  } else if (model_name == "decision_tree") {
    p["max_depth"] = 12;
  }
  return p;
}

}  // namespace lts::core
