// OnlineTrainer: the "retrain without downtime" half of §2.3/§2.4.
//
// The offline Trainer fits once on a historical corpus; this class closes
// the loop at serving time. Every completed job contributes one
// (telemetry, config, duration) row to a rolling window, and the trainer
// refits either periodically (every K completions) or when a drift
// detector fires — a rolling EWMA of the per-decision relative prediction
// error, which rises when network conditions shift away from what the
// serving model learned. A successful refit produces a new versioned model
// that the caller hot-swaps into the scheduler; a failed or skipped refit
// keeps the previous model serving, visible only through obs counters and
// the event log. Everything is deterministic for a given (options, input
// sequence): the only Rng is seeded from options and the model version.
#pragma once

#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/features.hpp"
#include "core/logger.hpp"
#include "ml/model.hpp"

namespace lts::core {

/// Knobs for the online retraining loop. Defaults are the values used by
/// the retraining benchmark; EXPERIMENTS.md discusses the trade-offs.
struct RetrainOptions {
  bool enabled = false;
  /// Refit every this many completions (the periodic trigger).
  int retrain_every = 25;
  /// Rolling window: at most this many most-recent completions are kept.
  std::size_t window_size = 400;
  /// A due refit with fewer rows than this is skipped (counted, reported,
  /// never fatal) — early windows are too small to learn from.
  std::size_t min_rows = 24;
  /// Drift trigger: refit early when the prediction-error EWMA exceeds
  /// this. 0 disables the trigger (periodic refits only). The score is the
  /// EWMA of |predicted - actual| / actual over completions that had a
  /// usable model prediction, so 0.5 means "recent predictions are off by
  /// ~50%".
  double drift_threshold = 0.0;
  /// EWMA smoothing factor for the drift score (weight of the newest
  /// observation).
  double drift_ewma_alpha = 0.15;
  /// Minimum completions between consecutive drift-triggered refits, so a
  /// burst of bad predictions cannot refit on every completion.
  int drift_cooldown = 8;
  /// Model family to refit (registry name). When it matches the serving
  /// model and warm_start is set, refits warm-start from the serving
  /// state; otherwise each refit trains from scratch.
  std::string model_name = "random_forest";
  /// Hyperparameters (JSON object) or null for default_retrain_params().
  Json params;
  /// Held-out fraction of the window used to report each refit's RMSE.
  /// 0 trains on the full window and reports NaN.
  double holdout_fraction = 0.25;
  /// Champion/challenger gate: when a holdout split is feasible, the refit
  /// candidate must match the serving model's RMSE on the same held-out
  /// rows within this relative slack (candidate <= serving * (1 + slack))
  /// or the swap is rejected and the previous model keeps serving. The
  /// gate is what makes retraining safe on a stationary stream — a
  /// candidate trained on a small window cannot displace a good model it
  /// fails to beat. Negative disables the gate (every successful refit
  /// swaps).
  double holdout_gate_slack = 0.05;
  std::uint64_t seed = 97;
  bool warm_start = true;
};

enum class RetrainOutcome {
  kSwapped,   // refit succeeded, new model version is serving
  kSkipped,   // window too small — previous model keeps serving
  kRejected,  // candidate lost to the serving model on the holdout
  kFailed,    // refit threw or was fault-injected — previous model serves
};

std::string to_string(RetrainOutcome outcome);

/// One retrain attempt, successful or not.
struct RetrainEvent {
  RetrainOutcome outcome = RetrainOutcome::kSkipped;
  /// Model version serving after the event (unchanged unless kSwapped).
  std::uint64_t version = 0;
  std::size_t window_rows = 0;
  double drift_score = 0.0;
  /// True when the drift trigger (not the periodic one) fired the attempt.
  bool drift_triggered = false;
  /// Holdout RMSE of the refit candidate (NaN when skipped/failed or when
  /// holdout_fraction is 0).
  double holdout_rmse = std::numeric_limits<double>::quiet_NaN();
  /// Serving model's RMSE on the same holdout (NaN unless the
  /// champion/challenger gate evaluated it).
  double serving_rmse = std::numeric_limits<double>::quiet_NaN();
  std::string detail;
};

class OnlineTrainer {
 public:
  /// `initial_model` is the offline-trained model serving at stream start
  /// (version 0); may be null only if the caller's scheduler runs in
  /// fallback mode. Feature vectors are built with `features`, which must
  /// match the layout the initial model was trained on.
  OnlineTrainer(RetrainOptions options, FeatureSet features,
                std::shared_ptr<const ml::Regressor> initial_model);

  /// Feeds one completed job. `predicted_duration` is what the serving
  /// model forecast for the chosen node at decision time; pass a
  /// non-positive value (or >= 1e8, the stale-demotion range) when the
  /// decision had no usable prediction (fallback ranking, demoted node) so
  /// it does not pollute the drift score. Returns the retrain event if
  /// this completion triggered an attempt.
  std::optional<RetrainEvent> on_completion(const TrainingRecord& record,
                                            double predicted_duration);

  /// The currently-serving model (hot-swap target for the caller).
  const std::shared_ptr<const ml::Regressor>& model() const {
    return model_;
  }
  /// 0 = the initial offline model; incremented by each successful refit.
  std::uint64_t model_version() const { return version_; }
  double drift_score() const { return drift_score_; }
  std::size_t window_rows() const { return window_.size(); }
  /// Every retrain attempt so far, in order.
  const std::vector<RetrainEvent>& events() const { return events_; }

  /// Fault-injection seam: when set and returning true at refit time, the
  /// attempt fails without training (the injected-failure path). The
  /// previous model keeps serving.
  void set_failure_hook(std::function<bool()> hook) {
    failure_hook_ = std::move(hook);
  }

  /// Smaller hyperparameters than Trainer::default_params — a refit runs
  /// inside the serving loop on a few hundred rows, so the 800-tree
  /// offline forest would be pure waste there.
  static Json default_retrain_params(const std::string& model_name);

 private:
  RetrainEvent retrain_now(bool drift_triggered);

  RetrainOptions options_;
  FeatureSet features_;
  std::shared_ptr<const ml::Regressor> model_;
  std::uint64_t version_ = 0;
  std::deque<TrainingRecord> window_;
  double drift_score_ = 0.0;
  bool drift_seeded_ = false;
  int completions_since_retrain_ = 0;
  int completions_since_drift_fire_ = std::numeric_limits<int>::max();
  std::function<bool()> failure_hook_;
  std::vector<RetrainEvent> events_;
};

}  // namespace lts::core
