#include "core/fetcher.hpp"

namespace lts::core {

TelemetryFetcher::TelemetryFetcher(const telemetry::Tsdb& tsdb,
                                   std::vector<std::string> node_names,
                                   telemetry::SnapshotOptions options,
                                   DegradationOptions degradation)
    : tsdb_(tsdb),
      node_names_(std::move(node_names)),
      options_(options),
      degradation_(degradation) {
  LTS_REQUIRE(!node_names_.empty(), "TelemetryFetcher: no nodes");
  LTS_REQUIRE(degradation_.max_staleness > 0.0,
              "TelemetryFetcher: max_staleness must be positive");
}

telemetry::ClusterSnapshot TelemetryFetcher::fetch(SimTime now) const {
  auto snapshot = telemetry::build_snapshot(tsdb_, node_names_, now, options_);
  if (degradation_.enabled) {
    telemetry::annotate_staleness(snapshot, degradation_.max_staleness);
    if (degradation_.impute) telemetry::impute_stale_nodes(snapshot);
  }
  return snapshot;
}

}  // namespace lts::core
