#include "core/fetcher.hpp"

namespace lts::core {

TelemetryFetcher::TelemetryFetcher(const telemetry::Tsdb& tsdb,
                                   std::vector<std::string> node_names,
                                   telemetry::SnapshotOptions options)
    : tsdb_(tsdb), node_names_(std::move(node_names)), options_(options) {
  LTS_REQUIRE(!node_names_.empty(), "TelemetryFetcher: no nodes");
}

telemetry::ClusterSnapshot TelemetryFetcher::fetch(SimTime now) const {
  return telemetry::build_snapshot(tsdb_, node_names_, now, options_);
}

}  // namespace lts::core
