#include "core/fetcher.hpp"

#include "obs/metrics.hpp"

namespace lts::core {
namespace {

struct FetcherMetrics {
  obs::Counter& hits = obs::counter(
      "lts_snapshot_cache_hits_total", {},
      "Snapshot fetches served from the epoch-keyed cache (no TSDB sweep)");
  obs::Counter& misses = obs::counter(
      "lts_snapshot_cache_misses_total", {},
      "Snapshot fetches that swept the TSDB (epoch advanced, different "
      "fetch time, cold cache, or cache disabled)");
  static FetcherMetrics& get() {
    static FetcherMetrics m;
    return m;
  }
};

}  // namespace

TelemetryFetcher::TelemetryFetcher(const telemetry::Tsdb& tsdb,
                                   std::vector<std::string> node_names,
                                   telemetry::SnapshotOptions options,
                                   DegradationOptions degradation)
    : tsdb_(tsdb),
      node_names_(std::move(node_names)),
      options_(options),
      degradation_(degradation),
      cache_(std::make_shared<SnapshotCache>()) {
  LTS_REQUIRE(!node_names_.empty(), "TelemetryFetcher: no nodes");
  LTS_REQUIRE(degradation_.max_staleness > 0.0,
              "TelemetryFetcher: max_staleness must be positive");
}

std::shared_ptr<const telemetry::ClusterSnapshot> TelemetryFetcher::build(
    SimTime now) const {
  auto snapshot = std::make_shared<telemetry::ClusterSnapshot>(
      telemetry::build_snapshot(tsdb_, node_names_, now, options_));
  if (degradation_.enabled) {
    telemetry::annotate_staleness(*snapshot, degradation_.max_staleness);
    if (degradation_.impute) telemetry::impute_stale_nodes(*snapshot);
  }
  return snapshot;
}

std::shared_ptr<const telemetry::ClusterSnapshot>
TelemetryFetcher::fetch_shared(SimTime now) const {
  auto& metrics = FetcherMetrics::get();
  if (!cache_enabled_) {
    metrics.misses.inc();
    return build(now);
  }
  // The epoch is read before the sweep: an append landing in between would
  // store fresh content under the older epoch, which only costs one
  // redundant rebuild at the next fetch — never a stale hit.
  const std::uint64_t epoch = tsdb_.epoch();
  {
    const std::lock_guard<std::mutex> lock(cache_->mu);
    if (cache_->snapshot != nullptr && cache_->epoch == epoch &&
        cache_->at == now) {
      metrics.hits.inc();
      return cache_->snapshot;
    }
  }
  auto snapshot = build(now);
  metrics.misses.inc();
  const std::lock_guard<std::mutex> lock(cache_->mu);
  cache_->epoch = epoch;
  cache_->at = now;
  cache_->snapshot = snapshot;
  return snapshot;
}

telemetry::ClusterSnapshot TelemetryFetcher::fetch(SimTime now) const {
  return *fetch_shared(now);
}

}  // namespace lts::core
