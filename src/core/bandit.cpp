#include "core/bandit.hpp"

#include <cmath>

namespace lts::core {

BanditScheduler::BanditScheduler(BanditOptions options, std::uint64_t seed)
    : options_(std::move(options)), rng_(seed) {
  LTS_REQUIRE(options_.initial_epsilon >= 0.0 &&
                  options_.initial_epsilon <= 1.0,
              "BanditScheduler: epsilon in [0,1]");
  LTS_REQUIRE(options_.refit_interval >= 1,
              "BanditScheduler: refit_interval >= 1");
  replay_.set_feature_names(
      FeatureConstructor::feature_names(options_.features));
}

double BanditScheduler::current_epsilon() const {
  return std::max(options_.min_epsilon,
                  options_.initial_epsilon /
                      std::sqrt(1.0 + static_cast<double>(observations_) /
                                          options_.epsilon_decay));
}

std::size_t BanditScheduler::pick(const telemetry::ClusterSnapshot& snapshot,
                                  const spark::JobConfig& config) {
  LTS_REQUIRE(!snapshot.nodes.empty(), "BanditScheduler: empty snapshot");
  const auto n = static_cast<std::int64_t>(snapshot.nodes.size());
  if (!value_model_ready() || rng_.uniform() < current_epsilon()) {
    return static_cast<std::size_t>(rng_.uniform_int(0, n - 1));
  }
  return pick_greedy(snapshot, config);
}

std::size_t BanditScheduler::pick_greedy(
    const telemetry::ClusterSnapshot& snapshot,
    const spark::JobConfig& config) const {
  LTS_REQUIRE(value_model_ready(),
              "BanditScheduler: value model not fitted yet");
  std::size_t best = 0;
  double best_value = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < snapshot.nodes.size(); ++i) {
    const auto x = FeatureConstructor::build(snapshot.nodes[i], config,
                                             options_.features);
    const double predicted = value_model_->predict_row(x);
    if (predicted < best_value) {
      best_value = predicted;
      best = i;
    }
  }
  return best;
}

void BanditScheduler::observe(const telemetry::ClusterSnapshot& snapshot,
                              const spark::JobConfig& config,
                              std::size_t node, double duration) {
  LTS_REQUIRE(node < snapshot.nodes.size(), "BanditScheduler: bad node");
  LTS_REQUIRE(duration > 0.0, "BanditScheduler: duration must be positive");
  const auto x = FeatureConstructor::build(snapshot.nodes[node], config,
                                           options_.features);
  replay_.add_row(x, duration);
  ++observations_;
  maybe_refit();
}

void BanditScheduler::maybe_refit() {
  if (observations_ % options_.refit_interval != 0 && value_model_ready()) {
    return;
  }
  if (replay_.size() < 4) return;  // not enough to fit anything
  Json params = Json::object();
  params["log_target"] = true;
  auto model = ml::create_regressor(options_.value_model, params);
  model->fit(replay_);
  value_model_ = std::move(model);
}

}  // namespace lts::core
