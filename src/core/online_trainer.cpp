#include "core/online_trainer.hpp"

#include <chrono>
#include <cmath>

#include "core/trainer.hpp"
#include "ml/metrics.hpp"
#include "obs/metrics.hpp"
#include "util/string_util.hpp"

namespace lts::core {
namespace {

/// Predictions at or above this are not real forecasts: the scheduler's
/// stale-demotion penalty (1e9) starts there, and fallback rankings carry
/// no prediction at all. Such completions are excluded from the drift
/// score.
constexpr double kMaxUsablePrediction = 1e8;

struct RetrainMetrics {
  obs::Counter& swapped = obs::counter(
      "lts_retrain_total", {},
      "Successful online refits (a new model version was hot-swapped in)");
  obs::Counter& failed = obs::counter(
      "lts_retrain_failed_total", {},
      "Refit attempts that failed (exception or fault injection); the "
      "previous model kept serving");
  obs::Counter& skipped = obs::counter(
      "lts_retrain_skipped_total", {},
      "Refit attempts skipped because the window had too few rows");
  obs::Counter& rejected = obs::counter(
      "lts_retrain_rejected_total", {},
      "Refit candidates rejected by the champion/challenger holdout gate; "
      "the previous model kept serving");
  obs::Counter& drift_fires = obs::counter(
      "lts_retrain_drift_triggered_total", {},
      "Refit attempts initiated by the drift trigger rather than the "
      "periodic schedule");
  obs::Gauge& model_version = obs::gauge(
      "lts_model_version", {},
      "Version of the model currently serving (0 = initial offline model)");
  obs::Gauge& drift_score = obs::gauge(
      "lts_retrain_drift_score", {},
      "EWMA of relative prediction error |predicted-actual|/actual over "
      "recent completions");
  obs::Gauge& window_rows = obs::gauge(
      "lts_retrain_window_rows", {},
      "Completions currently held in the rolling training window");
  obs::Histogram& duration = obs::histogram(
      "lts_retrain_duration_seconds",
      {0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0}, {},
      "Wall-clock time of the full refit attempt (train + holdout gate + "
      "swap), observed for every attempt that reached training — swapped, "
      "rejected, and failed alike");
  obs::Gauge& train_rate = obs::gauge(
      "lts_train_rows_per_second", {},
      "Training throughput of the most recent refit attempt: window rows "
      "divided by the full refit wall time");
  static RetrainMetrics& get() {
    static RetrainMetrics m;
    return m;
  }
};

}  // namespace

std::string to_string(RetrainOutcome outcome) {
  switch (outcome) {
    case RetrainOutcome::kSwapped:
      return "swapped";
    case RetrainOutcome::kSkipped:
      return "skipped";
    case RetrainOutcome::kRejected:
      return "rejected";
    case RetrainOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

OnlineTrainer::OnlineTrainer(RetrainOptions options, FeatureSet features,
                             std::shared_ptr<const ml::Regressor> initial_model)
    : options_(std::move(options)),
      features_(features),
      model_(std::move(initial_model)) {
  LTS_REQUIRE(options_.retrain_every >= 1,
              "RetrainOptions: retrain_every must be >= 1");
  LTS_REQUIRE(options_.window_size >= 1,
              "RetrainOptions: window_size must be >= 1");
  LTS_REQUIRE(options_.drift_threshold >= 0.0,
              "RetrainOptions: drift_threshold must be >= 0");
  LTS_REQUIRE(
      options_.drift_ewma_alpha > 0.0 && options_.drift_ewma_alpha <= 1.0,
      "RetrainOptions: drift_ewma_alpha must be in (0, 1]");
  LTS_REQUIRE(options_.drift_cooldown >= 0,
              "RetrainOptions: drift_cooldown must be >= 0");
  LTS_REQUIRE(
      options_.holdout_fraction >= 0.0 && options_.holdout_fraction < 1.0,
      "RetrainOptions: holdout_fraction must be in [0, 1)");
  LTS_REQUIRE(options_.params.is_null() || options_.params.is_object(),
              "RetrainOptions: params must be a JSON object or null");
}

std::optional<RetrainEvent> OnlineTrainer::on_completion(
    const TrainingRecord& record, double predicted_duration) {
  auto& metrics = RetrainMetrics::get();

  window_.push_back(record);
  while (window_.size() > options_.window_size) window_.pop_front();
  metrics.window_rows.set(static_cast<double>(window_.size()));

  // Drift score: EWMA of the relative error of usable predictions. The
  // actual duration is positive by construction (it is a measured
  // completion time).
  if (predicted_duration > 0.0 && predicted_duration < kMaxUsablePrediction &&
      record.duration > 0.0) {
    const double err =
        std::abs(predicted_duration - record.duration) / record.duration;
    drift_score_ = drift_seeded_ ? options_.drift_ewma_alpha * err +
                                       (1.0 - options_.drift_ewma_alpha) *
                                           drift_score_
                                 : err;
    drift_seeded_ = true;
    metrics.drift_score.set(drift_score_);
  }

  ++completions_since_retrain_;
  if (completions_since_drift_fire_ < std::numeric_limits<int>::max()) {
    ++completions_since_drift_fire_;
  }

  if (!options_.enabled) return std::nullopt;

  const bool periodic_due =
      completions_since_retrain_ >= options_.retrain_every;
  const bool drift_due =
      options_.drift_threshold > 0.0 && drift_seeded_ &&
      drift_score_ > options_.drift_threshold &&
      completions_since_drift_fire_ >= options_.drift_cooldown;
  if (!periodic_due && !drift_due) return std::nullopt;

  // Attribute the attempt to drift only when the schedule alone would not
  // have fired it.
  const bool drift_triggered = drift_due && !periodic_due;
  if (drift_triggered) metrics.drift_fires.inc();

  RetrainEvent event = retrain_now(drift_triggered);
  completions_since_retrain_ = 0;
  completions_since_drift_fire_ = 0;
  events_.push_back(event);
  return event;
}

RetrainEvent OnlineTrainer::retrain_now(bool drift_triggered) {
  auto& metrics = RetrainMetrics::get();
  RetrainEvent event;
  event.version = version_;
  event.window_rows = window_.size();
  event.drift_score = drift_score_;
  event.drift_triggered = drift_triggered;

  if (failure_hook_ && failure_hook_()) {
    event.outcome = RetrainOutcome::kFailed;
    event.detail = "injected retrain failure; previous model keeps serving";
    metrics.failed.inc();
    return event;
  }

  // GBT needs 4 rows; everything below min_rows is noise anyway.
  if (window_.size() < std::max<std::size_t>(options_.min_rows, 4)) {
    event.outcome = RetrainOutcome::kSkipped;
    event.detail = "window too small (" + std::to_string(window_.size()) +
                   " rows, need " +
                   std::to_string(std::max<std::size_t>(options_.min_rows, 4)) +
                   ")";
    metrics.skipped.inc();
    return event;
  }

  // lts-lint: nondeterminism-ok(wall time measures real refit cost for the obs duration histogram only; no simulation or model state depends on it)
  const auto wall_begin = std::chrono::steady_clock::now();
  try {
    ml::Dataset data;
    data.set_feature_names(FeatureConstructor::feature_names(features_));
    for (const TrainingRecord& r : window_) {
      data.add_row(FeatureConstructor::build(r.telemetry, r.config, features_),
                   r.duration);
    }

    // Optional holdout for the reported RMSE. Infeasible splits (tiny
    // windows) fall back to training on everything — the skip threshold
    // above already guarantees enough rows to fit.
    ml::Dataset train_set = data;
    ml::Dataset test_set;
    bool have_holdout = false;
    if (options_.holdout_fraction > 0.0) {
      const auto test_count = static_cast<std::size_t>(std::max(
          1.0,
          options_.holdout_fraction * static_cast<double>(data.size())));
      if (test_count < data.size() && data.size() - test_count >= 4) {
        Rng rng(options_.seed + version_);
        auto split = data.train_test_split(options_.holdout_fraction, rng);
        train_set = std::move(split.first);
        test_set = std::move(split.second);
        have_holdout = true;
      }
    }

    const Json params = options_.params.is_object()
                            ? options_.params
                            : default_retrain_params(options_.model_name);

    // Warm start clones the serving model through its serialized form —
    // cheap next to tree growing — and refits the clone, so a failure at
    // any point leaves the serving pointer untouched.
    std::unique_ptr<ml::Regressor> candidate;
    const bool warm = options_.warm_start && model_ != nullptr &&
                      model_->is_fitted() &&
                      model_->name() == options_.model_name;
    if (warm) {
      candidate = ml::model_from_json(ml::model_to_json(*model_));
      candidate->refit(train_set);
    } else {
      candidate = Trainer::train(options_.model_name, train_set, params);
    }

    if (have_holdout) {
      std::vector<double> pred;
      pred.reserve(test_set.size());
      for (std::size_t i = 0; i < test_set.size(); ++i) {
        pred.push_back(candidate->predict_row(test_set.row(i)));
      }
      event.holdout_rmse = ml::rmse(test_set.y(), pred);

      // Champion/challenger gate: the candidate has to earn the swap by
      // matching the serving model on rows neither trained on.
      if (options_.holdout_gate_slack >= 0.0 && model_ != nullptr &&
          model_->is_fitted()) {
        std::vector<double> serving_pred;
        serving_pred.reserve(test_set.size());
        for (std::size_t i = 0; i < test_set.size(); ++i) {
          serving_pred.push_back(model_->predict_row(test_set.row(i)));
        }
        event.serving_rmse = ml::rmse(test_set.y(), serving_pred);
        if (event.holdout_rmse >
            event.serving_rmse * (1.0 + options_.holdout_gate_slack)) {
          event.outcome = RetrainOutcome::kRejected;
          event.detail = strformat(
              "candidate lost the holdout (%.2fs RMSE vs serving %.2fs); "
              "previous model keeps serving",
              event.holdout_rmse, event.serving_rmse);
          metrics.rejected.inc();
        }
      }
    }

    if (event.outcome != RetrainOutcome::kRejected) {
      ++version_;
      model_ = std::shared_ptr<const ml::Regressor>(std::move(candidate));
      event.outcome = RetrainOutcome::kSwapped;
      event.version = version_;
      event.detail = warm ? "warm refit" : "cold fit";
      // A fresh model invalidates the error history of the old one.
      drift_seeded_ = false;
      drift_score_ = 0.0;
      metrics.swapped.inc();
      metrics.model_version.set(static_cast<double>(version_));
      metrics.drift_score.set(0.0);
    }
  } catch (const std::exception& e) {
    event.outcome = RetrainOutcome::kFailed;
    event.detail = std::string("refit failed: ") + e.what() +
                   "; previous model keeps serving";
    metrics.failed.inc();
  }
  // Retrain latency is decision-loop latency now that refits run inside the
  // serving loop: record the full attempt (train + gate + swap) whether the
  // candidate won, lost the gate, or threw — only pre-training skips are
  // excluded — plus the rows-per-second throughput the attempt achieved.
  const double elapsed =
      // lts-lint: nondeterminism-ok(wall-clock delta recorded into the obs histogram/gauge; values are observational only and never read back)
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_begin)
          .count();
  metrics.duration.observe(elapsed);
  if (elapsed > 0.0) {
    metrics.train_rate.set(static_cast<double>(event.window_rows) / elapsed);
  }
  return event;
}

Json OnlineTrainer::default_retrain_params(const std::string& model_name) {
  Json p = Json::object();
  p["log_target"] = true;
  if (model_name == "linear") {
    p["l2"] = 1e-3;
  } else if (model_name == "random_forest") {
    // A fraction of the offline 800-tree forest: refits run inside the
    // serving loop on a few-hundred-row window, where extra trees buy
    // variance reduction the window cannot support.
    p["n_estimators"] = 120;
    p["max_features"] = 3;
    Json tree = Json::object();
    tree["max_depth"] = 25;
    tree["min_samples_leaf"] = 1;
    p["tree"] = tree;
  } else if (model_name == "xgboost") {
    p["n_rounds"] = 200;
    p["learning_rate"] = 0.08;
    p["max_depth"] = 4;
    p["subsample"] = 0.8;
    p["colsample"] = 0.8;
  } else if (model_name == "decision_tree") {
    p["max_depth"] = 12;
  }
  return p;
}

}  // namespace lts::core
