// Reinforcement-learning baseline: an online contextual bandit scheduler.
//
// The paper argues for supervised learning over RL on sample-efficiency and
// stability grounds (§2.3). This class makes the comparison concrete: a
// contextual bandit that learns placement *online*, one executed job at a
// time, from only the outcomes of its own choices (no counterfactuals, no
// batch sweep), with epsilon-greedy exploration and a periodically refit
// value model. bench_ext_rl_comparison plots its learning curve against
// the paper's offline-trained models at equal execution budgets.
#pragma once

#include <memory>
#include <vector>

#include "core/features.hpp"
#include "ml/model.hpp"
#include "spark/job.hpp"
#include "telemetry/snapshot.hpp"
#include "util/rng.hpp"

namespace lts::core {

struct BanditOptions {
  /// Exploration: epsilon(t) = max(min_epsilon, initial / sqrt(1 + t/decay)).
  double initial_epsilon = 0.5;
  double min_epsilon = 0.05;
  double epsilon_decay = 25.0;
  /// Refit the value model after every `refit_interval` observations.
  int refit_interval = 10;
  /// Value model registry name; linear keeps per-update cost trivial.
  std::string value_model = "linear";
  FeatureSet features = FeatureSet::kTable1;
};

class BanditScheduler {
 public:
  BanditScheduler(BanditOptions options, std::uint64_t seed);

  /// Chooses a node index for `config` given the snapshot: with probability
  /// epsilon(t) explores uniformly, otherwise exploits the current value
  /// model (untrained model -> uniform).
  std::size_t pick(const telemetry::ClusterSnapshot& snapshot,
                   const spark::JobConfig& config);

  /// Like pick() with epsilon forced to zero (for evaluation).
  std::size_t pick_greedy(const telemetry::ClusterSnapshot& snapshot,
                          const spark::JobConfig& config) const;

  /// Feeds back the observed completion time of the job placed by the last
  /// pick() on `node`. The caller passes the same snapshot/config.
  void observe(const telemetry::ClusterSnapshot& snapshot,
               const spark::JobConfig& config, std::size_t node,
               double duration);

  int observations() const { return observations_; }
  double current_epsilon() const;
  bool value_model_ready() const {
    return value_model_ != nullptr && value_model_->is_fitted();
  }

 private:
  void maybe_refit();

  BanditOptions options_;
  Rng rng_;
  int observations_ = 0;
  ml::Dataset replay_;  // (features of chosen node, duration)
  std::unique_ptr<ml::Regressor> value_model_;
};

}  // namespace lts::core
