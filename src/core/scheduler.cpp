#include "core/scheduler.hpp"

namespace lts::core {

LtsScheduler::LtsScheduler(TelemetryFetcher fetcher,
                           std::shared_ptr<const ml::Regressor> model,
                           FeatureSet features, double risk_aversion)
    : fetcher_(std::move(fetcher)),
      model_(std::move(model)),
      features_(features),
      risk_aversion_(risk_aversion) {
  LTS_REQUIRE(risk_aversion_ >= 0.0, "LtsScheduler: risk_aversion >= 0");
  LTS_REQUIRE(model_ != nullptr, "LtsScheduler: null model");
  LTS_REQUIRE(model_->is_fitted(), "LtsScheduler: model must be fitted");
}

Decision LtsScheduler::schedule(const spark::JobConfig& config,
                                SimTime now) const {
  return schedule_from_snapshot(fetcher_.fetch(now), config);
}

Decision LtsScheduler::schedule_from_snapshot(
    const telemetry::ClusterSnapshot& snapshot,
    const spark::JobConfig& config) const {
  std::vector<NodePrediction> predictions;
  predictions.reserve(snapshot.nodes.size());
  for (const auto& node : snapshot.nodes) {
    const auto features = FeatureConstructor::build(node, config, features_);
    double score;
    if (risk_aversion_ > 0.0) {
      const auto p = model_->predict_with_uncertainty(features);
      score = p.mean + risk_aversion_ * p.stddev;
    } else {
      score = model_->predict_row(features);
    }
    predictions.push_back(NodePrediction{node.node, score});
  }
  return DecisionModule::rank(std::move(predictions));
}

std::string LtsScheduler::build_manifest(const spark::JobConfig& config,
                                         const std::string& job_name,
                                         const Decision& decision) const {
  return JobBuilder::render_manifest(config, job_name, decision.selected());
}

}  // namespace lts::core
