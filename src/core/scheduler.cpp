#include "core/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <optional>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lts::core {
namespace {

/// Added to a stale node's predicted duration to push it below every fresh
/// node while preserving the relative order among stale nodes. Far larger
/// than any plausible job duration, far smaller than anything that loses
/// precision next to it.
constexpr double kStaleDemotionPenalty = 1e9;

struct SchedulerMetrics {
  obs::Counter& decisions = obs::counter(
      "lts_scheduler_decisions_total", {},
      "Placement decisions produced by LtsScheduler");
  obs::Counter& fallbacks = obs::counter(
      "lts_scheduler_fallback_total", {},
      "Decisions that used the spreading fallback ranking (model or "
      "snapshot unusable)");
  obs::Counter& stale_demoted = obs::counter(
      "lts_scheduler_stale_demoted_total", {},
      "Stale-telemetry nodes demoted to the bottom of a model ranking");
  static SchedulerMetrics& get() {
    static SchedulerMetrics m;
    return m;
  }
};

}  // namespace

LtsScheduler::LtsScheduler(TelemetryFetcher fetcher,
                           std::shared_ptr<const ml::Regressor> model,
                           FeatureSet features, double risk_aversion,
                           FallbackOptions fallback)
    : fetcher_(std::move(fetcher)),
      model_(std::move(model)),
      features_(features),
      risk_aversion_(risk_aversion),
      fallback_(fallback) {
  LTS_REQUIRE(risk_aversion_ >= 0.0, "LtsScheduler: risk_aversion >= 0");
  LTS_REQUIRE(fallback_.min_fresh_fraction >= 0.0 &&
                  fallback_.min_fresh_fraction <= 1.0,
              "LtsScheduler: min_fresh_fraction must be in [0, 1]");
  if (!fallback_.enabled) {
    LTS_REQUIRE(model_ != nullptr, "LtsScheduler: null model");
    LTS_REQUIRE(model_->is_fitted(), "LtsScheduler: model must be fitted");
  }
}

void LtsScheduler::set_model(std::shared_ptr<const ml::Regressor> model) {
  LTS_REQUIRE(model != nullptr, "LtsScheduler::set_model: null model");
  LTS_REQUIRE(model->is_fitted(),
              "LtsScheduler::set_model: model must be fitted");
  const std::lock_guard<std::mutex> lock(model_mutex_);
  model_ = std::move(model);
}

std::shared_ptr<const ml::Regressor> LtsScheduler::current_model() const {
  const std::lock_guard<std::mutex> lock(model_mutex_);
  return model_;
}

const ml::Regressor& LtsScheduler::model() const {
  // Reference accessor for synchronous inspection (CLI, tests); callers
  // that might race a hot-swap should hold current_model() instead.
  const std::lock_guard<std::mutex> lock(model_mutex_);
  LTS_REQUIRE(model_ != nullptr, "LtsScheduler: no model");
  return *model_;
}

bool LtsScheduler::has_usable_model() const {
  const auto model = current_model();
  return model != nullptr && model->is_fitted();
}

Decision LtsScheduler::schedule(const spark::JobConfig& config,
                                SimTime now) const {
  // Joins the caller's per-decision span when one is open (the job-stream
  // runner appends a "bind" phase after placement); otherwise the schedule
  // call is the whole span.
  obs::ScopedSpan span(obs::Tracer::global(), "schedule", now,
                       /*reuse_open=*/true);
  auto snapshot = fetcher_.fetch(now);
  span.phase("fetch", now);
  return schedule_from_snapshot(snapshot, config);
}

Decision LtsScheduler::schedule_from_snapshot(
    const telemetry::ClusterSnapshot& snapshot,
    const spark::JobConfig& config) const {
  obs::Tracer& tracer = obs::Tracer::global();
  auto& metrics = SchedulerMetrics::get();
  metrics.decisions.inc();
  // One pointer snapshot per decision: every node in this ranking is
  // scored by the same model even if a hot-swap lands mid-decision.
  const std::shared_ptr<const ml::Regressor> model = current_model();
  const bool model_usable = model != nullptr && model->is_fitted();
  if (fallback_.enabled) {
    std::size_t fresh = 0;
    for (const auto& node : snapshot.nodes) {
      if (!node.stale) ++fresh;
    }
    const bool snapshot_trusted =
        !snapshot.nodes.empty() &&
        static_cast<double>(fresh) >=
            fallback_.min_fresh_fraction *
                static_cast<double>(snapshot.nodes.size());
    if (!model_usable || !snapshot_trusted) {
      metrics.fallbacks.inc();
      Decision decision = fallback_rank(snapshot);
      tracer.phase("rank", snapshot.at);
      return decision;
    }
  }

  Decision decision;
  std::vector<std::vector<double>> rows;
  rows.reserve(snapshot.nodes.size());
  for (const auto& node : snapshot.nodes) {
    rows.push_back(FeatureConstructor::build(node, config, features_));
  }
  tracer.phase("features", snapshot.at);

  std::vector<NodePrediction> predictions;
  predictions.reserve(snapshot.nodes.size());
  for (std::size_t i = 0; i < snapshot.nodes.size(); ++i) {
    const auto& node = snapshot.nodes[i];
    double score;
    if (risk_aversion_ > 0.0) {
      const auto p = model->predict_with_uncertainty(rows[i]);
      score = p.mean + risk_aversion_ * p.stddev;
    } else {
      score = model->predict_row(rows[i]);
    }
    if (fallback_.enabled && fallback_.demote_stale && node.stale) {
      score += kStaleDemotionPenalty;
      ++decision.stale_demoted;
    }
    predictions.push_back(NodePrediction{node.node, score});
  }
  tracer.phase("predict", snapshot.at);

  const int stale_demoted = decision.stale_demoted;
  decision = DecisionModule::rank(std::move(predictions));
  decision.stale_demoted = stale_demoted;
  if (stale_demoted > 0) metrics.stale_demoted.inc(stale_demoted);
  tracer.phase("rank", snapshot.at);
  return decision;
}

std::vector<Decision> LtsScheduler::schedule_many(
    std::span<const spark::JobConfig> configs, SimTime now) const {
  const auto snapshot = fetcher_.fetch_shared(now);
  return schedule_batch(*snapshot, configs, /*own_spans=*/true, now);
}

std::vector<Decision> LtsScheduler::schedule_many_from_snapshot(
    const telemetry::ClusterSnapshot& snapshot,
    std::span<const spark::JobConfig> configs) const {
  return schedule_batch(snapshot, configs, /*own_spans=*/false, snapshot.at);
}

std::vector<Decision> LtsScheduler::schedule_batch(
    const telemetry::ClusterSnapshot& snapshot,
    std::span<const spark::JobConfig> configs, bool own_spans,
    SimTime span_begin) const {
  obs::Tracer& tracer = obs::Tracer::global();
  auto& metrics = SchedulerMetrics::get();
  std::vector<Decision> decisions;
  decisions.reserve(configs.size());
  if (configs.empty()) return decisions;

  // One pointer snapshot for the whole queue: sequential schedule() calls
  // take it per decision, but the sequences only differ if a hot-swap lands
  // mid-queue — exactly the window batching is meant to close.
  const std::shared_ptr<const ml::Regressor> model = current_model();
  const bool model_usable = model != nullptr && model->is_fitted();
  bool use_fallback = false;
  if (fallback_.enabled) {
    std::size_t fresh = 0;
    for (const auto& node : snapshot.nodes) {
      if (!node.stale) ++fresh;
    }
    const bool snapshot_trusted =
        !snapshot.nodes.empty() &&
        static_cast<double>(fresh) >=
            fallback_.min_fresh_fraction *
                static_cast<double>(snapshot.nodes.size());
    use_fallback = !model_usable || !snapshot_trusted;
  }

  // One row-major feature block over every (pod, node) candidate, one
  // batched predict. Rows are grouped by config, nodes in snapshot order
  // within each group — the same per-row vectors the scalar path builds.
  //
  // Queues are full of replicas: a deployment submits N pods with one spec,
  // and the workload model draws from a handful of app templates, so many
  // candidate rows are bit-for-bit equal. Each distinct row is scored once
  // and the result fanned out. Dedup keys on exact byte equality of the
  // feature vector — never a tolerance — so a prediction lands on exactly
  // the rows that would have produced it anyway and no decision can differ
  // from the undeduplicated block.
  const std::size_t n_nodes = snapshot.nodes.size();
  const std::size_t cols = FeatureConstructor::num_features(features_);
  std::vector<double> scores;
  if (!use_fallback) {
    const std::size_t n_rows = configs.size() * n_nodes;
    std::vector<double> block;          // distinct rows only
    block.reserve(n_rows * cols);
    std::vector<std::size_t> row_of;    // candidate row -> distinct row
    row_of.reserve(n_rows);
    // Open-addressed probe table keyed by a 64-bit mix of the raw double
    // bits; hash matches still compare the full row, so equality is exact.
    std::size_t cap = 16;
    while (cap < n_rows * 2) cap <<= 1;
    std::vector<std::int32_t> slot(cap, -1);  // distinct-row index
    std::vector<std::uint64_t> slot_hash(cap);
    for (const auto& config : configs) {
      for (const auto& node : snapshot.nodes) {
        const auto row = FeatureConstructor::build(node, config, features_);
        std::uint64_t h = 0x9e3779b97f4a7c15ULL;
        for (const double v : row) {
          h ^= std::bit_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ULL +
               (h << 6) + (h >> 2);
        }
        std::size_t s = h & (cap - 1);
        std::size_t found = block.size() / cols;
        while (slot[s] >= 0) {
          const auto u = static_cast<std::size_t>(slot[s]);
          if (slot_hash[s] == h &&
              std::equal(row.begin(), row.end(),
                         block.begin() +
                             static_cast<std::ptrdiff_t>(u * cols))) {
            found = u;
            break;
          }
          s = (s + 1) & (cap - 1);
        }
        if (found == block.size() / cols) {
          slot[s] = static_cast<std::int32_t>(found);
          slot_hash[s] = h;
          block.insert(block.end(), row.begin(), row.end());
        }
        row_of.push_back(found);
      }
    }
    const std::size_t n_unique = block.size() / cols;
    std::vector<double> unique_scores(n_unique);
    if (risk_aversion_ > 0.0) {
      // Uncertainty needs the per-tree spread, which the flattened kernel
      // does not expose; score row by row (still one snapshot fetch).
      for (std::size_t u = 0; u < n_unique; ++u) {
        const auto p = model->predict_with_uncertainty(
            std::span<const double>(block).subspan(u * cols, cols));
        unique_scores[u] = p.mean + risk_aversion_ * p.stddev;
      }
    } else {
      model->predict_batch(block, n_unique, cols, unique_scores);
    }
    scores.resize(n_rows);
    for (std::size_t r = 0; r < n_rows; ++r) {
      scores[r] = unique_scores[row_of[r]];
    }
  }

  for (std::size_t c = 0; c < configs.size(); ++c) {
    // Per-decision span bookkeeping replicates the sequential calls: with
    // own_spans each decision gets its own "schedule" span (joined to the
    // caller's if one is open) starting with a "fetch" phase — the fetch
    // that logically served it came from the cache.
    std::optional<obs::ScopedSpan> span;
    if (own_spans) {
      span.emplace(tracer, "schedule", span_begin, /*reuse_open=*/true);
      span->phase("fetch", span_begin);
    }
    metrics.decisions.inc();
    if (use_fallback) {
      metrics.fallbacks.inc();
      decisions.push_back(fallback_rank(snapshot));
      tracer.phase("rank", snapshot.at);
      continue;
    }
    tracer.phase("features", snapshot.at);
    Decision decision;
    std::vector<NodePrediction> predictions;
    predictions.reserve(n_nodes);
    for (std::size_t i = 0; i < n_nodes; ++i) {
      const auto& node = snapshot.nodes[i];
      double score = scores[c * n_nodes + i];
      if (fallback_.enabled && fallback_.demote_stale && node.stale) {
        score += kStaleDemotionPenalty;
        ++decision.stale_demoted;
      }
      predictions.push_back(NodePrediction{node.node, score});
    }
    tracer.phase("predict", snapshot.at);
    const int stale_demoted = decision.stale_demoted;
    decision = DecisionModule::rank(std::move(predictions));
    decision.stale_demoted = stale_demoted;
    if (stale_demoted > 0) metrics.stale_demoted.inc(stale_demoted);
    tracer.phase("rank", snapshot.at);
    decisions.push_back(std::move(decision));
  }
  return decisions;
}

Decision LtsScheduler::fallback_rank(
    const telemetry::ClusterSnapshot& snapshot) const {
  // Spreading heuristic in the spirit of kube's least-allocated scoring,
  // but over observed telemetry (the fallback still runs outside the
  // control plane): prefer low CPU load and a high share of the cluster's
  // best-case available memory. Deterministic — DecisionModule breaks ties
  // by node name.
  double max_mem = 0.0;
  for (const auto& node : snapshot.nodes) {
    max_mem = std::max(max_mem, node.mem_available);
  }
  std::vector<NodePrediction> predictions;
  predictions.reserve(snapshot.nodes.size());
  for (const auto& node : snapshot.nodes) {
    const double mem_frac =
        max_mem > 0.0 ? node.mem_available / max_mem : 0.0;
    predictions.push_back(NodePrediction{node.node, node.cpu_load +
                                                        (1.0 - mem_frac)});
  }
  Decision decision = DecisionModule::rank(std::move(predictions));
  decision.used_fallback = true;
  return decision;
}

std::string LtsScheduler::build_manifest(const spark::JobConfig& config,
                                         const std::string& job_name,
                                         const Decision& decision) const {
  return JobBuilder::render_manifest(config, job_name, decision.selected());
}

}  // namespace lts::core
