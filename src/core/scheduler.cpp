#include "core/scheduler.hpp"

#include <algorithm>

namespace lts::core {
namespace {

/// Added to a stale node's predicted duration to push it below every fresh
/// node while preserving the relative order among stale nodes. Far larger
/// than any plausible job duration, far smaller than anything that loses
/// precision next to it.
constexpr double kStaleDemotionPenalty = 1e9;

}  // namespace

LtsScheduler::LtsScheduler(TelemetryFetcher fetcher,
                           std::shared_ptr<const ml::Regressor> model,
                           FeatureSet features, double risk_aversion,
                           FallbackOptions fallback)
    : fetcher_(std::move(fetcher)),
      model_(std::move(model)),
      features_(features),
      risk_aversion_(risk_aversion),
      fallback_(fallback) {
  LTS_REQUIRE(risk_aversion_ >= 0.0, "LtsScheduler: risk_aversion >= 0");
  LTS_REQUIRE(fallback_.min_fresh_fraction >= 0.0 &&
                  fallback_.min_fresh_fraction <= 1.0,
              "LtsScheduler: min_fresh_fraction must be in [0, 1]");
  if (!fallback_.enabled) {
    LTS_REQUIRE(model_ != nullptr, "LtsScheduler: null model");
    LTS_REQUIRE(model_->is_fitted(), "LtsScheduler: model must be fitted");
  }
}

const ml::Regressor& LtsScheduler::model() const {
  LTS_REQUIRE(model_ != nullptr, "LtsScheduler: no model");
  return *model_;
}

bool LtsScheduler::has_usable_model() const {
  return model_ != nullptr && model_->is_fitted();
}

Decision LtsScheduler::schedule(const spark::JobConfig& config,
                                SimTime now) const {
  return schedule_from_snapshot(fetcher_.fetch(now), config);
}

Decision LtsScheduler::schedule_from_snapshot(
    const telemetry::ClusterSnapshot& snapshot,
    const spark::JobConfig& config) const {
  if (fallback_.enabled) {
    std::size_t fresh = 0;
    for (const auto& node : snapshot.nodes) {
      if (!node.stale) ++fresh;
    }
    const bool snapshot_trusted =
        !snapshot.nodes.empty() &&
        static_cast<double>(fresh) >=
            fallback_.min_fresh_fraction *
                static_cast<double>(snapshot.nodes.size());
    if (!has_usable_model() || !snapshot_trusted) {
      return fallback_rank(snapshot);
    }
  }

  Decision decision;
  std::vector<NodePrediction> predictions;
  predictions.reserve(snapshot.nodes.size());
  for (const auto& node : snapshot.nodes) {
    const auto features = FeatureConstructor::build(node, config, features_);
    double score;
    if (risk_aversion_ > 0.0) {
      const auto p = model_->predict_with_uncertainty(features);
      score = p.mean + risk_aversion_ * p.stddev;
    } else {
      score = model_->predict_row(features);
    }
    if (fallback_.enabled && fallback_.demote_stale && node.stale) {
      score += kStaleDemotionPenalty;
      ++decision.stale_demoted;
    }
    predictions.push_back(NodePrediction{node.node, score});
  }
  const int stale_demoted = decision.stale_demoted;
  decision = DecisionModule::rank(std::move(predictions));
  decision.stale_demoted = stale_demoted;
  return decision;
}

Decision LtsScheduler::fallback_rank(
    const telemetry::ClusterSnapshot& snapshot) const {
  // Spreading heuristic in the spirit of kube's least-allocated scoring,
  // but over observed telemetry (the fallback still runs outside the
  // control plane): prefer low CPU load and a high share of the cluster's
  // best-case available memory. Deterministic — DecisionModule breaks ties
  // by node name.
  double max_mem = 0.0;
  for (const auto& node : snapshot.nodes) {
    max_mem = std::max(max_mem, node.mem_available);
  }
  std::vector<NodePrediction> predictions;
  predictions.reserve(snapshot.nodes.size());
  for (const auto& node : snapshot.nodes) {
    const double mem_frac =
        max_mem > 0.0 ? node.mem_available / max_mem : 0.0;
    predictions.push_back(NodePrediction{node.node, node.cpu_load +
                                                        (1.0 - mem_frac)});
  }
  Decision decision = DecisionModule::rank(std::move(predictions));
  decision.used_fallback = true;
  return decision;
}

std::string LtsScheduler::build_manifest(const spark::JobConfig& config,
                                         const std::string& job_name,
                                         const Decision& decision) const {
  return JobBuilder::render_manifest(config, job_name, decision.selected());
}

}  // namespace lts::core
