#include "core/scheduler.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lts::core {
namespace {

/// Added to a stale node's predicted duration to push it below every fresh
/// node while preserving the relative order among stale nodes. Far larger
/// than any plausible job duration, far smaller than anything that loses
/// precision next to it.
constexpr double kStaleDemotionPenalty = 1e9;

struct SchedulerMetrics {
  obs::Counter& decisions = obs::counter(
      "lts_scheduler_decisions_total", {},
      "Placement decisions produced by LtsScheduler");
  obs::Counter& fallbacks = obs::counter(
      "lts_scheduler_fallback_total", {},
      "Decisions that used the spreading fallback ranking (model or "
      "snapshot unusable)");
  obs::Counter& stale_demoted = obs::counter(
      "lts_scheduler_stale_demoted_total", {},
      "Stale-telemetry nodes demoted to the bottom of a model ranking");
  static SchedulerMetrics& get() {
    static SchedulerMetrics m;
    return m;
  }
};

}  // namespace

LtsScheduler::LtsScheduler(TelemetryFetcher fetcher,
                           std::shared_ptr<const ml::Regressor> model,
                           FeatureSet features, double risk_aversion,
                           FallbackOptions fallback)
    : fetcher_(std::move(fetcher)),
      model_(std::move(model)),
      features_(features),
      risk_aversion_(risk_aversion),
      fallback_(fallback) {
  LTS_REQUIRE(risk_aversion_ >= 0.0, "LtsScheduler: risk_aversion >= 0");
  LTS_REQUIRE(fallback_.min_fresh_fraction >= 0.0 &&
                  fallback_.min_fresh_fraction <= 1.0,
              "LtsScheduler: min_fresh_fraction must be in [0, 1]");
  if (!fallback_.enabled) {
    LTS_REQUIRE(model_ != nullptr, "LtsScheduler: null model");
    LTS_REQUIRE(model_->is_fitted(), "LtsScheduler: model must be fitted");
  }
}

void LtsScheduler::set_model(std::shared_ptr<const ml::Regressor> model) {
  LTS_REQUIRE(model != nullptr, "LtsScheduler::set_model: null model");
  LTS_REQUIRE(model->is_fitted(),
              "LtsScheduler::set_model: model must be fitted");
  const std::lock_guard<std::mutex> lock(model_mutex_);
  model_ = std::move(model);
}

std::shared_ptr<const ml::Regressor> LtsScheduler::current_model() const {
  const std::lock_guard<std::mutex> lock(model_mutex_);
  return model_;
}

const ml::Regressor& LtsScheduler::model() const {
  // Reference accessor for synchronous inspection (CLI, tests); callers
  // that might race a hot-swap should hold current_model() instead.
  const std::lock_guard<std::mutex> lock(model_mutex_);
  LTS_REQUIRE(model_ != nullptr, "LtsScheduler: no model");
  return *model_;
}

bool LtsScheduler::has_usable_model() const {
  const auto model = current_model();
  return model != nullptr && model->is_fitted();
}

Decision LtsScheduler::schedule(const spark::JobConfig& config,
                                SimTime now) const {
  // Joins the caller's per-decision span when one is open (the job-stream
  // runner appends a "bind" phase after placement); otherwise the schedule
  // call is the whole span.
  obs::ScopedSpan span(obs::Tracer::global(), "schedule", now,
                       /*reuse_open=*/true);
  auto snapshot = fetcher_.fetch(now);
  span.phase("fetch", now);
  return schedule_from_snapshot(snapshot, config);
}

Decision LtsScheduler::schedule_from_snapshot(
    const telemetry::ClusterSnapshot& snapshot,
    const spark::JobConfig& config) const {
  obs::Tracer& tracer = obs::Tracer::global();
  auto& metrics = SchedulerMetrics::get();
  metrics.decisions.inc();
  // One pointer snapshot per decision: every node in this ranking is
  // scored by the same model even if a hot-swap lands mid-decision.
  const std::shared_ptr<const ml::Regressor> model = current_model();
  const bool model_usable = model != nullptr && model->is_fitted();
  if (fallback_.enabled) {
    std::size_t fresh = 0;
    for (const auto& node : snapshot.nodes) {
      if (!node.stale) ++fresh;
    }
    const bool snapshot_trusted =
        !snapshot.nodes.empty() &&
        static_cast<double>(fresh) >=
            fallback_.min_fresh_fraction *
                static_cast<double>(snapshot.nodes.size());
    if (!model_usable || !snapshot_trusted) {
      metrics.fallbacks.inc();
      Decision decision = fallback_rank(snapshot);
      tracer.phase("rank", snapshot.at);
      return decision;
    }
  }

  Decision decision;
  std::vector<std::vector<double>> rows;
  rows.reserve(snapshot.nodes.size());
  for (const auto& node : snapshot.nodes) {
    rows.push_back(FeatureConstructor::build(node, config, features_));
  }
  tracer.phase("features", snapshot.at);

  std::vector<NodePrediction> predictions;
  predictions.reserve(snapshot.nodes.size());
  for (std::size_t i = 0; i < snapshot.nodes.size(); ++i) {
    const auto& node = snapshot.nodes[i];
    double score;
    if (risk_aversion_ > 0.0) {
      const auto p = model->predict_with_uncertainty(rows[i]);
      score = p.mean + risk_aversion_ * p.stddev;
    } else {
      score = model->predict_row(rows[i]);
    }
    if (fallback_.enabled && fallback_.demote_stale && node.stale) {
      score += kStaleDemotionPenalty;
      ++decision.stale_demoted;
    }
    predictions.push_back(NodePrediction{node.node, score});
  }
  tracer.phase("predict", snapshot.at);

  const int stale_demoted = decision.stale_demoted;
  decision = DecisionModule::rank(std::move(predictions));
  decision.stale_demoted = stale_demoted;
  if (stale_demoted > 0) metrics.stale_demoted.inc(stale_demoted);
  tracer.phase("rank", snapshot.at);
  return decision;
}

Decision LtsScheduler::fallback_rank(
    const telemetry::ClusterSnapshot& snapshot) const {
  // Spreading heuristic in the spirit of kube's least-allocated scoring,
  // but over observed telemetry (the fallback still runs outside the
  // control plane): prefer low CPU load and a high share of the cluster's
  // best-case available memory. Deterministic — DecisionModule breaks ties
  // by node name.
  double max_mem = 0.0;
  for (const auto& node : snapshot.nodes) {
    max_mem = std::max(max_mem, node.mem_available);
  }
  std::vector<NodePrediction> predictions;
  predictions.reserve(snapshot.nodes.size());
  for (const auto& node : snapshot.nodes) {
    const double mem_frac =
        max_mem > 0.0 ? node.mem_available / max_mem : 0.0;
    predictions.push_back(NodePrediction{node.node, node.cpu_load +
                                                        (1.0 - mem_frac)});
  }
  Decision decision = DecisionModule::rank(std::move(predictions));
  decision.used_fallback = true;
  return decision;
}

std::string LtsScheduler::build_manifest(const spark::JobConfig& config,
                                         const std::string& job_name,
                                         const Decision& decision) const {
  return JobBuilder::render_manifest(config, job_name, decision.selected());
}

}  // namespace lts::core
