// Feature Constructor (§3.2.3, Table 1).
//
// Transforms one candidate node's telemetry digest plus the static job
// configuration into the fixed-size numeric vector the supervised model
// consumes. Feature order is part of the model contract: serialized models
// embed schema_version and refuse to score mismatched vectors.
//
// Units are chosen so every feature lands in a human-scale range
// (milliseconds, MB/s, GiB): irrelevant for trees, kind to the linear
// baseline, and it makes logged rows directly readable (Table 3).
#pragma once

#include <string>
#include <vector>

#include "spark/job.hpp"
#include "telemetry/snapshot.hpp"

namespace lts::core {

/// Bump when the feature layout changes.
inline constexpr int kFeatureSchemaVersion = 2;

/// Which telemetry the model consumes.
///   kTable1 — exactly the paper's feature set (Table 1).
///   kRich   — Table 1 plus the §8 extension: per-interface utilization,
///             estimated queueing delay, and passive flow counts.
enum class FeatureSet { kTable1, kRich };

class FeatureConstructor {
 public:
  /// Names, in vector order.
  static const std::vector<std::string>& feature_names(
      FeatureSet set = FeatureSet::kTable1);
  static std::size_t num_features(FeatureSet set = FeatureSet::kTable1);

  /// Builds the model input for scheduling `config` onto the node described
  /// by `node_telemetry`.
  static std::vector<double> build(
      const telemetry::NodeTelemetry& node_telemetry,
      const spark::JobConfig& config, FeatureSet set = FeatureSet::kTable1);

  /// Builds vectors for every node in the snapshot (same order).
  static std::vector<std::vector<double>> build_all(
      const telemetry::ClusterSnapshot& snapshot,
      const spark::JobConfig& config, FeatureSet set = FeatureSet::kTable1);
};

}  // namespace lts::core
