// Logger (§3.2.5): records telemetry before each job launches (the system
// state snapshot) and application-level outcomes after it completes. The
// accumulated CSV is the offline training corpus.
#pragma once

#include <string>

#include "spark/job.hpp"
#include "spark/runtime.hpp"
#include "telemetry/snapshot.hpp"
#include "util/csv.hpp"

namespace lts::core {

/// One training row: pre-launch telemetry of the node the driver ran on,
/// joined with the job configuration and the measured completion time.
struct TrainingRecord {
  std::string scenario_id;
  std::string node;
  SimTime snapshot_time = 0.0;
  telemetry::NodeTelemetry telemetry;
  spark::JobConfig config;
  double duration = 0.0;          // the prediction target
  Bytes shuffle_bytes = 0.0;      // application-level extras, for analysis
  double max_spill_penalty = 1.0;
};

class TrainingLogger {
 public:
  TrainingLogger();

  /// Appends one completed execution.
  void log(const TrainingRecord& record);

  /// Convenience: builds the record from the snapshot + result.
  void log_run(const std::string& scenario_id,
               const telemetry::ClusterSnapshot& pre_launch,
               const spark::JobConfig& config,
               const spark::AppResult& result);

  std::size_t size() const { return table_.num_rows(); }
  const CsvTable& table() const { return table_; }

  void write_file(const std::string& path) const;

  /// The schema shared by writer and Trainer.
  static std::vector<std::string> columns();

  /// Reconstructs a record from a logged row (inverse of log()).
  static TrainingRecord parse_row(const CsvTable& table, std::size_t row);

 private:
  CsvTable table_;
};

}  // namespace lts::core
