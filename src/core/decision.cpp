#include "core/decision.hpp"

#include <algorithm>

namespace lts::core {

const std::string& Decision::selected() const {
  LTS_REQUIRE(!ranking.empty(), "Decision: empty ranking");
  return ranking.front().node;
}

bool Decision::in_top_k(const std::string& node, int k) const {
  const std::size_t limit =
      std::min(static_cast<std::size_t>(k), ranking.size());
  for (std::size_t i = 0; i < limit; ++i) {
    if (ranking[i].node == node) return true;
  }
  return false;
}

Decision DecisionModule::rank(std::vector<NodePrediction> predictions) {
  LTS_REQUIRE(!predictions.empty(), "DecisionModule: no candidates");
  std::sort(predictions.begin(), predictions.end(),
            [](const NodePrediction& a, const NodePrediction& b) {
              if (a.predicted_duration != b.predicted_duration) {
                return a.predicted_duration < b.predicted_duration;
              }
              return a.node < b.node;
            });
  return Decision{std::move(predictions)};
}

}  // namespace lts::core
