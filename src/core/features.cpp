#include "core/features.hpp"

namespace lts::core {

namespace {
constexpr double kMs = 1e3;           // seconds -> milliseconds
constexpr double kMBps = 1.0 / 1e6;   // bytes/s -> MB/s
constexpr double kGiB = 1.0 / (1024.0 * 1024.0 * 1024.0);
}  // namespace

const std::vector<std::string>& FeatureConstructor::feature_names(
    FeatureSet set) {
  static const std::vector<std::string> kTable1Names = {
      // Network-level telemetry (Table 1).
      "rtt_mean_ms",
      "rtt_max_ms",
      "rtt_std_ms",
      "tx_rate_mbps",
      "rx_rate_mbps",
      // Node-level telemetry.
      "cpu_load",
      "mem_available_gib",
      // Job configuration: categorical app type, one-hot.
      "app_sort",
      "app_pagerank",
      "app_join",
      "app_groupby",
      // Job configuration: numeric.
      "input_records",
      "executors",
      "executor_memory_gib",
      "shuffle_partitions",
  };
  static const std::vector<std::string> kRichNames = [] {
    std::vector<std::string> names = kTable1Names;
    names.insert(names.end(), {"uplink_util", "downlink_util",
                               "queue_delay_ms", "active_flows"});
    return names;
  }();
  return set == FeatureSet::kRich ? kRichNames : kTable1Names;
}

std::size_t FeatureConstructor::num_features(FeatureSet set) {
  return feature_names(set).size();
}

std::vector<double> FeatureConstructor::build(
    const telemetry::NodeTelemetry& t, const spark::JobConfig& config,
    FeatureSet set) {
  std::vector<double> x;
  x.reserve(num_features(set));
  x.push_back(t.rtt_mean * kMs);
  x.push_back(t.rtt_max * kMs);
  x.push_back(t.rtt_std * kMs);
  x.push_back(t.tx_rate * kMBps);
  x.push_back(t.rx_rate * kMBps);
  x.push_back(t.cpu_load);
  x.push_back(t.mem_available * kGiB);
  for (const auto app : spark::kAllAppTypes) {
    x.push_back(config.app == app ? 1.0 : 0.0);
  }
  x.push_back(static_cast<double>(config.input_records));
  x.push_back(static_cast<double>(config.executors));
  x.push_back(config.executor_memory * kGiB);
  x.push_back(static_cast<double>(config.effective_shuffle_partitions()));
  if (set == FeatureSet::kRich) {
    x.push_back(t.uplink_util);
    x.push_back(t.downlink_util);
    x.push_back(t.queue_delay * kMs);
    x.push_back(t.active_flows);
  }
  LTS_ASSERT(x.size() == num_features(set));
  return x;
}

std::vector<std::vector<double>> FeatureConstructor::build_all(
    const telemetry::ClusterSnapshot& snapshot,
    const spark::JobConfig& config, FeatureSet set) {
  std::vector<std::vector<double>> out;
  out.reserve(snapshot.nodes.size());
  for (const auto& node : snapshot.nodes) {
    out.push_back(build(node, config, set));
  }
  return out;
}

}  // namespace lts::core
