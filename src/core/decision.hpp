// Decision Module (§3.2.3): ranks candidate nodes in ascending order of
// predicted job completion time; the top-ranked node is the launch node.
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"

namespace lts::core {

struct NodePrediction {
  std::string node;
  double predicted_duration = 0.0;  // seconds
};

struct Decision {
  /// Ascending by predicted duration (ties broken by node name so the
  /// decision is deterministic).
  std::vector<NodePrediction> ranking;
  /// True if the fallback ranking produced this decision (model unusable or
  /// too little fresh telemetry); the "scores" are then spreading heuristic
  /// values, not predicted durations.
  bool used_fallback = false;
  /// Nodes pushed to the bottom of a model ranking for stale telemetry.
  int stale_demoted = 0;

  const std::string& selected() const;
  /// True if `node` is among the first k entries.
  bool in_top_k(const std::string& node, int k) const;
};

class DecisionModule {
 public:
  static Decision rank(std::vector<NodePrediction> predictions);
};

}  // namespace lts::core
