#include "tenant/stream.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "core/job_builder.hpp"
#include "core/scheduler.hpp"
#include "obs/metrics.hpp"
#include "spark/runtime.hpp"
#include "spark/workloads.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"

namespace lts::tenant {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// FNV-1a over the tenant name: a stable, platform-independent salt for the
/// per-tenant RNG streams (std::hash would not be reproducible).
std::uint64_t name_salt(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Total requests of one job's pods: the quantity DRF accounts per tenant.
k8s::Resources job_demand(const spark::JobConfig& config) {
  const double e = static_cast<double>(config.executors);
  return {config.driver_cores + e * config.executor_cores,
          config.driver_memory + e * config.executor_memory};
}

}  // namespace

std::vector<SimTime> draw_arrivals(int num_jobs, const ArrivalOptions& options,
                                   Rng& rng, SimTime start) {
  LTS_REQUIRE(num_jobs >= 1, "draw_arrivals: num_jobs >= 1");
  LTS_REQUIRE(options.mean_interarrival > 0.0,
              "draw_arrivals: mean_interarrival > 0");
  std::vector<SimTime> arrivals;
  arrivals.reserve(static_cast<std::size_t>(num_jobs));
  SimTime t = start;
  switch (options.process) {
    case ArrivalProcess::kExponential:
      for (int j = 0; j < num_jobs; ++j) {
        t += rng.exponential(options.mean_interarrival);
        arrivals.push_back(t);
      }
      break;
    case ArrivalProcess::kBursty: {
      LTS_REQUIRE(options.burst_size >= 1, "draw_arrivals: burst_size >= 1");
      LTS_REQUIRE(options.burst_spacing >= 0.0,
                  "draw_arrivals: burst_spacing >= 0");
      // Bursts of `burst_size` jobs `burst_spacing` apart; burst gaps are
      // exponential with mean burst_size * mean_interarrival so the
      // long-run arrival rate matches the exponential process.
      const SimTime gap_mean =
          static_cast<SimTime>(options.burst_size) * options.mean_interarrival;
      while (static_cast<int>(arrivals.size()) < num_jobs) {
        t += rng.exponential(gap_mean);
        SimTime at = t;
        for (int b = 0;
             b < options.burst_size &&
             static_cast<int>(arrivals.size()) < num_jobs;
             ++b) {
          arrivals.push_back(at);
          at += options.burst_spacing;
        }
        t = std::max(t, at - options.burst_spacing);
      }
      break;
    }
    case ArrivalProcess::kDiurnal: {
      LTS_REQUIRE(options.diurnal_amplitude >= 0.0 &&
                      options.diurnal_amplitude < 1.0,
                  "draw_arrivals: diurnal_amplitude in [0, 1)");
      LTS_REQUIRE(options.diurnal_period > 0.0,
                  "draw_arrivals: diurnal_period > 0");
      // Rate-modulated renewal process: the instantaneous rate factor is
      // 1 + A * sin(2*pi*t/P), so gaps shrink at the daily peak and stretch
      // in the trough while the long-run mean gap stays mean_interarrival.
      for (int j = 0; j < num_jobs; ++j) {
        const double factor =
            1.0 + options.diurnal_amplitude *
                      std::sin(2.0 * kPi * t / options.diurnal_period);
        t += rng.exponential(options.mean_interarrival) / factor;
        arrivals.push_back(t);
      }
      break;
    }
  }
  // Strictly increasing, so same-tenant arrival events keep queue order.
  for (std::size_t j = 1; j < arrivals.size(); ++j) {
    if (arrivals[j] <= arrivals[j - 1]) {
      arrivals[j] = arrivals[j - 1] + 1e-9;
    }
  }
  return arrivals;
}

TenantStreamsResult run_tenant_streams(const std::vector<exp::Scenario>& matrix,
                                       const TenantStreamsOptions& options) {
  LTS_REQUIRE(!options.tenants.empty(), "run_tenant_streams: no tenants");
  LTS_REQUIRE(options.max_placement_retries >= 1,
              "run_tenant_streams: max_placement_retries >= 1");
  LTS_REQUIRE(options.retry_delay > 0.0,
              "run_tenant_streams: retry_delay > 0");
  for (const auto& t : options.tenants) {
    LTS_REQUIRE(t.num_jobs >= 1, "run_tenant_streams: tenant " + t.spec.name +
                                     " num_jobs >= 1");
    LTS_REQUIRE(t.policy != exp::StreamPolicy::kModelRetrain,
                "run_tenant_streams: kModelRetrain is single-tenant only");
    if (t.policy == exp::StreamPolicy::kModel) {
      LTS_REQUIRE(t.model != nullptr && t.model->is_fitted(),
                  "run_tenant_streams: tenant " + t.spec.name +
                      " uses kModel but has no fitted model");
    }
  }

  exp::SimEnv env(options.seed, options.env);

  // DRF shares are measured against the cluster-wide allocatable total.
  k8s::Resources capacity;
  for (const auto& node : env.api().nodes()) {
    capacity = capacity + node.allocatable;
  }
  std::vector<TenantSpec> specs;
  specs.reserve(options.tenants.size());
  for (const auto& t : options.tenants) specs.push_back(t.spec);
  DrfAllocator alloc(std::move(specs), capacity);

  struct PlannedJob {
    const exp::Scenario* scenario = nullptr;
    SimTime arrival = 0.0;
    std::uint64_t job_seed = 0;
    std::uint64_t random_draw = 0;  // kRandom's pre-drawn pick
  };

  // Per-tenant runtime state. The plan — arrivals, scenarios, seeds, the
  // kRandom draw — is a function of (options.seed, tenant name, arrival
  // options, matrix) only: identical across sharing modes and across every
  // tenant's level-two policy, so fairness comparisons hold the workload
  // fixed. std::map keys the pump's iteration by tenant name (ordered).
  struct TenantRun {
    const TenantStreamOptions* options = nullptr;
    TenantStreamResult* result = nullptr;
    std::vector<PlannedJob> plan;
    /// Job indices awaiting placement, kept sorted ascending (= arrival
    /// order; preempted jobs re-enter at their original position).
    std::vector<std::size_t> pending;
    std::vector<std::unique_ptr<spark::SparkApp>> apps;
    std::vector<std::vector<std::string>> bound;  // live pod names per job
    std::unique_ptr<core::LtsScheduler> scheduler;  // kModel only
    exp::StreamCounters counters;
    obs::Counter* preemptions = nullptr;
  };

  TenantStreamsResult result;
  result.tenants.resize(options.tenants.size());

  std::map<std::string, TenantRun> runs;
  int remaining = 0;
  SimTime last_arrival = 0.0;
  for (std::size_t i = 0; i < options.tenants.size(); ++i) {
    const TenantStreamOptions& topt = options.tenants[i];
    const std::string& name = topt.spec.name;
    TenantStreamResult& tres = result.tenants[i];
    tres.tenant = name;
    tres.jobs.resize(static_cast<std::size_t>(topt.num_jobs));

    auto [it, inserted] = runs.emplace(
        name, TenantRun{&topt, &tres, {}, {}, {}, {}, nullptr,
                        exp::stream_counters(name), nullptr});
    LTS_REQUIRE(inserted, "run_tenant_streams: duplicate tenant " + name);
    TenantRun& run = it->second;
    run.preemptions = &obs::counter(
        "lts_tenant_preemptions_total", {{"tenant", name}},
        "Jobs preempted (cancelled and re-queued) while over quota");

    Rng rng(options.seed ^ name_salt(name) ^ 0x57AE57AEULL);
    const auto arrivals = draw_arrivals(topt.num_jobs, topt.arrivals, rng,
                                        options.env.warmup);
    const std::uint64_t tenant_seed = options.seed ^ name_salt(name);
    run.plan.reserve(arrivals.size());
    for (std::size_t j = 0; j < arrivals.size(); ++j) {
      run.plan.push_back(PlannedJob{
          &exp::sample_scenario(matrix, rng), arrivals[j],
          tenant_seed * 1000003ULL + static_cast<std::uint64_t>(j), rng()});
      tres.jobs[j].planned_arrival = arrivals[j];
      last_arrival = std::max(last_arrival, arrivals[j]);
    }
    run.apps.resize(arrivals.size());
    run.bound.resize(arrivals.size());
    if (topt.policy == exp::StreamPolicy::kModel) {
      run.scheduler = std::make_unique<core::LtsScheduler>(
          core::TelemetryFetcher(env.tsdb(), env.node_names(),
                                 options.env.snapshot),
          topt.model, options.features);
    }
    remaining += topt.num_jobs;
  }

  obs::Counter& offer_rounds_counter =
      obs::counter("lts_tenant_offer_rounds_total", {},
                   "Two-level allocation rounds with at least one offer");

  // ---- the allocation pump ----------------------------------------------
  // One pump = repeated allocation rounds until a full round places
  // nothing. Each round offers the free nodes to tenants hungriest-first
  // (kDrf) or to the globally earliest pending job (kFifo), head-of-queue
  // only per tenant; a tenant that cannot use the offer passes it on.
  // Pumps fire on arrivals, completions, evictions, and the 5 s retry tick
  // — deferral counting (and the bounded-retry failure) happens only on
  // arrival/tick pumps, so opportunistic re-checks after completions do not
  // inflate the retry budget.
  bool tick_scheduled = false;
  std::function<void(bool)> pump;

  auto free_capacity = [&] {
    k8s::Resources free;
    for (const auto& node : env.api().nodes()) {
      if (!node.ready) continue;
      const k8s::Resources headroom = node.allocatable - node.requested;
      free.cpu += std::max(0.0, headroom.cpu);
      free.memory += std::max(0.0, headroom.memory);
    }
    return free;
  };

  auto offered_nodes = [&] {
    std::vector<std::string> offered;
    for (const auto& node : env.api().nodes()) {
      const k8s::Resources headroom = node.allocatable - node.requested;
      if (node.ready && headroom.cpu > 0.0 && headroom.memory > 0.0) {
        offered.push_back(node.name);
      }
    }
    return offered;
  };

  auto job_key = [](std::size_t j) { return strformat("job-%06zu", j); };

  // Cancels a running job, releases its pods and accounting, and re-queues
  // it at its original position in the tenant's queue.
  auto evict = [&](const PreemptionVictim& victim) {
    TenantRun& run = runs.at(victim.tenant);
    const std::size_t j = std::stoul(victim.job.substr(4));
    LTS_ASSERT(run.apps[j] != nullptr);
    run.apps[j]->cancel();
    run.apps[j].reset();
    for (const auto& pod : run.bound[j]) env.api().remove_pod(pod);
    run.bound[j].clear();
    alloc.release(victim.tenant, victim.job, env.engine().now());
    run.pending.insert(
        std::lower_bound(run.pending.begin(), run.pending.end(), j), j);
    ++run.result->jobs[j].preemptions;
    ++run.result->preemptions_suffered;
    ++result.total_preemptions;
    run.preemptions->inc();
  };

  // Attempts to place tenant `name`'s job `j` right now. On success the
  // job's pods are bound, its usage charged, and its app submitted. Returns
  // false if the offer could not be used; `count_failure` then decides
  // whether this counts against the job's retry budget.
  auto try_place = [&](const std::string& name, std::size_t j,
                       bool count_failure) -> bool {
    TenantRun& run = runs.at(name);
    const PlannedJob& planned = run.plan[j];
    const spark::JobConfig& config = planned.scenario->config;
    const k8s::Resources demand = job_demand(config);
    const QosClass qos = alloc.classify(name, demand);
    // Newest-first eviction among a tenant's own jobs: later jobs carry
    // lower priority.
    const int priority = -static_cast<int>(j);
    const std::string pod_prefix =
        strformat("%s-%zu-%.0f", name.c_str(), j, env.engine().now());

    k8s::ScheduleResult last_attempt;
    // Placement loop. The first iteration is a straight attempt; for a
    // Guaranteed job under kDrf on a *counted* attempt, failures escalate
    // through evictions — first the aggregate preemption plan, then, if
    // aggregate free capacity covers the demand but per-node packing still
    // fails (fragmentation: evicted 1-core pods leave holes a bigger
    // executor cannot use), one remaining candidate at a time. Each
    // iteration either returns, breaks, or evicts at least one charged
    // job, so the loop terminates. Gating on count_failure matters for
    // liveness: an uncounted pump round that evicted without placing would
    // let the victim re-place into the freed hole in the same round,
    // restoring the exact prior state — an infinite allocation loop at one
    // simulated instant. Counted attempts happen at most once per retry
    // tick, so eviction work is paced by simulated time and the bounded
    // retry budget still catches a genuinely unplaceable guaranteed job.
    bool bulk_planned = false;
    for (;;) {
      const auto offered = offered_nodes();
      bool placed = false;
      if (offered.empty()) {
        last_attempt = {};
        for (const auto& node : env.node_names()) {
          last_attempt.rejected.emplace_back(
              node, "not offered: no unreserved capacity");
        }
      } else {
        const std::set<std::string> offer_set(offered.begin(), offered.end());
        std::string driver;
        bool have_driver = false;
        switch (run.options->policy) {
          case exp::StreamPolicy::kModel: {
            telemetry::ClusterSnapshot snapshot =
                *run.scheduler->fetcher().fetch_shared(env.engine().now());
            snapshot.nodes.erase(
                std::remove_if(snapshot.nodes.begin(), snapshot.nodes.end(),
                               [&](const telemetry::NodeTelemetry& n) {
                                 return offer_set.count(n.node) == 0;
                               }),
                snapshot.nodes.end());
            const auto decision =
                run.scheduler
                    ->schedule_many_from_snapshot(snapshot, {&config, 1})
                    .front();
            driver = decision.selected();
            have_driver = true;
            break;
          }
          case exp::StreamPolicy::kKubeDefault: {
            auto pod = core::JobBuilder::driver_pod(config, pod_prefix, "");
            pod.node_affinity = k8s::NodeAffinity{offered};
            const auto ranking = env.kube_scheduler().schedule(pod);
            if (!ranking.feasible()) {
              last_attempt = ranking;
            } else {
              driver = ranking.selected();
              have_driver = true;
            }
            break;
          }
          case exp::StreamPolicy::kRandom:
            driver = offered[planned.random_draw % offered.size()];
            have_driver = true;
            break;
          case exp::StreamPolicy::kModelRetrain:
            LTS_ASSERT(false);  // rejected at options validation
        }

        if (have_driver) {
          // Bind driver (pinned) and executors (default scheduler within
          // the offer); unwind everything on the first infeasibility.
          auto bound = std::make_shared<std::vector<std::string>>();
          const auto driver_pod =
              core::JobBuilder::driver_pod(config, pod_prefix, driver);
          const auto driver_fit = env.kube_scheduler().schedule(driver_pod);
          if (!driver_fit.feasible()) {
            last_attempt = driver_fit;
          } else {
            env.api().bind(driver_pod, driver);
            bound->push_back(driver_pod.name);
            const std::size_t driver_node = env.cluster().node_index(driver);
            std::vector<std::size_t> executor_nodes;
            bool executors_ok = true;
            for (int e = 0; e < config.executors; ++e) {
              auto pod = core::JobBuilder::executor_pod(config, pod_prefix, e);
              pod.node_affinity = k8s::NodeAffinity{offered};
              const auto where = env.kube_scheduler().schedule(pod);
              if (!where.feasible()) {
                for (const auto& p : *bound) env.api().remove_pod(p);
                last_attempt = where;
                executors_ok = false;
                break;
              }
              env.api().bind(pod, where.selected());
              bound->push_back(pod.name);
              executor_nodes.push_back(
                  env.cluster().node_index(where.selected()));
            }
            if (executors_ok) {
              run.bound[j] = *bound;
              alloc.charge(name, job_key(j), demand, qos, priority,
                           env.engine().now());
              Rng dag_rng(planned.job_seed * 0x2545f4914f6cdd1dULL + 0x9e37);
              auto dag = spark::build_dag(config, dag_rng,
                                          env.options().workload_cost);
              Rng app_rng(planned.job_seed * 0xda942042e4dd58b5ULL + 0x7f4a);
              run.apps[j] = std::make_unique<spark::SparkApp>(
                  env.cluster(), config, std::move(dag), driver_node,
                  executor_nodes, app_rng, env.options().runtime);
              run.apps[j]->submit(
                  [&, name, j](const spark::AppResult& app_result) {
                    TenantRun& r = runs.at(name);
                    TenantJobResult& job = r.result->jobs[j];
                    job.scenario_id = r.plan[j].scenario->id;
                    job.driver_node = app_result.driver_node;
                    job.submitted = app_result.submit_time;
                    job.queueing_delay =
                        app_result.submit_time - job.planned_arrival;
                    job.duration = app_result.duration();
                    for (const auto& pod : r.bound[j]) {
                      env.api().remove_pod(pod);
                    }
                    r.bound[j].clear();
                    alloc.release(name, job_key(j), env.engine().now());
                    r.counters.jobs_completed.inc();
                    --remaining;
                    // Freed capacity: run another allocation round, but
                    // never from inside the completion callback (the app
                    // must not be replaced while its own frame is live).
                    env.engine().schedule_in(0.0, [&] { pump(false); });
                  });
              placed = true;
            }
          }
        }
      }

      if (placed) return true;
      if (!count_failure || options.sharing != SharingMode::kDrf ||
          qos != QosClass::kGuaranteed) {
        break;
      }
      const k8s::Resources free = free_capacity();
      if (!bulk_planned) {
        bulk_planned = true;
        const auto victims = alloc.plan_preemption(name, demand, free);
        if (!victims.empty()) {
          for (const auto& victim : victims) evict(victim);
          continue;  // retry against the freed capacity
        }
      }
      if (demand.cpu > free.cpu || demand.memory > free.memory) {
        break;  // genuinely insufficient: nothing left worth evicting
      }
      // Aggregate capacity covers the demand yet packing failed —
      // fragmentation. Evict the next candidate (re-queried each time, so
      // a tenant dropping back within quota regains protection) and retry.
      const auto candidates = alloc.preemption_candidates(name);
      if (candidates.empty()) break;
      evict(candidates.front());
    }

    if (count_failure) {
      TenantJobResult& job = run.result->jobs[j];
      ++job.placement_retries;
      run.counters.placement_retries.inc();
      if (job.placement_retries > options.max_placement_retries) {
        throw Error(
            strformat("run_tenant_streams: tenant %s job %zu (%s) still "
                      "unplaceable after %d retries [%s]; per-node "
                      "rejections of the last attempt:",
                      name.c_str(), j, run.plan[j].scenario->id.c_str(),
                      options.max_placement_retries,
                      exp::describe_job_config(config).c_str()) +
            exp::describe_rejections(last_attempt));
      }
    }
    return false;
  };

  pump = [&](bool count_failures) {
    for (int round = 0;; ++round) {
      std::vector<std::string> hungry;
      for (const auto& [name, run] : runs) {
        if (!run.pending.empty()) hungry.push_back(name);
      }
      if (hungry.empty()) break;
      ++result.offer_rounds;
      offer_rounds_counter.inc();

      std::vector<std::string> order;
      if (options.sharing == SharingMode::kDrf) {
        order = alloc.offer_order(std::move(hungry));
      } else {
        // Unweighted FIFO: the offer goes to the tenant whose head-of-queue
        // job has waited longest, regardless of shares.
        order = std::move(hungry);
        std::sort(order.begin(), order.end(),
                  [&](const std::string& a, const std::string& b) {
                    const TenantRun& ra = runs.at(a);
                    const TenantRun& rb = runs.at(b);
                    const SimTime aa =
                        ra.plan[ra.pending.front()].arrival;
                    const SimTime ab =
                        rb.plan[rb.pending.front()].arrival;
                    if (aa != ab) return aa < ab;
                    return a < b;
                  });
      }

      bool progress = false;
      for (const auto& name : order) {
        TenantRun& run = runs.at(name);
        if (run.pending.empty()) continue;  // drained by a preemption requeue
        const std::size_t j = run.pending.front();
        if (try_place(name, j, count_failures && round == 0)) {
          run.pending.erase(run.pending.begin());
          progress = true;
        }
      }
      if (!progress) break;
    }

    bool backlog = false;
    for (const auto& [name, run] : runs) backlog |= !run.pending.empty();
    if (backlog && !tick_scheduled) {
      tick_scheduled = true;
      env.engine().schedule_in(options.retry_delay, [&] {
        tick_scheduled = false;
        pump(true);
      });
    }
  };

  for (auto& [name, run] : runs) {
    for (std::size_t j = 0; j < run.plan.size(); ++j) {
      env.engine().schedule_at(run.plan[j].arrival, [&, &run = run, j] {
        run.pending.insert(
            std::lower_bound(run.pending.begin(), run.pending.end(), j), j);
        pump(true);
      });
    }
  }

  while (remaining > 0) {
    LTS_REQUIRE(env.engine().step(),
                "run_tenant_streams: engine drained early");
    LTS_REQUIRE(env.engine().now() < last_arrival + 14400.0,
                "run_tenant_streams: streams failed to complete");
  }

  alloc.integrate_to(env.engine().now());
  for (auto& tres : result.tenants) {
    tres.share_integral = alloc.share_integral(tres.tenant);
    SimTime first_submit = tres.jobs.front().submitted;
    SimTime last_finish = 0.0;
    for (const auto& job : tres.jobs) {
      first_submit = std::min(first_submit, job.submitted);
      last_finish = std::max(last_finish, job.submitted + job.duration);
    }
    tres.makespan = last_finish - first_submit;
    result.horizon = std::max(result.horizon, last_finish);
  }
  result.jain_share = alloc.time_averaged_jain();
  return result;
}

std::vector<TenantSummary> summarize_tenants(
    const TenantStreamsResult& result) {
  std::vector<TenantSummary> summaries;
  summaries.reserve(result.tenants.size());
  for (const auto& tres : result.tenants) {
    TenantSummary s;
    s.tenant = tres.tenant;
    s.jobs = tres.jobs.size();
    s.preemptions_suffered = tres.preemptions_suffered;
    s.share_integral = tres.share_integral;
    std::vector<double> durations;
    std::vector<double> queueing;
    for (const auto& job : tres.jobs) {
      durations.push_back(job.duration);
      queueing.push_back(job.queueing_delay);
      s.placement_retries += static_cast<std::size_t>(job.placement_retries);
    }
    if (!durations.empty()) {
      s.mean_jct = mean(durations);
      s.p95_jct = percentile(durations, 95);
      s.mean_queueing_delay = mean(queueing);
      s.p95_queueing_delay = percentile(queueing, 95);
    }
    summaries.push_back(std::move(s));
  }
  return summaries;
}

}  // namespace lts::tenant
