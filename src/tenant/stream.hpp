// Multi-tenant two-level job streams: DRF offers below, per-tenant
// schedulers above, one shared cluster.
//
// Level one is the DrfAllocator: each allocation round it offers the
// cluster's free nodes to tenants hungriest-first (or in plain arrival
// order under SharingMode::kFifo, the unfair baseline the fairness bench
// compares against). Level two is whatever each tenant brought — the
// paper's prediction-and-ranking scheduler or a baseline policy — run
// against the offered node subset only. A within-quota (Guaranteed) job
// that cannot fit may preempt over-quota BestEffort jobs of other tenants;
// victims are cancelled, unbound, and re-queued at their tenant's head.
//
// Every tenant's job sequence and arrival times are pre-drawn from a
// per-tenant seed stream, so the plan is identical across sharing modes
// and per-tenant policies — exactly the plan-identity discipline of the
// single-tenant run_job_stream, extended to a tenant mix.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exp/envgen.hpp"
#include "exp/scenario.hpp"
#include "exp/stream.hpp"
#include "ml/model.hpp"
#include "tenant/drf.hpp"
#include "util/rng.hpp"

namespace lts::tenant {

/// Arrival processes for tenant job streams. All are pre-drawn in full
/// before the stream starts, so arrivals never depend on execution.
enum class ArrivalProcess {
  kExponential,  // Poisson stream (the single-tenant default)
  kBursty,       // bursts of back-to-back jobs, exponential burst gaps
  kDiurnal,      // rate-modulated renewal: sinusoidal day/night cycle
};

struct ArrivalOptions {
  ArrivalProcess process = ArrivalProcess::kExponential;
  /// Long-run mean gap between consecutive jobs, all processes.
  SimTime mean_interarrival = 12.0;

  /// kBursty: jobs arrive in bursts of this size, `burst_spacing` apart;
  /// burst gaps are exponential with mean burst_size * mean_interarrival,
  /// preserving the long-run rate.
  int burst_size = 4;
  SimTime burst_spacing = 1.0;

  /// kDiurnal: instantaneous rate = base * (1 + amplitude * sin(2πt/P)).
  /// Gaps are drawn exponential(mean) and divided by the local rate factor.
  double diurnal_amplitude = 0.6;  // in [0, 1)
  SimTime diurnal_period = 600.0;  // seconds
};

/// Pre-draws `num_jobs` arrival instants starting at `start`, consuming
/// `rng` deterministically. Strictly increasing.
std::vector<SimTime> draw_arrivals(int num_jobs, const ArrivalOptions& options,
                                   Rng& rng, SimTime start);

/// Level-one offer policy.
enum class SharingMode {
  kDrf,   // weighted DRF offers + guaranteed-quota preemption
  kFifo,  // unweighted global arrival order, no preemption (baseline)
};

/// One tenant's stream: its DRF spec, its level-two policy, its workload.
struct TenantStreamOptions {
  TenantSpec spec;
  /// Level-two scheduler. kModelRetrain is not supported here (online
  /// retraining is a single-tenant experiment); kModel needs `model`.
  exp::StreamPolicy policy = exp::StreamPolicy::kKubeDefault;
  std::shared_ptr<const ml::Regressor> model;
  int num_jobs = 10;
  ArrivalOptions arrivals;
};

struct TenantStreamsOptions {
  std::vector<TenantStreamOptions> tenants;
  SharingMode sharing = SharingMode::kDrf;
  std::uint64_t seed = 1;
  exp::EnvOptions env;
  core::FeatureSet features = core::FeatureSet::kTable1;
  /// Same bounded-retry contract as the single-tenant stream: a job still
  /// unplaceable after this many deferrals fails the run loudly with the
  /// last attempt's per-node rejection reasons.
  int max_placement_retries = 240;
  SimTime retry_delay = 5.0;
};

struct TenantJobResult {
  std::string scenario_id;
  std::string driver_node;
  SimTime planned_arrival = 0.0;
  /// Final successful submission instant (after any deferrals/restarts).
  SimTime submitted = 0.0;
  SimTime queueing_delay = 0.0;  // submitted - planned_arrival
  double duration = 0.0;
  int placement_retries = 0;
  /// Times this job was preempted (cancelled and restarted from scratch).
  int preemptions = 0;
};

struct TenantStreamResult {
  std::string tenant;
  std::vector<TenantJobResult> jobs;
  /// Last completion minus first actual submission, this tenant only.
  double makespan = 0.0;
  /// ∫ weighted dominant share dt over the whole run — what DRF equalizes.
  double share_integral = 0.0;
  int preemptions_suffered = 0;
};

struct TenantStreamsResult {
  /// One entry per input tenant, same order.
  std::vector<TenantStreamResult> tenants;
  /// Time-averaged instantaneous Jain index over the tenants' weighted
  /// dominant shares (see DrfAllocator::time_averaged_jain): the run-level
  /// fairness number the bench gates on.
  double jain_share = 0.0;
  /// Simulated end of the run (last completion).
  double horizon = 0.0;
  int total_preemptions = 0;
  /// Allocation rounds in which at least one offer was extended.
  int offer_rounds = 0;
};

/// Runs every tenant's stream against one shared SimEnv under the given
/// sharing mode. Per-tenant plans depend only on (options.seed,
/// tenant name, arrivals, matrix) — never on the sharing mode or on any
/// tenant's policy — so results are directly comparable across modes.
TenantStreamsResult run_tenant_streams(const std::vector<exp::Scenario>& matrix,
                                       const TenantStreamsOptions& options);

/// Per-tenant digest for benches and tests.
struct TenantSummary {
  std::string tenant;
  std::size_t jobs = 0;
  double mean_jct = 0.0;
  double p95_jct = 0.0;
  double mean_queueing_delay = 0.0;
  double p95_queueing_delay = 0.0;
  std::size_t placement_retries = 0;
  int preemptions_suffered = 0;
  double share_integral = 0.0;
};

std::vector<TenantSummary> summarize_tenants(const TenantStreamsResult& result);

}  // namespace lts::tenant
