// Two-level scheduling, level one: a Mesos-inspired resource-offer
// allocator with weighted dominant-resource fairness (DRF) across tenants.
//
// The allocator never places pods itself. It keeps per-tenant accounting
// (usage, dominant share, quota headroom), decides *which tenant is offered
// free capacity next* (hungriest first — the DRF invariant), and plans
// guaranteed-quota preemption: when a within-quota job cannot fit, it names
// the over-quota BestEffort victims to evict, deterministically,
// lowest-priority-first. Each tenant's own scheduler (the learned
// network-aware ranking, or a baseline policy) then accepts or declines the
// offer — the framework/allocator split of the Mesos two-level model.
//
// Everything here is a pure function of the call sequence: std::map keyed
// state, name-ordered tie-breaks, no clocks, no hashing. The tenant stream
// runner depends on that for plan-identical policy comparisons.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "k8s/resources.hpp"
#include "util/common.hpp"

namespace lts::tenant {

struct TenantSpec {
  std::string name;
  /// DRF weight: the tenant's dominant share is divided by this before
  /// comparison, so a weight-2 tenant is entitled to twice the share
  /// before it stops being "hungriest".
  double weight = 1.0;
  /// Guaranteed quota: a job admitted while the tenant's total usage
  /// (including the job) stays within this floor is kGuaranteed and may
  /// preempt over-quota BestEffort jobs. Zero = purely best-effort tenant.
  k8s::Resources quota;
};

/// Kubernetes-flavored QoS: kGuaranteed jobs sit inside their tenant's
/// quota and are never evicted; kBestEffort jobs ride on spare capacity and
/// are fair game for preemption while their tenant is over quota.
enum class QosClass { kGuaranteed, kBestEffort };

struct PreemptionVictim {
  std::string tenant;
  std::string job;
};

class DrfAllocator {
 public:
  /// `capacity` is the cluster-wide allocatable total the shares are
  /// measured against. Tenant names must be unique, weights positive, and
  /// quotas within capacity.
  DrfAllocator(std::vector<TenantSpec> tenants, k8s::Resources capacity);

  /// Accounts a placed job. `priority`: preemption evicts lowest-priority
  /// victims first (ties broken by tenant then job name). `now` advances
  /// the share-time integrals.
  void charge(const std::string& tenant, const std::string& job,
              const k8s::Resources& used, QosClass qos, int priority,
              SimTime now);
  /// Releases a completed or evicted job's accounting. Unknown jobs throw.
  void release(const std::string& tenant, const std::string& job,
               SimTime now);

  const k8s::Resources& capacity() const { return capacity_; }
  const k8s::Resources& usage(const std::string& tenant) const;
  std::size_t num_jobs(const std::string& tenant) const;
  QosClass job_qos(const std::string& tenant, const std::string& job) const;

  /// Weighted dominant share (the DRF ordering key): the maximum over
  /// resources of usage/capacity, divided by the tenant's weight.
  double dominant_share(const std::string& tenant) const;

  /// QoS class a new job of `demand` would be admitted at right now:
  /// kGuaranteed iff usage + demand still fits within the tenant's quota.
  QosClass classify(const std::string& tenant,
                    const k8s::Resources& demand) const;

  /// Offer order for the next allocation round: `candidates` sorted
  /// hungriest first (lowest weighted dominant share, ties by name). The
  /// allocator offers free capacity to the front tenant first; a tenant
  /// that declines (cannot use the offer) passes it down the list.
  std::vector<std::string> offer_order(
      std::vector<std::string> candidates) const;

  /// Plans evictions so `tenant`'s within-quota job of `demand` can fit,
  /// given `free` unallocated capacity: candidates are BestEffort jobs of
  /// tenants currently over quota, taken lowest-priority-first (ties by
  /// tenant then job name); a victim tenant drops out of consideration as
  /// soon as the planned evictions bring it within quota. Returns the
  /// victim list, or empty if even evicting every candidate cannot cover
  /// the deficit (nothing is evicted speculatively).
  std::vector<PreemptionVictim> plan_preemption(
      const std::string& tenant, const k8s::Resources& demand,
      const k8s::Resources& free) const;

  /// Every job `tenant` could legally evict right now — BestEffort jobs of
  /// other, currently over-quota tenants — in eviction order (lowest
  /// priority first, ties by tenant then job name). plan_preemption is the
  /// aggregate-capacity planner; this raw list is for the runner's
  /// fragmentation escalation: when the aggregate already covers the
  /// demand but per-node packing still fails, it evicts candidates one at
  /// a time (re-querying after each, so a tenant dropping back within
  /// quota regains protection immediately).
  std::vector<PreemptionVictim> preemption_candidates(
      const std::string& tenant) const;

  /// ∫ dominant_share dt since construction: each tenant's share-time
  /// footprint (how much of the cluster it held, for how long).
  double share_integral(const std::string& tenant) const;
  /// Time-averaged instantaneous Jain index over the tenants' weighted
  /// dominant shares, taken across busy time (instants where any tenant
  /// held resources). This is the run-level fairness number: totals of
  /// share_integral are fixed by the workload (every job eventually runs),
  /// but *when* each tenant got its share is exactly what an offer policy
  /// controls — FIFO lets one tenant monopolize during a burst (low
  /// instantaneous Jain), DRF interleaves (high). 1.0 if never busy.
  double time_averaged_jain() const;
  /// Advances the share-time integrals to `now`. charge/release do this
  /// implicitly; call once more at stream end to close the horizon.
  void integrate_to(SimTime now);

 private:
  struct JobAlloc {
    k8s::Resources used;
    QosClass qos = QosClass::kBestEffort;
    int priority = 0;
  };
  struct TenantState {
    TenantSpec spec;
    k8s::Resources usage;
    std::map<std::string, JobAlloc> jobs;
    double share_integral = 0.0;
  };

  const TenantState& state(const std::string& name) const;
  TenantState& state(const std::string& name);

  k8s::Resources capacity_;
  std::map<std::string, TenantState> tenants_;
  SimTime integrated_to_ = 0.0;
  /// ∫ Jain(weighted shares) dt and ∫ dt, over busy instants only. Shares
  /// are piecewise constant between charge/release calls, so these sums
  /// are exact.
  double jain_integral_ = 0.0;
  SimTime busy_time_ = 0.0;
};

/// Jain's fairness index over nonnegative allocations:
/// (Σx)² / (n · Σx²), in (0, 1]; 1 = perfectly equal shares. An all-zero
/// input returns 1 (nothing was divided unfairly). Throws on empty input
/// or negative entries.
double jain_index(const std::vector<double>& xs);

}  // namespace lts::tenant
