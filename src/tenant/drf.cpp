#include "tenant/drf.hpp"

#include <algorithm>
#include <cmath>

namespace lts::tenant {

namespace {

/// Componentwise deficit of `demand` over `supply`, clamped at zero.
k8s::Resources deficit(const k8s::Resources& demand,
                       const k8s::Resources& supply) {
  return {std::max(0.0, demand.cpu - supply.cpu),
          std::max(0.0, demand.memory - supply.memory)};
}

bool is_zero(const k8s::Resources& r) {
  return r.cpu <= 0.0 && r.memory <= 0.0;
}

}  // namespace

DrfAllocator::DrfAllocator(std::vector<TenantSpec> tenants,
                           k8s::Resources capacity)
    : capacity_(capacity) {
  LTS_REQUIRE(!tenants.empty(), "DrfAllocator: no tenants");
  LTS_REQUIRE(capacity_.cpu > 0.0 && capacity_.memory > 0.0,
              "DrfAllocator: capacity must be positive");
  for (auto& spec : tenants) {
    LTS_REQUIRE(!spec.name.empty(), "DrfAllocator: tenant name empty");
    LTS_REQUIRE(spec.weight > 0.0,
                "DrfAllocator: tenant " + spec.name + " weight must be > 0");
    LTS_REQUIRE(spec.quota.fits_within(capacity_),
                "DrfAllocator: tenant " + spec.name + " quota exceeds capacity");
    const std::string name = spec.name;
    const bool inserted =
        tenants_.emplace(name, TenantState{std::move(spec), {}, {}, 0.0})
            .second;
    LTS_REQUIRE(inserted, "DrfAllocator: duplicate tenant " + name);
  }
}

const DrfAllocator::TenantState& DrfAllocator::state(
    const std::string& name) const {
  const auto it = tenants_.find(name);
  LTS_REQUIRE(it != tenants_.end(), "DrfAllocator: unknown tenant " + name);
  return it->second;
}

DrfAllocator::TenantState& DrfAllocator::state(const std::string& name) {
  const auto it = tenants_.find(name);
  LTS_REQUIRE(it != tenants_.end(), "DrfAllocator: unknown tenant " + name);
  return it->second;
}

void DrfAllocator::charge(const std::string& tenant, const std::string& job,
                          const k8s::Resources& used, QosClass qos,
                          int priority, SimTime now) {
  integrate_to(now);
  TenantState& t = state(tenant);
  LTS_REQUIRE(t.jobs.find(job) == t.jobs.end(),
              "DrfAllocator: job " + tenant + "/" + job + " already charged");
  t.jobs.emplace(job, JobAlloc{used, qos, priority});
  t.usage = t.usage + used;
}

void DrfAllocator::release(const std::string& tenant, const std::string& job,
                           SimTime now) {
  integrate_to(now);
  TenantState& t = state(tenant);
  const auto it = t.jobs.find(job);
  LTS_REQUIRE(it != t.jobs.end(),
              "DrfAllocator: job " + tenant + "/" + job + " not charged");
  t.usage = t.usage - it->second.used;
  t.jobs.erase(it);
}

const k8s::Resources& DrfAllocator::usage(const std::string& tenant) const {
  return state(tenant).usage;
}

std::size_t DrfAllocator::num_jobs(const std::string& tenant) const {
  return state(tenant).jobs.size();
}

QosClass DrfAllocator::job_qos(const std::string& tenant,
                               const std::string& job) const {
  const TenantState& t = state(tenant);
  const auto it = t.jobs.find(job);
  LTS_REQUIRE(it != t.jobs.end(),
              "DrfAllocator: job " + tenant + "/" + job + " not charged");
  return it->second.qos;
}

double DrfAllocator::dominant_share(const std::string& tenant) const {
  const TenantState& t = state(tenant);
  const double raw = std::max(t.usage.cpu / capacity_.cpu,
                              t.usage.memory / capacity_.memory);
  return raw / t.spec.weight;
}

QosClass DrfAllocator::classify(const std::string& tenant,
                                const k8s::Resources& demand) const {
  const TenantState& t = state(tenant);
  return (t.usage + demand).fits_within(t.spec.quota) ? QosClass::kGuaranteed
                                                      : QosClass::kBestEffort;
}

std::vector<std::string> DrfAllocator::offer_order(
    std::vector<std::string> candidates) const {
  std::vector<std::pair<double, std::string>> keyed;
  keyed.reserve(candidates.size());
  for (auto& name : candidates) {
    const double share = dominant_share(name);
    keyed.emplace_back(share, std::move(name));
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<std::string> ordered;
  ordered.reserve(keyed.size());
  for (auto& [share, name] : keyed) ordered.push_back(std::move(name));
  return ordered;
}

std::vector<PreemptionVictim> DrfAllocator::plan_preemption(
    const std::string& tenant, const k8s::Resources& demand,
    const k8s::Resources& free) const {
  state(tenant);  // validate the claimant exists
  k8s::Resources needed = deficit(demand, free);
  if (is_zero(needed)) return {};

  // Candidate victims: BestEffort jobs of over-quota tenants. Eviction
  // order is lowest priority first, ties by (tenant, job) name, so the plan
  // is a pure function of the accounting state.
  struct Candidate {
    int priority;
    std::string tenant;
    std::string job;
    k8s::Resources used;
  };
  std::vector<Candidate> candidates;
  // Hypothetical usage while the plan evicts: a victim tenant is protected
  // again the moment planned evictions bring it back within quota.
  std::map<std::string, k8s::Resources> hypothetical;
  for (const auto& [name, t] : tenants_) {
    if (name == tenant) continue;
    if (t.usage.fits_within(t.spec.quota)) continue;
    hypothetical.emplace(name, t.usage);
    for (const auto& [job, alloc] : t.jobs) {
      if (alloc.qos != QosClass::kBestEffort) continue;
      candidates.push_back(Candidate{alloc.priority, name, job, alloc.used});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.priority != b.priority) return a.priority < b.priority;
              if (a.tenant != b.tenant) return a.tenant < b.tenant;
              return a.job < b.job;
            });

  std::vector<PreemptionVictim> plan;
  for (const auto& c : candidates) {
    if (is_zero(needed)) break;
    k8s::Resources& victim_usage = hypothetical.at(c.tenant);
    if (victim_usage.fits_within(state(c.tenant).spec.quota)) continue;
    plan.push_back(PreemptionVictim{c.tenant, c.job});
    victim_usage = victim_usage - c.used;
    needed = deficit(needed, c.used);
  }
  if (!is_zero(needed)) return {};  // cannot cover: evict nothing
  return plan;
}

std::vector<PreemptionVictim> DrfAllocator::preemption_candidates(
    const std::string& tenant) const {
  state(tenant);  // validate the claimant exists
  struct Candidate {
    int priority;
    std::string tenant;
    std::string job;
  };
  std::vector<Candidate> candidates;
  for (const auto& [name, t] : tenants_) {
    if (name == tenant) continue;
    if (t.usage.fits_within(t.spec.quota)) continue;
    for (const auto& [job, alloc] : t.jobs) {
      if (alloc.qos != QosClass::kBestEffort) continue;
      candidates.push_back(Candidate{alloc.priority, name, job});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.priority != b.priority) return a.priority < b.priority;
              if (a.tenant != b.tenant) return a.tenant < b.tenant;
              return a.job < b.job;
            });
  std::vector<PreemptionVictim> out;
  out.reserve(candidates.size());
  for (auto& c : candidates) {
    out.push_back(PreemptionVictim{std::move(c.tenant), std::move(c.job)});
  }
  return out;
}

double DrfAllocator::share_integral(const std::string& tenant) const {
  return state(tenant).share_integral;
}

double DrfAllocator::time_averaged_jain() const {
  return busy_time_ > 0.0 ? jain_integral_ / busy_time_ : 1.0;
}

void DrfAllocator::integrate_to(SimTime now) {
  LTS_REQUIRE(now >= integrated_to_,
              "DrfAllocator: time moved backwards in integrate_to");
  const SimTime dt = now - integrated_to_;
  if (dt > 0.0) {
    std::vector<double> shares;
    shares.reserve(tenants_.size());
    for (auto& [name, t] : tenants_) {
      const double share = dominant_share(name);
      t.share_integral += share * dt;
      shares.push_back(share);
    }
    const bool busy =
        std::any_of(shares.begin(), shares.end(),
                    [](double s) { return s > 0.0; });
    if (busy) {
      jain_integral_ += jain_index(shares) * dt;
      busy_time_ += dt;
    }
  }
  integrated_to_ = now;
}

double jain_index(const std::vector<double>& xs) {
  LTS_REQUIRE(!xs.empty(), "jain_index: empty input");
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : xs) {
    LTS_REQUIRE(x >= 0.0, "jain_index: negative allocation");
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace lts::tenant
