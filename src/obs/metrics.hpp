// lts::obs metrics: a Prometheus-flavored instrumentation registry.
//
// Counters, gauges, and fixed-bucket histograms, addressable by (name,
// labels), with text-format and JSON export. The process-wide registry is
// OFF by default: every instrument holds a pointer to its registry's enabled
// flag and turns inc()/set()/observe() into a single predictable branch when
// disabled, so hot paths (the simulation engine, the flow solver, the TSDB)
// can stay instrumented permanently without perturbing benchmarks or the
// golden replay. Instrument references returned by the registry stay valid
// for the registry's lifetime; reset_values() zeroes them without
// invalidating anything.
//
// Values are observational only — nothing in the simulator may read them
// back to make decisions, which is what keeps enabled/disabled runs
// bit-identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/json.hpp"

namespace lts::obs {

using Labels = std::map<std::string, std::string>;

class MetricsRegistry;

/// Monotonically increasing value (events processed, samples dropped, ...).
class Counter {
 public:
  void inc(double delta = 1.0) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
};

/// Instantaneous value (queue depth, active flows, ...).
class Gauge {
 public:
  void set(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
};

/// Fixed-boundary histogram. Boundaries are inclusive upper bounds
/// (Prometheus `le` semantics); an implicit +Inf bucket catches the rest.
class Histogram {
 public:
  void observe(double v);

  const std::vector<double>& boundaries() const { return bounds_; }
  /// Per-bucket counts, NOT cumulative; index bounds_.size() is +Inf.
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Histogram(const std::atomic<bool>* enabled, std::vector<double> bounds);
  const std::atomic<bool>* enabled_;
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds + 1 (+Inf)
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Stable pointer to the enabled flag, for hot paths that want to cache
  /// it once and skip the global() static-init guard on every check.
  const std::atomic<bool>* enabled_flag() const { return &enabled_; }

  /// Finds or creates the instrument with this identity. A name registered
  /// as one kind cannot be reused as another (throws lts::Error), and a
  /// histogram's boundaries are fixed by its first registration.
  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = "");
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& boundaries,
                       const Labels& labels = {},
                       const std::string& help = "");

  std::size_t num_instruments() const;

  /// Zeroes every instrument's value; registrations (and references handed
  /// out) survive. Used between test cases and CLI invocations.
  void reset_values();

  /// Prometheus text exposition format, families sorted by name.
  std::string prometheus_text() const;

  /// JSON export: { name: {type, help, series: [{labels, ...values}]} }.
  Json to_json() const;

  /// Process-wide registry used by the library's built-in instrumentation.
  /// Disabled by default.
  static MetricsRegistry& global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Child {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::vector<double> boundaries;  // histograms only
    // label-key string -> instrument; std::map keeps export deterministic.
    std::map<std::string, Child> children;
  };

  Family& family_for(const std::string& name, Kind kind,
                     const std::string& help);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

/// Shorthand accessors against the global registry.
inline Counter& counter(const std::string& name, const Labels& labels = {},
                        const std::string& help = "") {
  return MetricsRegistry::global().counter(name, labels, help);
}
inline Gauge& gauge(const std::string& name, const Labels& labels = {},
                    const std::string& help = "") {
  return MetricsRegistry::global().gauge(name, labels, help);
}
inline Histogram& histogram(const std::string& name,
                            const std::vector<double>& boundaries,
                            const Labels& labels = {},
                            const std::string& help = "") {
  return MetricsRegistry::global().histogram(name, boundaries, labels, help);
}

}  // namespace lts::obs
