#include "obs/metrics.hpp"

#include <algorithm>

#include "util/string_util.hpp"

namespace lts::obs {

namespace {

/// Prometheus label-value escaping: backslash, double-quote, newline.
std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// HELP-line escaping: backslash and newline only (quotes are literal).
std::string escape_help(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  out += '}';
  return out;
}

/// Same as render_labels but with one extra pair appended (histogram `le`).
std::string render_labels_with(const Labels& labels, const std::string& key,
                               const std::string& value) {
  Labels extended = labels;
  extended[key] = value;
  return render_labels(extended);
}

std::string format_value(double v) { return strformat("%.17g", v); }

std::string format_bound(double b) { return strformat("%g", b); }

const char* kind_name(bool is_counter, bool is_gauge) {
  return is_counter ? "counter" : (is_gauge ? "gauge" : "histogram");
}

Json labels_to_json(const Labels& labels) {
  Json j = Json::object();
  for (const auto& [k, v] : labels) j[k] = v;
  return j;
}

}  // namespace

void Histogram::observe(double v) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  // First boundary >= v; everything above the last boundary lands in +Inf.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

Histogram::Histogram(const std::atomic<bool>* enabled,
                     std::vector<double> bounds)
    : enabled_(enabled),
      bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1) {
  LTS_REQUIRE(!bounds_.empty(), "Histogram: need at least one boundary");
  LTS_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                  std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                      bounds_.end(),
              "Histogram: boundaries must be strictly increasing");
}

MetricsRegistry::Family& MetricsRegistry::family_for(const std::string& name,
                                                     Kind kind,
                                                     const std::string& help) {
  LTS_REQUIRE(!name.empty(), "MetricsRegistry: empty metric name");
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.kind = kind;
    family.help = help;
    it = families_.emplace(name, std::move(family)).first;
  } else {
    LTS_REQUIRE(it->second.kind == kind,
                "MetricsRegistry: metric re-registered as a different kind: " +
                    name);
    if (it->second.help.empty()) it->second.help = help;
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels,
                                  const std::string& help) {
  std::lock_guard lock(mutex_);
  Family& family = family_for(name, Kind::kCounter, help);
  auto [it, inserted] = family.children.try_emplace(render_labels(labels));
  if (inserted) {
    it->second.labels = labels;
    it->second.counter.reset(new Counter(&enabled_));
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels,
                              const std::string& help) {
  std::lock_guard lock(mutex_);
  Family& family = family_for(name, Kind::kGauge, help);
  auto [it, inserted] = family.children.try_emplace(render_labels(labels));
  if (inserted) {
    it->second.labels = labels;
    it->second.gauge.reset(new Gauge(&enabled_));
  }
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& boundaries,
                                      const Labels& labels,
                                      const std::string& help) {
  std::lock_guard lock(mutex_);
  Family& family = family_for(name, Kind::kHistogram, help);
  if (family.children.empty()) {
    family.boundaries = boundaries;
  } else {
    LTS_REQUIRE(family.boundaries == boundaries,
                "MetricsRegistry: histogram boundaries differ from first "
                "registration: " +
                    name);
  }
  auto [it, inserted] = family.children.try_emplace(render_labels(labels));
  if (inserted) {
    it->second.labels = labels;
    it->second.histogram.reset(new Histogram(&enabled_, boundaries));
  }
  return *it->second.histogram;
}

std::size_t MetricsRegistry::num_instruments() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& [name, family] : families_) n += family.children.size();
  return n;
}

void MetricsRegistry::reset_values() {
  std::lock_guard lock(mutex_);
  for (auto& [name, family] : families_) {
    for (auto& [key, child] : family.children) {
      if (child.counter) child.counter->value_.store(0.0);
      if (child.gauge) child.gauge->value_.store(0.0);
      if (child.histogram) {
        for (auto& b : child.histogram->buckets_) b.store(0);
        child.histogram->count_.store(0);
        child.histogram->sum_.store(0.0);
      }
    }
  }
}

std::string MetricsRegistry::prometheus_text() const {
  std::lock_guard lock(mutex_);
  std::string out;
  for (const auto& [name, family] : families_) {
    const bool is_counter = family.kind == Kind::kCounter;
    const bool is_gauge = family.kind == Kind::kGauge;
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + escape_help(family.help) + "\n";
    }
    out += "# TYPE " + name + " ";
    out += kind_name(is_counter, is_gauge);
    out += "\n";
    for (const auto& [key, child] : family.children) {
      if (child.counter) {
        out += name + key + " " + format_value(child.counter->value()) + "\n";
      } else if (child.gauge) {
        out += name + key + " " + format_value(child.gauge->value()) + "\n";
      } else {
        const Histogram& h = *child.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.boundaries().size(); ++i) {
          cumulative += h.bucket_count(i);
          out += name + "_bucket" +
                 render_labels_with(child.labels, "le",
                                    format_bound(h.boundaries()[i])) +
                 " " + std::to_string(cumulative) + "\n";
        }
        out += name + "_bucket" +
               render_labels_with(child.labels, "le", "+Inf") + " " +
               std::to_string(h.count()) + "\n";
        out += name + "_sum" + key + " " + format_value(h.sum()) + "\n";
        out += name + "_count" + key + " " + std::to_string(h.count()) + "\n";
      }
    }
  }
  return out;
}

Json MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  Json root = Json::object();
  for (const auto& [name, family] : families_) {
    Json fam = Json::object();
    fam["type"] = kind_name(family.kind == Kind::kCounter,
                            family.kind == Kind::kGauge);
    fam["help"] = family.help;
    Json series = Json::array();
    for (const auto& [key, child] : family.children) {
      Json row = Json::object();
      row["labels"] = labels_to_json(child.labels);
      if (child.counter) {
        row["value"] = child.counter->value();
      } else if (child.gauge) {
        row["value"] = child.gauge->value();
      } else {
        const Histogram& h = *child.histogram;
        Json buckets = Json::array();
        for (std::size_t i = 0; i <= h.boundaries().size(); ++i) {
          Json bucket = Json::object();
          bucket["le"] = i < h.boundaries().size()
                             ? Json(h.boundaries()[i])
                             : Json("+Inf");
          bucket["count"] = static_cast<double>(h.bucket_count(i));
          buckets.push_back(bucket);
        }
        row["buckets"] = buckets;
        row["sum"] = h.sum();
        row["count"] = static_cast<double>(h.count());
      }
      series.push_back(row);
    }
    fam["series"] = series;
    root[name] = fam;
  }
  return root;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace lts::obs
