// lts::obs tracing: per-decision spans through the scheduler pipeline.
//
// A span records wall-clock and simulated time at its start and at each
// named phase mark (fetch -> features -> predict -> rank -> bind), so a
// fault campaign's decisions can be replayed and each pipeline stage's cost
// inspected. The global tracer is OFF by default; when disabled, opening a
// span and marking phases are single-branch no-ops, and nothing about the
// simulation changes either way (wall times are recorded, never consulted).
//
// Spans nest: the innermost open span receives phase marks, so a caller
// (e.g. the job-stream runner) can open a "decision" span, let
// LtsScheduler::schedule contribute its pipeline phases to it, and append a
// final "bind" phase after placing the pods. ScopedSpan with reuse_open
// implements exactly that hand-off.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/json.hpp"

namespace lts::obs {

struct TracePhase {
  std::string name;
  SimTime sim_time = 0.0;
  double wall_ms = 0.0;  // since span start
};

struct SpanRecord {
  std::string name;
  SimTime sim_begin = 0.0;
  SimTime sim_end = 0.0;
  double wall_ms = 0.0;  // total span duration
  std::vector<TracePhase> phases;
};

class Tracer {
 public:
  using Clock = std::chrono::steady_clock;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Opens a span; it becomes the innermost (receives phase marks) until
  /// end(). No-op when disabled.
  void begin(std::string name, SimTime sim_now);

  /// Marks a phase on the innermost open span (no-op when disabled or no
  /// span is open).
  void phase(const std::string& name, SimTime sim_now);

  /// Closes the innermost open span.
  void end(SimTime sim_now);

  bool in_span() const { return !open_.empty(); }

  /// Completed spans, in completion order.
  std::size_t num_spans() const;
  const SpanRecord& span(std::size_t i) const;

  /// JSON export: array of span objects.
  Json to_json() const;

  void clear();

  /// Process-wide tracer used by the library's built-in spans. Disabled by
  /// default.
  static Tracer& global();

 private:
  struct OpenSpan {
    SpanRecord record;
    Clock::time_point wall_begin;
  };

  bool enabled_ = false;
  std::vector<OpenSpan> open_;      // innermost last
  std::vector<SpanRecord> spans_;   // completed
};

/// RAII span. With `reuse_open`, joins an already-open span instead of
/// nesting a new one (the scheduler does this so its pipeline phases land on
/// the caller's per-decision span when one exists).
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, const char* name, SimTime sim_now,
             bool reuse_open = false)
      : tracer_(tracer) {
    owns_ = tracer_.enabled() && !(reuse_open && tracer_.in_span());
    if (owns_) tracer_.begin(name, sim_now);
    sim_last_ = sim_now;
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Marks a phase (on whichever span is innermost — ours or the reused
  /// caller's).
  void phase(const char* name, SimTime sim_now) {
    tracer_.phase(name, sim_now);
    sim_last_ = sim_now;
  }

  void end(SimTime sim_now) {
    if (owns_) tracer_.end(sim_now);
    owns_ = false;
  }

  ~ScopedSpan() {
    if (owns_) tracer_.end(sim_last_);
  }

 private:
  Tracer& tracer_;
  bool owns_ = false;
  SimTime sim_last_ = 0.0;
};

}  // namespace lts::obs
