#include "obs/trace.hpp"

namespace lts::obs {

namespace {
double ms_since(Tracer::Clock::time_point begin) {
  return std::chrono::duration<double, std::milli>(Tracer::Clock::now() -
                                                   begin)
      .count();
}
}  // namespace

void Tracer::begin(std::string name, SimTime sim_now) {
  if (!enabled_) return;
  OpenSpan span;
  span.record.name = std::move(name);
  span.record.sim_begin = sim_now;
  span.wall_begin = Clock::now();
  open_.push_back(std::move(span));
}

void Tracer::phase(const std::string& name, SimTime sim_now) {
  if (!enabled_ || open_.empty()) return;
  OpenSpan& span = open_.back();
  span.record.phases.push_back(
      TracePhase{name, sim_now, ms_since(span.wall_begin)});
}

void Tracer::end(SimTime sim_now) {
  if (!enabled_ || open_.empty()) return;
  OpenSpan span = std::move(open_.back());
  open_.pop_back();
  span.record.sim_end = sim_now;
  span.record.wall_ms = ms_since(span.wall_begin);
  spans_.push_back(std::move(span.record));
}

std::size_t Tracer::num_spans() const { return spans_.size(); }

const SpanRecord& Tracer::span(std::size_t i) const {
  LTS_REQUIRE(i < spans_.size(), "Tracer: span index out of range");
  return spans_[i];
}

Json Tracer::to_json() const {
  Json out = Json::array();
  for (const auto& span : spans_) {
    Json j = Json::object();
    j["name"] = span.name;
    j["sim_begin"] = span.sim_begin;
    j["sim_end"] = span.sim_end;
    j["wall_ms"] = span.wall_ms;
    Json phases = Json::array();
    for (const auto& phase : span.phases) {
      Json p = Json::object();
      p["name"] = phase.name;
      p["sim_time"] = phase.sim_time;
      p["wall_ms"] = phase.wall_ms;
      phases.push_back(p);
    }
    j["phases"] = phases;
    out.push_back(j);
  }
  return out;
}

void Tracer::clear() {
  open_.clear();
  spans_.clear();
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

}  // namespace lts::obs
