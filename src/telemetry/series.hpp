// A single time series: fixed-capacity ring buffer of (time, value) samples.
//
// Capacity bounds memory like a Prometheus retention window; the scheduler
// only ever looks at the recent past, so old samples age out silently.
#pragma once

#include <cstddef>
#include <vector>

#include "util/common.hpp"

namespace lts::telemetry {

struct Sample {
  SimTime t = 0.0;
  double v = 0.0;
};

class Series {
 public:
  explicit Series(std::size_t capacity = 720);

  /// Appends a sample; timestamps must be nondecreasing.
  void append(SimTime t, double v);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return buffer_.size(); }

  /// i = 0 is the oldest retained sample.
  const Sample& at(std::size_t i) const;
  const Sample& latest() const;

  /// Samples with t in [t_from, t_to], oldest first.
  std::vector<Sample> range(SimTime t_from, SimTime t_to) const;

 private:
  std::vector<Sample> buffer_;
  std::size_t head_ = 0;  // index of oldest
  std::size_t size_ = 0;
};

}  // namespace lts::telemetry
