// A single time series: fixed-capacity ring buffer of (time, value) samples.
//
// Capacity bounds memory like a Prometheus retention window; the scheduler
// only ever looks at the recent past, so old samples age out silently.
#pragma once

#include <cstddef>
#include <vector>

#include "util/common.hpp"

namespace lts::telemetry {

struct Sample {
  SimTime t = 0.0;
  double v = 0.0;
};

class Series {
 public:
  explicit Series(std::size_t capacity = 720);

  /// Appends a sample. Timestamps must be nondecreasing within the series;
  /// a sample older than the latest retained one (which a delayed exporter
  /// pipeline can legally deliver) is dropped, returning false. Dropping —
  /// instead of aborting — matches Prometheus out-of-order ingestion
  /// behavior: one late sample must not kill the whole pipeline.
  bool append(SimTime t, double v);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return buffer_.size(); }

  /// i = 0 is the oldest retained sample.
  const Sample& at(std::size_t i) const;
  const Sample& latest() const;

  /// Samples with t in [t_from, t_to], oldest first.
  std::vector<Sample> range(SimTime t_from, SimTime t_to) const;

  /// Number of adjacent-sample decreases (cumulative-counter resets) whose
  /// both endpoints lie in [t_from, t_to]. Decreases are indexed at append
  /// time, so this walks a (normally empty) side list rather than rescanning
  /// the window.
  std::size_t num_decreases_between(SimTime t_from, SimTime t_to) const;

 private:
  /// A sample that arrived smaller than its predecessor: the pair of
  /// timestamps it happened between. Rare (counter resets), so kept as a
  /// sorted side list pruned as samples age out of the ring.
  struct Decrease {
    SimTime t_prev = 0.0;
    SimTime t_curr = 0.0;
  };

  std::vector<Sample> buffer_;
  std::size_t head_ = 0;  // index of oldest
  std::size_t size_ = 0;
  std::vector<Decrease> decreases_;  // ordered by t_prev
};

}  // namespace lts::telemetry
