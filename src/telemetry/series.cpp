#include "telemetry/series.hpp"

namespace lts::telemetry {

Series::Series(std::size_t capacity) : buffer_(capacity) {
  LTS_REQUIRE(capacity > 0, "Series: capacity must be positive");
}

bool Series::append(SimTime t, double v) {
  if (size_ > 0) {
    const Sample& newest = latest();
    if (t < newest.t) return false;  // late sample, dropped
    if (v < newest.v) decreases_.push_back(Decrease{newest.t, t});
  }
  const std::size_t pos = (head_ + size_) % buffer_.size();
  buffer_[pos] = Sample{t, v};
  if (size_ < buffer_.size()) {
    ++size_;
  } else {
    head_ = (head_ + 1) % buffer_.size();
    // Drop decrease records whose older endpoint has aged out of the ring.
    const SimTime oldest = at(0).t;
    std::size_t keep_from = 0;
    while (keep_from < decreases_.size() &&
           decreases_[keep_from].t_prev < oldest) {
      ++keep_from;
    }
    if (keep_from > 0) {
      decreases_.erase(decreases_.begin(),
                       decreases_.begin() + static_cast<long>(keep_from));
    }
  }
  return true;
}

const Sample& Series::at(std::size_t i) const {
  LTS_REQUIRE(i < size_, "Series: index out of range");
  return buffer_[(head_ + i) % buffer_.size()];
}

const Sample& Series::latest() const {
  LTS_REQUIRE(size_ > 0, "Series: empty");
  return at(size_ - 1);
}

std::vector<Sample> Series::range(SimTime t_from, SimTime t_to) const {
  std::vector<Sample> out;
  for (std::size_t i = 0; i < size_; ++i) {
    const Sample& s = at(i);
    if (s.t >= t_from && s.t <= t_to) out.push_back(s);
  }
  return out;
}

std::size_t Series::num_decreases_between(SimTime t_from, SimTime t_to) const {
  std::size_t n = 0;
  // decreases_ is ordered by t_prev; the list is empty for well-behaved
  // counters, so the straight scan beats setting up a binary search.
  for (const Decrease& d : decreases_) {
    if (d.t_prev > t_to) break;
    if (d.t_prev >= t_from && d.t_curr <= t_to) ++n;
  }
  return n;
}

}  // namespace lts::telemetry
