#include "telemetry/series.hpp"

namespace lts::telemetry {

Series::Series(std::size_t capacity) : buffer_(capacity) {
  LTS_REQUIRE(capacity > 0, "Series: capacity must be positive");
}

void Series::append(SimTime t, double v) {
  if (size_ > 0) {
    LTS_REQUIRE(t >= latest().t, "Series: timestamps must be nondecreasing");
  }
  const std::size_t pos = (head_ + size_) % buffer_.size();
  buffer_[pos] = Sample{t, v};
  if (size_ < buffer_.size()) {
    ++size_;
  } else {
    head_ = (head_ + 1) % buffer_.size();
  }
}

const Sample& Series::at(std::size_t i) const {
  LTS_REQUIRE(i < size_, "Series: index out of range");
  return buffer_[(head_ + i) % buffer_.size()];
}

const Sample& Series::latest() const {
  LTS_REQUIRE(size_ > 0, "Series: empty");
  return at(size_ - 1);
}

std::vector<Sample> Series::range(SimTime t_from, SimTime t_to) const {
  std::vector<Sample> out;
  for (std::size_t i = 0; i < size_; ++i) {
    const Sample& s = at(i);
    if (s.t >= t_from && s.t <= t_to) out.push_back(s);
  }
  return out;
}

}  // namespace lts::telemetry
