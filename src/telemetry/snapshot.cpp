#include "telemetry/snapshot.hpp"

#include <cmath>

#include "telemetry/exporters.hpp"
#include "util/stats.hpp"

namespace lts::telemetry {

const NodeTelemetry& ClusterSnapshot::by_name(const std::string& node) const {
  for (const auto& n : nodes) {
    if (n.node == node) return n;
  }
  throw Error("ClusterSnapshot: no node named " + node);
}

ClusterSnapshot build_snapshot(const Tsdb& tsdb,
                               const std::vector<std::string>& node_names,
                               SimTime now, SnapshotOptions options) {
  ClusterSnapshot snapshot;
  snapshot.at = now;
  snapshot.nodes.reserve(node_names.size());
  for (const auto& name : node_names) {
    NodeTelemetry t;
    t.node = name;
    const Labels node_labels{{"node", name}};

    // RTT statistics across all peers. Each per-peer value is averaged over
    // the lookback window (several ping rounds), which suppresses
    // single-probe measurement noise while still reflecting current
    // congestion.
    std::vector<double> rtts;
    for (const auto& peer : node_names) {
      if (peer == name) continue;
      const auto rtt = tsdb.avg_over_time(
          kPingRttMetric, Labels{{"src", name}, {"dst", peer}}, now,
          options.rate_window);
      if (rtt.has_value()) rtts.push_back(*rtt);
    }
    if (!rtts.empty()) {
      t.rtt_mean = mean(rtts);
      t.rtt_max = max_of(rtts);
      t.rtt_std = stddev(rtts);
    }

    t.tx_rate =
        tsdb.rate(kTxBytesMetric, node_labels, now, options.rate_window);
    t.rx_rate =
        tsdb.rate(kRxBytesMetric, node_labels, now, options.rate_window);
    t.cpu_load = tsdb.latest(kCpuLoadMetric, node_labels).value_or(0.0);
    t.mem_available =
        tsdb.latest(kMemAvailableMetric, node_labels).value_or(0.0);

    // Rich telemetry: averaged over the lookback window (instantaneous
    // utilization is spiky); zero when the exporters don't emit it.
    t.uplink_util = tsdb.avg_over_time(kUplinkUtilMetric, node_labels, now,
                                       options.rate_window)
                        .value_or(0.0);
    t.downlink_util = tsdb.avg_over_time(kDownlinkUtilMetric, node_labels,
                                         now, options.rate_window)
                          .value_or(0.0);
    t.queue_delay = tsdb.avg_over_time(kQueueDelayMetric, node_labels, now,
                                       options.rate_window)
                        .value_or(0.0);
    t.active_flows = tsdb.avg_over_time(kActiveFlowsMetric, node_labels, now,
                                        options.rate_window)
                         .value_or(0.0);
    snapshot.nodes.push_back(std::move(t));
  }
  return snapshot;
}

}  // namespace lts::telemetry
