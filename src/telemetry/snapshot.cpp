#include "telemetry/snapshot.hpp"

#include <cmath>

#include "telemetry/exporters.hpp"
#include "util/stats.hpp"

namespace lts::telemetry {

const NodeTelemetry& ClusterSnapshot::by_name(const std::string& node) const {
  for (const auto& n : nodes) {
    if (n.node == node) return n;
  }
  throw Error("ClusterSnapshot: no node named " + node);
}

ClusterSnapshot build_snapshot(const Tsdb& tsdb,
                               const std::vector<std::string>& node_names,
                               SimTime now, SnapshotOptions options) {
  ClusterSnapshot snapshot;
  snapshot.at = now;
  snapshot.nodes.reserve(node_names.size());
  for (const auto& name : node_names) {
    NodeTelemetry t;
    t.node = name;
    const Labels node_labels{{"node", name}};

    // RTT statistics across all peers. Each per-peer value is averaged over
    // the lookback window (several ping rounds), which suppresses
    // single-probe measurement noise while still reflecting current
    // congestion.
    std::vector<double> rtts;
    for (const auto& peer : node_names) {
      if (peer == name) continue;
      const auto rtt = tsdb.avg_over_time(
          kPingRttMetric, Labels{{"src", name}, {"dst", peer}}, now,
          options.rate_window);
      if (rtt.has_value()) rtts.push_back(*rtt);
    }
    if (!rtts.empty()) {
      t.rtt_mean = mean(rtts);
      t.rtt_max = max_of(rtts);
      t.rtt_std = stddev(rtts);
    }

    t.tx_rate =
        tsdb.rate(kTxBytesMetric, node_labels, now, options.rate_window);
    t.rx_rate =
        tsdb.rate(kRxBytesMetric, node_labels, now, options.rate_window);
    t.cpu_load = tsdb.latest(kCpuLoadMetric, node_labels).value_or(0.0);
    t.mem_available =
        tsdb.latest(kMemAvailableMetric, node_labels).value_or(0.0);

    // Freshness: the node exporter's cpu-load series doubles as its
    // heartbeat — every scrape appends it first.
    const auto seen = tsdb.latest_time(kCpuLoadMetric, node_labels);
    t.has_data = seen.has_value();
    t.last_seen = seen.value_or(0.0);

    // Rich telemetry: averaged over the lookback window (instantaneous
    // utilization is spiky); zero when the exporters don't emit it.
    t.uplink_util = tsdb.avg_over_time(kUplinkUtilMetric, node_labels, now,
                                       options.rate_window)
                        .value_or(0.0);
    t.downlink_util = tsdb.avg_over_time(kDownlinkUtilMetric, node_labels,
                                         now, options.rate_window)
                          .value_or(0.0);
    t.queue_delay = tsdb.avg_over_time(kQueueDelayMetric, node_labels, now,
                                       options.rate_window)
                        .value_or(0.0);
    t.active_flows = tsdb.avg_over_time(kActiveFlowsMetric, node_labels, now,
                                        options.rate_window)
                         .value_or(0.0);
    snapshot.nodes.push_back(std::move(t));
  }
  return snapshot;
}

int annotate_staleness(ClusterSnapshot& snapshot, SimTime max_staleness) {
  int stale = 0;
  for (auto& n : snapshot.nodes) {
    n.stale = !n.has_data || (snapshot.at - n.last_seen) > max_staleness;
    if (n.stale) ++stale;
  }
  return stale;
}

int impute_stale_nodes(ClusterSnapshot& snapshot) {
  std::vector<const NodeTelemetry*> fresh;
  int n_stale = 0;
  for (const auto& n : snapshot.nodes) {
    if (n.stale) {
      ++n_stale;
    } else {
      fresh.push_back(&n);
    }
  }
  if (fresh.empty() || n_stale == 0) return 0;

  auto median_of = [&](auto field) {
    std::vector<double> values;
    values.reserve(fresh.size());
    for (const auto* n : fresh) values.push_back(field(*n));
    return percentile(values, 50.0);
  };
  const NodeTelemetry typical{
      /*node=*/"",
      median_of([](const NodeTelemetry& n) { return n.rtt_mean; }),
      median_of([](const NodeTelemetry& n) { return n.rtt_max; }),
      median_of([](const NodeTelemetry& n) { return n.rtt_std; }),
      median_of([](const NodeTelemetry& n) { return n.tx_rate; }),
      median_of([](const NodeTelemetry& n) { return n.rx_rate; }),
      median_of([](const NodeTelemetry& n) { return n.cpu_load; }),
      median_of([](const NodeTelemetry& n) { return n.mem_available; }),
      median_of([](const NodeTelemetry& n) { return n.uplink_util; }),
      median_of([](const NodeTelemetry& n) { return n.downlink_util; }),
      median_of([](const NodeTelemetry& n) { return n.queue_delay; }),
      median_of([](const NodeTelemetry& n) { return n.active_flows; })};

  for (auto& n : snapshot.nodes) {
    if (!n.stale) continue;
    const std::string name = n.node;
    const SimTime last_seen = n.last_seen;
    const bool has_data = n.has_data;
    n = typical;
    n.node = name;
    n.last_seen = last_seen;
    n.has_data = has_data;
    n.stale = true;
  }
  return n_stale;
}

}  // namespace lts::telemetry
