#include "telemetry/promql.hpp"

#include <cctype>

#include "util/string_util.hpp"

namespace lts::telemetry {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  PromQuery parse() {
    PromQuery query;
    const std::string ident = read_identifier();
    if (peek() == '(') {
      query.function = function_from_name(ident);
      expect('(');
      parse_instant(query);
      expect('[');
      query.range = read_duration();
      expect(']');
      expect(')');
    } else {
      query.function = PromQuery::Function::kInstant;
      parse_instant_tail(query, ident);
    }
    skip_ws();
    LTS_REQUIRE(pos_ == s_.size(),
                error("trailing characters after query"));
    return query;
  }

 private:
  std::string error(const std::string& what) const {
    return strformat("promql: %s at offset %zu in '%s'", what.c_str(), pos_,
                     s_.c_str());
  }

  static PromQuery::Function function_from_name(const std::string& name) {
    if (name == "rate") return PromQuery::Function::kRate;
    if (name == "avg_over_time") return PromQuery::Function::kAvgOverTime;
    if (name == "max_over_time") return PromQuery::Function::kMaxOverTime;
    if (name == "stddev_over_time") {
      return PromQuery::Function::kStddevOverTime;
    }
    throw Error("promql: unknown function '" + name + "'");
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(
                                   s_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  void expect(char c) {
    LTS_REQUIRE(peek() == c, error(strformat("expected '%c'", c)));
    ++pos_;
  }

  std::string read_identifier() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '_' || s_[pos_] == ':')) {
      ++pos_;
    }
    LTS_REQUIRE(pos_ > start, error("expected identifier"));
    return s_.substr(start, pos_ - start);
  }

  std::string read_quoted() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      out += s_[pos_++];
    }
    LTS_REQUIRE(pos_ < s_.size(), error("unterminated string"));
    ++pos_;
    return out;
  }

  SimTime read_duration() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    LTS_REQUIRE(pos_ > start, error("expected duration"));
    const double value = std::stod(s_.substr(start, pos_ - start));
    LTS_REQUIRE(pos_ < s_.size(), error("expected duration unit"));
    const char unit = s_[pos_++];
    switch (unit) {
      case 's': return value;
      case 'm': return value * 60.0;
      case 'h': return value * 3600.0;
      default: throw Error(error("unknown duration unit"));
    }
  }

  void parse_instant(PromQuery& query) {
    parse_instant_tail(query, read_identifier());
  }

  void parse_instant_tail(PromQuery& query, const std::string& metric) {
    query.metric = metric;
    if (peek() == '{') {
      ++pos_;
      if (peek() != '}') {
        while (true) {
          const std::string key = read_identifier();
          expect('=');
          query.labels[key] = read_quoted();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          break;
        }
      }
      expect('}');
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

bool labels_match(const Labels& selector, const Labels& series) {
  for (const auto& [key, value] : selector) {
    const auto it = series.find(key);
    if (it == series.end() || it->second != value) return false;
  }
  return true;
}

}  // namespace

std::string PromQuery::to_string() const {
  std::string instant = metric;
  if (!labels.empty()) {
    instant += '{';
    bool first = true;
    for (const auto& [key, value] : labels) {
      if (!first) instant += ',';
      first = false;
      instant += key + "=\"" + value + '"';
    }
    instant += '}';
  }
  const auto with_range = [&](const char* fn) {
    return strformat("%s(%s[%.0fs])", fn, instant.c_str(), range);
  };
  switch (function) {
    case Function::kInstant: return instant;
    case Function::kRate: return with_range("rate");
    case Function::kAvgOverTime: return with_range("avg_over_time");
    case Function::kMaxOverTime: return with_range("max_over_time");
    case Function::kStddevOverTime: return with_range("stddev_over_time");
  }
  return instant;
}

PromQuery parse_promql(const std::string& text) {
  return Parser(text).parse();
}

std::vector<PromResult> eval_promql(const PromQuery& query, const Tsdb& tsdb,
                                    SimTime now) {
  std::vector<PromResult> results;
  for (const auto& [labels, series] : tsdb.select(query.metric)) {
    if (!labels_match(query.labels, labels)) continue;
    std::optional<double> value;
    switch (query.function) {
      case PromQuery::Function::kInstant:
        if (!series->empty()) value = series->latest().v;
        break;
      case PromQuery::Function::kRate: {
        const double r = tsdb.rate(query.metric, labels, now, query.range);
        // rate() of <2 samples is "no data", mirroring Prometheus.
        if (series->range(now - query.range, now).size() >= 2) value = r;
        break;
      }
      case PromQuery::Function::kAvgOverTime:
        value = tsdb.avg_over_time(query.metric, labels, now, query.range);
        break;
      case PromQuery::Function::kMaxOverTime:
        value = tsdb.max_over_time(query.metric, labels, now, query.range);
        break;
      case PromQuery::Function::kStddevOverTime:
        value = tsdb.stddev_over_time(query.metric, labels, now, query.range);
        break;
    }
    if (value.has_value()) {
      results.push_back(PromResult{labels, *value});
    }
  }
  return results;
}

std::optional<double> promql_scalar(const std::string& text, const Tsdb& tsdb,
                                    SimTime now) {
  const auto results = eval_promql(parse_promql(text), tsdb, now);
  if (results.empty()) return std::nullopt;
  LTS_REQUIRE(results.size() == 1,
              "promql_scalar: query matched multiple series: " + text);
  return results.front().value;
}

}  // namespace lts::telemetry
