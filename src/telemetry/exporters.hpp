// Exporters: the simulated equivalents of node-exporter and ping_exporter.
//
// NodeExporter scrapes one node every `interval` seconds and appends:
//   node_cpu_load{node=...}                     1-minute EMA of runnable demand
//   node_memory_available_bytes{node=...}       capacity - used
//   node_network_transmit_bytes_total{node=...} cumulative NIC tx counter
//   node_network_receive_bytes_total{node=...}  cumulative NIC rx counter
//
// PingExporter probes the full node mesh every `interval` seconds:
//   ping_rtt_seconds{src=...,dst=...}           measured RTT + noise
//
// Both add measurement noise from their own Rng stream — the model trains on
// noisy observations, exactly like the paper's Prometheus pipeline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "simcore/engine.hpp"
#include "telemetry/tsdb.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace lts::telemetry {

inline constexpr const char* kCpuLoadMetric = "node_cpu_load";
inline constexpr const char* kMemAvailableMetric =
    "node_memory_available_bytes";
inline constexpr const char* kTxBytesMetric =
    "node_network_transmit_bytes_total";
inline constexpr const char* kRxBytesMetric =
    "node_network_receive_bytes_total";
inline constexpr const char* kPingRttMetric = "ping_rtt_seconds";
// Rich telemetry (§8 extension):
inline constexpr const char* kUplinkUtilMetric = "node_network_uplink_utilization";
inline constexpr const char* kDownlinkUtilMetric = "node_network_downlink_utilization";
inline constexpr const char* kQueueDelayMetric = "node_network_queue_delay_seconds";
inline constexpr const char* kActiveFlowsMetric = "node_network_active_flows";

struct ExporterOptions {
  SimTime scrape_interval = 2.0;
  /// Export the §8 rich metrics (link utilization, queue delay, flow
  /// counts) in addition to the paper's baseline set.
  bool rich_metrics = true;
  double load_ema_tau = 30.0;          // fast load average (30 s)
  double rtt_noise_frac = 0.01;        // multiplicative RTT measurement noise
  SimTime rtt_noise_floor = 20e-6;     // additive jitter floor
  double counter_noise_frac = 0.0;     // NIC counters are exact in Linux
};

/// Scrapes one node's host-level metrics.
class NodeExporter {
 public:
  NodeExporter(sim::Engine& engine, Tsdb& tsdb, cluster::Cluster& cluster,
               std::size_t node_index, ExporterOptions options, Rng rng,
               SimTime phase);

  const std::string& node_name() const { return node_name_; }

  /// Fault injection: a silenced exporter keeps its scrape schedule but
  /// appends nothing, so this node's telemetry goes stale in the TSDB.
  /// A crashed node (Cluster::node_down) silences implicitly. Outlined
  /// (lts_lint R6): shaping knobs bump the TSDB epoch so epoch-keyed
  /// snapshot caches refresh on the next fetch.
  void set_silenced(bool silenced);
  bool silenced() const { return silenced_; }

  /// Fault injection: samples are measured on schedule but land in the
  /// TSDB `delay` seconds later (a lagging scrape pipeline). A fetch in the
  /// gap sees telemetry up to `delay` seconds old.
  void set_report_delay(SimTime delay);
  SimTime report_delay() const { return report_delay_; }

 private:
  void scrape();

  Tsdb& tsdb_;
  cluster::Cluster& cluster_;
  std::size_t node_index_;
  std::string node_name_;
  ExporterOptions options_;
  Rng rng_;
  Ema load_ema_;
  sim::Engine& engine_;
  std::unique_ptr<sim::PeriodicTask> task_;
  bool silenced_ = false;
  SimTime report_delay_ = 0.0;
};

/// Full-mesh RTT prober (one instance covers all ordered node pairs, like a
/// ping_exporter DaemonSet whose per-node results land in one TSDB).
class PingExporter {
 public:
  PingExporter(sim::Engine& engine, Tsdb& tsdb, cluster::Cluster& cluster,
               ExporterOptions options, Rng rng, SimTime phase);

 private:
  void probe();

  Tsdb& tsdb_;
  cluster::Cluster& cluster_;
  ExporterOptions options_;
  Rng rng_;
  sim::Engine& engine_;
  std::unique_ptr<sim::PeriodicTask> task_;
};

/// Installs a NodeExporter per node plus one PingExporter, with staggered
/// phases. This is the "Prometheus stack" install step of §5.1.
class TelemetryStack {
 public:
  TelemetryStack(sim::Engine& engine, cluster::Cluster& cluster,
                 ExporterOptions options, Rng rng);

  Tsdb& tsdb() { return tsdb_; }
  const Tsdb& tsdb() const { return tsdb_; }

  /// Per-node exporter access, indexed like Cluster nodes (for the fault
  /// injector's silence/delay primitives).
  std::size_t num_node_exporters() const { return node_exporters_.size(); }
  NodeExporter& node_exporter(std::size_t i);

 private:
  Tsdb tsdb_;
  std::vector<std::unique_ptr<NodeExporter>> node_exporters_;
  std::unique_ptr<PingExporter> ping_exporter_;
};

}  // namespace lts::telemetry
