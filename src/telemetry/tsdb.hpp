// Prometheus-like time-series store with labeled series and the query
// primitives the scheduler's Telemetry Fetcher uses: instant lookup, counter
// rate over a window, and aggregations over time windows.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/series.hpp"
#include "util/common.hpp"

namespace lts::telemetry {

using Labels = std::map<std::string, std::string>;

/// Canonical series identity string: name{k1="v1",k2="v2"}.
std::string encode_series_key(const std::string& name, const Labels& labels);

class Tsdb {
 public:
  explicit Tsdb(std::size_t series_capacity = 720);

  /// Appends a sample, creating the series on first touch. A sample older
  /// than its series' newest retained one is dropped (counted in
  /// num_samples_dropped() and in the global obs counter
  /// telemetry_out_of_order_dropped_total) rather than aborting ingestion.
  void append(const std::string& name, const Labels& labels, SimTime t,
              double v);

  /// Series lookup; nullptr when it does not exist.
  const Series* find(const std::string& name, const Labels& labels) const;

  /// All series with the given metric name, with their labels.
  std::vector<std::pair<Labels, const Series*>> select(
      const std::string& name) const;

  std::size_t num_series() const { return series_.size(); }
  std::uint64_t num_samples() const { return samples_appended_; }
  std::uint64_t num_samples_dropped() const { return samples_dropped_; }

  /// Monotone ingestion epoch: advances on every append attempt (accepted
  /// or dropped) and on explicit bump_epoch(). Snapshot caches key on this
  /// value — an unchanged epoch guarantees every query primitive above
  /// would return exactly what it returned at the previous fetch, so a
  /// cached snapshot is bit-identical to a rebuilt one.
  std::uint64_t epoch() const { return epoch_; }

  /// Out-of-band cache invalidation for events that change how telemetry
  /// must be interpreted without appending a sample right now: a recovered
  /// node whose cumulative counters restarted (reset_host_counters), an
  /// exporter silenced or restored mid-scrape-interval. Conservative —
  /// bumping when nothing changed only costs one extra snapshot rebuild.
  void bump_epoch() { ++epoch_; }

  // ---- query primitives ----

  /// Most recent value, or nullopt if the series is missing/empty.
  std::optional<double> latest(const std::string& name,
                               const Labels& labels) const;

  /// Timestamp of the most recent sample, or nullopt if missing/empty.
  /// The snapshot builder uses this to measure per-node telemetry
  /// staleness (silenced or crashed exporters stop appending).
  std::optional<SimTime> latest_time(const std::string& name,
                                     const Labels& labels) const;

  /// Counter rate over samples in [now - window, now]: total increase
  /// divided by the window's time extent, with Prometheus `rate()` counter
  /// reset handling (a decrease means the counter restarted from zero, so
  /// the post-reset value is added back; resets are counted in the global
  /// obs counter telemetry_counter_resets_total). Never negative. Returns 0
  /// when fewer than two samples fall in the window.
  double rate(const std::string& name, const Labels& labels, SimTime now,
              SimTime window) const;

  /// Mean of samples in [now - window, now]; nullopt if none.
  std::optional<double> avg_over_time(const std::string& name,
                                      const Labels& labels, SimTime now,
                                      SimTime window) const;

  std::optional<double> max_over_time(const std::string& name,
                                      const Labels& labels, SimTime now,
                                      SimTime window) const;

  std::optional<double> stddev_over_time(const std::string& name,
                                         const Labels& labels, SimTime now,
                                         SimTime window) const;

 private:
  struct Entry {
    Labels labels;
    Series series;
  };

  std::size_t series_capacity_;
  std::uint64_t samples_appended_ = 0;
  std::uint64_t samples_dropped_ = 0;
  std::uint64_t epoch_ = 0;
  // key -> entry; std::map keeps deterministic iteration for select().
  std::map<std::string, Entry> series_;
  // metric name -> keys, to make select() cheap.
  std::map<std::string, std::vector<std::string>> by_name_;
};

}  // namespace lts::telemetry
