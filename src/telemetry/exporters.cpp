#include "telemetry/exporters.hpp"

#include <cmath>

namespace lts::telemetry {

NodeExporter::NodeExporter(sim::Engine& engine, Tsdb& tsdb,
                           cluster::Cluster& cluster, std::size_t node_index,
                           ExporterOptions options, Rng rng, SimTime phase)
    : tsdb_(tsdb),
      cluster_(cluster),
      node_index_(node_index),
      node_name_(cluster.node(node_index).name()),
      options_(options),
      rng_(rng),
      load_ema_(options.load_ema_tau),
      engine_(engine) {
  task_ = std::make_unique<sim::PeriodicTask>(
      engine, options_.scrape_interval, phase, [this] { scrape(); });
}

void NodeExporter::set_silenced(bool silenced) {
  silenced_ = silenced;
  // Silencing changes what future fetches observe (telemetry goes stale or
  // resumes) without appending a sample, so epoch-keyed snapshot caches
  // must be told explicitly.
  tsdb_.bump_epoch();
}

void NodeExporter::set_report_delay(SimTime delay) {
  LTS_REQUIRE(delay >= 0.0, "NodeExporter: negative report delay");
  report_delay_ = delay;
  // Same caching contract as set_silenced: the delay shapes which samples
  // a snapshot sees, so the shift itself invalidates cached snapshots.
  tsdb_.bump_epoch();
}

void NodeExporter::scrape() {
  // A silenced exporter (fault injection) or one on a crashed node scrapes
  // nothing; the EMA freezes too, exactly as a dead process's state would.
  if (silenced_ || cluster_.node_down(node_index_)) return;

  const SimTime now = engine_.now();
  auto& node = cluster_.node(node_index_);
  const Labels labels{{"node", node_name_}};

  // Measure everything now; where the samples land (immediately or after
  // the injected reporting delay) is decided below.
  std::vector<std::pair<const char*, double>> samples;
  load_ema_.update(now, node.cpu().total_demand());
  samples.emplace_back(kCpuLoadMetric, load_ema_.value());
  samples.emplace_back(kMemAvailableMetric,
                       std::max(0.0, node.memory_available()));

  auto noisy_counter = [&](double v) {
    if (options_.counter_noise_frac <= 0.0) return v;
    return v * (1.0 + options_.counter_noise_frac * rng_.normal());
  };
  // Per-host NIC counters and flow gauges resolve through the FlowManager's
  // intrusive per-host indexes: each scrape costs O(flows touching this
  // host), so a full fleet sweep is O(total flows), not O(hosts x flows).
  samples.emplace_back(
      kTxBytesMetric,
      noisy_counter(cluster_.flows().host_tx_bytes(node.vertex())));
  samples.emplace_back(
      kRxBytesMetric,
      noisy_counter(cluster_.flows().host_rx_bytes(node.vertex())));

  if (options_.rich_metrics) {
    const auto& flows = cluster_.flows();
    const auto up = cluster_.node_uplink(node_index_);
    const auto down = cluster_.node_downlink(node_index_);
    samples.emplace_back(kUplinkUtilMetric, flows.link_utilization(up));
    samples.emplace_back(kDownlinkUtilMetric, flows.link_utilization(down));
    samples.emplace_back(kQueueDelayMetric,
                         std::max(flows.link_queue_delay(up),
                                  flows.link_queue_delay(down)));
    samples.emplace_back(
        kActiveFlowsMetric,
        static_cast<double>(flows.host_active_flows(node.vertex())));
  }

  if (report_delay_ <= 0.0) {
    for (const auto& [metric, value] : samples) {
      tsdb_.append(metric, labels, now, value);
    }
    return;
  }
  // Delayed reporting: the samples keep their measurement timestamp but
  // become visible only once the event fires, so a snapshot taken in the
  // gap sees stale data. When the delay shrinks mid-run (the fault
  // recovers), a fresher sample can land first; the TSDB then drops the
  // late arrivals and counts them in telemetry_out_of_order_dropped_total
  // instead of aborting ingestion.
  engine_.schedule_in(
      report_delay_, [this, labels, now, samples = std::move(samples)] {
        for (const auto& [metric, value] : samples) {
          tsdb_.append(metric, labels, now, value);
        }
      });
}

PingExporter::PingExporter(sim::Engine& engine, Tsdb& tsdb,
                           cluster::Cluster& cluster, ExporterOptions options,
                           Rng rng, SimTime phase)
    : tsdb_(tsdb),
      cluster_(cluster),
      options_(options),
      rng_(rng),
      engine_(engine) {
  task_ = std::make_unique<sim::PeriodicTask>(
      engine, options_.scrape_interval, phase, [this] { probe(); });
}

void PingExporter::probe() {
  const SimTime now = engine_.now();
  const std::size_t n = cluster_.num_nodes();
  for (std::size_t i = 0; i < n; ++i) {
    if (cluster_.node_down(i)) continue;  // dead host answers no echo
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j || cluster_.node_down(j)) continue;
      const SimTime true_rtt = cluster_.flows().current_rtt(
          cluster_.node(i).vertex(), cluster_.node(j).vertex());
      // ICMP echo measurements see scheduler jitter and serialization
      // variance: multiplicative noise plus an additive floor.
      const SimTime measured =
          true_rtt * (1.0 + options_.rtt_noise_frac * std::abs(rng_.normal())) +
          options_.rtt_noise_floor * rng_.uniform();
      tsdb_.append(kPingRttMetric,
                   Labels{{"src", cluster_.node(i).name()},
                          {"dst", cluster_.node(j).name()}},
                   now, measured);
    }
  }
}

TelemetryStack::TelemetryStack(sim::Engine& engine, cluster::Cluster& cluster,
                               ExporterOptions options, Rng rng) {
  const std::size_t n = cluster.num_nodes();
  for (std::size_t i = 0; i < n; ++i) {
    // Stagger scrapes across the interval so samples interleave.
    const SimTime phase =
        options.scrape_interval * static_cast<double>(i) /
        static_cast<double>(n + 1);
    node_exporters_.push_back(std::make_unique<NodeExporter>(
        engine, tsdb_, cluster, i, options, rng.split(), phase));
  }
  ping_exporter_ = std::make_unique<PingExporter>(
      engine, tsdb_, cluster, options, rng.split(),
      options.scrape_interval * static_cast<double>(n) /
          static_cast<double>(n + 1));
}

NodeExporter& TelemetryStack::node_exporter(std::size_t i) {
  LTS_REQUIRE(i < node_exporters_.size(),
              "TelemetryStack: node exporter index out of range");
  return *node_exporters_[i];
}

}  // namespace lts::telemetry
