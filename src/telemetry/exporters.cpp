#include "telemetry/exporters.hpp"

#include <cmath>

namespace lts::telemetry {

NodeExporter::NodeExporter(sim::Engine& engine, Tsdb& tsdb,
                           cluster::Cluster& cluster, std::size_t node_index,
                           ExporterOptions options, Rng rng, SimTime phase)
    : tsdb_(tsdb),
      cluster_(cluster),
      node_index_(node_index),
      node_name_(cluster.node(node_index).name()),
      options_(options),
      rng_(rng),
      load_ema_(options.load_ema_tau),
      engine_(engine) {
  task_ = std::make_unique<sim::PeriodicTask>(
      engine, options_.scrape_interval, phase, [this] { scrape(); });
}

void NodeExporter::scrape() {
  const SimTime now = engine_.now();
  auto& node = cluster_.node(node_index_);
  const Labels labels{{"node", node_name_}};

  load_ema_.update(now, node.cpu().total_demand());
  tsdb_.append(kCpuLoadMetric, labels, now, load_ema_.value());
  tsdb_.append(kMemAvailableMetric, labels, now,
               std::max(0.0, node.memory_available()));

  auto noisy_counter = [&](double v) {
    if (options_.counter_noise_frac <= 0.0) return v;
    return v * (1.0 + options_.counter_noise_frac * rng_.normal());
  };
  tsdb_.append(kTxBytesMetric, labels, now,
               noisy_counter(cluster_.flows().host_tx_bytes(node.vertex())));
  tsdb_.append(kRxBytesMetric, labels, now,
               noisy_counter(cluster_.flows().host_rx_bytes(node.vertex())));

  if (options_.rich_metrics) {
    const auto& flows = cluster_.flows();
    const auto up = cluster_.node_uplink(node_index_);
    const auto down = cluster_.node_downlink(node_index_);
    tsdb_.append(kUplinkUtilMetric, labels, now, flows.link_utilization(up));
    tsdb_.append(kDownlinkUtilMetric, labels, now,
                 flows.link_utilization(down));
    tsdb_.append(kQueueDelayMetric, labels, now,
                 std::max(flows.link_queue_delay(up),
                          flows.link_queue_delay(down)));
    tsdb_.append(kActiveFlowsMetric, labels, now,
                 static_cast<double>(
                     flows.host_active_flows(node.vertex())));
  }
}

PingExporter::PingExporter(sim::Engine& engine, Tsdb& tsdb,
                           cluster::Cluster& cluster, ExporterOptions options,
                           Rng rng, SimTime phase)
    : tsdb_(tsdb),
      cluster_(cluster),
      options_(options),
      rng_(rng),
      engine_(engine) {
  task_ = std::make_unique<sim::PeriodicTask>(
      engine, options_.scrape_interval, phase, [this] { probe(); });
}

void PingExporter::probe() {
  const SimTime now = engine_.now();
  const std::size_t n = cluster_.num_nodes();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const SimTime true_rtt = cluster_.flows().current_rtt(
          cluster_.node(i).vertex(), cluster_.node(j).vertex());
      // ICMP echo measurements see scheduler jitter and serialization
      // variance: multiplicative noise plus an additive floor.
      const SimTime measured =
          true_rtt * (1.0 + options_.rtt_noise_frac * std::abs(rng_.normal())) +
          options_.rtt_noise_floor * rng_.uniform();
      tsdb_.append(kPingRttMetric,
                   Labels{{"src", cluster_.node(i).name()},
                          {"dst", cluster_.node(j).name()}},
                   now, measured);
    }
  }
}

TelemetryStack::TelemetryStack(sim::Engine& engine, cluster::Cluster& cluster,
                               ExporterOptions options, Rng rng) {
  const std::size_t n = cluster.num_nodes();
  for (std::size_t i = 0; i < n; ++i) {
    // Stagger scrapes across the interval so samples interleave.
    const SimTime phase =
        options.scrape_interval * static_cast<double>(i) /
        static_cast<double>(n + 1);
    node_exporters_.push_back(std::make_unique<NodeExporter>(
        engine, tsdb_, cluster, i, options, rng.split(), phase));
  }
  ping_exporter_ = std::make_unique<PingExporter>(
      engine, tsdb_, cluster, options, rng.split(),
      options.scrape_interval * static_cast<double>(n) /
          static_cast<double>(n + 1));
}

}  // namespace lts::telemetry
