#include "telemetry/tsdb.hpp"

#include <cmath>

#include "obs/metrics.hpp"
#include "util/stats.hpp"

namespace lts::telemetry {

namespace {

obs::Counter& out_of_order_counter() {
  static obs::Counter& c = obs::counter(
      "telemetry_out_of_order_dropped_total", {},
      "Samples dropped because they arrived with a timestamp older than the "
      "newest retained sample of their series (delayed exporter pipeline)");
  return c;
}

obs::Counter& counter_reset_counter() {
  static obs::Counter& c = obs::counter(
      "telemetry_counter_resets_total", {},
      "Cumulative-counter resets observed by Tsdb::rate (a sample lower "
      "than its predecessor, e.g. a NIC counter restarting after a node "
      "crash/recovery)");
  return c;
}

}  // namespace

Tsdb::Tsdb(std::size_t series_capacity) : series_capacity_(series_capacity) {
  // Touch the correctness counters so a metrics export always carries the
  // families (at zero) instead of omitting them until the first incident.
  out_of_order_counter();
  counter_reset_counter();
}

std::string encode_series_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  key += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) key += ',';
    first = false;
    key += k;
    key += "=\"";
    key += v;
    key += '"';
  }
  key += '}';
  return key;
}

void Tsdb::append(const std::string& name, const Labels& labels, SimTime t,
                  double v) {
  // Even a dropped sample advances the epoch: the drop counters changed,
  // and a conservative invalidation is always safe.
  ++epoch_;
  const std::string key = encode_series_key(name, labels);
  auto it = series_.find(key);
  if (it == series_.end()) {
    it = series_.emplace(key, Entry{labels, Series(series_capacity_)}).first;
    by_name_[name].push_back(key);
  }
  if (!it->second.series.append(t, v)) {
    out_of_order_counter().inc();
    ++samples_dropped_;
    return;
  }
  ++samples_appended_;
}

const Series* Tsdb::find(const std::string& name, const Labels& labels) const {
  const auto it = series_.find(encode_series_key(name, labels));
  return it == series_.end() ? nullptr : &it->second.series;
}

std::vector<std::pair<Labels, const Series*>> Tsdb::select(
    const std::string& name) const {
  std::vector<std::pair<Labels, const Series*>> out;
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return out;
  for (const auto& key : it->second) {
    const auto& entry = series_.at(key);
    out.emplace_back(entry.labels, &entry.series);
  }
  return out;
}

std::optional<double> Tsdb::latest(const std::string& name,
                                   const Labels& labels) const {
  const Series* s = find(name, labels);
  if (s == nullptr || s->empty()) return std::nullopt;
  return s->latest().v;
}

std::optional<SimTime> Tsdb::latest_time(const std::string& name,
                                         const Labels& labels) const {
  const Series* s = find(name, labels);
  if (s == nullptr || s->empty()) return std::nullopt;
  return s->latest().t;
}

double Tsdb::rate(const std::string& name, const Labels& labels, SimTime now,
                  SimTime window) const {
  const Series* s = find(name, labels);
  if (s == nullptr) return 0.0;
  const auto samples = s->range(now - window, now);
  if (samples.size() < 2) return 0.0;
  // Prometheus rate() semantics for monotone counters: a sample lower than
  // its predecessor means the counter reset (the exporting host rebooted)
  // and restarted from zero, so the post-reset value IS the increase since
  // the reset. Summing adjacent increases with that correction keeps the
  // rate nonnegative instead of reporting one huge negative "throughput".
  const std::size_t resets =
      s->num_decreases_between(samples.front().t, samples.back().t);
  double increase;
  if (resets == 0) {
    // The common monotone case stays the plain endpoint difference: summing
    // adjacent deltas is algebraically equal but not bit-identical, and the
    // golden replay trace depends on these exact values.
    increase = samples.back().v - samples.front().v;
  } else {
    counter_reset_counter().inc(static_cast<double>(resets));
    increase = 0.0;
    for (std::size_t i = 1; i < samples.size(); ++i) {
      const double dv = samples[i].v - samples[i - 1].v;
      increase += dv >= 0.0 ? dv : samples[i].v;
    }
  }
  const double dt = samples.back().t - samples.front().t;
  if (dt <= 0.0) return 0.0;
  return increase / dt;
}

namespace {
std::optional<std::vector<double>> window_values(const Series* s, SimTime now,
                                                 SimTime window) {
  if (s == nullptr) return std::nullopt;
  const auto samples = s->range(now - window, now);
  if (samples.empty()) return std::nullopt;
  std::vector<double> values;
  values.reserve(samples.size());
  for (const auto& sample : samples) values.push_back(sample.v);
  return values;
}
}  // namespace

std::optional<double> Tsdb::avg_over_time(const std::string& name,
                                          const Labels& labels, SimTime now,
                                          SimTime window) const {
  const auto values = window_values(find(name, labels), now, window);
  if (!values) return std::nullopt;
  return mean(*values);
}

std::optional<double> Tsdb::max_over_time(const std::string& name,
                                          const Labels& labels, SimTime now,
                                          SimTime window) const {
  const auto values = window_values(find(name, labels), now, window);
  if (!values) return std::nullopt;
  return max_of(*values);
}

std::optional<double> Tsdb::stddev_over_time(const std::string& name,
                                             const Labels& labels, SimTime now,
                                             SimTime window) const {
  const auto values = window_values(find(name, labels), now, window);
  if (!values) return std::nullopt;
  return stddev(*values);
}

}  // namespace lts::telemetry
