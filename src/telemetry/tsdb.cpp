#include "telemetry/tsdb.hpp"

#include <cmath>

#include "util/stats.hpp"

namespace lts::telemetry {

std::string encode_series_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  key += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) key += ',';
    first = false;
    key += k;
    key += "=\"";
    key += v;
    key += '"';
  }
  key += '}';
  return key;
}

void Tsdb::append(const std::string& name, const Labels& labels, SimTime t,
                  double v) {
  const std::string key = encode_series_key(name, labels);
  auto it = series_.find(key);
  if (it == series_.end()) {
    it = series_.emplace(key, Entry{labels, Series(series_capacity_)}).first;
    by_name_[name].push_back(key);
  }
  it->second.series.append(t, v);
  ++samples_appended_;
}

const Series* Tsdb::find(const std::string& name, const Labels& labels) const {
  const auto it = series_.find(encode_series_key(name, labels));
  return it == series_.end() ? nullptr : &it->second.series;
}

std::vector<std::pair<Labels, const Series*>> Tsdb::select(
    const std::string& name) const {
  std::vector<std::pair<Labels, const Series*>> out;
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return out;
  for (const auto& key : it->second) {
    const auto& entry = series_.at(key);
    out.emplace_back(entry.labels, &entry.series);
  }
  return out;
}

std::optional<double> Tsdb::latest(const std::string& name,
                                   const Labels& labels) const {
  const Series* s = find(name, labels);
  if (s == nullptr || s->empty()) return std::nullopt;
  return s->latest().v;
}

std::optional<SimTime> Tsdb::latest_time(const std::string& name,
                                         const Labels& labels) const {
  const Series* s = find(name, labels);
  if (s == nullptr || s->empty()) return std::nullopt;
  return s->latest().t;
}

double Tsdb::rate(const std::string& name, const Labels& labels, SimTime now,
                  SimTime window) const {
  const Series* s = find(name, labels);
  if (s == nullptr) return 0.0;
  const auto samples = s->range(now - window, now);
  if (samples.size() < 2) return 0.0;
  const double dv = samples.back().v - samples.front().v;
  const double dt = samples.back().t - samples.front().t;
  if (dt <= 0.0) return 0.0;
  return dv / dt;
}

namespace {
std::optional<std::vector<double>> window_values(const Series* s, SimTime now,
                                                 SimTime window) {
  if (s == nullptr) return std::nullopt;
  const auto samples = s->range(now - window, now);
  if (samples.empty()) return std::nullopt;
  std::vector<double> values;
  values.reserve(samples.size());
  for (const auto& sample : samples) values.push_back(sample.v);
  return values;
}
}  // namespace

std::optional<double> Tsdb::avg_over_time(const std::string& name,
                                          const Labels& labels, SimTime now,
                                          SimTime window) const {
  const auto values = window_values(find(name, labels), now, window);
  if (!values) return std::nullopt;
  return mean(*values);
}

std::optional<double> Tsdb::max_over_time(const std::string& name,
                                          const Labels& labels, SimTime now,
                                          SimTime window) const {
  const auto values = window_values(find(name, labels), now, window);
  if (!values) return std::nullopt;
  return max_of(*values);
}

std::optional<double> Tsdb::stddev_over_time(const std::string& name,
                                             const Labels& labels, SimTime now,
                                             SimTime window) const {
  const auto values = window_values(find(name, labels), now, window);
  if (!values) return std::nullopt;
  return stddev(*values);
}

}  // namespace lts::telemetry
