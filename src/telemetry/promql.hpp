// PromQL-mini: a parser and evaluator for the query subset the paper's
// Telemetry Fetcher issues against its Prometheus metrics server.
//
// Supported grammar (a strict subset of PromQL):
//
//   expr     := func '(' range ')' | instant
//   func     := 'rate' | 'avg_over_time' | 'max_over_time'
//             | 'stddev_over_time'
//   range    := instant '[' duration ']'
//   instant  := metric_name selector?
//   selector := '{' label '=' '"' value '"' (',' label '=' '"' value '"')* '}'
//   duration := integer ('s' | 'm' | 'h')
//
// Examples:
//   node_cpu_load{node="node-3"}
//   rate(node_network_transmit_bytes_total{node="node-1"}[30s])
//   avg_over_time(ping_rtt_seconds{src="node-1",dst="node-4"}[1m])
//
// Evaluation happens against a Tsdb at an explicit timestamp. Instant
// selectors without labels evaluate every series of that metric and return
// one result per label set.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "telemetry/tsdb.hpp"

namespace lts::telemetry {

/// A parsed query (introspectable, mostly for tests and error messages).
struct PromQuery {
  enum class Function {
    kInstant,          // latest sample
    kRate,
    kAvgOverTime,
    kMaxOverTime,
    kStddevOverTime,
  };
  Function function = Function::kInstant;
  std::string metric;
  Labels labels;
  SimTime range = 0.0;  // seconds; 0 for instant queries

  std::string to_string() const;
};

/// Parses a query; throws lts::Error with a position-annotated message on
/// malformed input.
PromQuery parse_promql(const std::string& text);

/// One sample of a query result.
struct PromResult {
  Labels labels;
  double value = 0.0;
};

/// Evaluates `query` against `tsdb` as of time `now`. Series with no data
/// in range are omitted (an empty vector means "no data", like an empty
/// Prometheus instant vector).
std::vector<PromResult> eval_promql(const PromQuery& query, const Tsdb& tsdb,
                                    SimTime now);

/// Convenience: parse + evaluate, returning the single scalar for fully
/// labeled queries (nullopt when the series is absent).
std::optional<double> promql_scalar(const std::string& text, const Tsdb& tsdb,
                                    SimTime now);

}  // namespace lts::telemetry
