// Cluster snapshot: the per-node telemetry digest the scheduler's Telemetry
// Fetcher assembles at decision time (§3.2.3). One NodeTelemetry per node,
// carrying exactly the network- and node-level quantities of Table 1.
#pragma once

#include <string>
#include <vector>

#include "telemetry/tsdb.hpp"
#include "util/common.hpp"

namespace lts::telemetry {

struct NodeTelemetry {
  std::string node;
  // Network-level (Table 1): RTT statistics to all peers, NIC throughput.
  double rtt_mean = 0.0;  // seconds
  double rtt_max = 0.0;
  double rtt_std = 0.0;
  Rate tx_rate = 0.0;  // bytes/sec over the lookback window
  Rate rx_rate = 0.0;
  // Node-level (Table 1): load average and available memory.
  double cpu_load = 0.0;
  Bytes mem_available = 0.0;
  // Rich network telemetry (the paper's §8 extension): per-interface
  // utilization, estimated queueing delay, and passive flow statistics.
  double uplink_util = 0.0;    // node -> site router, [0, 1]
  double downlink_util = 0.0;  // site router -> node, [0, 1]
  SimTime queue_delay = 0.0;   // one-way, worst direction
  double active_flows = 0.0;   // flows terminating at this node
  // Freshness metadata (fault tolerance): when this node's exporter last
  // reported, whether it ever did, and whether a degradation policy judged
  // the row stale. Purely annotations — feature construction ignores them.
  SimTime last_seen = 0.0;
  bool has_data = false;
  bool stale = false;
};

struct ClusterSnapshot {
  SimTime at = 0.0;
  std::vector<NodeTelemetry> nodes;

  const NodeTelemetry& by_name(const std::string& node) const;
};

struct SnapshotOptions {
  /// Lookback for NIC counter rates (Prometheus rate() window).
  SimTime rate_window = 30.0;
};

/// Builds the snapshot from the TSDB as of time `now`. Nodes with no data
/// yet get zeroed entries (the model tolerates missing telemetry, as the
/// paper requires of its tree models).
ClusterSnapshot build_snapshot(const Tsdb& tsdb,
                               const std::vector<std::string>& node_names,
                               SimTime now, SnapshotOptions options = {});

/// Marks rows whose node exporter has not reported within `max_staleness`
/// of the snapshot time (or never reported) as stale. Returns the number of
/// stale rows. The first half of the fetcher's degradation policy.
int annotate_staleness(ClusterSnapshot& snapshot, SimTime max_staleness);

/// Replaces every stale row's telemetry fields with the median of the fresh
/// rows — the imputation/fallback feature construction for missing
/// telemetry. A stale node then scores as an "average" node instead of as a
/// phantom idle one (zeroed rows look maximally attractive to the model,
/// which is exactly the failure mode this guards against). No-op when every
/// row is stale (nothing to impute from). Returns the number of imputed
/// rows.
int impute_stale_nodes(ClusterSnapshot& snapshot);

}  // namespace lts::telemetry
