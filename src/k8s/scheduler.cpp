#include "k8s/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lts::k8s {

std::string NodeResourcesFitFilter::filter(const PodSpec& pod,
                                           const NodeEntry& node) const {
  const Resources free = node.allocatable - node.requested;
  if (pod.requests.cpu > free.cpu) return "insufficient cpu";
  if (pod.requests.memory > free.memory) return "insufficient memory";
  return "";
}

std::string NodeAffinityFilter::filter(const PodSpec& pod,
                                       const NodeEntry& node) const {
  if (!pod.node_affinity.has_value()) return "";
  if (pod.node_affinity->matches(node.name)) return "";
  return "node affinity mismatch";
}

std::string TaintTolerationFilter::filter(const PodSpec& pod,
                                          const NodeEntry& node) const {
  for (const auto& taint : node.taints) {
    if (taint.effect != TaintEffect::kNoSchedule) continue;
    bool tolerated = false;
    for (const auto& tol : pod.tolerations) {
      if (tol.tolerates(taint)) {
        tolerated = true;
        break;
      }
    }
    if (!tolerated) return "untolerated taint " + taint.key;
  }
  return "";
}

double LeastAllocatedScore::score(const PodSpec& pod,
                                  const NodeEntry& node) const {
  const Resources after = node.requested + pod.requests;
  const double cpu_free =
      node.allocatable.cpu > 0.0
          ? std::max(0.0, node.allocatable.cpu - after.cpu) /
                node.allocatable.cpu
          : 0.0;
  const double mem_free =
      node.allocatable.memory > 0.0
          ? std::max(0.0, node.allocatable.memory - after.memory) /
                node.allocatable.memory
          : 0.0;
  return 100.0 * (cpu_free + mem_free) / 2.0;
}

double BalancedAllocationScore::score(const PodSpec& pod,
                                      const NodeEntry& node) const {
  const Resources after = node.requested + pod.requests;
  const double cpu_frac =
      node.allocatable.cpu > 0.0
          ? std::min(1.0, after.cpu / node.allocatable.cpu)
          : 1.0;
  const double mem_frac =
      node.allocatable.memory > 0.0
          ? std::min(1.0, after.memory / node.allocatable.memory)
          : 1.0;
  return 100.0 - std::abs(cpu_frac - mem_frac) * 100.0;
}

double TaintTolerationScore::score(const PodSpec& pod,
                                   const NodeEntry& node) const {
  int untolerated = 0;
  for (const auto& taint : node.taints) {
    if (taint.effect != TaintEffect::kPreferNoSchedule) continue;
    bool tolerated = false;
    for (const auto& tol : pod.tolerations) {
      if (tol.tolerates(taint)) {
        tolerated = true;
        break;
      }
    }
    if (!tolerated) ++untolerated;
  }
  return untolerated == 0 ? 100.0 : std::max(0.0, 100.0 - 50.0 * untolerated);
}

double PodAntiAffinityScore::score(const PodSpec& pod,
                                   const NodeEntry& node) const {
  if (!pod.anti_affinity.has_value()) return 100.0;
  const auto& rule = *pod.anti_affinity;
  const int matching = api_.count_pods_with_label(node.name, rule.label_key,
                                                  rule.label_value);
  // Each co-located matching pod costs a weighted 33-point penalty, floored
  // at zero (kube scores are [0, 100]).
  return std::max(0.0, 100.0 - rule.weight * 33.0 * matching);
}

double TopologySpreadScore::score(const PodSpec& pod,
                                  const NodeEntry& node) const {
  if (!pod.anti_affinity.has_value()) return 100.0;
  const auto& rule = *pod.anti_affinity;
  const auto zone_it = node.labels.find("topology.kubernetes.io/zone");
  if (zone_it == node.labels.end()) return 100.0;
  // Count matching pods in this node's zone vs the emptiest zone.
  std::map<std::string, int> per_zone;
  for (const auto& other : api_.nodes()) {
    const auto z = other.labels.find("topology.kubernetes.io/zone");
    if (z == other.labels.end()) continue;
    per_zone[z->second] += api_.count_pods_with_label(
        other.name, rule.label_key, rule.label_value);
  }
  int min_zone = std::numeric_limits<int>::max();
  for (const auto& [zone, count] : per_zone) {
    min_zone = std::min(min_zone, count);
  }
  const int skew = per_zone[zone_it->second] - min_zone;
  return std::max(0.0, 100.0 - rule.weight * 25.0 * skew);
}

DefaultScheduler::DefaultScheduler(const ApiServer& api, std::uint64_t seed)
    : DefaultScheduler(api, seed, /*with_defaults=*/true) {}

DefaultScheduler::DefaultScheduler(const ApiServer& api, std::uint64_t seed,
                                   bool with_defaults)
    : api_(api), rng_(seed) {
  if (with_defaults) {
    add_filter(std::make_unique<NodeResourcesFitFilter>());
    add_filter(std::make_unique<NodeAffinityFilter>());
    add_filter(std::make_unique<TaintTolerationFilter>());
    add_score(std::make_unique<LeastAllocatedScore>(), 1.0);
    add_score(std::make_unique<BalancedAllocationScore>(), 1.0);
    add_score(std::make_unique<TaintTolerationScore>(), 1.0);
  }
}

DefaultScheduler DefaultScheduler::bare(const ApiServer& api,
                                        std::uint64_t seed) {
  return DefaultScheduler(api, seed, /*with_defaults=*/false);
}

void DefaultScheduler::add_filter(std::unique_ptr<FilterPlugin> plugin) {
  filters_.push_back(std::move(plugin));
}

void DefaultScheduler::add_score(std::unique_ptr<ScorePlugin> plugin,
                                 double weight) {
  scores_.emplace_back(std::move(plugin), weight);
}

ScheduleResult DefaultScheduler::schedule(const PodSpec& pod) {
  ScheduleResult result;
  struct Candidate {
    const NodeEntry* node;
    double score;
    double tiebreak;
  };
  std::vector<Candidate> candidates;
  for (const auto& node : api_.nodes()) {
    if (!node.ready) {
      result.rejected.emplace_back(node.name, "node not ready");
      continue;
    }
    std::string reason;
    for (const auto& filter : filters_) {
      reason = filter->filter(pod, node);
      if (!reason.empty()) break;
    }
    if (!reason.empty()) {
      result.rejected.emplace_back(node.name, reason);
      continue;
    }
    double total = 0.0;
    for (const auto& [plugin, weight] : scores_) {
      total += weight * plugin->score(pod, node);
    }
    // kube-scheduler picks randomly among max-score nodes; a random tiebreak
    // key applied to *all* candidates realizes that and also gives a
    // deterministic full ranking for the Top-2 baseline measurement.
    candidates.push_back(Candidate{&node, total, rng_.uniform()});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.tiebreak > b.tiebreak;
            });
  result.ranking.reserve(candidates.size());
  for (const auto& c : candidates) {
    result.ranking.push_back(ScoredNode{c.node->name, c.score});
  }
  return result;
}

}  // namespace lts::k8s
