// Minimal API-server: the cluster-state bookkeeping the scheduler reads
// (node allocatable, sum of bound pods' requests) and the bind operation.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "k8s/resources.hpp"
#include "util/common.hpp"

namespace lts::k8s {

struct NodeEntry {
  std::string name;
  Resources allocatable;
  std::map<std::string, std::string> labels;
  std::vector<Taint> taints;
  Resources requested;             // sum of bound pods' requests
  std::vector<std::string> pods;   // bound pod names
  bool ready = true;               // false once the node controller marks it down
};

class ApiServer {
 public:
  void register_node(const std::string& name, Resources allocatable,
                     std::map<std::string, std::string> labels = {},
                     std::vector<Taint> taints = {});

  /// Binds a pod to a node, accounting its requests. Pod names are unique.
  void bind(const PodSpec& pod, const std::string& node_name);

  /// Deletes a pod, releasing its requested resources. No-op if unknown.
  void remove_pod(const std::string& pod_name);

  bool has_pod(const std::string& pod_name) const;
  const std::string& pod_node(const std::string& pod_name) const;

  /// Number of pods bound to `node_name` whose labels contain
  /// (label_key, label_value). Used by the anti-affinity / topology-spread
  /// plugins.
  int count_pods_with_label(const std::string& node_name,
                            const std::string& label_key,
                            const std::string& label_value) const;

  /// Node-controller readiness: an unready node keeps its bindings but the
  /// scheduler will not place new pods on it.
  void set_node_ready(const std::string& name, bool ready);

  const std::vector<NodeEntry>& nodes() const { return nodes_; }
  const NodeEntry& node(const std::string& name) const;
  std::size_t num_pods() const { return pod_bindings_.size(); }

 private:
  NodeEntry& node_mutable(const std::string& name);

  std::vector<NodeEntry> nodes_;
  struct Binding {
    std::string node;
    Resources requests;
    std::map<std::string, std::string> labels;
  };
  std::map<std::string, Binding> pod_bindings_;
};

}  // namespace lts::k8s
