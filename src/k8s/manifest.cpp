#include "k8s/manifest.hpp"

#include <sstream>

#include "util/string_util.hpp"

namespace lts::k8s {

std::string render_spark_job_manifest(const SparkJobManifestSpec& spec) {
  std::ostringstream out;
  out << "apiVersion: sparkoperator.k8s.io/v1beta2\n";
  out << "kind: SparkApplication\n";
  out << "metadata:\n";
  out << "  name: " << spec.job_name << "\n";
  out << "  labels:\n";
  out << "    app.kubernetes.io/managed-by: lts-scheduler\n";
  out << "    lts/app-type: " << spec.app_type << "\n";
  out << "spec:\n";
  out << "  type: Scala\n";
  out << "  mode: cluster\n";
  out << "  image: " << spec.image << "\n";
  out << "  mainClass: org.lts.bench." << spec.app_type << "\n";
  out << "  arguments:\n";
  out << "    - \"" << spec.input_records << "\"\n";
  if (!spec.extra_conf.empty()) {
    out << "  sparkConf:\n";
    for (const auto& [key, value] : spec.extra_conf) {
      out << "    \"" << key << "\": \"" << value << "\"\n";
    }
  }
  out << "  driver:\n";
  out << "    cores: " << format_cpu_quantity(spec.driver_requests.cpu)
      << "\n";
  out << "    memory: " << format_memory_quantity(spec.driver_requests.memory)
      << "\n";
  if (!spec.pinned_node.empty()) {
    out << "    affinity:\n";
    out << "      nodeAffinity:\n";
    out << "        requiredDuringSchedulingIgnoredDuringExecution:\n";
    out << "          nodeSelectorTerms:\n";
    out << "            - matchExpressions:\n";
    out << "                - key: kubernetes.io/hostname\n";
    out << "                  operator: In\n";
    out << "                  values:\n";
    out << "                    - " << spec.pinned_node << "\n";
  }
  out << "  executor:\n";
  out << "    instances: " << spec.executors << "\n";
  out << "    cores: " << format_cpu_quantity(spec.executor_requests.cpu)
      << "\n";
  out << "    memory: "
      << format_memory_quantity(spec.executor_requests.memory) << "\n";
  return out.str();
}

std::vector<std::string> parse_manifest_node_affinity(
    const std::string& yaml) {
  std::vector<std::string> values;
  const auto lines = split(yaml, '\n');
  bool in_values = false;
  std::size_t values_indent = 0;
  for (const auto& line : lines) {
    const std::string_view trimmed = trim(line);
    const std::size_t indent = line.size() - trim(line).size();
    if (trimmed == "values:") {
      in_values = true;
      values_indent = indent;
      continue;
    }
    if (in_values) {
      if (starts_with(trimmed, "- ") && indent > values_indent) {
        values.emplace_back(trim(trimmed.substr(2)));
      } else {
        in_values = false;
      }
    }
  }
  return values;
}

}  // namespace lts::k8s
