// Resource quantities and pod/node specification types.
//
// Mirrors the part of the Kubernetes object model the default scheduler
// consumes: resource *requests* (not live usage — the blindness the paper
// exploits), labels, taints/tolerations and node affinity.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace lts::k8s {

/// CPU in cores, memory in bytes — the two resources the default scheduler's
/// fit/score plugins consider.
struct Resources {
  double cpu = 0.0;
  Bytes memory = 0.0;

  Resources operator+(const Resources& o) const {
    return {cpu + o.cpu, memory + o.memory};
  }
  Resources operator-(const Resources& o) const {
    return {cpu - o.cpu, memory - o.memory};
  }
  bool fits_within(const Resources& capacity) const {
    return cpu <= capacity.cpu && memory <= capacity.memory;
  }
};

enum class TaintEffect { kNoSchedule, kPreferNoSchedule };

struct Taint {
  std::string key;
  std::string value;
  TaintEffect effect = TaintEffect::kNoSchedule;
};

/// Simplified toleration: tolerates a taint when the key matches (empty key
/// tolerates everything, like operator: Exists).
struct Toleration {
  std::string key;
  std::string value;

  bool tolerates(const Taint& taint) const {
    if (key.empty()) return true;
    if (key != taint.key) return false;
    return value.empty() || value == taint.value;
  }
};

/// requiredDuringSchedulingIgnoredDuringExecution node affinity reduced to
/// the form the paper's Job Builder emits: a `kubernetes.io/hostname In
/// [...]` match expression.
struct NodeAffinity {
  std::vector<std::string> required_node_names;

  bool matches(const std::string& node_name) const {
    for (const auto& n : required_node_names) {
      if (n == node_name) return true;
    }
    return false;
  }
};

/// preferredDuringSchedulingIgnoredDuringExecution pod anti-affinity,
/// reduced to label equality on the hostname topology: nodes already
/// hosting pods whose labels contain (key, value) score lower. This is how
/// a Spark operator spreads a job's executors.
struct PodAntiAffinity {
  std::string label_key;
  std::string label_value;
  double weight = 1.0;  // in (0, 1]; scales the plugin's score
};

struct PodSpec {
  std::string name;
  Resources requests;
  std::map<std::string, std::string> labels;
  std::optional<NodeAffinity> node_affinity;
  std::optional<PodAntiAffinity> anti_affinity;
  std::vector<Toleration> tolerations;
};

/// Parses quantities like "500m" (cores) and "2Gi"/"512Mi" (bytes),
/// the formats rendered into manifests by the Job Builder.
double parse_cpu_quantity(const std::string& s);
Bytes parse_memory_quantity(const std::string& s);

std::string format_cpu_quantity(double cores);
std::string format_memory_quantity(Bytes bytes);

}  // namespace lts::k8s
