#include "k8s/resources.hpp"

#include <cmath>
#include <cstdlib>

#include "util/string_util.hpp"

namespace lts::k8s {

double parse_cpu_quantity(const std::string& s) {
  LTS_REQUIRE(!s.empty(), "parse_cpu_quantity: empty");
  if (s.back() == 'm') {
    char* end = nullptr;
    const double milli = std::strtod(s.c_str(), &end);
    LTS_REQUIRE(end != s.c_str(), "parse_cpu_quantity: malformed: " + s);
    return milli / 1000.0;
  }
  char* end = nullptr;
  const double cores = std::strtod(s.c_str(), &end);
  LTS_REQUIRE(end != s.c_str(), "parse_cpu_quantity: malformed: " + s);
  return cores;
}

Bytes parse_memory_quantity(const std::string& s) {
  LTS_REQUIRE(!s.empty(), "parse_memory_quantity: empty");
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  LTS_REQUIRE(end != s.c_str(), "parse_memory_quantity: malformed: " + s);
  const std::string suffix(end);
  if (suffix.empty()) return value;
  if (suffix == "Ki") return value * 1024.0;
  if (suffix == "Mi") return value * 1024.0 * 1024.0;
  if (suffix == "Gi") return value * 1024.0 * 1024.0 * 1024.0;
  if (suffix == "Ti") return value * 1024.0 * 1024.0 * 1024.0 * 1024.0;
  if (suffix == "K" || suffix == "k") return value * 1e3;
  if (suffix == "M") return value * 1e6;
  if (suffix == "G") return value * 1e9;
  throw Error("parse_memory_quantity: unknown suffix: " + s);
}

std::string format_cpu_quantity(double cores) {
  const double milli = cores * 1000.0;
  if (std::abs(milli - std::round(milli)) < 1e-9 &&
      std::abs(cores - std::round(cores)) > 1e-9) {
    return strformat("%.0fm", milli);
  }
  return strformat("%g", cores);
}

std::string format_memory_quantity(Bytes bytes) {
  const double mi = bytes / (1024.0 * 1024.0);
  if (mi >= 1024.0 && std::abs(mi / 1024.0 - std::round(mi / 1024.0)) < 1e-9) {
    return strformat("%.0fGi", mi / 1024.0);
  }
  return strformat("%.0fMi", mi);
}

}  // namespace lts::k8s
