// Declarative YAML manifest rendering — the Job Builder's output format
// (§3.2.3): a SparkApplication-style resource with nodeAffinity injected to
// pin the driver onto the scheduler-selected node.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "k8s/resources.hpp"

namespace lts::k8s {

/// Parameters of a Spark job manifest as the paper's Job Builder populates
/// them: job type, input size, resource limits, and the chosen node.
struct SparkJobManifestSpec {
  std::string job_name;
  std::string app_type;          // e.g. "sort", "join"
  std::string image = "lts/spark:3.5";
  long long input_records = 0;
  int executors = 0;
  Resources driver_requests;
  Resources executor_requests;
  std::string pinned_node;       // nodeAffinity target; empty = unpinned
  std::map<std::string, std::string> extra_conf;  // sparkConf entries
};

/// Renders the manifest as Kubernetes YAML. Deterministic output (sorted
/// conf keys) so tests can compare against golden strings.
std::string render_spark_job_manifest(const SparkJobManifestSpec& spec);

/// Extracts the nodeAffinity hostname values back out of a rendered
/// manifest. Used by tests to verify the Job Builder round-trips, and by the
/// simulated API path to honor the pin.
std::vector<std::string> parse_manifest_node_affinity(
    const std::string& yaml);

}  // namespace lts::k8s
