// The default Kubernetes scheduler (kube-scheduler), reproduced as the
// paper's baseline (§3.1): a two-stage pipeline of *filtering* (eliminate
// nodes that cannot host the pod) and *scoring* (rank the rest), operating
// purely on declared resource requests and policy constraints. It never sees
// live telemetry — which is exactly why Table 4's baseline row is weak for
// network-bound jobs.
//
// Implemented as a plugin framework matching the upstream scheduler's
// structure so tests can exercise plugins individually and the experiment
// harness can read the full ranking (for Top-2 baseline accuracy).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "k8s/api.hpp"
#include "util/rng.hpp"

namespace lts::k8s {

/// Decides whether `node` can host `pod` at all.
class FilterPlugin {
 public:
  virtual ~FilterPlugin() = default;
  virtual std::string name() const = 0;
  /// Returns an empty string if feasible, else a human-readable reason.
  virtual std::string filter(const PodSpec& pod,
                             const NodeEntry& node) const = 0;
};

/// Scores a feasible node in [0, 100]; higher is better.
class ScorePlugin {
 public:
  virtual ~ScorePlugin() = default;
  virtual std::string name() const = 0;
  virtual double score(const PodSpec& pod, const NodeEntry& node) const = 0;
};

// ---- Default filter plugins ------------------------------------------------

/// NodeResourcesFit: allocatable minus already-requested must cover the
/// pod's requests.
class NodeResourcesFitFilter : public FilterPlugin {
 public:
  std::string name() const override { return "NodeResourcesFit"; }
  std::string filter(const PodSpec& pod, const NodeEntry& node) const override;
};

/// NodeAffinity: required node-name match expression, when present.
class NodeAffinityFilter : public FilterPlugin {
 public:
  std::string name() const override { return "NodeAffinity"; }
  std::string filter(const PodSpec& pod, const NodeEntry& node) const override;
};

/// TaintToleration: every NoSchedule taint must be tolerated.
class TaintTolerationFilter : public FilterPlugin {
 public:
  std::string name() const override { return "TaintToleration"; }
  std::string filter(const PodSpec& pod, const NodeEntry& node) const override;
};

// ---- Default score plugins -------------------------------------------------

/// NodeResourcesLeastAllocated: prefers nodes with the most free *requested*
/// capacity after placing the pod (the upstream default for spreading load).
class LeastAllocatedScore : public ScorePlugin {
 public:
  std::string name() const override { return "LeastAllocated"; }
  double score(const PodSpec& pod, const NodeEntry& node) const override;
};

/// NodeResourcesBalancedAllocation: prefers nodes whose cpu and memory
/// request fractions stay close to each other after placement.
class BalancedAllocationScore : public ScorePlugin {
 public:
  std::string name() const override { return "BalancedAllocation"; }
  double score(const PodSpec& pod, const NodeEntry& node) const override;
};

/// TaintToleration scoring: penalizes untolerated PreferNoSchedule taints.
class TaintTolerationScore : public ScorePlugin {
 public:
  std::string name() const override { return "TaintTolerationScore"; }
  double score(const PodSpec& pod, const NodeEntry& node) const override;
};

/// InterPodAntiAffinity (preferred): penalizes nodes already hosting pods
/// matching the pod's anti-affinity label. Not part of the upstream
/// default-plugin set this reproduction's baseline uses; register it
/// explicitly (DefaultScheduler::bare + add_score) to model operators that
/// spread a job's executors.
class PodAntiAffinityScore : public ScorePlugin {
 public:
  explicit PodAntiAffinityScore(const ApiServer& api) : api_(api) {}
  std::string name() const override { return "PodAntiAffinity"; }
  double score(const PodSpec& pod, const NodeEntry& node) const override;

 private:
  const ApiServer& api_;
};

/// PodTopologySpread (zone level): prefers nodes whose topology zone
/// (label "topology.kubernetes.io/zone") currently hosts the fewest pods
/// matching the pod's anti-affinity label — evening a job's pods across
/// sites. Register explicitly, like PodAntiAffinityScore.
class TopologySpreadScore : public ScorePlugin {
 public:
  explicit TopologySpreadScore(const ApiServer& api) : api_(api) {}
  std::string name() const override { return "TopologySpread"; }
  double score(const PodSpec& pod, const NodeEntry& node) const override;

 private:
  const ApiServer& api_;
};

// ---- Scheduler -------------------------------------------------------------

struct ScoredNode {
  std::string name;
  double score = 0.0;
};

struct ScheduleResult {
  /// Feasible nodes, best first (ties broken by a seeded random draw, as the
  /// upstream scheduler selects randomly among equal-score nodes).
  std::vector<ScoredNode> ranking;
  /// Per-node filter rejection reasons for infeasible nodes.
  std::vector<std::pair<std::string, std::string>> rejected;

  bool feasible() const { return !ranking.empty(); }
  const std::string& selected() const {
    LTS_REQUIRE(feasible(), "ScheduleResult: no feasible node");
    return ranking.front().name;
  }
};

class DefaultScheduler {
 public:
  /// Constructs with the upstream default plugin set.
  explicit DefaultScheduler(const ApiServer& api, std::uint64_t seed = 1);

  /// Empty plugin sets; add your own (used by plugin unit tests).
  static DefaultScheduler bare(const ApiServer& api, std::uint64_t seed = 1);

  void add_filter(std::unique_ptr<FilterPlugin> plugin);
  void add_score(std::unique_ptr<ScorePlugin> plugin, double weight = 1.0);

  /// Runs filtering + scoring for `pod` against all registered nodes.
  /// Does NOT bind — callers bind through the ApiServer, mirroring the
  /// scheduler/API-server split in Kubernetes.
  ScheduleResult schedule(const PodSpec& pod);

 private:
  DefaultScheduler(const ApiServer& api, std::uint64_t seed, bool with_defaults);

  const ApiServer& api_;
  Rng rng_;
  std::vector<std::unique_ptr<FilterPlugin>> filters_;
  std::vector<std::pair<std::unique_ptr<ScorePlugin>, double>> scores_;
};

}  // namespace lts::k8s
