#include "k8s/api.hpp"

#include <algorithm>

namespace lts::k8s {

void ApiServer::register_node(const std::string& name, Resources allocatable,
                              std::map<std::string, std::string> labels,
                              std::vector<Taint> taints) {
  for (const auto& n : nodes_) {
    LTS_REQUIRE(n.name != name, "ApiServer: duplicate node: " + name);
  }
  NodeEntry entry;
  entry.name = name;
  entry.allocatable = allocatable;
  entry.labels = std::move(labels);
  entry.taints = std::move(taints);
  nodes_.push_back(std::move(entry));
}

void ApiServer::bind(const PodSpec& pod, const std::string& node_name) {
  LTS_REQUIRE(pod_bindings_.count(pod.name) == 0,
              "ApiServer: pod already bound: " + pod.name);
  NodeEntry& node = node_mutable(node_name);
  node.requested = node.requested + pod.requests;
  node.pods.push_back(pod.name);
  pod_bindings_[pod.name] = Binding{node_name, pod.requests, pod.labels};
}

void ApiServer::remove_pod(const std::string& pod_name) {
  const auto it = pod_bindings_.find(pod_name);
  if (it == pod_bindings_.end()) return;
  NodeEntry& node = node_mutable(it->second.node);
  node.requested = node.requested - it->second.requests;
  node.pods.erase(std::remove(node.pods.begin(), node.pods.end(), pod_name),
                  node.pods.end());
  pod_bindings_.erase(it);
}

bool ApiServer::has_pod(const std::string& pod_name) const {
  return pod_bindings_.count(pod_name) > 0;
}

const std::string& ApiServer::pod_node(const std::string& pod_name) const {
  const auto it = pod_bindings_.find(pod_name);
  LTS_REQUIRE(it != pod_bindings_.end(),
              "ApiServer: unknown pod: " + pod_name);
  return it->second.node;
}

int ApiServer::count_pods_with_label(const std::string& node_name,
                                     const std::string& label_key,
                                     const std::string& label_value) const {
  int count = 0;
  for (const auto& [pod_name, binding] : pod_bindings_) {
    if (binding.node != node_name) continue;
    const auto it = binding.labels.find(label_key);
    if (it != binding.labels.end() && it->second == label_value) ++count;
  }
  return count;
}

void ApiServer::set_node_ready(const std::string& name, bool ready) {
  node_mutable(name).ready = ready;
}

const NodeEntry& ApiServer::node(const std::string& name) const {
  for (const auto& n : nodes_) {
    if (n.name == name) return n;
  }
  throw Error("ApiServer: unknown node: " + name);
}

NodeEntry& ApiServer::node_mutable(const std::string& name) {
  for (auto& n : nodes_) {
    if (n.name == name) return n;
  }
  throw Error("ApiServer: unknown node: " + name);
}

}  // namespace lts::k8s
