// Job configuration: the static, application-level attributes a client
// submits with a job request (§3.2.1) and that the Feature Constructor joins
// with telemetry (Table 1: application type, input size, executor count,
// requested memory, ...).
#pragma once

#include <cstdint>
#include <string>

#include "util/common.hpp"

namespace lts::spark {

/// The paper's workloads (Table 2) plus the group-by shuffle pattern
/// mentioned in §5.2, plus two §8 future-work applications: a distributed
/// ML training pipeline and a multi-stage streaming job.
enum class AppType {
  kSort,
  kPageRank,
  kJoin,
  kGroupBy,
  // Extension apps (not part of the paper's evaluation matrix):
  kMlPipeline,
  kStreaming,
};

const char* to_string(AppType type);
AppType app_type_from_string(const std::string& s);

/// The PAPER's application set, in one-hot encoding order (Table 1's
/// categorical feature). The extension apps are deliberately excluded: a
/// job of an unseen type encodes as the all-zero app vector, which is how
/// the generalization-to-new-applications experiment
/// (bench_ext_workloads) stresses the model.
inline constexpr AppType kAllAppTypes[] = {AppType::kSort, AppType::kPageRank,
                                           AppType::kJoin, AppType::kGroupBy};
inline constexpr int kNumAppTypes = 4;

struct JobConfig {
  AppType app = AppType::kSort;
  std::int64_t input_records = 100000;
  Bytes record_bytes = 100.0;

  int executors = 3;
  double executor_cores = 1.0;
  Bytes executor_memory = 1024.0 * 1024 * 1024;  // 1 GiB
  double driver_cores = 1.0;
  Bytes driver_memory = 1024.0 * 1024 * 1024;

  /// 0 selects the engine default (2 per executor, min 8).
  int shuffle_partitions = 0;

  /// PageRank only: number of iterations.
  int iterations = 3;

  /// Join only: Zipf exponent of the key distribution; higher = more skew.
  double join_skew = 1.3;

  Bytes input_bytes() const {
    return static_cast<Bytes>(input_records) * record_bytes;
  }
  int effective_shuffle_partitions() const {
    if (shuffle_partitions > 0) return shuffle_partitions;
    return executors * 2 < 8 ? 8 : executors * 2;
  }

  /// Validates ranges; throws lts::Error with a description on failure.
  void validate() const;
};

}  // namespace lts::spark
