#include "spark/workloads.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace lts::spark {

double StageSpec::task_weight(int task) const {
  LTS_REQUIRE(task >= 0 && task < num_tasks, "StageSpec: bad task index");
  if (task_weights.empty()) return 1.0 / static_cast<double>(num_tasks);
  return task_weights[static_cast<std::size_t>(task)];
}

void AppDag::validate() const {
  LTS_REQUIRE(!stages.empty(), "AppDag: empty");
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const auto& s = stages[i];
    LTS_REQUIRE(s.id == static_cast<int>(i), "AppDag: ids must be dense");
    LTS_REQUIRE(s.num_tasks >= 1, "AppDag: stage needs tasks");
    for (const int dep : s.deps) {
      LTS_REQUIRE(dep >= 0 && dep < s.id,
                  "AppDag: deps must point to earlier stages");
    }
    if (!s.task_weights.empty()) {
      LTS_REQUIRE(
          s.task_weights.size() == static_cast<std::size_t>(s.num_tasks),
          "AppDag: weight count mismatch");
      const double total = std::accumulate(s.task_weights.begin(),
                                           s.task_weights.end(), 0.0);
      LTS_REQUIRE(std::abs(total - 1.0) < 1e-6,
                  "AppDag: task weights must sum to 1");
    }
  }
}

Bytes AppDag::total_shuffle_bytes() const {
  Bytes total = 0.0;
  for (const auto& s : stages) total += s.shuffle_bytes_in;
  return total;
}

double AppDag::total_cpu_work() const {
  double total = 0.0;
  for (const auto& s : stages) {
    total += s.cpu_work_per_task * static_cast<double>(s.num_tasks);
  }
  return total;
}

namespace {

// Spark sizes map stages by input splits (~64 MB); bounded below by the
// executor count so every executor participates, and above to keep the
// control plane sane.
int map_task_count(Bytes input, int executors) {
  const int by_split = static_cast<int>(std::ceil(input / 64e6));
  return std::clamp(by_split, std::max(2, executors), 64);
}

/// Zipf-profile task weights for the skewed Join: weight_i ~ 1/rank^s,
/// with ranks assigned to partition indices in a seeded random order so the
/// heavy partition lands on a different executor per scenario.
std::vector<double> zipf_weights(int n, double exponent, Rng& rng) {
  std::vector<double> w(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    w[static_cast<std::size_t>(i)] =
        1.0 / std::pow(static_cast<double>(i + 1), exponent);
  }
  rng.shuffle(w);
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  for (auto& x : w) x /= total;
  return w;
}

AppDag build_sort(const JobConfig& cfg, const WorkloadCost& cost) {
  const Bytes input = cfg.input_bytes();
  const int reducers = cfg.effective_shuffle_partitions();
  AppDag dag;

  StageSpec map;
  map.id = 0;
  map.name = "map";
  map.num_tasks = map_task_count(input, cfg.executors);
  map.cpu_work_per_task = input / static_cast<double>(map.num_tasks) /
                          cost.map_bytes_per_core_sec;
  map.output_bytes = input;  // full shuffle: every byte crosses the wire
  map.memory_per_task = input / static_cast<double>(map.num_tasks) * 0.5;
  dag.stages.push_back(std::move(map));

  StageSpec reduce;
  reduce.id = 1;
  reduce.name = "sort-reduce";
  reduce.deps = {0};
  reduce.num_tasks = reducers;
  reduce.shuffle_bytes_in = input;
  reduce.cpu_work_per_task = input / static_cast<double>(reducers) /
                             cost.sort_bytes_per_core_sec;
  reduce.output_bytes = input * 0.05;  // sorted sample written back
  reduce.memory_per_task =
      input / static_cast<double>(reducers) * 1.2;  // sort buffer
  dag.stages.push_back(std::move(reduce));

  dag.result_bytes = std::min<Bytes>(input * 0.25, 256e6);
  dag.broadcast_bytes = 260e6;  // fat application jar + closures
  dag.validate();
  return dag;
}

AppDag build_groupby(const JobConfig& cfg, const WorkloadCost& cost) {
  const Bytes input = cfg.input_bytes();
  const int reducers = cfg.effective_shuffle_partitions();
  // Map-side combining shrinks the shuffle; the reduce does heavier
  // per-byte aggregation work than sort's merge.
  const Bytes shuffled = input * 0.6;
  AppDag dag;

  StageSpec map;
  map.id = 0;
  map.name = "map-combine";
  map.num_tasks = map_task_count(input, cfg.executors);
  map.cpu_work_per_task = input / static_cast<double>(map.num_tasks) /
                          cost.agg_bytes_per_core_sec;
  map.output_bytes = shuffled;
  map.memory_per_task =
      input / static_cast<double>(map.num_tasks) * 0.8;  // combiner map
  dag.stages.push_back(std::move(map));

  StageSpec reduce;
  reduce.id = 1;
  reduce.name = "groupby-reduce";
  reduce.deps = {0};
  reduce.num_tasks = reducers;
  reduce.shuffle_bytes_in = shuffled;
  reduce.cpu_work_per_task = shuffled / static_cast<double>(reducers) /
                             cost.agg_bytes_per_core_sec;
  reduce.output_bytes = shuffled * 0.1;
  reduce.memory_per_task = shuffled / static_cast<double>(reducers) * 1.5;
  dag.stages.push_back(std::move(reduce));

  dag.result_bytes = std::min<Bytes>(shuffled * 0.2, 192e6);
  dag.broadcast_bytes = 280e6;
  dag.validate();
  return dag;
}

AppDag build_join(const JobConfig& cfg, const WorkloadCost& cost, Rng& rng) {
  const Bytes input = cfg.input_bytes();
  const Bytes left = input * 0.7;
  const Bytes right = input * 0.3;
  const int partitions = cfg.effective_shuffle_partitions();
  AppDag dag;

  StageSpec map_left;
  map_left.id = 0;
  map_left.name = "scan-left";
  map_left.num_tasks = map_task_count(left, cfg.executors);
  map_left.cpu_work_per_task = left /
                               static_cast<double>(map_left.num_tasks) /
                               cost.map_bytes_per_core_sec;
  map_left.output_bytes = left;
  map_left.memory_per_task =
      left / static_cast<double>(map_left.num_tasks) * 0.4;
  dag.stages.push_back(std::move(map_left));

  StageSpec map_right;
  map_right.id = 1;
  map_right.name = "scan-right";
  map_right.num_tasks = map_task_count(right, cfg.executors);
  map_right.cpu_work_per_task = right /
                                static_cast<double>(map_right.num_tasks) /
                                cost.map_bytes_per_core_sec;
  map_right.output_bytes = right;
  map_right.memory_per_task =
      right / static_cast<double>(map_right.num_tasks) * 0.4;
  dag.stages.push_back(std::move(map_right));

  StageSpec join;
  join.id = 2;
  join.name = "shuffle-join";
  join.deps = {0, 1};
  join.num_tasks = partitions;
  join.shuffle_bytes_in = left + right;
  join.task_weights = zipf_weights(partitions, cfg.join_skew, rng);
  // cpu_work_per_task is the *mean*; the runtime scales it by each task's
  // weight relative to uniform, so the heavy Zipf partition costs
  // proportionally more CPU and memory — Table 2's "skewed CPU and memory".
  join.cpu_work_per_task = (left + right) / static_cast<double>(partitions) /
                           cost.join_bytes_per_core_sec;
  join.output_bytes = (left + right) * 0.15;
  join.memory_per_task =
      (left + right) / static_cast<double>(partitions) * 2.0;  // hash table
  dag.stages.push_back(std::move(join));

  dag.result_bytes = std::min<Bytes>((left + right) * 0.2, 256e6);
  // Join ships the broadcast side of the plan on top of the jar.
  dag.broadcast_bytes = 340e6;
  dag.validate();
  return dag;
}

AppDag build_pagerank(const JobConfig& cfg, const WorkloadCost& cost) {
  const Bytes edges = cfg.input_bytes();
  const int partitions = cfg.effective_shuffle_partitions();
  AppDag dag;

  StageSpec load;
  load.id = 0;
  load.name = "load-graph";
  load.num_tasks = map_task_count(edges, cfg.executors);
  load.cpu_work_per_task = edges / static_cast<double>(load.num_tasks) /
                           cost.map_bytes_per_core_sec;
  load.output_bytes = edges;
  load.memory_per_task = edges / static_cast<double>(load.num_tasks) * 0.6;
  dag.stages.push_back(std::move(load));

  // Each iteration exchanges rank contributions along edges: a recurring
  // shuffle of a large fraction of the edge data (Table 2: "iterative data
  // exchange").
  const Bytes per_iter = edges * 0.8;
  for (int i = 0; i < cfg.iterations; ++i) {
    StageSpec iter;
    iter.id = static_cast<int>(dag.stages.size());
    iter.name = "iteration-" + std::to_string(i + 1);
    iter.deps = {iter.id - 1};
    iter.num_tasks = partitions;
    iter.shuffle_bytes_in = per_iter;
    iter.cpu_work_per_task = per_iter / static_cast<double>(partitions) /
                             cost.rank_bytes_per_core_sec;
    iter.output_bytes = per_iter;
    iter.memory_per_task = per_iter / static_cast<double>(partitions) * 1.0;
    // Per-iteration driver barrier: rank deltas converge on the driver and
    // the updated broadcast state fans back out. This is what makes
    // PageRank's completion time so sensitive to the driver node's network
    // position (Table 2: "iterative data exchange").
    iter.driver_sync_in = std::min<Bytes>(edges * 0.10, 48e6);
    iter.driver_sync_out = std::min<Bytes>(edges * 0.05, 24e6);
    iter.driver_sync_rounds = 5;
    dag.stages.push_back(std::move(iter));
  }

  StageSpec ranks;
  ranks.id = static_cast<int>(dag.stages.size());
  ranks.name = "extract-ranks";
  ranks.deps = {ranks.id - 1};
  ranks.num_tasks = std::max(2, partitions / 2);
  ranks.shuffle_bytes_in = edges * 0.1;  // vertex ranks only
  ranks.cpu_work_per_task = edges * 0.1 /
                            static_cast<double>(ranks.num_tasks) /
                            cost.agg_bytes_per_core_sec;
  ranks.output_bytes = edges * 0.05;
  ranks.memory_per_task =
      edges * 0.1 / static_cast<double>(ranks.num_tasks);
  dag.stages.push_back(std::move(ranks));

  dag.result_bytes = std::min<Bytes>(edges * 0.18, 192e6);
  dag.broadcast_bytes = 300e6;
  dag.validate();
  return dag;
}

AppDag build_ml_pipeline(const JobConfig& cfg, const WorkloadCost& cost) {
  // Distributed synchronous training (§8 "distributed ML pipelines"):
  // load the dataset, then `iterations` epochs, each computing gradients on
  // data shards and synchronizing a model of `model_bytes` through the
  // driver (gather gradients, broadcast updated weights) with serialized
  // parameter-server round trips. Completion time is dominated by the
  // driver's network position times the epoch count.
  const Bytes input = cfg.input_bytes();
  const Bytes model_bytes = std::min<Bytes>(input * 0.10, 64e6);
  AppDag dag;

  StageSpec load;
  load.id = 0;
  load.name = "load-shards";
  load.num_tasks = map_task_count(input, cfg.executors);
  load.cpu_work_per_task = input / static_cast<double>(load.num_tasks) /
                           cost.map_bytes_per_core_sec;
  load.output_bytes = input * 0.3;  // parsed feature blocks stay local
  load.memory_per_task = input / static_cast<double>(load.num_tasks) * 0.8;
  dag.stages.push_back(std::move(load));

  for (int e = 0; e < cfg.iterations; ++e) {
    StageSpec epoch;
    epoch.id = static_cast<int>(dag.stages.size());
    epoch.name = "epoch-" + std::to_string(e + 1);
    epoch.deps = {epoch.id - 1};
    epoch.num_tasks = std::max(2, cfg.executors);
    epoch.shuffle_bytes_in = input * 0.05;  // shard re-balancing only
    epoch.cpu_work_per_task = input /
                              static_cast<double>(epoch.num_tasks) /
                              cost.rank_bytes_per_core_sec;
    epoch.output_bytes = input * 0.05;
    epoch.memory_per_task =
        input / static_cast<double>(epoch.num_tasks) * 0.6 + model_bytes;
    epoch.driver_sync_in = model_bytes;   // gradients converge on driver
    epoch.driver_sync_out = model_bytes;  // updated weights fan out
    epoch.driver_sync_rounds = 3;         // parameter negotiation
    dag.stages.push_back(std::move(epoch));
  }

  StageSpec eval;
  eval.id = static_cast<int>(dag.stages.size());
  eval.name = "evaluate";
  eval.deps = {eval.id - 1};
  eval.num_tasks = std::max(2, cfg.executors);
  eval.shuffle_bytes_in = input * 0.1;
  eval.cpu_work_per_task = input * 0.1 /
                           static_cast<double>(eval.num_tasks) /
                           cost.map_bytes_per_core_sec;
  eval.output_bytes = 1e6;
  eval.memory_per_task = model_bytes;
  dag.stages.push_back(std::move(eval));

  dag.result_bytes = model_bytes + 8e6;  // final weights + metrics
  dag.broadcast_bytes = 150e6 + model_bytes;  // framework jar + init model
  dag.validate();
  return dag;
}

AppDag build_streaming(const JobConfig& cfg, const WorkloadCost& cost) {
  // Multi-stage streaming job (§8): 3*iterations micro-batches, each a
  // small map + keyed aggregation with a per-batch driver commit. Nearly
  // all control plane: the job is a latency stress test for the driver's
  // RTT profile rather than a bandwidth one.
  const Bytes input = cfg.input_bytes();
  const int batches = cfg.iterations * 3;
  const Bytes per_batch = input / static_cast<double>(batches);
  AppDag dag;

  StageSpec source;
  source.id = 0;
  source.name = "source";
  source.num_tasks = std::max(2, cfg.executors);
  source.cpu_work_per_task = 0.02;
  source.output_bytes = per_batch;
  source.memory_per_task = per_batch;
  dag.stages.push_back(std::move(source));

  for (int b = 0; b < batches; ++b) {
    StageSpec batch;
    batch.id = static_cast<int>(dag.stages.size());
    batch.name = "microbatch-" + std::to_string(b + 1);
    batch.deps = {batch.id - 1};
    batch.num_tasks = std::max(2, cfg.executors);
    batch.shuffle_bytes_in = per_batch * 0.8;
    batch.cpu_work_per_task = per_batch /
                              static_cast<double>(batch.num_tasks) /
                              cost.agg_bytes_per_core_sec;
    batch.output_bytes = per_batch;
    batch.memory_per_task = per_batch * 1.2;
    batch.driver_sync_in = std::min<Bytes>(per_batch * 0.05, 4e6);
    batch.driver_sync_rounds = 2;  // offset commit + watermark
    dag.stages.push_back(std::move(batch));
  }

  dag.result_bytes = std::min<Bytes>(input * 0.05, 48e6);
  dag.broadcast_bytes = 120e6;
  dag.validate();
  return dag;
}

}  // namespace

AppDag build_dag(const JobConfig& config, Rng& rng, const WorkloadCost& cost) {
  config.validate();
  switch (config.app) {
    case AppType::kSort: return build_sort(config, cost);
    case AppType::kGroupBy: return build_groupby(config, cost);
    case AppType::kJoin: return build_join(config, cost, rng);
    case AppType::kPageRank: return build_pagerank(config, cost);
    case AppType::kMlPipeline: return build_ml_pipeline(config, cost);
    case AppType::kStreaming: return build_streaming(config, cost);
  }
  throw Error("build_dag: unknown app type");
}

}  // namespace lts::spark
