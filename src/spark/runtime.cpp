#include "spark/runtime.hpp"

#include <algorithm>
#include <cmath>

namespace lts::spark {

SparkApp::SparkApp(cluster::Cluster& cluster, JobConfig config, AppDag dag,
                   std::size_t driver_node,
                   std::vector<std::size_t> executor_nodes, Rng rng,
                   RuntimeOptions options)
    : cluster_(cluster),
      config_(std::move(config)),
      dag_(std::move(dag)),
      driver_node_(driver_node),
      options_(options) {
  config_.validate();
  dag_.validate();
  LTS_REQUIRE(driver_node_ < cluster_.num_nodes(),
              "SparkApp: driver node out of range");
  LTS_REQUIRE(executor_nodes.size() ==
                  static_cast<std::size_t>(config_.executors),
              "SparkApp: need one node per executor");
  executors_.resize(executor_nodes.size());
  for (std::size_t i = 0; i < executor_nodes.size(); ++i) {
    LTS_REQUIRE(executor_nodes[i] < cluster_.num_nodes(),
                "SparkApp: executor node out of range");
    executors_[i].node = executor_nodes[i];
    executors_[i].slots =
        std::max(1, static_cast<int>(std::llround(config_.executor_cores)));
  }

  // Pre-draw all randomness so that counterfactual replays (same seed,
  // different driver node) see identical draws per task.
  driver_startup_delay_ =
      rng.uniform(options_.driver_startup_min, options_.driver_startup_max);
  executor_startup_delays_.reserve(executors_.size());
  for (std::size_t i = 0; i < executors_.size(); ++i) {
    executor_startup_delays_.push_back(rng.uniform(
        options_.executor_startup_min, options_.executor_startup_max));
  }
  task_jitter_.resize(dag_.stages.size());
  task_will_fail_.resize(dag_.stages.size());
  for (std::size_t s = 0; s < dag_.stages.size(); ++s) {
    task_jitter_[s].reserve(static_cast<std::size_t>(dag_.stages[s].num_tasks));
    for (int t = 0; t < dag_.stages[s].num_tasks; ++t) {
      task_jitter_[s].push_back(
          rng.lognormal_median(1.0, options_.task_jitter_sigma));
    }
    task_will_fail_[s].assign(
        static_cast<std::size_t>(dag_.stages[s].num_tasks), 0);
    if (options_.task_failure_rate > 0.0) {
      for (int t = 0; t < dag_.stages[s].num_tasks; ++t) {
        task_will_fail_[s][static_cast<std::size_t>(t)] =
            rng.uniform() < options_.task_failure_rate ? 1 : 0;
      }
    }
  }
}

SparkApp::~SparkApp() { cancel(); }

void SparkApp::cancel() {
  if (!running_) return;
  running_ = false;
  for (const auto id : live_events_) cluster_.engine().cancel(id);
  live_events_.clear();
  for (const auto id : live_flows_) cluster_.flows().cancel(id);
  live_flows_.clear();
  for (const auto& [node, id] : live_cpu_) cluster_.node(node).cpu().cancel(id);
  live_cpu_.clear();
  release_pods();
}

void SparkApp::release_pods() {
  for (const auto& [node, id] : service_cpu_) {
    cluster_.node(node).cpu().cancel(id);
  }
  service_cpu_.clear();
  for (const auto& [node, bytes] : held_memory_) {
    cluster_.node(node).release_memory(bytes);
  }
  held_memory_.clear();
}

void SparkApp::schedule(SimTime delay, std::function<void()> fn) {
  // Events cannot fire re-entrantly (they only run from the engine loop),
  // so publishing the id through the shared slot after scheduling is safe.
  auto idp = std::make_shared<sim::EventId>(sim::kInvalidEvent);
  const sim::EventId id = cluster_.engine().schedule_in(
      delay, [this, fn = std::move(fn), idp]() {
        live_events_.erase(*idp);
        fn();
      });
  *idp = id;
  live_events_.insert(id);
}

void SparkApp::start_flow(std::size_t src_node, std::size_t dst_node,
                          Bytes bytes, std::function<void()> fn) {
  // FlowManager::start defers the max-min recompute to a same-timestamp
  // hook, so the M×N flows a shuffle stage opens in one event share a
  // single progressive fill instead of paying one each.
  auto idp = std::make_shared<net::FlowId>(net::kInvalidFlow);
  const net::FlowId id = cluster_.flows().start(
      cluster_.node(src_node).vertex(), cluster_.node(dst_node).vertex(),
      bytes, [this, fn = std::move(fn), idp]() {
        live_flows_.erase(*idp);
        fn();
      });
  *idp = id;
  live_flows_.insert(id);
}

void SparkApp::run_cpu(std::size_t node, double demand, double work,
                       std::function<void()> fn) {
  auto idp = std::make_shared<cluster::CpuTaskId>(cluster::kInvalidCpuTask);
  const cluster::CpuTaskId id = cluster_.node(node).cpu().run(
      demand, work, [this, node, fn = std::move(fn), idp]() {
        live_cpu_.erase({node, *idp});
        fn();
      });
  *idp = id;
  live_cpu_.insert({node, id});
}

SimTime SparkApp::rtt(std::size_t a, std::size_t b) const {
  if (a == b) return options_.loopback_rtt;
  return cluster_.flows().current_rtt(cluster_.node(a).vertex(),
                                      cluster_.node(b).vertex());
}

void SparkApp::submit(std::function<void(const AppResult&)> on_complete) {
  LTS_REQUIRE(!running_ && !result_.completed, "SparkApp: already submitted");
  running_ = true;
  on_complete_ = std::move(on_complete);
  result_.submit_time = cluster_.engine().now();
  result_.driver_node = cluster_.node(driver_node_).name();
  for (const auto& e : executors_) {
    result_.executor_nodes.push_back(cluster_.node(e.node).name());
  }
  result_.stages.resize(dag_.stages.size());
  stage_state_.assign(dag_.stages.size(), StageState{});
  for (std::size_t s = 0; s < dag_.stages.size(); ++s) {
    stage_state_[s].deps_remaining =
        static_cast<int>(dag_.stages[s].deps.size());
    stage_state_[s].reports_remaining = dag_.stages[s].num_tasks;
    result_.stages[s].stage_id = dag_.stages[s].id;
    result_.stages[s].name = dag_.stages[s].name;
    result_.stages[s].tasks = dag_.stages[s].num_tasks;
  }
  stages_remaining_ = static_cast<int>(dag_.stages.size());
  executors_pending_ = static_cast<int>(executors_.size());

  schedule(driver_startup_delay_, [this] { on_driver_started(); });
}

void SparkApp::on_driver_started() {
  // Driver pod is up: hold its memory and service CPU, then plan the job.
  cluster_.node(driver_node_).allocate_memory(config_.driver_memory);
  held_memory_.emplace_back(driver_node_, config_.driver_memory);
  service_cpu_.emplace_back(
      driver_node_, cluster_.node(driver_node_)
                        .cpu()
                        .add_persistent(options_.driver_service_cpu));
  run_cpu(driver_node_, std::min(config_.driver_cores, 1.0),
          options_.driver_planning_work, [this] {
            for (std::size_t i = 0; i < executors_.size(); ++i) {
              // Pod start + registration round trip back to the driver.
              const SimTime delay =
                  executor_startup_delays_[i] +
                  rtt(executors_[i].node, driver_node_);
              schedule(delay, [this, i] { on_executor_registered(i); });
            }
          });
}

void SparkApp::on_executor_registered(std::size_t executor_index) {
  auto& exec = executors_[executor_index];
  exec.registered = true;
  cluster_.node(exec.node).allocate_memory(config_.executor_memory);
  held_memory_.emplace_back(exec.node, config_.executor_memory);
  service_cpu_.emplace_back(exec.node,
                            cluster_.node(exec.node).cpu().add_persistent(
                                options_.executor_service_cpu));
  if (--executors_pending_ == 0) {
    begin_broadcast();
  }
}

void SparkApp::begin_broadcast() {
  // The driver's file server ships jars/closures/broadcast variables to
  // every executor before any task can run (Spark cluster mode). These
  // flows leave the driver's node: its network position and current tx load
  // directly gate how fast the job gets off the ground.
  if (dag_.broadcast_bytes <= 1.0) {
    start_ready_stages();
    return;
  }
  broadcast_remaining_ = 0;
  SimTime local_time = 0.0;
  for (const auto& exec : executors_) {
    if (exec.node == driver_node_) {
      local_time = std::max(
          local_time, dag_.broadcast_bytes / options_.local_read_rate);
      continue;
    }
    ++broadcast_remaining_;
  }
  if (broadcast_remaining_ == 0) {
    schedule(local_time, [this] { start_ready_stages(); });
    return;
  }
  for (const auto& exec : executors_) {
    if (exec.node == driver_node_) continue;
    start_flow(driver_node_, exec.node, dag_.broadcast_bytes, [this] {
      if (--broadcast_remaining_ == 0) {
        start_ready_stages();
      }
    });
  }
}

void SparkApp::start_ready_stages() {
  for (std::size_t s = 0; s < dag_.stages.size(); ++s) {
    if (!stage_state_[s].started && stage_state_[s].deps_remaining == 0) {
      start_stage(static_cast<int>(s));
    }
  }
}

void SparkApp::start_stage(int stage_id) {
  auto& state = stage_state_[static_cast<std::size_t>(stage_id)];
  state.started = true;
  const StageSpec& spec = dag_.stages[static_cast<std::size_t>(stage_id)];
  result_.stages[static_cast<std::size_t>(stage_id)].start =
      cluster_.engine().now();
  // The driver serializes and dispatches every task of the stage: CPU work
  // on the driver's node that scales with the task count.
  const double dispatch_work =
      options_.dispatch_cpu_per_task * static_cast<double>(spec.num_tasks) +
      options_.stage_finalize_cpu;
  run_cpu(driver_node_, std::min(config_.driver_cores, 1.0), dispatch_work,
          [this, stage_id] {
            const StageSpec& s =
                dag_.stages[static_cast<std::size_t>(stage_id)];
            auto& st = stage_state_[static_cast<std::size_t>(stage_id)];
            st.tasks_on_executor.assign(executors_.size(), 0);
            st.pending_tasks.reserve(static_cast<std::size_t>(s.num_tasks));
            for (int t = 0; t < s.num_tasks; ++t) {
              st.pending_tasks.push_back(t);
            }
            pump_slots();
          });
}

void SparkApp::pump_slots() {
  // Fill free slots from the oldest running stage's pending queue. The
  // launch message occupies the slot for half an RTT (the executor waits
  // for its next task from the driver).
  for (std::size_t s = 0; s < stage_state_.size(); ++s) {
    auto& st = stage_state_[s];
    if (!st.started || st.finished || !st.has_pending()) continue;
    for (std::size_t e = 0; e < executors_.size() && st.has_pending(); ++e) {
      auto& exec = executors_[e];
      while (exec.running < exec.slots && st.has_pending()) {
        const int task = st.pending_tasks[st.next_pending++];
        ++st.tasks_on_executor[e];
        ++exec.running;
        const int stage_id = static_cast<int>(s);
        const SimTime launch_delay =
            0.5 * rtt(driver_node_, exec.node) +
            options_.task_launch_overhead;
        schedule(launch_delay, [this, stage_id, task, e] {
          begin_task(stage_id, task, e);
        });
      }
    }
  }
}

std::vector<double> SparkApp::source_fractions(int stage_id) const {
  const StageSpec& spec = dag_.stages[static_cast<std::size_t>(stage_id)];
  std::vector<double> frac(executors_.size(), 0.0);
  double total = 0.0;
  for (const int dep : spec.deps) {
    const StageSpec& parent = dag_.stages[static_cast<std::size_t>(dep)];
    if (parent.output_bytes <= 0.0) continue;
    // Map output lives where the parent's tasks actually ran.
    const auto& parent_state = stage_state_[static_cast<std::size_t>(dep)];
    for (std::size_t k = 0; k < executors_.size(); ++k) {
      const double share =
          parent.output_bytes *
          static_cast<double>(parent_state.tasks_on_executor[k]) /
          static_cast<double>(parent.num_tasks);
      frac[k] += share;
      total += share;
    }
  }
  if (total > 0.0) {
    for (auto& f : frac) f /= total;
  }
  return frac;
}

void SparkApp::begin_task(int stage_id, int task,
                          std::size_t executor_index) {
  const StageSpec& spec = dag_.stages[static_cast<std::size_t>(stage_id)];
  const Bytes task_in =
      spec.shuffle_bytes_in * spec.task_weight(task);
  if (spec.deps.empty() || task_in <= 0.0) {
    task_inputs_ready(stage_id, task, executor_index);
    return;
  }
  const auto frac = source_fractions(stage_id);
  const std::size_t dst_node = executors_[executor_index].node;
  auto remaining = std::make_shared<int>(0);
  SimTime local_read_time = 0.0;
  for (std::size_t src = 0; src < executors_.size(); ++src) {
    const Bytes bytes = task_in * frac[src];
    if (bytes <= 1.0) continue;  // below one byte: nothing to move
    const std::size_t src_node = executors_[src].node;
    if (src_node == dst_node) {
      // Node-local read: no network flow, just local I/O.
      local_read_time =
          std::max(local_read_time, bytes / options_.local_read_rate);
      continue;
    }
    ++*remaining;
    result_.total_shuffle_bytes += bytes;
    result_.stages[static_cast<std::size_t>(stage_id)].shuffle_bytes += bytes;
    start_flow(src_node, dst_node, bytes,
               [this, stage_id, task, executor_index, remaining] {
                 if (--*remaining == 0) {
                   task_inputs_ready(stage_id, task, executor_index);
                 }
               });
  }
  if (*remaining == 0) {
    // All input was local.
    schedule(local_read_time, [this, stage_id, task, executor_index] {
      task_inputs_ready(stage_id, task, executor_index);
    });
  } else if (local_read_time > 0.0) {
    ++*remaining;
    schedule(local_read_time, [this, stage_id, task, executor_index,
                               remaining] {
      if (--*remaining == 0) {
        task_inputs_ready(stage_id, task, executor_index);
      }
    });
  }
}

void SparkApp::task_inputs_ready(int stage_id, int task,
                                 std::size_t executor_index) {
  const StageSpec& spec = dag_.stages[static_cast<std::size_t>(stage_id)];
  auto& exec = executors_[executor_index];
  const std::size_t node_idx = exec.node;
  auto& node = cluster_.node(node_idx);

  // Working set: this task's (weighted) share of the stage's memory needs.
  const Bytes task_mem = spec.memory_per_task *
                         spec.task_weight(task) *
                         static_cast<double>(spec.num_tasks);
  node.allocate_memory(task_mem);

  // Spill penalty: the working set must fit in this task's share of the
  // executor heap; beyond that Spark spills to disk.
  const double heap_share =
      config_.executor_memory / static_cast<double>(exec.slots);
  const double spill =
      1.0 + options_.spill_slowdown *
                std::max(0.0, task_mem / heap_share - 1.0);
  // Swap penalty: the *node's* physical memory is over-committed.
  const double swap =
      1.0 + options_.node_swap_slowdown *
                std::max(0.0, node.memory_pressure() - 1.0);
  result_.max_spill_penalty =
      std::max(result_.max_spill_penalty, spill * swap);

  const double jitter =
      task_jitter_[static_cast<std::size_t>(stage_id)]
                  [static_cast<std::size_t>(task)];
  const double work = spec.cpu_work_per_task *
                      spec.task_weight(task) *
                      static_cast<double>(spec.num_tasks) * jitter * spill *
                      swap;

  // Injected failure: burn part of the work, detect, release, retry. The
  // pre-drawn flag is consumed so the retry succeeds.
  auto& will_fail = task_will_fail_[static_cast<std::size_t>(stage_id)]
                                   [static_cast<std::size_t>(task)];
  if (will_fail != 0) {
    will_fail = 0;
    const double wasted =
        std::max(work * options_.failure_waste_fraction, 1e-6);
    run_cpu(node_idx, 1.0, wasted,
            [this, stage_id, task, executor_index, task_mem] {
              auto& node = cluster_.node(executors_[executor_index].node);
              node.release_memory(task_mem);
              ++result_.task_retries;
              schedule(options_.failure_detect_delay,
                       [this, stage_id, task, executor_index] {
                         task_inputs_ready(stage_id, task, executor_index);
                       });
            });
    return;
  }

  run_cpu(node_idx, 1.0, std::max(work, 1e-6),
          [this, stage_id, task, executor_index, task_mem] {
            task_cpu_done(stage_id, task, executor_index, task_mem);
          });
}

void SparkApp::task_cpu_done(int stage_id, int /*task*/,
                             std::size_t executor_index, Bytes held_memory) {
  auto& exec = executors_[executor_index];
  cluster_.node(exec.node).release_memory(held_memory);
  --exec.running;
  pump_slots();
  // Completion report travels back to the driver.
  const SimTime report_delay = 0.5 * rtt(exec.node, driver_node_);
  schedule(report_delay, [this, stage_id] { on_task_report(stage_id); });
}

void SparkApp::on_task_report(int stage_id) {
  auto& state = stage_state_[static_cast<std::size_t>(stage_id)];
  if (--state.reports_remaining == 0) {
    finish_stage(stage_id);
  }
}

void SparkApp::finish_stage(int stage_id) {
  const StageSpec& spec = dag_.stages[static_cast<std::size_t>(stage_id)];
  const bool has_sync = spec.driver_sync_in > 1.0 ||
                        spec.driver_sync_out > 1.0 ||
                        spec.driver_sync_rounds > 0;
  if (!has_sync) {
    complete_stage(stage_id);
    return;
  }
  // Serialized control rounds first: each is a full RTT to the farthest
  // executor at the current congestion level.
  SimTime control_latency = 0.0;
  if (spec.driver_sync_rounds > 0) {
    SimTime worst_rtt = 0.0;
    for (const auto& exec : executors_) {
      worst_rtt = std::max(worst_rtt, rtt(driver_node_, exec.node));
    }
    control_latency = worst_rtt * static_cast<double>(spec.driver_sync_rounds);
  }
  schedule(control_latency, [this, stage_id] { stage_sync_gather(stage_id); });
}

void SparkApp::stage_sync_gather(int stage_id) {
  const StageSpec& spec = dag_.stages[static_cast<std::size_t>(stage_id)];
  if (spec.driver_sync_in <= 1.0) {
    stage_sync_scatter(stage_id);
    return;
  }
  auto remaining = std::make_shared<int>(0);
  const Bytes per_exec =
      spec.driver_sync_in / static_cast<double>(executors_.size());
  SimTime local_time = 0.0;
  for (const auto& exec : executors_) {
    if (exec.node == driver_node_) {
      local_time = std::max(local_time, per_exec / options_.local_read_rate);
      continue;
    }
    ++*remaining;
  }
  if (*remaining == 0) {
    schedule(local_time, [this, stage_id] { stage_sync_scatter(stage_id); });
    return;
  }
  for (const auto& exec : executors_) {
    if (exec.node == driver_node_) continue;
    start_flow(exec.node, driver_node_, per_exec, [this, stage_id,
                                                   remaining] {
      if (--*remaining == 0) {
        stage_sync_scatter(stage_id);
      }
    });
  }
}

void SparkApp::stage_sync_scatter(int stage_id) {
  const StageSpec& spec = dag_.stages[static_cast<std::size_t>(stage_id)];
  // Aggregation on the driver before the new state ships out.
  const double agg_work =
      0.05 + (spec.driver_sync_in + spec.driver_sync_out) / 300e6;
  run_cpu(driver_node_, std::min(config_.driver_cores, 1.0), agg_work,
          [this, stage_id, &spec] {
            if (spec.driver_sync_out <= 1.0) {
              complete_stage(stage_id);
              return;
            }
            auto remaining = std::make_shared<int>(0);
            SimTime local_time = 0.0;
            for (const auto& exec : executors_) {
              if (exec.node == driver_node_) {
                local_time = std::max(local_time, spec.driver_sync_out /
                                                      options_.local_read_rate);
                continue;
              }
              ++*remaining;
            }
            if (*remaining == 0) {
              schedule(local_time,
                       [this, stage_id] { complete_stage(stage_id); });
              return;
            }
            for (const auto& exec : executors_) {
              if (exec.node == driver_node_) continue;
              start_flow(driver_node_, exec.node, spec.driver_sync_out,
                         [this, stage_id, remaining] {
                           if (--*remaining == 0) {
                             complete_stage(stage_id);
                           }
                         });
            }
          });
}

void SparkApp::complete_stage(int stage_id) {
  auto& state = stage_state_[static_cast<std::size_t>(stage_id)];
  state.finished = true;
  result_.stages[static_cast<std::size_t>(stage_id)].end =
      cluster_.engine().now();
  for (std::size_t s = 0; s < dag_.stages.size(); ++s) {
    const auto& deps = dag_.stages[s].deps;
    if (std::find(deps.begin(), deps.end(), stage_id) != deps.end()) {
      --stage_state_[s].deps_remaining;
    }
  }
  if (--stages_remaining_ == 0) {
    begin_collect();
  } else {
    start_ready_stages();
  }
}

void SparkApp::begin_collect() {
  result_.result_bytes = dag_.result_bytes;
  if (dag_.result_bytes <= 1.0) {
    finish_app();
    return;
  }
  collect_remaining_ = 0;
  const Bytes per_exec =
      dag_.result_bytes / static_cast<double>(executors_.size());
  SimTime local_time = 0.0;
  for (const auto& exec : executors_) {
    if (exec.node == driver_node_) {
      local_time =
          std::max(local_time, per_exec / options_.local_read_rate);
      continue;
    }
    ++collect_remaining_;
  }
  if (collect_remaining_ == 0) {
    schedule(local_time, [this] { finish_app(); });
    return;
  }
  for (const auto& exec : executors_) {
    if (exec.node == driver_node_) continue;
    start_flow(exec.node, driver_node_, per_exec, [this] {
      if (--collect_remaining_ == 0) {
        finish_app();
      }
    });
  }
}

void SparkApp::finish_app() {
  // Driver finalizes: the collected results are buffered and merged on the
  // driver's node. The merge buffers are a real allocation — on a node whose
  // physical memory is tight (background pods, co-located executors) the
  // merge thrashes, a threshold effect that makes memory telemetry the
  // dominant signal for collect-heavy jobs (Join).
  auto& driver = cluster_.node(driver_node_);
  const Bytes merge_buffer = dag_.result_bytes * 4.0;
  driver.allocate_memory(merge_buffer);
  held_memory_.emplace_back(driver_node_, merge_buffer);
  const double thrash =
      1.0 + 5.0 * std::max(0.0, driver.memory_pressure() - 0.6);
  const double merge_work =
      (options_.collect_finalize_cpu +
       options_.collect_cpu_per_byte * dag_.result_bytes) *
      thrash;
  run_cpu(driver_node_, std::min(config_.driver_cores, 1.0),
          merge_work, [this] {
            running_ = false;
            release_pods();
            result_.completed = true;
            result_.finish_time = cluster_.engine().now();
            if (on_complete_) {
              // Move out first: the callback may destroy this app.
              auto cb = std::move(on_complete_);
              cb(result_);
            }
          });
}

}  // namespace lts::spark
