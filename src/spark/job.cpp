#include "spark/job.hpp"

namespace lts::spark {

const char* to_string(AppType type) {
  switch (type) {
    case AppType::kSort: return "sort";
    case AppType::kPageRank: return "pagerank";
    case AppType::kJoin: return "join";
    case AppType::kGroupBy: return "groupby";
    case AppType::kMlPipeline: return "ml_pipeline";
    case AppType::kStreaming: return "streaming";
  }
  return "?";
}

AppType app_type_from_string(const std::string& s) {
  if (s == "sort") return AppType::kSort;
  if (s == "pagerank") return AppType::kPageRank;
  if (s == "join") return AppType::kJoin;
  if (s == "groupby") return AppType::kGroupBy;
  if (s == "ml_pipeline") return AppType::kMlPipeline;
  if (s == "streaming") return AppType::kStreaming;
  throw Error("unknown app type: " + s);
}

void JobConfig::validate() const {
  LTS_REQUIRE(input_records > 0, "JobConfig: input_records must be positive");
  LTS_REQUIRE(record_bytes > 0.0, "JobConfig: record_bytes must be positive");
  LTS_REQUIRE(executors >= 1, "JobConfig: need at least one executor");
  LTS_REQUIRE(executor_cores > 0.0, "JobConfig: executor_cores must be > 0");
  LTS_REQUIRE(executor_memory > 0.0, "JobConfig: executor_memory must be > 0");
  LTS_REQUIRE(driver_cores > 0.0, "JobConfig: driver_cores must be > 0");
  LTS_REQUIRE(driver_memory > 0.0, "JobConfig: driver_memory must be > 0");
  LTS_REQUIRE(shuffle_partitions >= 0,
              "JobConfig: shuffle_partitions must be >= 0");
  LTS_REQUIRE(iterations >= 1, "JobConfig: iterations must be >= 1");
  LTS_REQUIRE(join_skew >= 1.0, "JobConfig: join_skew must be >= 1.0");
}

}  // namespace lts::spark
