// Workload builders: compile a JobConfig into an AppDag for each of the
// paper's applications (Table 2):
//
//   Sort     — map + full-shuffle reduce; high network and CPU, moderate mem.
//   PageRank — iterative stages, each re-shuffling the edge data; high
//              network and CPU from repeated exchange.
//   Join     — two map stages + a shuffle join whose partition sizes follow
//              a Zipf law; skewed network, CPU and memory.
//   GroupBy  — map-side-combined shuffle with a reduction; the "group-by"
//              shuffle pattern of §5.2.
#pragma once

#include "spark/dag.hpp"
#include "spark/job.hpp"
#include "util/rng.hpp"

namespace lts::spark {

/// Throughput constants that translate bytes into CPU work. Shared across
/// workloads so relative costs stay comparable.
struct WorkloadCost {
  double map_bytes_per_core_sec = 120e6;     // scan + serialize
  double sort_bytes_per_core_sec = 60e6;     // sort + spill merge
  double join_bytes_per_core_sec = 50e6;     // hash build + probe
  double agg_bytes_per_core_sec = 90e6;      // combiner aggregation
  double rank_bytes_per_core_sec = 70e6;     // pagerank contribution calc
};

/// Builds the stage DAG for `config`. `rng` supplies the Join skew profile;
/// builders draw nothing else, so a DAG is reusable across counterfactual
/// runs of the same scenario.
AppDag build_dag(const JobConfig& config, Rng& rng,
                 const WorkloadCost& cost = {});

}  // namespace lts::spark
