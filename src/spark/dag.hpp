// Stage/task DAG abstraction.
//
// A Spark application is compiled into stages separated by shuffles. Each
// StageSpec carries the quantities the runtime needs to *derive* timing from
// first principles — CPU work per task, bytes shuffled in, memory footprint —
// never a precomputed duration. Workload builders (workloads.hpp) produce
// these DAGs for Sort, PageRank, Join and GroupBy.
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"

namespace lts::spark {

struct StageSpec {
  int id = 0;
  std::string name;
  std::vector<int> deps;  // parent stage ids (must be lower ids)

  int num_tasks = 1;

  /// Median CPU cost of one task, in core-seconds (before jitter/spill).
  double cpu_work_per_task = 0.0;

  /// Total bytes this stage pulls from its parents' map outputs (a full
  /// shuffle reads the parents' entire output_bytes).
  Bytes shuffle_bytes_in = 0.0;

  /// Per-task share of shuffle_bytes_in and of CPU work; empty = uniform.
  /// Join uses a Zipf profile here — the skew of Table 2.
  std::vector<double> task_weights;

  /// Bytes of map output this stage materializes for downstream stages.
  Bytes output_bytes = 0.0;

  /// Working-set memory per running task (hash tables, sort buffers).
  Bytes memory_per_task = 0.0;

  /// Driver-coordinated barrier after this stage: executors send
  /// `driver_sync_in` bytes total to the driver (e.g. per-iteration rank
  /// deltas, accumulator updates), the driver aggregates, then ships
  /// `driver_sync_out` bytes to EACH executor (updated broadcast state).
  /// Dependent stages wait for the barrier. Iterative applications
  /// (PageRank) use this every iteration, which multiplies their
  /// sensitivity to the driver node's network position and load.
  Bytes driver_sync_in = 0.0;
  Bytes driver_sync_out = 0.0;
  /// Serialized driver<->executor control round-trips in the barrier
  /// (accumulator reconciliation, commit coordination). Pure latency —
  /// each round costs one RTT to the farthest executor — so iterative apps
  /// feel the driver's RTT profile independent of bandwidth.
  int driver_sync_rounds = 0;

  double task_weight(int task) const;
};

struct AppDag {
  std::vector<StageSpec> stages;
  /// Bytes pulled back to the driver after the final stage (collect()).
  Bytes result_bytes = 0.0;
  /// Bytes the driver ships to EVERY executor before stage 0: application
  /// jars, closures and broadcast variables, served by the driver's file
  /// server as in real Spark cluster mode. This is a primary reason driver
  /// placement matters for data-intensive jobs: a driver behind a congested
  /// or high-RTT path feeds its executors slowly.
  Bytes broadcast_bytes = 0.0;

  /// Checks ids are dense, deps point backwards, weights normalized.
  void validate() const;

  Bytes total_shuffle_bytes() const;
  double total_cpu_work() const;
};

}  // namespace lts::spark
