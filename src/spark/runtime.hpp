// Spark application runtime: executes an AppDag on the simulated cluster.
//
// The runtime reproduces the mechanisms through which driver placement
// affects completion time in a real geo-distributed Spark deployment:
//
//   * control plane   — every task launch and completion report crosses the
//                       driver<->executor RTT, so a driver far from (or on a
//                       congested path to) its executors pays per-task;
//   * driver compute  — job planning, task dispatch and result finalization
//                       are CPU tasks on the driver's node and contend with
//                       background load there;
//   * shuffles        — map outputs move between executor nodes as real
//                       flows through the shared network;
//   * collect         — final results stream back to the driver node;
//   * memory          — tasks allocate working sets; exceeding the executor
//                       heap or the node's physical memory slows them
//                       (spill / swap), which is how Join's skew bites.
//
// All randomness (startup delays, per-task jitter) is pre-drawn at
// construction, so running the same (config, dag, rng seed) with a different
// driver node is an exact counterfactual.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "spark/dag.hpp"
#include "spark/job.hpp"
#include "util/rng.hpp"

namespace lts::spark {

struct RuntimeOptions {
  SimTime driver_startup_min = 2.2;      // pod image + JVM + context init
  SimTime driver_startup_max = 3.6;
  SimTime executor_startup_min = 1.8;
  SimTime executor_startup_max = 3.2;
  double driver_planning_work = 0.4;     // core-seconds before executors launch
  double driver_service_cpu = 0.15;      // persistent demand while app runs
  double executor_service_cpu = 0.08;
  double dispatch_cpu_per_task = 0.008;  // driver core-seconds per task
  double stage_finalize_cpu = 0.1;
  double collect_finalize_cpu = 0.2;     // fixed part of the driver merge
  double collect_cpu_per_byte = 1.0 / 80e6;   // merge cost per result byte
  SimTime task_launch_overhead = 0.002;  // serialization etc., per task
  double task_jitter_sigma = 0.04;       // lognormal shape on task CPU work
  /// Fault injection: each task independently fails once with this
  /// probability (pre-drawn per task). A failed task burns
  /// `failure_waste_fraction` of its CPU work, is detected after
  /// `failure_detect_delay`, and is retried on the same executor (first
  /// retry always succeeds, as Spark's default 4-attempt budget almost
  /// always does).
  double task_failure_rate = 0.0;
  double failure_waste_fraction = 0.6;
  SimTime failure_detect_delay = 1.0;
  double spill_slowdown = 1.2;           // task working set > heap share
  double node_swap_slowdown = 2.0;       // node memory over-committed
  Rate local_read_rate = 800e6;          // node-local shuffle read, bytes/s
  SimTime loopback_rtt = 0.2e-3;         // driver and executor co-located
};

struct StageMetrics {
  int stage_id = 0;
  std::string name;
  SimTime start = 0.0;
  SimTime end = 0.0;
  Bytes shuffle_bytes = 0.0;
  int tasks = 0;
};

struct AppResult {
  bool completed = false;
  int task_retries = 0;  // fault-injection retries that occurred
  SimTime submit_time = 0.0;
  SimTime finish_time = 0.0;
  std::string driver_node;
  std::vector<std::string> executor_nodes;
  std::vector<StageMetrics> stages;
  Bytes total_shuffle_bytes = 0.0;
  Bytes result_bytes = 0.0;
  double max_spill_penalty = 1.0;

  double duration() const { return finish_time - submit_time; }
};

class SparkApp {
 public:
  /// `executor_nodes` has one node index per executor (the k8s default
  /// scheduler's choices); `driver_node` is the scheduler-under-test's pick.
  SparkApp(cluster::Cluster& cluster, JobConfig config, AppDag dag,
           std::size_t driver_node, std::vector<std::size_t> executor_nodes,
           Rng rng, RuntimeOptions options = {});
  ~SparkApp();

  SparkApp(const SparkApp&) = delete;
  SparkApp& operator=(const SparkApp&) = delete;

  /// Submits the application at the current simulated time. `on_complete`
  /// fires once, with the final result.
  void submit(std::function<void(const AppResult&)> on_complete);

  /// Aborts a running application, releasing every held resource.
  void cancel();

  bool running() const { return running_; }
  const AppResult& result() const { return result_; }
  const JobConfig& config() const { return config_; }

 private:
  struct ExecutorState {
    std::size_t node = 0;
    int slots = 1;
    int running = 0;
    bool registered = false;
  };

  struct StageState {
    int deps_remaining = 0;
    int reports_remaining = 0;
    bool started = false;
    bool finished = false;
    // Tasks not yet assigned to a slot: pending_tasks[next_pending..] —
    // a cursor instead of front-erase keeps dispatch FIFO without the
    // O(tasks²) shuffle-down of erasing from the head.
    std::vector<int> pending_tasks;
    std::size_t next_pending = 0;
    std::vector<int> tasks_on_executor;  // per executor, assigned count

    bool has_pending() const { return next_pending < pending_tasks.size(); }
  };

  // -- resource-tracked primitives (all cancellable via cancel()) --
  void schedule(SimTime delay, std::function<void()> fn);
  void start_flow(std::size_t src_node, std::size_t dst_node, Bytes bytes,
                  std::function<void()> fn);
  void run_cpu(std::size_t node, double demand, double work,
               std::function<void()> fn);

  SimTime rtt(std::size_t a, std::size_t b) const;

  void on_driver_started();
  void on_executor_registered(std::size_t executor_index);
  void begin_broadcast();
  void start_ready_stages();
  void start_stage(int stage_id);
  /// Dynamic task assignment: fills every free slot with the next pending
  /// task of the oldest running stage (Spark hands tasks to whichever
  /// executor has capacity, so a slow node naturally receives fewer tasks).
  void pump_slots();
  void begin_task(int stage_id, int task, std::size_t executor_index);
  void task_inputs_ready(int stage_id, int task, std::size_t executor_index);
  void task_cpu_done(int stage_id, int task, std::size_t executor_index,
                     Bytes held_memory);
  void on_task_report(int stage_id);
  void finish_stage(int stage_id);
  void stage_sync_gather(int stage_id);
  void stage_sync_scatter(int stage_id);
  void complete_stage(int stage_id);
  void begin_collect();
  void finish_app();
  void release_pods();

  /// Fraction of upstream map output held by each executor, for stage
  /// `stage_id`'s shuffle reads.
  std::vector<double> source_fractions(int stage_id) const;

  cluster::Cluster& cluster_;
  JobConfig config_;
  AppDag dag_;
  std::size_t driver_node_;
  RuntimeOptions options_;

  // Pre-drawn randomness (see header comment).
  SimTime driver_startup_delay_ = 0.0;
  std::vector<SimTime> executor_startup_delays_;
  std::vector<std::vector<double>> task_jitter_;   // [stage][task]
  std::vector<std::vector<char>> task_will_fail_;  // [stage][task], once

  std::vector<ExecutorState> executors_;
  std::vector<StageState> stage_state_;
  int executors_pending_ = 0;
  int broadcast_remaining_ = 0;
  int stages_remaining_ = 0;
  int collect_remaining_ = 0;

  bool running_ = false;
  AppResult result_;
  std::function<void(const AppResult&)> on_complete_;

  // Live resources for cancellation safety.
  std::set<sim::EventId> live_events_;
  std::set<net::FlowId> live_flows_;
  std::set<std::pair<std::size_t, cluster::CpuTaskId>> live_cpu_;
  std::vector<std::pair<std::size_t, cluster::CpuTaskId>> service_cpu_;
  std::vector<std::pair<std::size_t, Bytes>> held_memory_;
};

}  // namespace lts::spark
