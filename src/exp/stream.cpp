#include "exp/stream.hpp"

#include <algorithm>
#include <optional>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "spark/runtime.hpp"
#include "spark/workloads.hpp"
#include "util/string_util.hpp"

namespace lts::exp {

StreamCounters stream_counters(const std::string& tenant) {
  obs::Labels labels;
  if (!tenant.empty()) labels.emplace("tenant", tenant);
  return StreamCounters{
      obs::counter("lts_stream_jobs_completed_total", labels,
                   "Jobs completed by the live job-stream runner"),
      obs::counter(
          "lts_stream_placement_retries_total", labels,
          "Placements deferred because the cluster could not fit the job")};
}

std::string describe_rejections(const k8s::ScheduleResult& result) {
  if (result.rejected.empty()) {
    return "\n  (no per-node rejection reasons recorded)";
  }
  std::string out;
  for (const auto& [node, reason] : result.rejected) {
    out += "\n  " + node + ": " + reason;
  }
  return out;
}

std::string describe_job_config(const spark::JobConfig& config) {
  constexpr double kMiB = 1024.0 * 1024.0;
  return strformat(
      "app=%s input_records=%lld executors=%d "
      "executor=%.1fcores/%.0fMiB driver=%.1fcores/%.0fMiB",
      spark::to_string(config.app),
      static_cast<long long>(config.input_records), config.executors,
      config.executor_cores, config.executor_memory / kMiB,
      config.driver_cores, config.driver_memory / kMiB);
}

StreamResult run_job_stream(StreamPolicy policy,
                            std::shared_ptr<const ml::Regressor> model,
                            const std::vector<Scenario>& matrix,
                            const StreamOptions& options) {
  LTS_REQUIRE(options.num_jobs >= 1, "run_job_stream: num_jobs >= 1");
  const bool model_policy = policy == StreamPolicy::kModel ||
                            policy == StreamPolicy::kModelRetrain;
  if (model_policy && !options.fallback.enabled) {
    LTS_REQUIRE(model != nullptr && model->is_fitted(),
                "run_job_stream: model policies need a fitted model");
  }

  SimEnv env(options.seed, options.env);
  const std::size_t n_nodes = env.node_names().size();

  // Pre-draw the job sequence and arrival times: identical across policies.
  Rng stream_rng(options.seed ^ 0x57AE57AEULL);
  struct PlannedJob {
    const Scenario* scenario;
    SimTime arrival;
    std::uint64_t job_seed;
    std::size_t random_node;  // used by kRandom
  };
  std::vector<PlannedJob> plan;
  SimTime t = env.options().warmup;
  for (int j = 0; j < options.num_jobs; ++j) {
    t += stream_rng.exponential(options.mean_interarrival);
    plan.push_back(PlannedJob{
        &sample_scenario(matrix, stream_rng), t,
        options.seed * 1000003ULL + static_cast<std::uint64_t>(j),
        static_cast<std::size_t>(stream_rng.uniform_int(
            0, static_cast<std::int64_t>(n_nodes) - 1))});
  }

  // Optional model scheduler (reused across decisions).
  std::unique_ptr<core::LtsScheduler> scheduler;
  if (model_policy) {
    scheduler = std::make_unique<core::LtsScheduler>(
        core::TelemetryFetcher(env.tsdb(), env.node_names(),
                               options.env.snapshot, options.degradation),
        model, options.features, /*risk_aversion=*/0.0, options.fallback);
  }

  // Online retraining loop (kModelRetrain only): completions feed the
  // rolling window, successful refits hot-swap the scheduler's model. A
  // kRetrainFail fault makes attempts fail while active — the previous
  // model keeps serving.
  std::unique_ptr<core::OnlineTrainer> retrainer;
  if (policy == StreamPolicy::kModelRetrain) {
    core::RetrainOptions retrain_options = options.retrain;
    retrain_options.enabled = true;
    retrainer = std::make_unique<core::OnlineTrainer>(
        retrain_options, options.features, model);
    retrainer->set_failure_hook(
        [&env] { return env.fault_injector().retrain_fail_active(); });
  }

  // Decision-time context held until the job completes, at which point it
  // becomes one training row for the retrainer.
  struct PendingFeedback {
    bool valid = false;
    core::TrainingRecord record;
    double predicted = -1.0;  // <= 0 means no usable model prediction
  };
  std::vector<PendingFeedback> feedback(plan.size());

  StreamResult result;
  result.jobs.resize(plan.size());
  for (std::size_t j = 0; j < plan.size(); ++j) {
    result.jobs[j].planned_arrival = plan[j].arrival;
  }
  std::vector<std::unique_ptr<spark::SparkApp>> apps(plan.size());
  int remaining = options.num_jobs;
  const StreamCounters metrics = stream_counters();

  // Placement may be infeasible while the cluster is backlogged; like real
  // pending pods, the job retries a few seconds later — but only
  // options.max_placement_retries times. A permanently-infeasible job
  // (e.g. one whose pods can never fit any node) fails the stream loudly
  // with the last attempt's per-node rejection reasons instead of spinning
  // until the drain guard aborts the whole run with no explanation.
  constexpr SimTime kRetryDelay = 5.0;
  auto try_place = std::make_shared<std::function<void(std::size_t)>>();
  // The stored lambda must not capture try_place strongly — that's a
  // shared_ptr cycle (the function would own itself and leak). The local
  // strong reference above outlives the event loop below, so weak_ptr
  // locks always succeed while events can still fire.
  *try_place = [&, weak = std::weak_ptr(try_place)](std::size_t j) {
    const PlannedJob& planned = plan[j];
    const spark::JobConfig& config = planned.scenario->config;
    const std::string job_name =
        strformat("stream-%zu-%.0f", j, env.engine().now());
    auto retry = [&, weak, j,
                  job_name](const k8s::ScheduleResult& last_attempt) {
      StreamJobResult& job = result.jobs[j];
      ++job.placement_retries;
      metrics.placement_retries.inc();
      if (job.placement_retries > options.max_placement_retries) {
        throw Error(strformat(
                        "run_job_stream: job %zu (%s, \"%s\") still "
                        "unplaceable after %d retries [%s]; per-node "
                        "rejections of the last attempt:",
                        j, plan[j].scenario->id.c_str(), job_name.c_str(),
                        options.max_placement_retries,
                        describe_job_config(config).c_str()) +
                    describe_rejections(last_attempt));
      }
      env.engine().schedule_in(kRetryDelay, [weak, j] {
        if (const auto fn = weak.lock()) (*fn)(j);
      });
    };

    // Per-decision trace span for the model policy: the scheduler joins it
    // with its fetch/features/predict/rank phases, and "bind" lands below
    // once the pods are placed.
    std::optional<obs::ScopedSpan> span;
    if (model_policy) {
      span.emplace(obs::Tracer::global(), "decision", env.engine().now());
    }

    // Placement decision now, from live state.
    std::size_t driver_node = 0;
    switch (policy) {
      case StreamPolicy::kModel:
      case StreamPolicy::kModelRetrain: {
        // Fetch explicitly (instead of scheduler->schedule) so the same
        // snapshot that produced the decision can seed the training row.
        // The batched serving path — fetch_shared (epoch-keyed cache, no
        // copy) + a batch-of-one schedule_many_from_snapshot (flattened
        // predict_batch) — is bit-identical to the scalar
        // fetch + schedule_from_snapshot it replaces, so the kModel
        // decision sequence is unchanged.
        const SimTime now = env.engine().now();
        const auto snapshot = scheduler->fetcher().fetch_shared(now);
        if (span) span->phase("fetch", now);
        const auto decision =
            scheduler->schedule_many_from_snapshot(*snapshot, {&config, 1})
                .front();
        driver_node = env.cluster().node_index(decision.selected());
        if (retrainer) {
          PendingFeedback& fb = feedback[j];
          fb.valid = true;
          fb.record.scenario_id = planned.scenario->id;
          fb.record.node = decision.selected();
          fb.record.snapshot_time = snapshot->at;
          fb.record.telemetry = snapshot->by_name(decision.selected());
          fb.record.config = config;
          // Fallback rankings carry heuristic scores, not durations;
          // OnlineTrainer also rejects stale-demoted scores (>= 1e8).
          fb.predicted = decision.used_fallback
                             ? -1.0
                             : decision.ranking.front().predicted_duration;
        }
        break;
      }
      case StreamPolicy::kKubeDefault: {
        const auto ranking = env.kube_ranking(config);
        if (!ranking.feasible()) {
          retry(ranking);
          return;
        }
        driver_node = env.cluster().node_index(ranking.selected());
        break;
      }
      case StreamPolicy::kRandom:
        driver_node = planned.random_node;
        break;
    }

    // Bind pods (driver pinned; executors via the default scheduler); on
    // any infeasibility unwind the bindings and retry later.
    const auto driver_pod = core::JobBuilder::driver_pod(
        config, job_name, env.node_names()[driver_node]);
    auto bound = std::make_shared<std::vector<std::string>>();
    const auto driver_fit = env.kube_scheduler().schedule(driver_pod);
    if (!driver_fit.feasible()) {
      retry(driver_fit);
      return;
    }
    env.api().bind(driver_pod, env.node_names()[driver_node]);
    bound->push_back(driver_pod.name);
    std::vector<std::size_t> executor_nodes;
    for (int e = 0; e < config.executors; ++e) {
      const auto pod = core::JobBuilder::executor_pod(config, job_name, e);
      const auto where = env.kube_scheduler().schedule(pod);
      if (!where.feasible()) {
        for (const auto& name : *bound) env.api().remove_pod(name);
        retry(where);
        return;
      }
      env.api().bind(pod, where.selected());
      bound->push_back(pod.name);
      executor_nodes.push_back(env.cluster().node_index(where.selected()));
    }
    if (span) span->phase("bind", env.engine().now());

    Rng dag_rng(planned.job_seed * 0x2545f4914f6cdd1dULL + 0x9e37);
    auto dag = spark::build_dag(config, dag_rng,
                                env.options().workload_cost);
    Rng app_rng(planned.job_seed * 0xda942042e4dd58b5ULL + 0x7f4a);
    apps[j] = std::make_unique<spark::SparkApp>(
        env.cluster(), config, std::move(dag), driver_node, executor_nodes,
        app_rng, env.options().runtime);
    apps[j]->submit([&, j, bound](const spark::AppResult& app_result) {
      result.jobs[j].scenario_id = plan[j].scenario->id;
      result.jobs[j].driver_node = app_result.driver_node;
      result.jobs[j].submitted = app_result.submit_time;
      result.jobs[j].queueing_delay =
          app_result.submit_time - result.jobs[j].planned_arrival;
      result.jobs[j].duration = app_result.duration();
      for (const auto& pod : *bound) env.api().remove_pod(pod);
      metrics.jobs_completed.inc();
      if (retrainer && feedback[j].valid) {
        PendingFeedback& fb = feedback[j];
        fb.record.duration = app_result.duration();
        fb.record.shuffle_bytes = app_result.total_shuffle_bytes;
        fb.record.max_spill_penalty = app_result.max_spill_penalty;
        const auto event =
            retrainer->on_completion(fb.record, fb.predicted);
        if (event && event->outcome == core::RetrainOutcome::kSwapped) {
          scheduler->set_model(retrainer->model());
        }
      }
      --remaining;
    });
  };

  for (std::size_t j = 0; j < plan.size(); ++j) {
    env.engine().schedule_at(plan[j].arrival,
                             [try_place, j] { (*try_place)(j); });
  }

  while (remaining > 0) {
    LTS_REQUIRE(env.engine().step(), "run_job_stream: engine drained early");
    LTS_REQUIRE(env.engine().now() < plan.back().arrival + 7200.0,
                "run_job_stream: stream failed to complete");
  }

  // Makespan from *actual* submits: under backlog the first job can submit
  // later than plan.front().arrival (retry path), and retries can reorder
  // submissions, so the earliest submit is a min over jobs — the planned
  // arrival would silently absorb queueing delay into the makespan.
  SimTime first_submit = result.jobs.front().submitted;
  SimTime last_finish = 0.0;
  for (const auto& job : result.jobs) {
    first_submit = std::min(first_submit, job.submitted);
    last_finish = std::max(last_finish, job.submitted + job.duration);
  }
  result.makespan = last_finish - first_submit;
  if (retrainer) {
    result.model_version = retrainer->model_version();
    result.retrain_events = retrainer->events();
    result.final_model = retrainer->model();
  }
  return result;
}

}  // namespace lts::exp
