// Table 4 evaluation protocol: Top-1/Top-2 node-selection accuracy.
//
// For each evaluation scenario, every method produces a full ranking of the
// six candidate nodes from the same pre-launch telemetry snapshot. Ground
// truth comes from counterfactual simulation: the identical environment
// (same seed → same background load, same job randomness) is re-run once
// per candidate driver node, and the node with the shortest measured
// completion time is the "actual fastest node". A method scores a Top-k hit
// when the actual fastest node appears among its k highest-ranked choices —
// exactly the paper's §6 criterion, with the advantage that our fastest
// node is exact rather than inferred post hoc.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/features.hpp"
#include "core/scheduler.hpp"
#include "exp/envgen.hpp"
#include "exp/scenario.hpp"
#include "exp/stream.hpp"
#include "ml/model.hpp"

namespace lts::exp {

/// A scheduling method under evaluation: a fitted model plus the feature
/// layout it was trained on (Table 1 by default; kRich for the §8
/// extension).
struct MethodUnderTest {
  MethodUnderTest() = default;
  MethodUnderTest(std::string name_, std::shared_ptr<const ml::Regressor> model_,
                  core::FeatureSet features_ = core::FeatureSet::kTable1,
                  double risk_aversion_ = 0.0)
      : name(std::move(name_)),
        model(std::move(model_)),
        features(features_),
        risk_aversion(risk_aversion_) {}

  std::string name;
  std::shared_ptr<const ml::Regressor> model;
  core::FeatureSet features = core::FeatureSet::kTable1;
  /// See LtsScheduler: 0 = the paper's mean-duration ranking.
  double risk_aversion = 0.0;
  /// Degradation handling (fault tolerance experiments). All methods rank
  /// from the same raw snapshot; a method with `degradation.enabled` sees
  /// that snapshot after staleness annotation/imputation, and its scheduler
  /// applies `fallback`. With `fallback.enabled` the model may be null
  /// (pure fallback-ranking baseline).
  core::DegradationOptions degradation;
  core::FallbackOptions fallback;
};

struct EvalOptions {
  int num_scenarios = 100;
  std::uint64_t base_seed = 900000;
  EnvOptions env;
  /// Counterfactual runs per (scenario, node); the ground-truth duration is
  /// their mean. One run reproduces the paper's single-observation ground
  /// truth; >1 averages job-internal randomness so the "actual fastest
  /// node" is the one with the lowest *expected* completion time.
  int truth_repeats = 3;
  /// Extra non-model baselines to include, beyond kube_default/random:
  ///   "least_cpu"  — pick lowest load-average node (host-only heuristic)
  ///   "least_rtt"  — pick lowest mean-RTT node (network-only heuristic)
  std::vector<std::string> heuristics;
  std::function<void(std::size_t, std::size_t)> progress;
};

struct MethodAccuracy {
  std::string method;
  double top1 = 0.0;
  double top2 = 0.0;
  /// Mean of (chosen node's duration - fastest node's duration), seconds:
  /// how much runtime the method leaves on the table per decision.
  double mean_regret = 0.0;
  int scenarios = 0;
};

/// One scenario's full detail, for ablation analysis and tests.
struct ScenarioOutcome {
  std::string scenario_id;
  std::uint64_t seed = 0;
  std::vector<double> node_durations;  // counterfactual truth per node
  std::size_t fastest_node = 0;
  /// method -> ranked node indices (best first).
  std::map<std::string, std::vector<std::size_t>> rankings;
};

struct EvalResult {
  std::vector<MethodAccuracy> accuracy;  // ordered: baselines then models
  std::vector<ScenarioOutcome> outcomes;

  const MethodAccuracy& by_method(const std::string& name) const;
};

/// Evaluates all methods on `num_scenarios` fresh scenarios drawn from the
/// matrix.
EvalResult evaluate_methods(const std::vector<MethodUnderTest>& models,
                            const std::vector<Scenario>& matrix,
                            const EvalOptions& options);

/// Convenience overload: (name, model) pairs, all using Table-1 features.
EvalResult evaluate_methods(
    const std::vector<std::pair<std::string,
                                std::shared_ptr<const ml::Regressor>>>& models,
    const std::vector<Scenario>& matrix, const EvalOptions& options);

/// JCT summary of one live-stream run — the end-to-end metrics the stream
/// comparisons (bench_ext_faults, bench_ext_retrain, `lts stream`) report.
struct StreamSummary {
  double mean_jct = 0.0;
  double p50_jct = 0.0;
  double p95_jct = 0.0;
  double p99_jct = 0.0;
  double makespan = 0.0;
  std::size_t jobs = 0;
  /// Placement queueing (actual submit minus planned arrival): the
  /// capacity-wait component the fairness bench compares across tenants.
  double mean_queueing_delay = 0.0;
  double p95_queueing_delay = 0.0;
  /// Total placement deferrals across the stream's jobs.
  std::size_t placement_retries = 0;
  /// Retraining streams only (0 / empty otherwise).
  std::uint64_t model_version = 0;
  std::size_t retrains = 0;
  std::size_t retrain_failures = 0;
  std::size_t retrain_skips = 0;
  std::size_t retrain_rejections = 0;

  Json to_json() const;
};

StreamSummary summarize_stream(const StreamResult& result);

}  // namespace lts::exp
