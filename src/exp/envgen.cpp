#include "exp/envgen.hpp"

#include "util/string_util.hpp"

namespace lts::exp {

namespace {

/// SplitMix64-style hash of a node index into [-1, 1): the deterministic
/// capacity jitter draw. A hash, not an Rng stream, so adding nodes never
/// shifts the multipliers of the nodes before them.
double jitter_unit(std::uint64_t i) {
  std::uint64_t z = (i + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return 2.0 * (static_cast<double>(z >> 11) * 0x1.0p-53) - 1.0;
}

}  // namespace

cluster::ClusterSpec scaled_cluster_spec(const ScaledClusterOptions& o) {
  // Paper-scale bounds. The flow model's constants (TCP windows, queueing
  // curves, scrape intervals) are calibrated for testbed-like regimes;
  // inputs outside these ranges produce topologies whose numbers are
  // physically meaningless, so they are rejected rather than clamped.
  LTS_REQUIRE(o.sites >= 1 && o.sites <= 512,
              "scaled_cluster_spec: sites must be in [1, 512]");
  LTS_REQUIRE(o.nodes_per_site >= 1 && o.nodes_per_site <= 4096,
              "scaled_cluster_spec: nodes_per_site must be in [1, 4096]");
  LTS_REQUIRE(static_cast<long long>(o.sites) * o.nodes_per_site <= 100000,
              "scaled_cluster_spec: total nodes must be <= 100000");
  LTS_REQUIRE(
      o.access_capacity_bps >= 1e6 && o.access_capacity_bps <= 12.5e9,
      "scaled_cluster_spec: access_capacity_bps must be in [1e6, 12.5e9] "
      "(1 Mbps to 100 Gbit NICs)");
  LTS_REQUIRE(o.wan_capacity_bps >= 1e6 && o.wan_capacity_bps <= 125e9,
              "scaled_cluster_spec: wan_capacity_bps must be in [1e6, 125e9]");
  LTS_REQUIRE(o.rtt_max > 0.0 && o.rtt_max <= 1.0,
              "scaled_cluster_spec: rtt_max must be in (0, 1] seconds");
  LTS_REQUIRE(o.rtt_base >= 0.0 && o.rtt_base <= o.rtt_max,
              "scaled_cluster_spec: rtt_base must be in [0, rtt_max]");
  LTS_REQUIRE(o.rtt_per_hop >= 0.0 && o.rtt_per_hop <= o.rtt_max,
              "scaled_cluster_spec: rtt_per_hop must be in [0, rtt_max]");
  for (const double tier : o.nic_speed_tiers) {
    LTS_REQUIRE(tier >= 0.05 && tier <= 100.0,
                "scaled_cluster_spec: nic_speed_tiers entries must be in "
                "[0.05, 100]");
  }
  LTS_REQUIRE(o.nic_jitter >= 0.0 && o.nic_jitter <= 0.5,
              "scaled_cluster_spec: nic_jitter must be in [0, 0.5]");
  LTS_REQUIRE(o.core_oversubscription >= 0.0 &&
                  o.core_oversubscription <= 1000.0,
              "scaled_cluster_spec: core_oversubscription must be in "
              "[0, 1000]");

  cluster::ClusterSpec spec = cluster::paper_cluster_spec();
  spec.sites.clear();
  spec.wan_links.clear();
  spec.access_capacity_bps = o.access_capacity_bps;
  int node = 0;
  for (int s = 0; s < o.sites; ++s) {
    cluster::SiteSpec site;
    site.name = "site-" + std::to_string(s + 1);
    for (int n = 0; n < o.nodes_per_site; ++n) {
      site.node_names.push_back("node-" + std::to_string(++node));
    }
    spec.sites.push_back(std::move(site));
  }
  if (!o.nic_speed_tiers.empty() || o.nic_jitter > 0.0) {
    spec.node_access_capacity.reserve(static_cast<std::size_t>(node));
    for (int i = 0; i < node; ++i) {
      double scale = 1.0;
      if (!o.nic_speed_tiers.empty()) {
        scale *= o.nic_speed_tiers[static_cast<std::size_t>(i) %
                                   o.nic_speed_tiers.size()];
      }
      if (o.nic_jitter > 0.0) {
        scale *= 1.0 + o.nic_jitter * jitter_unit(static_cast<std::uint64_t>(i));
      }
      spec.node_access_capacity.push_back(o.access_capacity_bps * scale);
    }
  }
  if (o.core_oversubscription > 0.0) {
    // Oversubscribed shared core instead of dedicated pairwise circuits:
    // trunk capacity = site aggregate NIC rate / oversubscription factor,
    // trunk delay grows with the site index (clamped so no site pair's RTT
    // exceeds rtt_max: RTT(a, b) = 2 * (delay[a] + delay[b])).
    spec.core_capacity_bps =
        std::max(1e6, static_cast<double>(o.nodes_per_site) *
                          o.access_capacity_bps / o.core_oversubscription);
    for (int s = 0; s < o.sites; ++s) {
      const SimTime one_way = std::min(
          o.rtt_base + o.rtt_per_hop * static_cast<double>(s), o.rtt_max) /
          4.0;
      spec.site_core_delay.push_back(one_way);
    }
  } else {
    // Full mesh; RTT grows with "distance" along the site index, like a
    // string of geographically spread institutions.
    for (int a = 0; a < o.sites; ++a) {
      for (int b = a + 1; b < o.sites; ++b) {
        cluster::WanLinkSpec wan;
        wan.site_a = "site-" + std::to_string(a + 1);
        wan.site_b = "site-" + std::to_string(b + 1);
        wan.rtt = std::min(o.rtt_base + o.rtt_per_hop *
                                            static_cast<double>(b - a),
                           o.rtt_max);
        wan.capacity_bps = o.wan_capacity_bps;
        spec.wan_links.push_back(wan);
      }
    }
  }
  if (o.hierarchical_solver) {
    spec.flow_options.solver = net::SolverMode::kHierarchical;
  }
  return spec;
}

cluster::ClusterSpec scaled_cluster_spec(int sites, int nodes_per_site) {
  LTS_REQUIRE(sites >= 1 && nodes_per_site >= 1,
              "scaled_cluster_spec: need at least one site and node");
  ScaledClusterOptions options;
  options.sites = sites;
  options.nodes_per_site = nodes_per_site;
  return scaled_cluster_spec(options);
}

std::vector<fault::FaultSpec> generate_drift_schedule(
    const cluster::ClusterSpec& spec, std::uint64_t seed,
    const DriftScheduleOptions& options) {
  LTS_REQUIRE(options.steps >= 1, "generate_drift_schedule: steps >= 1");
  LTS_REQUIRE(options.step_interval > 0.0,
              "generate_drift_schedule: step_interval > 0");
  LTS_REQUIRE(options.drift_links >= 1,
              "generate_drift_schedule: drift_links >= 1");
  LTS_REQUIRE(
      options.max_capacity_cut >= 0.0 && options.max_capacity_cut < 1.0,
      "generate_drift_schedule: max_capacity_cut in [0, 1)");
  LTS_REQUIRE(options.max_rtt_spike >= 0.0,
              "generate_drift_schedule: max_rtt_spike >= 0");

  Rng rng(seed * 0xbf58476d1ce4e5b9ULL + 0xd81f);

  if (spec.wan_links.empty()) {
    // Single-site shapes (scaled_cluster_spec(1, N)) and shared-core
    // topologies have no pairwise WAN links to drift. Degrade gracefully
    // to intra-site drift: permanent capacity cuts on a sample of node
    // access links, escalating on the same staircase. RTT spikes are
    // skipped — they are defined on WAN site pairs — so the caller must
    // have asked for a capacity component at all.
    LTS_REQUIRE(options.max_capacity_cut > 0.0,
                "generate_drift_schedule: topology has no WAN links and "
                "max_capacity_cut is 0 — nothing can drift");
    std::vector<std::string> node_names;
    for (const auto& site : spec.sites) {
      node_names.insert(node_names.end(), site.node_names.begin(),
                        site.node_names.end());
    }
    LTS_REQUIRE(!node_names.empty(),
                "generate_drift_schedule: cluster has no WAN links and no "
                "nodes");
    const std::size_t n_nodes =
        std::min<std::size_t>(static_cast<std::size_t>(options.drift_links),
                              node_names.size());
    const auto chosen_nodes =
        rng.sample_without_replacement(node_names.size(), n_nodes);
    std::vector<fault::FaultSpec> schedule;
    schedule.reserve(n_nodes * static_cast<std::size_t>(options.steps));
    for (int step = 1; step <= options.steps; ++step) {
      const SimTime at = options.start +
                         static_cast<double>(step - 1) * options.step_interval;
      const double scale =
          static_cast<double>(step) / static_cast<double>(options.steps);
      for (const std::size_t node_idx : chosen_nodes) {
        fault::FaultSpec cut;
        cut.kind = fault::FaultKind::kNodeLinkDegrade;
        cut.target = node_names[node_idx];
        cut.at = at;
        cut.duration = 0.0;  // permanent: drift does not heal
        cut.severity = options.max_capacity_cut * scale;
        schedule.push_back(std::move(cut));
      }
    }
    return schedule;
  }
  const std::size_t n_links =
      std::min<std::size_t>(static_cast<std::size_t>(options.drift_links),
                            spec.wan_links.size());
  const auto chosen =
      rng.sample_without_replacement(spec.wan_links.size(), n_links);

  std::vector<fault::FaultSpec> schedule;
  schedule.reserve(n_links * static_cast<std::size_t>(options.steps) * 2);
  for (int step = 1; step <= options.steps; ++step) {
    const SimTime at =
        options.start + static_cast<double>(step - 1) * options.step_interval;
    const double scale =
        static_cast<double>(step) / static_cast<double>(options.steps);
    for (const std::size_t link_idx : chosen) {
      const auto& wan = spec.wan_links[link_idx];
      const std::string target = wan.site_a + ":" + wan.site_b;
      if (options.max_capacity_cut > 0.0) {
        fault::FaultSpec cut;
        cut.kind = fault::FaultKind::kLinkDegrade;
        cut.target = target;
        cut.at = at;
        cut.duration = 0.0;  // permanent: drift does not heal
        cut.severity = options.max_capacity_cut * scale;
        schedule.push_back(std::move(cut));
      }
      if (options.max_rtt_spike > 0.0) {
        fault::FaultSpec spike;
        spike.kind = fault::FaultKind::kRttSpike;
        spike.target = target;
        spike.at = at;
        spike.duration = 0.0;
        spike.severity = options.max_rtt_spike * scale;
        schedule.push_back(std::move(spike));
      }
    }
  }
  return schedule;
}

SimEnv::SimEnv(std::uint64_t seed, EnvOptions options)
    : seed_(seed), options_(std::move(options)) {
  Rng rng(seed_ * 0x9e3779b97f4a7c15ULL + 0x1234);

  // Per-node heterogeneity (see EnvOptions): drawn before construction so
  // the ping mesh measures it from the first probe.
  cluster::ClusterSpec spec = options_.cluster_spec;
  if (spec.node_access_extra_delay.empty() &&
      options_.max_node_extra_delay > 0.0) {
    std::size_t total_nodes = 0;
    for (const auto& site : spec.sites) total_nodes += site.node_names.size();
    for (std::size_t i = 0; i < total_nodes; ++i) {
      spec.node_access_extra_delay.push_back(
          rng.uniform(0.0, options_.max_node_extra_delay));
    }
  }
  cluster_ = std::make_unique<cluster::Cluster>(engine_, spec);
  node_names_ = cluster_->node_names();
  stack_ = std::make_unique<telemetry::TelemetryStack>(
      engine_, *cluster_, options_.exporter, rng.split());

  // Register nodes with the API server; allocatable = capacity - reserved.
  for (std::size_t i = 0; i < cluster_->num_nodes(); ++i) {
    const auto& node = cluster_->node(i);
    api_.register_node(
        node.name(),
        k8s::Resources{node.cores() - options_.cpu_reserve,
                       node.memory_capacity() - options_.memory_reserve},
        {{"topology.kubernetes.io/zone", node.site()},
         {"kubernetes.io/hostname", node.name()}});
  }
  kube_scheduler_ =
      std::make_unique<k8s::DefaultScheduler>(api_, seed_ ^ 0xcafef00dULL);
  faults_ = std::make_unique<fault::FaultInjector>(engine_, *cluster_,
                                                   stack_.get(), &api_);
  faults_->apply_all(options_.faults);

  // Resident system daemons (kubelet, exporters, OS services): a small
  // persistent CPU demand per node, visible in the load average.
  for (std::size_t i = 0; i < cluster_->num_nodes(); ++i) {
    cluster_->node(i).cpu().add_persistent(
        rng.uniform(options_.min_daemon_cpu, options_.max_daemon_cpu));
  }

  // Background contention pods (§5.2), bound through the API server so the
  // default scheduler sees their requests — but crucially not their traffic.
  Rng bg_rng = rng.split();
  const int n_bg = static_cast<int>(bg_rng.uniform_int(
      options_.min_background_pods, options_.max_background_pods));
  const auto n_nodes = static_cast<std::int64_t>(cluster_->num_nodes());
  for (int b = 0; b < n_bg; ++b) {
    const auto client =
        static_cast<std::size_t>(bg_rng.uniform_int(0, n_nodes - 1));
    std::size_t server =
        static_cast<std::size_t>(bg_rng.uniform_int(0, n_nodes - 2));
    if (server >= client) ++server;
    cluster::BackgroundLoadOptions bg_opts = options_.background;
    bg_opts.parallel_fetches = static_cast<int>(bg_rng.uniform_int(
        options_.min_parallel_fetches, options_.max_parallel_fetches));
    bg_opts.client_memory =
        bg_rng.uniform(0.5, 2.5) * 1024 * 1024 * 1024;
    bg_opts.server_memory =
        bg_rng.uniform(0.25, 1.0) * 1024 * 1024 * 1024;

    // BestEffort pods: no resource requests, exactly like an ad-hoc curl
    // pod. The default scheduler therefore cannot see this load at all —
    // the §3.1 blindness the paper's baseline suffers from.
    k8s::PodSpec client_pod;
    client_pod.name = strformat("bg-%d-client", b);
    client_pod.labels["app"] = "background-curl";
    api_.bind(client_pod, node_names_[client]);
    k8s::PodSpec server_pod;
    server_pod.name = strformat("bg-%d-server", b);
    server_pod.labels["app"] = "background-http";
    api_.bind(server_pod, node_names_[server]);

    auto load = std::make_unique<cluster::BackgroundLoad>(
        *cluster_, client, server, bg_opts, bg_rng.split());
    const SimTime start_at = bg_rng.uniform(0.0, 5.0);
    engine_.schedule_in(start_at,
                        [ptr = load.get()] { ptr->start(); });
    background_.push_back(std::move(load));
  }
}

void SimEnv::warmup() {
  if (warmed_up_) return;
  engine_.run_until(options_.warmup);
  warmed_up_ = true;
}

telemetry::ClusterSnapshot SimEnv::snapshot() const {
  return telemetry::build_snapshot(stack_->tsdb(), node_names_,
                                   engine_.now(), options_.snapshot);
}

const cluster::BackgroundLoad& SimEnv::background_pod(std::size_t i) const {
  LTS_REQUIRE(i < background_.size(), "SimEnv: background index");
  return *background_[i];
}

k8s::ScheduleResult SimEnv::kube_ranking(const spark::JobConfig& config) {
  const auto pod = core::JobBuilder::driver_pod(
      config, strformat("probe-%d", job_counter_), /*pinned_node=*/"");
  // A fresh scheduler instance: the probe must not consume (or correlate
  // with) the tie-break stream used for real pod placement.
  k8s::DefaultScheduler probe_scheduler(api_, seed_ ^ 0xba5e11e0ULL);
  return probe_scheduler.schedule(pod);
}

spark::AppResult SimEnv::run_job(const spark::JobConfig& config,
                                 std::size_t driver_node,
                                 std::uint64_t job_seed) {
  LTS_REQUIRE(driver_node < cluster_->num_nodes(),
              "SimEnv: driver node out of range");
  const std::string job_name = strformat("job-%d", ++job_counter_);

  // Bind the driver where the scheduler-under-test decided (nodeAffinity);
  // the Spark operator creates the driver pod first, executors follow.
  const auto driver_pod = core::JobBuilder::driver_pod(
      config, job_name, node_names_[driver_node]);
  api_.bind(driver_pod, node_names_[driver_node]);

  // Executors go through the default scheduler, one by one (§4: "executor
  // pods are placed independently by the default Kubernetes scheduler").
  std::vector<std::size_t> executor_nodes;
  std::vector<std::string> bound_pods{driver_pod.name};
  executor_nodes.reserve(static_cast<std::size_t>(config.executors));
  for (int e = 0; e < config.executors; ++e) {
    const auto pod = core::JobBuilder::executor_pod(config, job_name, e);
    const auto result = kube_scheduler_->schedule(pod);
    LTS_REQUIRE(result.feasible(),
                "SimEnv: no feasible node for executor pod");
    api_.bind(pod, result.selected());
    bound_pods.push_back(pod.name);
    executor_nodes.push_back(cluster_->node_index(result.selected()));
  }

  // The job's own randomness: DAG (Join skew) and runtime jitter streams
  // derive from job_seed only, so placement does not perturb the draws.
  Rng dag_rng(job_seed * 0x2545f4914f6cdd1dULL + 0x9e37);
  auto dag = spark::build_dag(config, dag_rng, options_.workload_cost);
  Rng app_rng(job_seed * 0xda942042e4dd58b5ULL + 0x7f4a);

  spark::SparkApp app(*cluster_, config, std::move(dag), driver_node,
                      executor_nodes, app_rng, options_.runtime);
  bool done = false;
  app.submit([&done](const spark::AppResult&) { done = true; });
  const SimTime deadline = engine_.now() + options_.max_job_duration;
  while (!done) {
    LTS_REQUIRE(engine_.step(), "SimEnv: event queue drained mid-job");
    LTS_REQUIRE(engine_.now() <= deadline,
                "SimEnv: job exceeded max_job_duration");
  }

  for (const auto& pod_name : bound_pods) {
    api_.remove_pod(pod_name);
  }
  return app.result();
}

}  // namespace lts::exp
