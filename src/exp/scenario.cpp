#include "exp/scenario.hpp"

#include "util/string_util.hpp"

namespace lts::exp {

std::vector<Scenario> paper_scenario_matrix() {
  std::vector<Scenario> out;
  const spark::AppType apps[] = {spark::AppType::kSort,
                                 spark::AppType::kPageRank,
                                 spark::AppType::kJoin,
                                 spark::AppType::kGroupBy};
  const std::int64_t input_sizes[] = {100000, 250000, 500000, 1000000,
                                      2000000};
  const int executor_counts[] = {2, 4, 6};

  for (const auto app : apps) {
    int index = 0;
    for (const auto records : input_sizes) {
      for (const auto executors : executor_counts) {
        Scenario s;
        s.id = strformat("%s-%02d", spark::to_string(app), ++index);
        s.config.app = app;
        s.config.input_records = records;
        s.config.record_bytes = 200.0;
        s.config.executors = executors;
        s.config.executor_cores = (index % 2 == 0) ? 2.0 : 1.0;
        // Alternate memory allocations so some configurations run tight
        // (spill-prone) and others comfortable.
        s.config.executor_memory = (index % 3 == 0)
                                       ? 768.0 * 1024 * 1024
                                       : 1536.0 * 1024 * 1024;
        s.config.driver_cores = 1.0;
        s.config.driver_memory = 1024.0 * 1024 * 1024;
        s.config.shuffle_partitions = 0;  // engine default
        if (app == spark::AppType::kPageRank) {
          s.config.iterations = 2 + (index % 3);  // 2..4
        }
        if (app == spark::AppType::kJoin) {
          s.config.join_skew = 1.1 + 0.1 * (index % 5);  // 1.1..1.5
        }
        out.push_back(std::move(s));
      }
    }
  }
  LTS_ASSERT(out.size() == 60);
  return out;
}

std::vector<Scenario> extension_scenario_matrix() {
  std::vector<Scenario> out;
  const spark::AppType apps[] = {spark::AppType::kMlPipeline,
                                 spark::AppType::kStreaming};
  const std::int64_t input_sizes[] = {250000, 500000, 1000000};
  for (const auto app : apps) {
    int index = 0;
    for (const auto records : input_sizes) {
      for (const int executors : {3, 5}) {
        Scenario s;
        s.id = strformat("%s-%02d", spark::to_string(app), ++index);
        s.config.app = app;
        s.config.input_records = records;
        s.config.record_bytes = 200.0;
        s.config.executors = executors;
        s.config.executor_memory = 1536.0 * 1024 * 1024;
        s.config.iterations = 2 + (index % 2);
        out.push_back(std::move(s));
      }
    }
  }
  LTS_ASSERT(out.size() == 12);
  return out;
}

const Scenario& sample_scenario(const std::vector<Scenario>& matrix,
                                Rng& rng) {
  LTS_REQUIRE(!matrix.empty(), "sample_scenario: empty matrix");
  const auto idx = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(matrix.size()) - 1));
  return matrix[idx];
}

std::vector<fault::FaultSpec> generate_fault_schedule(
    const cluster::ClusterSpec& spec, std::uint64_t seed,
    const FaultScheduleOptions& options) {
  LTS_REQUIRE(options.faults_per_100s >= 0.0,
              "generate_fault_schedule: negative rate");
  LTS_REQUIRE(options.horizon > 0.0, "generate_fault_schedule: horizon > 0");

  std::vector<std::string> node_names;
  for (const auto& site : spec.sites) {
    for (const auto& name : site.node_names) node_names.push_back(name);
  }
  LTS_REQUIRE(!node_names.empty(), "generate_fault_schedule: no nodes");

  Rng rng(seed * 0x6a09e667f3bcc909ULL + 0xfa17);
  auto pick_node = [&] {
    return node_names[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(node_names.size()) - 1))];
  };
  auto pick_link = [&] {
    const auto& wan = spec.wan_links[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(spec.wan_links.size()) - 1))];
    return wan.site_a + ":" + wan.site_b;
  };

  const int count = static_cast<int>(
      options.faults_per_100s * options.horizon / 100.0 + 0.5);
  std::vector<fault::FaultSpec> schedule;
  schedule.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    fault::FaultSpec fault;
    fault.at = options.start + rng.uniform(0.0, options.horizon);
    fault.duration = std::max(5.0, rng.exponential(options.mean_duration));

    // Kind mix: mostly link trouble and telemetry trouble, the occasional
    // partition, and crashes only when the consumer can survive them.
    const double kind_draw = rng.uniform();
    if (options.include_partitions && !spec.wan_links.empty() &&
        kind_draw < 0.08) {
      fault.kind = fault::FaultKind::kSitePartition;
      const auto& site = spec.sites[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(spec.sites.size()) - 1))];
      fault.target = site.name;
    } else if (options.include_crashes && kind_draw < 0.20) {
      fault.kind = fault::FaultKind::kNodeCrash;
      fault.target = pick_node();
    } else if (!spec.wan_links.empty() && kind_draw < 0.50) {
      fault.kind = fault::FaultKind::kLinkDegrade;
      fault.target = pick_link();
      fault.severity = rng.uniform(0.5, 0.95);  // cut most of the capacity
    } else if (!spec.wan_links.empty() && kind_draw < 0.70) {
      fault.kind = fault::FaultKind::kRttSpike;
      fault.target = pick_link();
      fault.severity = rng.uniform(0.010, 0.060);  // +10..60 ms one-way
    } else if (kind_draw < 0.88) {
      fault.kind = fault::FaultKind::kExporterSilence;
      fault.target = pick_node();
    } else {
      fault.kind = fault::FaultKind::kExporterDelay;
      fault.target = pick_node();
      fault.severity = rng.uniform(5.0, 25.0);  // seconds of reporting lag
    }
    schedule.push_back(std::move(fault));
  }
  return schedule;
}

}  // namespace lts::exp
