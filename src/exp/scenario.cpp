#include "exp/scenario.hpp"

#include "util/string_util.hpp"

namespace lts::exp {

std::vector<Scenario> paper_scenario_matrix() {
  std::vector<Scenario> out;
  const spark::AppType apps[] = {spark::AppType::kSort,
                                 spark::AppType::kPageRank,
                                 spark::AppType::kJoin,
                                 spark::AppType::kGroupBy};
  const std::int64_t input_sizes[] = {100000, 250000, 500000, 1000000,
                                      2000000};
  const int executor_counts[] = {2, 4, 6};

  for (const auto app : apps) {
    int index = 0;
    for (const auto records : input_sizes) {
      for (const auto executors : executor_counts) {
        Scenario s;
        s.id = strformat("%s-%02d", spark::to_string(app), ++index);
        s.config.app = app;
        s.config.input_records = records;
        s.config.record_bytes = 200.0;
        s.config.executors = executors;
        s.config.executor_cores = (index % 2 == 0) ? 2.0 : 1.0;
        // Alternate memory allocations so some configurations run tight
        // (spill-prone) and others comfortable.
        s.config.executor_memory = (index % 3 == 0)
                                       ? 768.0 * 1024 * 1024
                                       : 1536.0 * 1024 * 1024;
        s.config.driver_cores = 1.0;
        s.config.driver_memory = 1024.0 * 1024 * 1024;
        s.config.shuffle_partitions = 0;  // engine default
        if (app == spark::AppType::kPageRank) {
          s.config.iterations = 2 + (index % 3);  // 2..4
        }
        if (app == spark::AppType::kJoin) {
          s.config.join_skew = 1.1 + 0.1 * (index % 5);  // 1.1..1.5
        }
        out.push_back(std::move(s));
      }
    }
  }
  LTS_ASSERT(out.size() == 60);
  return out;
}

std::vector<Scenario> extension_scenario_matrix() {
  std::vector<Scenario> out;
  const spark::AppType apps[] = {spark::AppType::kMlPipeline,
                                 spark::AppType::kStreaming};
  const std::int64_t input_sizes[] = {250000, 500000, 1000000};
  for (const auto app : apps) {
    int index = 0;
    for (const auto records : input_sizes) {
      for (const int executors : {3, 5}) {
        Scenario s;
        s.id = strformat("%s-%02d", spark::to_string(app), ++index);
        s.config.app = app;
        s.config.input_records = records;
        s.config.record_bytes = 200.0;
        s.config.executors = executors;
        s.config.executor_memory = 1536.0 * 1024 * 1024;
        s.config.iterations = 2 + (index % 2);
        out.push_back(std::move(s));
      }
    }
  }
  LTS_ASSERT(out.size() == 12);
  return out;
}

const Scenario& sample_scenario(const std::vector<Scenario>& matrix,
                                Rng& rng) {
  LTS_REQUIRE(!matrix.empty(), "sample_scenario: empty matrix");
  const auto idx = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(matrix.size()) - 1));
  return matrix[idx];
}

}  // namespace lts::exp
