#include "exp/figures.hpp"

#include "telemetry/exporters.hpp"
#include "util/stats.hpp"

namespace lts::exp {

SortTelemetryFigures figure_sort_telemetry(const spark::JobConfig& sort_config,
                                           const FigureOptions& options) {
  LTS_REQUIRE(options.runs >= 1, "figure_sort_telemetry: runs >= 1");
  SimEnv env(options.seed, options.env);
  env.warmup();
  const auto& names = env.node_names();
  const std::size_t n = names.size();
  LTS_REQUIRE(options.driver_node < n,
              "figure_sort_telemetry: driver node out of range");

  SortTelemetryFigures figures;
  figures.runs = options.runs;
  std::vector<RunningStats> latency(n), tx(n);

  for (int run = 0; run < options.runs; ++run) {
    const SimTime t0 = env.engine().now();
    const auto result = env.run_job(
        sort_config, options.driver_node,
        options.seed ^ (0x51aaULL + static_cast<std::uint64_t>(run)));
    figures.run_durations.push_back(result.duration());
    const SimTime t1 = env.engine().now();
    const SimTime window = t1 - t0;

    for (std::size_t i = 0; i < n; ++i) {
      // Figure 2: node's mean RTT to peers, averaged over this run window.
      RunningStats rtt_stats;
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const auto avg = env.tsdb().avg_over_time(
            telemetry::kPingRttMetric,
            {{"src", names[i]}, {"dst", names[j]}}, t1, window);
        if (avg.has_value()) rtt_stats.add(*avg);
      }
      if (rtt_stats.count() > 0) latency[i].add(rtt_stats.mean() * 1e3);

      // Figure 3: node's transmit rate over this run window.
      const double tx_rate = env.tsdb().rate(
          telemetry::kTxBytesMetric, {{"node", names[i]}}, t1, window);
      tx[i].add(tx_rate / 1e6);
    }
  }

  figures.avg_latency_ms.nodes = names;
  figures.avg_tx_mbps.nodes = names;
  for (std::size_t i = 0; i < n; ++i) {
    figures.avg_latency_ms.values.push_back(latency[i].mean());
    figures.avg_tx_mbps.values.push_back(tx[i].mean());
  }
  return figures;
}

SiteRttMatrix figure_topology(const EnvOptions& env_options) {
  SimEnv env(1, env_options);
  SiteRttMatrix matrix;
  matrix.sites = env.cluster().site_names();
  const std::size_t n = matrix.sites.size();
  matrix.rtt_ms.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      matrix.rtt_ms[i][j] =
          env.cluster().site_rtt(matrix.sites[i], matrix.sites[j]) * 1e3;
    }
  }
  return matrix;
}

}  // namespace lts::exp
