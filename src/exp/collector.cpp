#include "exp/collector.hpp"

namespace lts::exp {

std::uint64_t sample_seed(const CollectorOptions& options,
                          std::size_t scenario_index, std::size_t target_node,
                          int repeat) {
  // Distinct well-spread stream per sample; SplitMix-style mixing inside
  // Rng's reseed handles the rest.
  return options.base_seed + 1000003ULL * scenario_index +
         10007ULL * target_node + 101ULL * static_cast<std::uint64_t>(repeat);
}

CsvTable collect_training_data(const std::vector<Scenario>& scenarios,
                               const CollectorOptions& options) {
  LTS_REQUIRE(!scenarios.empty(), "collect_training_data: no scenarios");
  LTS_REQUIRE(options.repeats >= 1, "collect_training_data: repeats >= 1");
  core::TrainingLogger logger;

  // Determine node count from a throwaway environment.
  const std::size_t num_nodes =
      SimEnv(options.base_seed, options.env).node_names().size();
  const std::size_t total =
      scenarios.size() * num_nodes * static_cast<std::size_t>(options.repeats);
  std::size_t done = 0;

  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    for (std::size_t target = 0; target < num_nodes; ++target) {
      for (int rep = 0; rep < options.repeats; ++rep) {
        const std::uint64_t seed = sample_seed(options, s, target, rep);
        SimEnv env(seed, options.env);
        env.warmup();
        if (options.residual_job) {
          Rng residual_rng(seed ^ 0x4e51d0a1ULL);
          const auto& warm = sample_scenario(scenarios, residual_rng);
          const auto node = static_cast<std::size_t>(residual_rng.uniform_int(
              0, static_cast<std::int64_t>(env.node_names().size()) - 1));
          env.run_job(warm.config, node, seed ^ 0x4e51d0a2ULL);
        }
        const auto snapshot = env.snapshot();
        const auto result =
            env.run_job(scenarios[s].config, target, /*job_seed=*/seed ^
                                                         0x5eedf00dULL);
        logger.log_run(scenarios[s].id, snapshot, scenarios[s].config,
                       result);
        ++done;
        if (options.progress) options.progress(done, total);
      }
    }
  }
  return logger.table();
}

}  // namespace lts::exp
