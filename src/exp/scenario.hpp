// Scenario matrix: the paper's 60 distinct job configurations (§5.2) across
// the four application/shuffle-pattern variants, covering a range of input
// sizes, executor counts and memory allocations.
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "fault/fault.hpp"
#include "spark/job.hpp"
#include "util/rng.hpp"

namespace lts::exp {

struct Scenario {
  std::string id;           // e.g. "sort-07"
  spark::JobConfig config;
};

/// The 60-configuration matrix: 15 per application (sort, pagerank, join,
/// groupby) = input sizes {1e5, 2.5e5, 5e5, 1e6, 2e6} x executors {2, 4, 6},
/// with memory, partitions, iterations and skew varied deterministically
/// across the grid.
std::vector<Scenario> paper_scenario_matrix();

/// Extension scenarios (§8 future-work applications): 12 configurations of
/// the distributed-ML-pipeline and multi-stage-streaming apps. These app
/// types are NOT in the paper's matrix, so a model trained on
/// paper_scenario_matrix() sees them as the all-zero app one-hot — the
/// generalization experiment of bench_ext_workloads.
std::vector<Scenario> extension_scenario_matrix();

/// Draws one scenario uniformly from the matrix.
const Scenario& sample_scenario(const std::vector<Scenario>& matrix,
                                Rng& rng);

/// Knobs for a randomized-but-deterministic fault schedule (the
/// fault-injection experiments of bench_ext_faults).
struct FaultScheduleOptions {
  /// Mean number of faults injected per 100 simulated seconds; the
  /// escalation knob the bench sweeps.
  double faults_per_100s = 1.0;
  /// Faults are injected in [start, start + horizon). `start` should be at
  /// or after the environment's warmup so schedulers decide under faults,
  /// not before telemetry exists.
  SimTime start = 40.0;
  SimTime horizon = 600.0;
  /// Fault lifetimes are exponential with this mean, floored at 5 s.
  SimTime mean_duration = 45.0;
  /// Node crashes hang any job whose pods they host — fine for a live
  /// stream (the job just takes forever... bounded by recovery), fatal for
  /// counterfactual ground-truth replays, which must run each candidate
  /// placement to completion. Accuracy experiments keep this off.
  bool include_crashes = false;
  /// Whole-site partitions: drastic; injected with low probability even
  /// when the schedule is dense.
  bool include_partitions = true;
};

/// Deterministically generates a fault schedule against `spec`'s nodes,
/// sites and WAN links. Same (spec, seed, options) -> same schedule, so the
/// identical fault timeline can be replayed under every scheduler policy.
std::vector<fault::FaultSpec> generate_fault_schedule(
    const cluster::ClusterSpec& spec, std::uint64_t seed,
    const FaultScheduleOptions& options = {});

}  // namespace lts::exp
