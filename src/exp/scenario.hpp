// Scenario matrix: the paper's 60 distinct job configurations (§5.2) across
// the four application/shuffle-pattern variants, covering a range of input
// sizes, executor counts and memory allocations.
#pragma once

#include <string>
#include <vector>

#include "spark/job.hpp"
#include "util/rng.hpp"

namespace lts::exp {

struct Scenario {
  std::string id;           // e.g. "sort-07"
  spark::JobConfig config;
};

/// The 60-configuration matrix: 15 per application (sort, pagerank, join,
/// groupby) = input sizes {1e5, 2.5e5, 5e5, 1e6, 2e6} x executors {2, 4, 6},
/// with memory, partitions, iterations and skew varied deterministically
/// across the grid.
std::vector<Scenario> paper_scenario_matrix();

/// Extension scenarios (§8 future-work applications): 12 configurations of
/// the distributed-ML-pipeline and multi-stage-streaming apps. These app
/// types are NOT in the paper's matrix, so a model trained on
/// paper_scenario_matrix() sees them as the all-zero app one-hot — the
/// generalization experiment of bench_ext_workloads.
std::vector<Scenario> extension_scenario_matrix();

/// Draws one scenario uniformly from the matrix.
const Scenario& sample_scenario(const std::vector<Scenario>& matrix,
                                Rng& rng);

}  // namespace lts::exp
