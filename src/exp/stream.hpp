// Live job-stream runner: the operational complement to Table 4.
//
// A Poisson stream of jobs arrives at one living cluster; each is placed at
// its arrival instant by the configured policy and executes concurrently
// with earlier jobs (and the background load), so placement quality
// compounds through contention. Running the identical stream (same seed,
// same jobs, same arrivals) under different policies isolates the
// scheduler's end-to-end contribution: mean/percentile job completion time
// and makespan.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/online_trainer.hpp"
#include "core/scheduler.hpp"
#include "exp/envgen.hpp"
#include "exp/scenario.hpp"
#include "k8s/scheduler.hpp"
#include "ml/model.hpp"
#include "obs/metrics.hpp"

namespace lts::exp {

enum class StreamPolicy {
  kModel,         // the paper's prediction-and-ranking scheduler
  kModelRetrain,  // kModel + online retraining on completed jobs (§2.4)
  kKubeDefault,   // default kube-scheduler choice for the driver pod
  kRandom,        // uniform random node
};

struct StreamOptions {
  int num_jobs = 40;
  SimTime mean_interarrival = 12.0;  // seconds, exponential
  std::uint64_t seed = 1;
  EnvOptions env;
  core::FeatureSet features = core::FeatureSet::kTable1;
  /// Degradation handling for the model policies (fault tolerance). Both
  /// default off: the model scheduler then behaves exactly as before. With
  /// `fallback.enabled`, kModel additionally accepts a null model (every
  /// decision falls back to the spreading heuristic).
  core::DegradationOptions degradation;
  core::FallbackOptions fallback;
  /// Online retraining knobs, used only by kModelRetrain (which force-
  /// enables the loop). Every completed job feeds the rolling window; a
  /// successful refit hot-swaps the scheduler's model mid-stream. The
  /// kModel policy ignores this entirely, and the pre-drawn job/arrival
  /// plan is policy-independent either way.
  core::RetrainOptions retrain;
  /// Placement retry cap per job. A backlogged job re-tries every 5 s like
  /// a pending pod; one that is still unplaceable after this many deferrals
  /// is permanently infeasible, and the stream fails loudly naming the job,
  /// its config, and the per-node rejection reasons from the last
  /// scheduling attempt — instead of spinning until the opaque drain guard
  /// kills the whole run. 240 retries = 20 simulated minutes of backlog.
  int max_placement_retries = 240;
};

struct StreamJobResult {
  std::string scenario_id;
  std::string driver_node;
  /// Pre-drawn arrival instant (when the job *asked* to run).
  SimTime planned_arrival = 0.0;
  /// Actual submission instant: the first time placement succeeded. Under
  /// backlog this is later than planned_arrival (retry path).
  SimTime submitted = 0.0;
  /// submitted - planned_arrival: time spent waiting for capacity.
  SimTime queueing_delay = 0.0;
  double duration = 0.0;
  /// Placement attempts deferred before this job was placed.
  int placement_retries = 0;
};

struct StreamResult {
  std::vector<StreamJobResult> jobs;
  /// Last completion minus first *actual* submission. Queueing delay ahead
  /// of the first submit is reported per job, not silently absorbed here.
  double makespan = 0.0;
  /// kModelRetrain only: version serving at stream end (0 = the initial
  /// model was never replaced), every retrain attempt in order, and the
  /// model that was serving when the stream finished (null for other
  /// policies) — save_model(*final_model, path, model_version) ships it.
  std::uint64_t model_version = 0;
  std::vector<core::RetrainEvent> retrain_events;
  std::shared_ptr<const ml::Regressor> final_model;
};

/// Runs the stream under `policy`. `model` is only used by kModel (may be
/// null otherwise). The job sequence and arrival times depend only on
/// (options.seed, matrix), never on the policy, so results are directly
/// comparable across policies.
StreamResult run_job_stream(StreamPolicy policy,
                            std::shared_ptr<const ml::Regressor> model,
                            const std::vector<Scenario>& matrix,
                            const StreamOptions& options);

/// Stream progress counters against the global obs registry. With a tenant
/// name they carry a `tenant=` label so concurrent tenant streams keep
/// separate retry/completion series; an empty name yields the unlabeled
/// series the single-tenant runner has always reported. References stay
/// valid for the registry's lifetime — never shared global state.
struct StreamCounters {
  obs::Counter& jobs_completed;
  obs::Counter& placement_retries;
};
StreamCounters stream_counters(const std::string& tenant = {});

/// Human-readable per-node rejection reasons of a scheduling attempt, one
/// "\n  node: reason" line each (empty result explained too). Used by the
/// bounded-retry failure paths of both stream runners.
std::string describe_rejections(const k8s::ScheduleResult& result);

/// One-line human-readable job-config summary for diagnostics.
std::string describe_job_config(const spark::JobConfig& config);

}  // namespace lts::exp
