// Live job-stream runner: the operational complement to Table 4.
//
// A Poisson stream of jobs arrives at one living cluster; each is placed at
// its arrival instant by the configured policy and executes concurrently
// with earlier jobs (and the background load), so placement quality
// compounds through contention. Running the identical stream (same seed,
// same jobs, same arrivals) under different policies isolates the
// scheduler's end-to-end contribution: mean/percentile job completion time
// and makespan.
#pragma once

#include <memory>
#include <vector>

#include "core/online_trainer.hpp"
#include "core/scheduler.hpp"
#include "exp/envgen.hpp"
#include "exp/scenario.hpp"
#include "ml/model.hpp"

namespace lts::exp {

enum class StreamPolicy {
  kModel,         // the paper's prediction-and-ranking scheduler
  kModelRetrain,  // kModel + online retraining on completed jobs (§2.4)
  kKubeDefault,   // default kube-scheduler choice for the driver pod
  kRandom,        // uniform random node
};

struct StreamOptions {
  int num_jobs = 40;
  SimTime mean_interarrival = 12.0;  // seconds, exponential
  std::uint64_t seed = 1;
  EnvOptions env;
  core::FeatureSet features = core::FeatureSet::kTable1;
  /// Degradation handling for the model policies (fault tolerance). Both
  /// default off: the model scheduler then behaves exactly as before. With
  /// `fallback.enabled`, kModel additionally accepts a null model (every
  /// decision falls back to the spreading heuristic).
  core::DegradationOptions degradation;
  core::FallbackOptions fallback;
  /// Online retraining knobs, used only by kModelRetrain (which force-
  /// enables the loop). Every completed job feeds the rolling window; a
  /// successful refit hot-swaps the scheduler's model mid-stream. The
  /// kModel policy ignores this entirely, and the pre-drawn job/arrival
  /// plan is policy-independent either way.
  core::RetrainOptions retrain;
};

struct StreamJobResult {
  std::string scenario_id;
  std::string driver_node;
  SimTime submitted = 0.0;
  double duration = 0.0;
};

struct StreamResult {
  std::vector<StreamJobResult> jobs;
  /// Last completion minus first submission.
  double makespan = 0.0;
  /// kModelRetrain only: version serving at stream end (0 = the initial
  /// model was never replaced), every retrain attempt in order, and the
  /// model that was serving when the stream finished (null for other
  /// policies) — save_model(*final_model, path, model_version) ships it.
  std::uint64_t model_version = 0;
  std::vector<core::RetrainEvent> retrain_events;
  std::shared_ptr<const ml::Regressor> final_model;
};

/// Runs the stream under `policy`. `model` is only used by kModel (may be
/// null otherwise). The job sequence and arrival times depend only on
/// (options.seed, matrix), never on the policy, so results are directly
/// comparable across policies.
StreamResult run_job_stream(StreamPolicy policy,
                            std::shared_ptr<const ml::Regressor> model,
                            const std::vector<Scenario>& matrix,
                            const StreamOptions& options);

}  // namespace lts::exp
