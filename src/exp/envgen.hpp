// Simulated experiment environment: the paper's §5.1 testbed in a box.
//
// One SimEnv owns a discrete-event engine, the 6-node/3-site cluster, the
// telemetry stack (node exporters + ping mesh + TSDB), a Kubernetes API
// server with the default scheduler, and a randomized set of background-load
// pods (§5.2). Everything is a deterministic function of the seed, so
// rebuilding a SimEnv with the same seed and running the same job with a
// *different* driver node is an exact counterfactual — the basis of the
// Table 4 ground truth.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/background.hpp"
#include "cluster/cluster.hpp"
#include "core/job_builder.hpp"
#include "fault/fault.hpp"
#include "k8s/api.hpp"
#include "k8s/scheduler.hpp"
#include "simcore/engine.hpp"
#include "spark/runtime.hpp"
#include "spark/workloads.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/snapshot.hpp"

namespace lts::exp {

struct EnvOptions {
  cluster::ClusterSpec cluster_spec = cluster::paper_cluster_spec();
  telemetry::ExporterOptions exporter;
  telemetry::SnapshotOptions snapshot;

  /// System-reserved resources subtracted from node capacity to form the
  /// Kubernetes allocatable values.
  double cpu_reserve = 0.5;
  Bytes memory_reserve = 1.0 * 1024 * 1024 * 1024;

  /// Background contention pods (the curl loops of §5.2): each scenario
  /// draws a count in [min, max] and random client/server node pairs.
  int min_background_pods = 1;
  int max_background_pods = 4;
  int min_parallel_fetches = 1;
  int max_parallel_fetches = 6;
  cluster::BackgroundLoadOptions background;

  /// Per-node heterogeneity, drawn per environment: extra one-way access
  /// delay in [0, max] (virtualization path differences; observable through
  /// the ping mesh) and a resident system-daemon CPU demand in [min, max]
  /// (observable through the load average).
  SimTime max_node_extra_delay = 12.0e-3;
  double min_daemon_cpu = 0.2;
  double max_daemon_cpu = 2.0;

  /// Simulated seconds to run before the first snapshot, so load averages
  /// and rate() windows have settled.
  SimTime warmup = 40.0;

  /// Abort guard: a job exceeding this much simulated time is a bug.
  SimTime max_job_duration = 1800.0;

  /// Fault schedule, applied through the environment's FaultInjector at
  /// construction. Empty (the default) leaves the event sequence — and so
  /// every output — exactly as without fault support.
  std::vector<fault::FaultSpec> faults;

  spark::RuntimeOptions runtime;
  spark::WorkloadCost workload_cost;
};

/// Knobs for a deterministic network-drift schedule: a staircase of
/// permanent, escalating WAN degradations (capacity cuts + RTT spikes) on
/// a fixed subset of links. Unlike generate_fault_schedule's transient
/// faults, drift never recovers — the environment a static model was
/// trained for progressively stops existing, which is the regime online
/// retraining (OnlineTrainer, bench_ext_retrain) is built for.
struct DriftScheduleOptions {
  /// First step lands here; keep it at or after warmup plus some healthy
  /// stream so the retrainer has pre-drift completions in its window.
  SimTime start = 80.0;
  /// Number of escalation steps; each step raises severity linearly until
  /// the final step reaches max_capacity_cut / max_rtt_spike.
  int steps = 4;
  SimTime step_interval = 90.0;
  /// How many WAN links drift (chosen deterministically from the seed).
  int drift_links = 2;
  /// Final fraction of link capacity removed, in [0, 1).
  double max_capacity_cut = 0.85;
  /// Final extra one-way propagation delay, seconds.
  SimTime max_rtt_spike = 0.060;
};

/// Deterministically generates the drift staircase against `spec`'s WAN
/// links. Same (spec, seed, options) -> same schedule. Each step re-injects
/// the link fault at a higher severity; the FaultInjector always mutates
/// relative to the pristine link state, so severities do not compound.
std::vector<fault::FaultSpec> generate_drift_schedule(
    const cluster::ClusterSpec& spec, std::uint64_t seed,
    const DriftScheduleOptions& options = {});

/// Knobs for the parameterized scale-out topology generator. Every knob is
/// validated against paper-scale bounds — scaled_cluster_spec throws
/// lts::Error with a specific message on nonsensical input instead of
/// emitting a topology whose RTTs or capacities silently leave the regime
/// the flow model (and the paper's telemetry features) are calibrated for.
struct ScaledClusterOptions {
  int sites = 3;
  int nodes_per_site = 2;

  /// Baseline effective per-node NIC rate (see ClusterSpec), bytes/sec.
  Rate access_capacity_bps = 200e6;
  /// Heterogeneous NIC speeds: node i's access capacity is multiplied by
  /// nic_speed_tiers[i % size] (think mixed VM flavors on one substrate).
  /// Empty = homogeneous.
  std::vector<double> nic_speed_tiers;
  /// Deterministic per-node capacity jitter amplitude in [0, 0.5]: node i's
  /// capacity is further scaled by 1 + nic_jitter * u_i with u_i hashed
  /// from i into [-1, 1). Makes every node's fair share distinct, which is
  /// the worst case for a global progressive fill (each share freezes in
  /// its own round) and the regime the hierarchical solver targets.
  double nic_jitter = 0.0;

  /// Chain-of-distance RTT mesh: rtt(a, b) = min(rtt_base + rtt_per_hop *
  /// (b - a), rtt_max), like a string of geographically spread sites.
  SimTime rtt_base = 0.008;
  SimTime rtt_per_hop = 0.014;
  SimTime rtt_max = 0.090;
  /// Per-direction capacity of each pairwise WAN link.
  Rate wan_capacity_bps = 600e6;

  /// > 0 drops the pairwise mesh for a shared core: one core router, one
  /// trunk per site with capacity sites' aggregate access rate divided by
  /// this factor — i.e. a trunk oversubscribed `core_oversubscription`:1
  /// against its site's NICs. Trunk delays grow with the site index so the
  /// RTT mesh keeps its chain-of-distance shape (clamped at rtt_max).
  double core_oversubscription = 0.0;

  /// Solve max-min fair rates with the per-site hierarchical solver.
  bool hierarchical_solver = false;
};

/// Builds a larger deployment in the same style as the paper's testbed:
/// `sites` site routers in a chain-of-distance full mesh (nearby sites get
/// short RTTs, distant pairs long ones), `nodes_per_site` nodes each, with
/// the paper's per-node resources. Node names stay "node-1".."node-N" in
/// global order. Used by the §8 "evaluation at larger scale" extension.
cluster::ClusterSpec scaled_cluster_spec(const ScaledClusterOptions& options);

/// Shorthand for the defaults above with just the shape overridden.
cluster::ClusterSpec scaled_cluster_spec(int sites, int nodes_per_site);

class SimEnv {
 public:
  explicit SimEnv(std::uint64_t seed, EnvOptions options = {});

  SimEnv(const SimEnv&) = delete;
  SimEnv& operator=(const SimEnv&) = delete;

  sim::Engine& engine() { return engine_; }
  cluster::Cluster& cluster() { return *cluster_; }
  const telemetry::Tsdb& tsdb() const { return stack_->tsdb(); }
  k8s::ApiServer& api() { return api_; }
  k8s::DefaultScheduler& kube_scheduler() { return *kube_scheduler_; }
  fault::FaultInjector& fault_injector() { return *faults_; }
  const std::vector<std::string>& node_names() const { return node_names_; }
  const EnvOptions& options() const { return options_; }
  std::uint64_t seed() const { return seed_; }

  /// Runs the engine until options().warmup; idempotent.
  void warmup();

  /// Telemetry snapshot of all nodes as of now.
  telemetry::ClusterSnapshot snapshot() const;

  /// Executes a job with its driver pinned on `driver_node` and executors
  /// placed by the default scheduler. `job_seed` drives the job's own
  /// randomness (DAG skew, startup jitter, task jitter) and must be held
  /// fixed across counterfactual runs. Binds and later removes the pods
  /// through the API server, so the scheduler sees realistic state.
  spark::AppResult run_job(const spark::JobConfig& config,
                           std::size_t driver_node, std::uint64_t job_seed);

  /// Full ranking the default Kubernetes scheduler would produce for this
  /// job's driver pod right now (the Table 4 baseline).
  k8s::ScheduleResult kube_ranking(const spark::JobConfig& config);

  /// Background load pods active in this environment (for inspection).
  std::size_t num_background_pods() const { return background_.size(); }
  const cluster::BackgroundLoad& background_pod(std::size_t i) const;

 private:
  std::uint64_t seed_;
  EnvOptions options_;
  sim::Engine engine_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<telemetry::TelemetryStack> stack_;
  k8s::ApiServer api_;
  std::unique_ptr<k8s::DefaultScheduler> kube_scheduler_;
  std::unique_ptr<fault::FaultInjector> faults_;
  std::vector<std::string> node_names_;
  std::vector<std::unique_ptr<cluster::BackgroundLoad>> background_;
  bool warmed_up_ = false;
  int job_counter_ = 0;
};

}  // namespace lts::exp
