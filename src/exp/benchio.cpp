#include "exp/benchio.hpp"

#include <fstream>

#include "util/common.hpp"

namespace lts::exp {

void BenchReport::add(const std::string& bench, const std::string& metric,
                      double value, const std::string& unit) {
  rows_.push_back(Row{bench, metric, value, unit});
}

void BenchReport::note(const std::string& key, const std::string& value) {
  notes_.emplace_back(key, value);
}

Json BenchReport::to_json() const {
  Json j = Json::object();
  j["name"] = name_;
  Json notes = Json::object();
  for (const auto& [key, value] : notes_) notes[key] = value;
  j["notes"] = std::move(notes);
  Json rows = Json::array();
  for (const auto& row : rows_) {
    Json r = Json::object();
    r["bench"] = row.bench;
    r["metric"] = row.metric;
    r["value"] = row.value;
    if (!row.unit.empty()) r["unit"] = row.unit;
    rows.push_back(std::move(r));
  }
  j["results"] = std::move(rows);
  return j;
}

void BenchReport::write(const std::string& path) const {
  std::ofstream out(path);
  LTS_REQUIRE(out.good(), "BenchReport: cannot open for writing: " + path);
  out << to_json().dump(2) << "\n";
  LTS_REQUIRE(out.good(), "BenchReport: write failed: " + path);
}

}  // namespace lts::exp
