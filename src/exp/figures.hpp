// Data series for the paper's figures.
//
//   Figure 2 — average latency per node across five runs of Sort.
//   Figure 3 — average transmit bandwidth per node across five runs of Sort.
//   Figure 4 — geographic layout: inter-site RTTs.
//
// The figure generators run the same workflow the paper describes (§4):
// five Sort executions in one living environment with background load, with
// per-node telemetry aggregated over each run window.
#pragma once

#include <string>
#include <vector>

#include "exp/envgen.hpp"
#include "spark/job.hpp"

namespace lts::exp {

struct PerNodeSeries {
  std::vector<std::string> nodes;
  std::vector<double> values;  // same order as nodes
};

struct SortTelemetryFigures {
  int runs = 0;
  /// Figure 2: mean RTT from each node to its peers, averaged over the run
  /// windows, in milliseconds.
  PerNodeSeries avg_latency_ms;
  /// Figure 3: mean transmit bandwidth per node over the run windows, MB/s.
  PerNodeSeries avg_tx_mbps;
  /// Per-run job durations (context for the figure captions).
  std::vector<double> run_durations;
};

struct FigureOptions {
  std::uint64_t seed = 42;
  int runs = 5;
  EnvOptions env;
  /// Driver placement for the Sort runs (paper: a fixed target node).
  std::size_t driver_node = 0;
};

/// Reproduces the Figures 2 & 3 data collection.
SortTelemetryFigures figure_sort_telemetry(const spark::JobConfig& sort_config,
                                           const FigureOptions& options);

struct SiteRttMatrix {
  std::vector<std::string> sites;
  /// rtt_ms[i][j]: measured RTT between routers of sites i and j (0 on the
  /// diagonal).
  std::vector<std::vector<double>> rtt_ms;
};

/// Reproduces Figure 4's inter-site RTT annotations from live measurement.
SiteRttMatrix figure_topology(const EnvOptions& env_options);

}  // namespace lts::exp
