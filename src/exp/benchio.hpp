// Machine-readable benchmark output.
//
// Every perf-tracking binary (bench_flow_scale, bench_sim_microbench)
// funnels its results through one BenchReport so the repo emits a uniform
// BENCH_<name>.json artifact per run: a flat list of (bench, metric, value,
// unit) rows plus free-form string notes. CI uploads these as artifacts,
// giving the project a perf trajectory across commits instead of numbers
// that scroll away in job logs.
#pragma once

#include <string>
#include <vector>

#include "util/json.hpp"

namespace lts::exp {

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Records one measured value. `bench` groups rows belonging to the same
  /// benchmark case (e.g. "shuffle_storm/10000"), `metric` names the
  /// quantity (e.g. "optimized_seconds").
  void add(const std::string& bench, const std::string& metric, double value,
           const std::string& unit = "");

  /// Free-form metadata (compiler, build type, workload shape, ...).
  void note(const std::string& key, const std::string& value);

  Json to_json() const;

  /// Writes pretty-printed JSON (with trailing newline) to `path`.
  void write(const std::string& path) const;

 private:
  struct Row {
    std::string bench;
    std::string metric;
    double value = 0.0;
    std::string unit;
  };

  std::string name_;
  std::vector<std::pair<std::string, std::string>> notes_;
  std::vector<Row> rows_;
};

}  // namespace lts::exp
