// Batch data collector: the §5.2 experiment workflow.
//
// For every job configuration, for every target node, for `repeats`
// repetitions: build a fresh randomized environment, warm it up, snapshot
// telemetry, run the job with the driver pinned on the target node, and log
// (pre-launch telemetry of that node, job config, measured duration). With
// the paper's parameters (60 configs x 6 nodes x 10 repeats) this yields the
// 3600-sample training corpus.
#pragma once

#include <functional>

#include "core/logger.hpp"
#include "exp/envgen.hpp"
#include "exp/scenario.hpp"

namespace lts::exp {

struct CollectorOptions {
  int repeats = 10;
  std::uint64_t base_seed = 1000;
  EnvOptions env;
  /// Run one unrecorded job (random config and placement) to completion
  /// before the telemetry snapshot and the measured job. Its residual
  /// traffic contaminates the rate windows exactly the way back-to-back
  /// production jobs do, matching the live-stream distribution (see
  /// bench_ext_e2e_stream). Off by default: the paper's batch workflow
  /// (§5.2) runs jobs in fresh conditions.
  bool residual_job = false;
  /// Called after each sample with (samples done, samples total).
  std::function<void(std::size_t, std::size_t)> progress;
};

/// Runs the batch and returns the training log (TrainingLogger schema).
CsvTable collect_training_data(const std::vector<Scenario>& scenarios,
                               const CollectorOptions& options);

/// Deterministic per-sample seed, exposed so tests can reproduce any single
/// sample in isolation.
std::uint64_t sample_seed(const CollectorOptions& options,
                          std::size_t scenario_index, std::size_t target_node,
                          int repeat);

}  // namespace lts::exp
