#include "exp/evaluate.hpp"

#include <algorithm>

#include "core/scheduler.hpp"
#include "ml/metrics.hpp"
#include "obs/metrics.hpp"
#include "util/stats.hpp"

namespace lts::exp {

const MethodAccuracy& EvalResult::by_method(const std::string& name) const {
  for (const auto& m : accuracy) {
    if (m.method == name) return m;
  }
  throw Error("EvalResult: no method named " + name);
}

namespace {

/// Ranks node indices by ascending key, ties broken by index for
/// determinism.
std::vector<std::size_t> rank_by(const std::vector<double>& keys) {
  std::vector<std::size_t> order(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return keys[a] < keys[b];
                   });
  return order;
}

bool hit_topk(const std::vector<std::size_t>& ranking, std::size_t fastest,
              int k) {
  const std::size_t limit =
      std::min(ranking.size(), static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < limit; ++i) {
    if (ranking[i] == fastest) return true;
  }
  return false;
}

}  // namespace

EvalResult evaluate_methods(
    const std::vector<std::pair<std::string,
                                std::shared_ptr<const ml::Regressor>>>& models,
    const std::vector<Scenario>& matrix, const EvalOptions& options) {
  std::vector<MethodUnderTest> entries;
  entries.reserve(models.size());
  for (const auto& [name, model] : models) {
    entries.push_back(MethodUnderTest{name, model});
  }
  return evaluate_methods(entries, matrix, options);
}

EvalResult evaluate_methods(const std::vector<MethodUnderTest>& models,
                            const std::vector<Scenario>& matrix,
                            const EvalOptions& options) {
  LTS_REQUIRE(options.num_scenarios >= 1, "evaluate_methods: no scenarios");
  EvalResult result;

  std::vector<std::string> method_order = {"kube_default", "random"};
  for (const auto& h : options.heuristics) method_order.push_back(h);
  for (const auto& entry : models) {
    LTS_REQUIRE(entry.fallback.enabled ||
                    (entry.model != nullptr && entry.model->is_fitted()),
                "evaluate_methods: model '" + entry.name + "' not fitted");
    method_order.push_back(entry.name);
  }
  std::map<std::string, int> top1_hits, top2_hits;
  std::map<std::string, double> regret_sum;

  obs::Counter& scenarios_counter = obs::counter(
      "lts_eval_scenarios_total", {},
      "Evaluation scenarios completed (counterfactual truth computed)");
  for (int s = 0; s < options.num_scenarios; ++s) {
    scenarios_counter.inc();
    const std::uint64_t seed =
        options.base_seed + 7919ULL * static_cast<std::uint64_t>(s);
    Rng pick_rng(seed ^ 0xabcdef12ULL);
    const Scenario& scenario = sample_scenario(matrix, pick_rng);
    const std::uint64_t job_seed = seed ^ 0x5eedf00dULL;

    ScenarioOutcome outcome;
    outcome.scenario_id = scenario.id;
    outcome.seed = seed;

    // --- method rankings, all from the state at warmup time -------------
    {
      SimEnv env(seed, options.env);
      env.warmup();
      const auto snapshot = env.snapshot();
      const std::size_t n = env.node_names().size();

      // Baseline: the default Kubernetes scheduler's ranking for the
      // driver pod (resource-requests only, network-blind).
      const auto kube = env.kube_ranking(scenario.config);
      std::vector<std::size_t> kube_rank;
      for (const auto& scored : kube.ranking) {
        kube_rank.push_back(env.cluster().node_index(scored.name));
      }
      outcome.rankings["kube_default"] = std::move(kube_rank);

      // Baseline: uniform random order.
      std::vector<std::size_t> random_rank(n);
      for (std::size_t i = 0; i < n; ++i) random_rank[i] = i;
      Rng shuffle_rng(seed ^ 0x12341234ULL);
      shuffle_rng.shuffle(random_rank);
      outcome.rankings["random"] = std::move(random_rank);

      // Telemetry heuristics (ablation baselines).
      for (const auto& h : options.heuristics) {
        std::vector<double> keys(n, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
          const auto& t = snapshot.nodes[i];
          if (h == "least_cpu") {
            keys[i] = t.cpu_load;
          } else if (h == "least_rtt") {
            keys[i] = t.rtt_mean;
          } else {
            throw Error("evaluate_methods: unknown heuristic " + h);
          }
        }
        outcome.rankings[h] = rank_by(keys);
      }

      // Supervised models: the paper's prediction-and-ranking pipeline.
      // Every method ranks from the same raw snapshot; degradation-enabled
      // methods see it through their staleness annotation/imputation first.
      for (const auto& entry : models) {
        core::LtsScheduler scheduler(
            core::TelemetryFetcher(env.tsdb(), env.node_names(),
                                   options.env.snapshot, entry.degradation),
            entry.model, entry.features, entry.risk_aversion,
            entry.fallback);
        auto method_snapshot = snapshot;
        if (entry.degradation.enabled) {
          telemetry::annotate_staleness(method_snapshot,
                                        entry.degradation.max_staleness);
          if (entry.degradation.impute) {
            telemetry::impute_stale_nodes(method_snapshot);
          }
        }
        const auto decision =
            scheduler.schedule_from_snapshot(method_snapshot, scenario.config);
        std::vector<std::size_t> ranked;
        ranked.reserve(decision.ranking.size());
        for (const auto& p : decision.ranking) {
          ranked.push_back(env.cluster().node_index(p.node));
        }
        outcome.rankings[entry.name] = std::move(ranked);
      }
    }

    // --- counterfactual ground truth -------------------------------------
    {
      LTS_REQUIRE(options.truth_repeats >= 1,
                  "evaluate_methods: truth_repeats >= 1");
      std::size_t n_nodes = SimEnv(seed, options.env).node_names().size();
      for (std::size_t node = 0; node < n_nodes; ++node) {
        double total = 0.0;
        for (int rep = 0; rep < options.truth_repeats; ++rep) {
          SimEnv env(seed, options.env);
          env.warmup();
          const auto run = env.run_job(
              scenario.config, node,
              job_seed + 0x9e3779b9ULL * static_cast<std::uint64_t>(rep));
          total += run.duration();
        }
        outcome.node_durations.push_back(
            total / static_cast<double>(options.truth_repeats));
      }
      outcome.fastest_node = static_cast<std::size_t>(
          std::min_element(outcome.node_durations.begin(),
                           outcome.node_durations.end()) -
          outcome.node_durations.begin());
    }

    for (const auto& method : method_order) {
      const auto& ranking = outcome.rankings.at(method);
      if (hit_topk(ranking, outcome.fastest_node, 1)) ++top1_hits[method];
      if (hit_topk(ranking, outcome.fastest_node, 2)) ++top2_hits[method];
      regret_sum[method] +=
          outcome.node_durations[ranking.front()] -
          outcome.node_durations[outcome.fastest_node];
    }
    result.outcomes.push_back(std::move(outcome));
    if (options.progress) {
      options.progress(static_cast<std::size_t>(s + 1),
                       static_cast<std::size_t>(options.num_scenarios));
    }
  }

  for (const auto& method : method_order) {
    MethodAccuracy acc;
    acc.method = method;
    acc.scenarios = options.num_scenarios;
    acc.top1 = static_cast<double>(top1_hits[method]) /
               static_cast<double>(options.num_scenarios);
    acc.top2 = static_cast<double>(top2_hits[method]) /
               static_cast<double>(options.num_scenarios);
    acc.mean_regret =
        regret_sum[method] / static_cast<double>(options.num_scenarios);
    result.accuracy.push_back(std::move(acc));
  }
  return result;
}

Json StreamSummary::to_json() const {
  Json j = Json::object();
  j["mean_jct_s"] = mean_jct;
  j["p50_jct_s"] = p50_jct;
  j["p95_jct_s"] = p95_jct;
  j["p99_jct_s"] = p99_jct;
  j["makespan_s"] = makespan;
  j["jobs"] = static_cast<double>(jobs);
  j["mean_queueing_delay_s"] = mean_queueing_delay;
  j["p95_queueing_delay_s"] = p95_queueing_delay;
  j["placement_retries"] = static_cast<double>(placement_retries);
  j["model_version"] = static_cast<double>(model_version);
  j["retrains"] = static_cast<double>(retrains);
  j["retrain_failures"] = static_cast<double>(retrain_failures);
  j["retrain_skips"] = static_cast<double>(retrain_skips);
  j["retrain_rejections"] = static_cast<double>(retrain_rejections);
  return j;
}

StreamSummary summarize_stream(const StreamResult& result) {
  StreamSummary summary;
  std::vector<double> durations;
  std::vector<double> queueing;
  durations.reserve(result.jobs.size());
  queueing.reserve(result.jobs.size());
  for (const auto& job : result.jobs) {
    durations.push_back(job.duration);
    queueing.push_back(job.queueing_delay);
    summary.placement_retries +=
        static_cast<std::size_t>(job.placement_retries);
  }
  summary.jobs = durations.size();
  if (!durations.empty()) {
    summary.mean_jct = mean(durations);
    summary.p50_jct = percentile(durations, 50);
    summary.p95_jct = percentile(durations, 95);
    summary.p99_jct = percentile(durations, 99);
    summary.mean_queueing_delay = mean(queueing);
    summary.p95_queueing_delay = percentile(queueing, 95);
  }
  summary.makespan = result.makespan;
  summary.model_version = result.model_version;
  for (const auto& event : result.retrain_events) {
    switch (event.outcome) {
      case core::RetrainOutcome::kSwapped: ++summary.retrains; break;
      case core::RetrainOutcome::kFailed: ++summary.retrain_failures; break;
      case core::RetrainOutcome::kSkipped: ++summary.retrain_skips; break;
      case core::RetrainOutcome::kRejected:
        ++summary.retrain_rejections;
        break;
    }
  }
  return summary;
}

}  // namespace lts::exp
