// Fault injection: deterministic, Engine-driven perturbations of the
// simulated cluster.
//
// The paper evaluates LTS on a healthy testbed; this subsystem asks the next
// question — what happens to a telemetry-driven scheduler when the telemetry
// pipeline or the substrate itself degrades? A FaultInjector can
//   - crash and recover nodes (the host hangs: its exporters stop answering,
//     its access links drop to a dead-link trickle, in-flight transfers
//     stall rather than vanish),
//   - degrade or partition WAN links (capacity cuts, RTT spikes, loss of a
//     whole site),
//   - silence or delay node exporters (snapshots arrive stale or with
//     missing per-node rows even though the node itself is fine).
//
// Everything is driven through the shared sim::Engine, so a fault schedule
// is replayed bit-identically for every scheduler under comparison — the
// same property the counterfactual evaluation relies on. An injector with
// no faults applied touches nothing and draws no randomness; constructing
// one is free.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "k8s/api.hpp"
#include "net/topology.hpp"
#include "simcore/engine.hpp"
#include "telemetry/exporters.hpp"
#include "util/json.hpp"

namespace lts::fault {

enum class FaultKind {
  kNodeCrash,        // target = node name; host hangs, recovers on expiry
  kLinkDegrade,      // target = "siteA:siteB"; severity = capacity fraction cut
  kRttSpike,         // target = "siteA:siteB"; severity = extra one-way secs
  kSitePartition,    // target = site name; every WAN link touching it dies
  kExporterSilence,  // target = node name; exporter scrapes vanish
  kExporterDelay,    // target = node name; severity = reporting lag seconds
  kRetrainFail,      // target ignored; online refits fail while active
  kNodeLinkDegrade,  // target = node name; severity = access-capacity cut
};

const char* to_string(FaultKind kind);
FaultKind fault_kind_from_string(const std::string& s);

/// One scheduled fault. `duration <= 0` means permanent (never recovers).
/// `severity` is kind-specific: fraction of capacity removed (kLinkDegrade,
/// in [0, 1]), extra one-way propagation delay in seconds (kRttSpike), or
/// exporter reporting lag in seconds (kExporterDelay); ignored otherwise.
struct FaultSpec {
  FaultKind kind = FaultKind::kNodeCrash;
  std::string target;
  SimTime at = 0.0;
  SimTime duration = 0.0;
  double severity = 1.0;
};

Json fault_to_json(const FaultSpec& spec);
FaultSpec fault_from_json(const Json& j);
Json faults_to_json(const std::vector<FaultSpec>& specs);
std::vector<FaultSpec> faults_from_json(const Json& j);

/// Applies FaultSpecs to a live cluster, or injects/recovers directly.
///
/// The telemetry stack and API server are optional: without them, exporter
/// faults throw and node crashes skip the readiness bookkeeping (pings and
/// scrapes still stop, because the exporters consult Cluster::node_down).
class FaultInjector {
 public:
  FaultInjector(sim::Engine& engine, cluster::Cluster& cluster,
                telemetry::TelemetryStack* telemetry = nullptr,
                k8s::ApiServer* api = nullptr);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules injection at `spec.at` and, if `spec.duration > 0`, recovery
  /// at `spec.at + spec.duration`, on the shared engine.
  void apply(const FaultSpec& spec);
  void apply_all(const std::vector<FaultSpec>& specs);

  // Direct primitives (take effect immediately). All are idempotent: a
  // second inject of the same fault is a no-op, as is recovering a fault
  // that is not active.
  void crash_node(const std::string& node);
  void recover_node(const std::string& node);
  void degrade_wan_link(const std::string& site_a, const std::string& site_b,
                        double capacity_cut_frac);
  /// Cuts a node's access-link capacity (both directions) by the given
  /// fraction — intra-site congestion/drift on topologies with no WAN
  /// links to degrade. Unlike crash_node the node stays up: exporters keep
  /// answering, only its NIC throughput shrinks.
  void degrade_node_link(const std::string& node, double capacity_cut_frac);
  void restore_node_link(const std::string& node);
  void spike_wan_rtt(const std::string& site_a, const std::string& site_b,
                     SimTime extra_one_way_delay);
  void restore_wan_link(const std::string& site_a, const std::string& site_b);
  void partition_site(const std::string& site);
  void heal_site(const std::string& site);
  void silence_exporter(const std::string& node);
  void unsilence_exporter(const std::string& node);
  void delay_exporter(const std::string& node, SimTime report_delay);
  void undelay_exporter(const std::string& node);
  void fail_retrains();
  void restore_retrains();

  /// True while a kRetrainFail fault is active. The OnlineTrainer's
  /// failure hook polls this: refits attempted in the window fail and the
  /// previous model keeps serving (the degradation the fault models is a
  /// broken training pipeline, not a broken scheduler).
  bool retrain_fail_active() const { return retrain_fail_active_; }

  /// Count of fault activations / recoveries that have fired so far.
  int injected() const { return injected_; }
  int recovered() const { return recovered_; }

 private:
  void inject(const FaultSpec& spec);
  void recover(const FaultSpec& spec);
  /// Forward link id of the WAN edge between two sites (either order).
  net::LinkId wan_forward_link(const std::string& site_a,
                               const std::string& site_b) const;
  telemetry::NodeExporter& exporter_for(const std::string& node);
  /// Advances the TSDB epoch so epoch-keyed snapshot caches rebuild:
  /// called by every fault primitive that changes how telemetry must be
  /// interpreted without appending a sample (counter resets on node
  /// recovery, exporter silence/delay toggles). No-op without a stack.
  void bump_telemetry_epoch();
  /// Saves a link's pristine capacity/delay on first touch, then mutates.
  void cut_link_capacity(net::LinkId l, double keep_frac);
  void add_link_delay(net::LinkId l, SimTime extra);
  void restore_link(net::LinkId l);

  sim::Engine& engine_;
  cluster::Cluster& cluster_;
  telemetry::TelemetryStack* telemetry_;
  k8s::ApiServer* api_;

  struct SavedLink {
    Rate capacity;
    SimTime prop_delay;
  };
  std::map<net::LinkId, SavedLink> saved_links_;
  bool retrain_fail_active_ = false;
  int injected_ = 0;
  int recovered_ = 0;
};

}  // namespace lts::fault
