#include "fault/fault.hpp"

#include <algorithm>

namespace lts::fault {
namespace {

/// Capacity of a "dead" link. Not zero: the max-min solver keeps flows
/// mathematically alive at a trickle, so transfers crossing a dead link
/// stall (like TCP retrying into a black hole) instead of vanishing, and
/// recover when the link does.
constexpr Rate kDeadLinkRate = 1e-3;

std::pair<std::string, std::string> split_site_pair(const std::string& target) {
  const auto colon = target.find(':');
  LTS_REQUIRE(colon != std::string::npos && colon > 0 &&
                  colon + 1 < target.size(),
              "fault: link target must be \"siteA:siteB\", got: " + target);
  return {target.substr(0, colon), target.substr(colon + 1)};
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash: return "node_crash";
    case FaultKind::kLinkDegrade: return "link_degrade";
    case FaultKind::kRttSpike: return "rtt_spike";
    case FaultKind::kSitePartition: return "site_partition";
    case FaultKind::kExporterSilence: return "exporter_silence";
    case FaultKind::kExporterDelay: return "exporter_delay";
    case FaultKind::kRetrainFail: return "retrain_fail";
    case FaultKind::kNodeLinkDegrade: return "node_link_degrade";
  }
  throw Error("fault: unknown FaultKind");
}

FaultKind fault_kind_from_string(const std::string& s) {
  if (s == "node_crash") return FaultKind::kNodeCrash;
  if (s == "link_degrade") return FaultKind::kLinkDegrade;
  if (s == "rtt_spike") return FaultKind::kRttSpike;
  if (s == "site_partition") return FaultKind::kSitePartition;
  if (s == "exporter_silence") return FaultKind::kExporterSilence;
  if (s == "exporter_delay") return FaultKind::kExporterDelay;
  if (s == "retrain_fail") return FaultKind::kRetrainFail;
  if (s == "node_link_degrade") return FaultKind::kNodeLinkDegrade;
  throw Error("fault: unknown fault kind: " + s);
}

Json fault_to_json(const FaultSpec& spec) {
  JsonObject o;
  o["kind"] = to_string(spec.kind);
  o["target"] = spec.target;
  o["at"] = spec.at;
  o["duration"] = spec.duration;
  o["severity"] = spec.severity;
  return Json(std::move(o));
}

FaultSpec fault_from_json(const Json& j) {
  LTS_REQUIRE(j.is_object(), "fault: spec must be a JSON object");
  FaultSpec spec;
  spec.kind = fault_kind_from_string(j.at("kind").as_string());
  spec.target = j.at("target").as_string();
  if (j.contains("at")) spec.at = j.at("at").as_double();
  if (j.contains("duration")) spec.duration = j.at("duration").as_double();
  if (j.contains("severity")) spec.severity = j.at("severity").as_double();
  return spec;
}

Json faults_to_json(const std::vector<FaultSpec>& specs) {
  Json arr = Json::array();
  for (const auto& spec : specs) arr.push_back(fault_to_json(spec));
  return arr;
}

std::vector<FaultSpec> faults_from_json(const Json& j) {
  LTS_REQUIRE(j.is_array(), "fault: schedule must be a JSON array");
  std::vector<FaultSpec> specs;
  specs.reserve(j.size());
  for (std::size_t i = 0; i < j.size(); ++i) {
    specs.push_back(fault_from_json(j.at(i)));
  }
  return specs;
}

FaultInjector::FaultInjector(sim::Engine& engine, cluster::Cluster& cluster,
                             telemetry::TelemetryStack* telemetry,
                             k8s::ApiServer* api)
    : engine_(engine), cluster_(cluster), telemetry_(telemetry), api_(api) {}

void FaultInjector::apply(const FaultSpec& spec) {
  LTS_REQUIRE(spec.at >= engine_.now(), "fault: injection time is in the past");
  engine_.schedule_at(spec.at, [this, spec] { inject(spec); });
  if (spec.duration > 0.0) {
    engine_.schedule_at(spec.at + spec.duration,
                        [this, spec] { recover(spec); });
  }
}

void FaultInjector::apply_all(const std::vector<FaultSpec>& specs) {
  for (const auto& spec : specs) apply(spec);
}

void FaultInjector::inject(const FaultSpec& spec) {
  switch (spec.kind) {
    case FaultKind::kNodeCrash:
      crash_node(spec.target);
      break;
    case FaultKind::kLinkDegrade: {
      const auto [a, b] = split_site_pair(spec.target);
      degrade_wan_link(a, b, spec.severity);
      break;
    }
    case FaultKind::kRttSpike: {
      const auto [a, b] = split_site_pair(spec.target);
      spike_wan_rtt(a, b, spec.severity);
      break;
    }
    case FaultKind::kSitePartition:
      partition_site(spec.target);
      break;
    case FaultKind::kExporterSilence:
      silence_exporter(spec.target);
      break;
    case FaultKind::kExporterDelay:
      delay_exporter(spec.target, spec.severity);
      break;
    case FaultKind::kRetrainFail:
      fail_retrains();
      break;
    case FaultKind::kNodeLinkDegrade:
      degrade_node_link(spec.target, spec.severity);
      break;
  }
  ++injected_;
}

void FaultInjector::recover(const FaultSpec& spec) {
  switch (spec.kind) {
    case FaultKind::kNodeCrash:
      recover_node(spec.target);
      break;
    case FaultKind::kLinkDegrade:
    case FaultKind::kRttSpike: {
      const auto [a, b] = split_site_pair(spec.target);
      restore_wan_link(a, b);
      break;
    }
    case FaultKind::kSitePartition:
      heal_site(spec.target);
      break;
    case FaultKind::kExporterSilence:
      unsilence_exporter(spec.target);
      break;
    case FaultKind::kExporterDelay:
      undelay_exporter(spec.target);
      break;
    case FaultKind::kRetrainFail:
      restore_retrains();
      break;
    case FaultKind::kNodeLinkDegrade:
      restore_node_link(spec.target);
      break;
  }
  ++recovered_;
}

void FaultInjector::crash_node(const std::string& node) {
  const std::size_t idx = cluster_.node_index(node);
  if (cluster_.node_down(idx)) return;
  cluster_.set_node_down(idx, true);
  // The host hangs: both access-link directions collapse to a trickle, so
  // every transfer touching the node stalls. Exporters stop on their own
  // (they consult node_down before scraping).
  cut_link_capacity(cluster_.node_uplink(idx), 0.0);
  cut_link_capacity(cluster_.node_downlink(idx), 0.0);
  cluster_.flows().invalidate_rates();
  if (api_ != nullptr) api_->set_node_ready(node, false);
  // The node's exporters stop answering (they consult node_down): cached
  // snapshots must not keep serving its last pre-crash heartbeat age.
  bump_telemetry_epoch();
}

void FaultInjector::recover_node(const std::string& node) {
  const std::size_t idx = cluster_.node_index(node);
  if (!cluster_.node_down(idx)) return;
  cluster_.set_node_down(idx, false);
  restore_link(cluster_.node_uplink(idx));
  restore_link(cluster_.node_downlink(idx));
  // The host rebooted: its cumulative NIC counters restart from zero, so
  // the exporter's next scrape publishes a value below the pre-crash one.
  // Rate queries must treat that as a counter reset (Tsdb::rate does), not
  // as negative throughput.
  cluster_.flows().reset_host_counters(cluster_.node(idx).vertex());
  cluster_.flows().invalidate_rates();
  if (api_ != nullptr) api_->set_node_ready(node, true);
  // Counter semantics just changed under every cached snapshot.
  bump_telemetry_epoch();
}

void FaultInjector::degrade_wan_link(const std::string& site_a,
                                     const std::string& site_b,
                                     double capacity_cut_frac) {
  LTS_REQUIRE(capacity_cut_frac >= 0.0 && capacity_cut_frac <= 1.0,
              "fault: capacity cut fraction must be in [0, 1]");
  const net::LinkId fwd = wan_forward_link(site_a, site_b);
  cut_link_capacity(fwd, 1.0 - capacity_cut_frac);
  cut_link_capacity(fwd + 1, 1.0 - capacity_cut_frac);
  cluster_.flows().invalidate_rates();
}

void FaultInjector::degrade_node_link(const std::string& node,
                                      double capacity_cut_frac) {
  LTS_REQUIRE(capacity_cut_frac >= 0.0 && capacity_cut_frac <= 1.0,
              "fault: capacity cut fraction must be in [0, 1]");
  const std::size_t idx = cluster_.node_index(node);
  cut_link_capacity(cluster_.node_uplink(idx), 1.0 - capacity_cut_frac);
  cut_link_capacity(cluster_.node_downlink(idx), 1.0 - capacity_cut_frac);
  cluster_.flows().invalidate_rates();
}

void FaultInjector::restore_node_link(const std::string& node) {
  const std::size_t idx = cluster_.node_index(node);
  restore_link(cluster_.node_uplink(idx));
  restore_link(cluster_.node_downlink(idx));
  cluster_.flows().invalidate_rates();
}

void FaultInjector::spike_wan_rtt(const std::string& site_a,
                                  const std::string& site_b,
                                  SimTime extra_one_way_delay) {
  LTS_REQUIRE(extra_one_way_delay >= 0.0, "fault: negative RTT spike");
  const net::LinkId fwd = wan_forward_link(site_a, site_b);
  add_link_delay(fwd, extra_one_way_delay);
  add_link_delay(fwd + 1, extra_one_way_delay);
  cluster_.flows().invalidate_rates();
}

void FaultInjector::restore_wan_link(const std::string& site_a,
                                     const std::string& site_b) {
  const net::LinkId fwd = wan_forward_link(site_a, site_b);
  restore_link(fwd);
  restore_link(fwd + 1);
  cluster_.flows().invalidate_rates();
}

void FaultInjector::partition_site(const std::string& site) {
  bool touched = false;
  for (const auto& wan : cluster_.wan_links()) {
    if (wan.site_a != site && wan.site_b != site) continue;
    cut_link_capacity(wan.forward, 0.0);
    cut_link_capacity(wan.forward + 1, 0.0);
    touched = true;
  }
  LTS_REQUIRE(touched, "fault: no WAN links touch site: " + site);
  cluster_.flows().invalidate_rates();
}

void FaultInjector::heal_site(const std::string& site) {
  for (const auto& wan : cluster_.wan_links()) {
    if (wan.site_a != site && wan.site_b != site) continue;
    restore_link(wan.forward);
    restore_link(wan.forward + 1);
  }
  cluster_.flows().invalidate_rates();
}

// The exporter setters bump the TSDB epoch themselves (lts_lint R6: the
// mutation and its cache invalidation live in one place), so the injector
// only routes the calls.

void FaultInjector::silence_exporter(const std::string& node) {
  exporter_for(node).set_silenced(true);
}

void FaultInjector::unsilence_exporter(const std::string& node) {
  exporter_for(node).set_silenced(false);
}

void FaultInjector::delay_exporter(const std::string& node,
                                   SimTime report_delay) {
  exporter_for(node).set_report_delay(report_delay);
}

void FaultInjector::undelay_exporter(const std::string& node) {
  exporter_for(node).set_report_delay(0.0);
}

void FaultInjector::fail_retrains() { retrain_fail_active_ = true; }

void FaultInjector::restore_retrains() { retrain_fail_active_ = false; }

net::LinkId FaultInjector::wan_forward_link(const std::string& site_a,
                                            const std::string& site_b) const {
  for (const auto& wan : cluster_.wan_links()) {
    if ((wan.site_a == site_a && wan.site_b == site_b) ||
        (wan.site_a == site_b && wan.site_b == site_a)) {
      return wan.forward;
    }
  }
  throw Error("fault: no WAN link between " + site_a + " and " + site_b);
}

void FaultInjector::bump_telemetry_epoch() {
  if (telemetry_ != nullptr) telemetry_->tsdb().bump_epoch();
}

telemetry::NodeExporter& FaultInjector::exporter_for(const std::string& node) {
  LTS_REQUIRE(telemetry_ != nullptr,
              "fault: exporter faults need a TelemetryStack");
  // TelemetryStack builds one NodeExporter per cluster node, in node order.
  return telemetry_->node_exporter(cluster_.node_index(node));
}

void FaultInjector::cut_link_capacity(net::LinkId l, double keep_frac) {
  // First touch records the pristine capacity, so repeated or overlapping
  // cuts never compound and restore always returns to the original.
  const auto [it, inserted] =
      saved_links_.try_emplace(l, SavedLink{cluster_.topology().link(l).capacity,
                                            cluster_.topology().link(l).prop_delay});
  cluster_.topology().set_link_capacity(
      l, std::max(kDeadLinkRate, it->second.capacity * keep_frac));
}

void FaultInjector::add_link_delay(net::LinkId l, SimTime extra) {
  const auto [it, inserted] =
      saved_links_.try_emplace(l, SavedLink{cluster_.topology().link(l).capacity,
                                            cluster_.topology().link(l).prop_delay});
  cluster_.topology().set_link_prop_delay(l, it->second.prop_delay + extra);
}

void FaultInjector::restore_link(net::LinkId l) {
  const auto it = saved_links_.find(l);
  if (it == saved_links_.end()) return;  // never faulted: nothing to restore
  cluster_.topology().set_link_capacity(l, it->second.capacity);
  cluster_.topology().set_link_prop_delay(l, it->second.prop_delay);
  saved_links_.erase(it);
}

}  // namespace lts::fault
