#include "simcore/engine.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace lts::sim {

namespace {
// Aggregated across every Engine instance in the process (environments are
// rebuilt constantly for counterfactuals; per-instance series would explode
// the registry).
struct EngineMetrics {
  obs::Counter& events = obs::counter(
      "lts_sim_events_processed_total", {},
      "Events executed by all simulation engines");
  obs::Gauge& queue_depth = obs::gauge(
      "lts_sim_event_queue_depth", {},
      "Pending events in the most recently stepped engine");
  static EngineMetrics& get() {
    static EngineMetrics m;
    return m;
  }
};
}  // namespace

Engine::Engine()
    : obs_enabled_(obs::MetricsRegistry::global().enabled_flag()) {}

void Engine::record_step_metrics() {
  auto& metrics = EngineMetrics::get();
  metrics.events.inc();
  metrics.queue_depth.set(static_cast<double>(handlers_.size()));
}

EventId Engine::schedule_at(SimTime t, std::function<void()> fn) {
  return schedule_at(t, /*shard=*/0, std::move(fn));
}

EventId Engine::schedule_in(SimTime delay, std::function<void()> fn) {
  LTS_REQUIRE(delay >= 0.0, "Engine: negative delay");
  return schedule_at(now_ + delay, /*shard=*/0, std::move(fn));
}

EventId Engine::schedule_at(SimTime t, int shard, std::function<void()> fn) {
  LTS_REQUIRE(t >= now_, "Engine: cannot schedule event in the past");
  LTS_REQUIRE(shard >= 0, "Engine: shard must be >= 0");
  const EventId id = next_seq_++;
  queue_.push(QueueEntry{t, id, id, shard});
  handlers_.emplace(id, std::move(fn));
  return id;
}

EventId Engine::schedule_in(SimTime delay, int shard,
                            std::function<void()> fn) {
  LTS_REQUIRE(delay >= 0.0, "Engine: negative delay");
  return schedule_at(now_ + delay, shard, std::move(fn));
}

void Engine::set_shard_batch_hooks(std::function<void(int)> on_begin,
                                   std::function<void(int)> on_end) {
  close_batch();
  batch_begin_ = std::move(on_begin);
  batch_end_ = std::move(on_end);
  batch_hooks_ = batch_begin_ != nullptr || batch_end_ != nullptr;
}

void Engine::note_batch(SimTime time, std::int32_t shard) {
  if (batch_open_ && batch_time_ == time && batch_shard_ == shard) return;
  close_batch();
  batch_open_ = true;
  batch_time_ = time;
  batch_shard_ = shard;
  if (batch_begin_) batch_begin_(shard);
}

void Engine::close_batch() {
  if (!batch_open_) return;
  batch_open_ = false;
  if (batch_end_) batch_end_(batch_shard_);
}

bool Engine::cancel(EventId id) {
  // Lazy deletion: drop the handler; the queue entry is skipped when popped.
  return handlers_.erase(id) > 0;
}

bool Engine::step() {
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    queue_.pop();
    auto it = handlers_.find(entry.id);
    if (it == handlers_.end()) continue;  // cancelled
    LTS_ASSERT(entry.time >= now_);
    now_ = entry.time;
    if (batch_hooks_) note_batch(entry.time, entry.shard);
    // Move the handler out before erasing so the callback may schedule or
    // cancel events (including re-entrant use of the same id space).
    auto fn = std::move(it->second);
    handlers_.erase(it);
    ++processed_;
    if (obs_enabled_->load(std::memory_order_relaxed)) {
      record_step_metrics();
    }
    fn();
    return true;
  }
  if (batch_hooks_) close_batch();
  return false;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(SimTime t) {
  LTS_REQUIRE(t >= now_, "Engine: run_until into the past");
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    if (handlers_.count(entry.id) == 0) {
      queue_.pop();
      continue;
    }
    if (entry.time > t) break;
    step();
  }
  now_ = t;
}

PeriodicTask::PeriodicTask(Engine& engine, SimTime interval, SimTime phase,
                           std::function<void()> fn)
    : PeriodicTask(engine, interval, phase, /*shard=*/0, std::move(fn)) {}

PeriodicTask::PeriodicTask(Engine& engine, SimTime interval, SimTime phase,
                           int shard, std::function<void()> fn)
    : engine_(engine), interval_(interval), shard_(shard),
      fn_(std::move(fn)) {
  LTS_REQUIRE(interval > 0.0, "PeriodicTask: interval must be positive");
  LTS_REQUIRE(phase >= 0.0, "PeriodicTask: negative phase");
  pending_ = engine_.schedule_in(phase, shard_, [this] { arm(); });
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != kInvalidEvent) engine_.cancel(pending_);
  pending_ = kInvalidEvent;
}

void PeriodicTask::arm() {
  if (!running_) return;
  fn_();
  if (!running_) return;  // fn may have stopped us
  pending_ = engine_.schedule_in(interval_, shard_, [this] { arm(); });
}

}  // namespace lts::sim
