// Discrete-event simulation engine.
//
// All LTS substrates (network flows, CPU sharing, exporters, Spark stages)
// are driven by one Engine instance. Events execute in (time, insertion
// sequence) order, which makes every simulation a deterministic function of
// its inputs — the property the counterfactual evaluation in exp/evaluate
// relies on.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "util/common.hpp"

namespace lts::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Engine {
 public:
  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time in seconds.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (>= now). Returns a handle.
  EventId schedule_at(SimTime t, std::function<void()> fn);

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(SimTime delay, std::function<void()> fn);

  /// Cancels a pending event. Safe to call with an already-fired or
  /// already-cancelled handle (returns false in that case).
  bool cancel(EventId id);

  /// True if `id` refers to an event that has not yet fired or been
  /// cancelled.
  bool pending(EventId id) const { return handlers_.count(id) > 0; }

  /// Executes the next event; returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains.
  void run();

  /// Runs events with time <= t, then advances the clock to exactly t.
  void run_until(SimTime t);

  std::size_t num_pending() const { return handlers_.size(); }
  std::uint64_t num_processed() const { return processed_; }

 private:
  /// Outlined so the disabled-observability event loop carries only a
  /// relaxed load and a predictable branch, not the metrics code.
  __attribute__((noinline)) void record_step_metrics();

  struct QueueEntry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
    bool operator>(const QueueEntry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  // Cached once at construction: checking observability in the event loop
  // is then a single relaxed load, with no static-init guard per event.
  const std::atomic<bool>* obs_enabled_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
  // std::map, not unordered_map: handlers_ is only ever probed by id today,
  // but an ordered container makes any future iteration deterministic by
  // construction — the same reasoning as FlowManager::flows_ (lint rule R2).
  std::map<EventId, std::function<void()>> handlers_;
};

/// Repeats a callback at a fixed interval until stopped. The first firing is
/// at `start + phase`; exporters use distinct phases so scrapes of different
/// nodes interleave rather than synchronize (as real Prometheus jitter does).
class PeriodicTask {
 public:
  PeriodicTask(Engine& engine, SimTime interval, SimTime phase,
               std::function<void()> fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  bool running() const { return running_; }

 private:
  void arm();

  Engine& engine_;
  SimTime interval_;
  std::function<void()> fn_;
  EventId pending_ = kInvalidEvent;
  bool running_ = true;
};

}  // namespace lts::sim
