// Discrete-event simulation engine.
//
// All LTS substrates (network flows, CPU sharing, exporters, Spark stages)
// are driven by one Engine instance. Events execute in (time, insertion
// sequence) order, which makes every simulation a deterministic function of
// its inputs — the property the counterfactual evaluation in exp/evaluate
// relies on.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "util/common.hpp"

namespace lts::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Engine {
 public:
  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time in seconds.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (>= now). Returns a handle.
  EventId schedule_at(SimTime t, std::function<void()> fn);

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(SimTime delay, std::function<void()> fn);

  /// Sharded variants (scale-out hook): events carry a shard tag — e.g.
  /// the site whose local state they touch. Same-time events execute
  /// grouped by ascending shard, in insertion order within a shard, so all
  /// of one site's work at an instant runs as one contiguous batch before
  /// the next site's. Cross-shard order is a deterministic merge by (time,
  /// shard, seq); the unsharded schedule_at/schedule_in tag shard 0, so a
  /// simulation that never passes a shard executes in exactly the historic
  /// (time, seq) order — golden replays stay byte-identical.
  EventId schedule_at(SimTime t, int shard, std::function<void()> fn);
  EventId schedule_in(SimTime delay, int shard, std::function<void()> fn);

  /// Observes shard-batch boundaries: on_begin(shard) fires before the
  /// first event of each same-(time, shard) batch, on_end(shard) after its
  /// last (the still-open batch closes when the queue drains). This is
  /// where per-site epoch work hangs off — flush a site's coalesced state
  /// once per batch instead of once per event. Pass nullptrs to detach.
  void set_shard_batch_hooks(std::function<void(int)> on_begin,
                             std::function<void(int)> on_end);

  /// Cancels a pending event. Safe to call with an already-fired or
  /// already-cancelled handle (returns false in that case).
  bool cancel(EventId id);

  /// True if `id` refers to an event that has not yet fired or been
  /// cancelled.
  bool pending(EventId id) const { return handlers_.count(id) > 0; }

  /// Executes the next event; returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains.
  void run();

  /// Runs events with time <= t, then advances the clock to exactly t.
  void run_until(SimTime t);

  std::size_t num_pending() const { return handlers_.size(); }
  std::uint64_t num_processed() const { return processed_; }

 private:
  /// Outlined so the disabled-observability event loop carries only a
  /// relaxed load and a predictable branch, not the metrics code.
  __attribute__((noinline)) void record_step_metrics();

  struct QueueEntry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
    // Shard tag; 0 for everything scheduled through the unsharded API, so
    // the comparator degenerates to the historic (time, seq) order unless
    // a caller opts into sharding.
    std::int32_t shard = 0;
    bool operator>(const QueueEntry& other) const {
      if (time != other.time) return time > other.time;
      if (shard != other.shard) return shard > other.shard;
      return seq > other.seq;
    }
  };

  /// Fires the batch hooks around (time, shard) group boundaries.
  void note_batch(SimTime time, std::int32_t shard);
  void close_batch();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  // Cached once at construction: checking observability in the event loop
  // is then a single relaxed load, with no static-init guard per event.
  const std::atomic<bool>* obs_enabled_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
  // Shard-batch hook state; inert (one predictable branch per step) until
  // set_shard_batch_hooks installs observers.
  bool batch_hooks_ = false;
  bool batch_open_ = false;
  SimTime batch_time_ = 0.0;
  std::int32_t batch_shard_ = 0;
  std::function<void(int)> batch_begin_;
  std::function<void(int)> batch_end_;
  // std::map, not unordered_map: handlers_ is only ever probed by id today,
  // but an ordered container makes any future iteration deterministic by
  // construction — the same reasoning as FlowManager::flows_ (lint rule R2).
  std::map<EventId, std::function<void()>> handlers_;
};

/// Repeats a callback at a fixed interval until stopped. The first firing is
/// at `start + phase`; exporters use distinct phases so scrapes of different
/// nodes interleave rather than synchronize (as real Prometheus jitter does).
class PeriodicTask {
 public:
  PeriodicTask(Engine& engine, SimTime interval, SimTime phase,
               std::function<void()> fn);
  /// Sharded variant: every firing carries `shard`, so a site's periodic
  /// work (exporter scrapes, per-site sweeps) batches with the rest of
  /// that site's same-instant events.
  PeriodicTask(Engine& engine, SimTime interval, SimTime phase, int shard,
               std::function<void()> fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  bool running() const { return running_; }

 private:
  void arm();

  Engine& engine_;
  SimTime interval_;
  int shard_ = 0;
  std::function<void()> fn_;
  EventId pending_ = kInvalidEvent;
  bool running_ = true;
};

}  // namespace lts::sim
