#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace lts {

namespace {

void indent_to(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    // JSON has no NaN/Inf; emit null. Model weights are always finite, so
    // this path only fires on corrupted inputs and is better than UB text.
    out += "null";
    return;
  }
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    LTS_REQUIRE(pos_ == s_.size(), "Json: trailing characters after document");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    LTS_REQUIRE(pos_ < s_.size(), "Json: unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    LTS_REQUIRE(peek() == c, std::string("Json: expected '") + c + "'");
    ++pos_;
  }

  Json parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': return parse_keyword("true", Json(true));
      case 'f': return parse_keyword("false", Json(false));
      case 'n': return parse_keyword("null", Json(nullptr));
      default: return parse_number();
    }
  }

  Json parse_keyword(const char* kw, Json value) {
    skip_ws();
    const std::size_t len = std::string(kw).size();
    LTS_REQUIRE(s_.compare(pos_, len, kw) == 0, "Json: bad keyword");
    pos_ += len;
    return value;
  }

  Json parse_number() {
    skip_ws();
    const char* begin = s_.data() + pos_;
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(begin, s_.data() + s_.size(), value);
    LTS_REQUIRE(ec == std::errc() && ptr != begin, "Json: malformed number");
    pos_ = static_cast<std::size_t>(ptr - s_.data());
    return Json(value);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      LTS_REQUIRE(pos_ < s_.size(), "Json: unterminated string");
      const char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        LTS_REQUIRE(pos_ < s_.size(), "Json: bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            LTS_REQUIRE(pos_ + 4 <= s_.size(), "Json: bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else throw Error("Json: bad hex digit in \\u escape");
            }
            // Encode as UTF-8 (basic multilingual plane only; LTS never
            // emits surrogate pairs).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: throw Error("Json: unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
      } else if (c == ']') {
        ++pos_;
        break;
      } else {
        throw Error("Json: expected ',' or ']' in array");
      }
    }
    return Json(std::move(arr));
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      expect(':');
      obj[std::move(key)] = parse_value();
      const char c = peek();
      if (c == ',') {
        ++pos_;
      } else if (c == '}') {
        ++pos_;
        break;
      } else {
        throw Error("Json: expected ',' or '}' in object");
      }
    }
    return Json(std::move(obj));
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  LTS_REQUIRE(type_ == Type::kBool, "Json: not a bool");
  return bool_;
}

double Json::as_double() const {
  LTS_REQUIRE(type_ == Type::kNumber, "Json: not a number");
  return num_;
}

int Json::as_int() const {
  return static_cast<int>(as_double());
}

const std::string& Json::as_string() const {
  LTS_REQUIRE(type_ == Type::kString, "Json: not a string");
  return str_;
}

const JsonArray& Json::as_array() const {
  LTS_REQUIRE(type_ == Type::kArray, "Json: not an array");
  return *arr_;
}

JsonArray& Json::as_array() {
  LTS_REQUIRE(type_ == Type::kArray, "Json: not an array");
  if (arr_.use_count() > 1) arr_ = std::make_shared<JsonArray>(*arr_);
  return *arr_;
}

const JsonObject& Json::as_object() const {
  LTS_REQUIRE(type_ == Type::kObject, "Json: not an object");
  return *obj_;
}

JsonObject& Json::as_object() {
  LTS_REQUIRE(type_ == Type::kObject, "Json: not an object");
  if (obj_.use_count() > 1) obj_ = std::make_shared<JsonObject>(*obj_);
  return *obj_;
}

const Json& Json::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  LTS_REQUIRE(it != obj.end(), "Json: missing key '" + key + "'");
  return it->second;
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) {
    type_ = Type::kObject;
    obj_ = std::make_shared<JsonObject>();
  }
  return as_object()[key];
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

const Json& Json::at(std::size_t i) const {
  const auto& arr = as_array();
  LTS_REQUIRE(i < arr.size(), "Json: array index out of range");
  return arr[i];
}

void Json::push_back(Json v) {
  if (type_ == Type::kNull) {
    type_ = Type::kArray;
    arr_ = std::make_shared<JsonArray>();
  }
  as_array().push_back(std::move(v));
}

std::size_t Json::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  return 0;
}

void Json::dump_impl(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: dump_number(out, num_); break;
    case Type::kString: dump_string(out, str_); break;
    case Type::kArray: {
      const auto& arr = *arr_;
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i > 0) out += ',';
        indent_to(out, indent, depth + 1);
        arr[i].dump_impl(out, indent, depth + 1);
      }
      indent_to(out, indent, depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      const auto& obj = *obj_;
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : obj) {
        if (!first) out += ',';
        first = false;
        indent_to(out, indent, depth + 1);
        dump_string(out, key);
        out += ':';
        if (indent > 0) out += ' ';
        value.dump_impl(out, indent, depth + 1);
      }
      indent_to(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

Json Json::from_doubles(const std::vector<double>& xs) {
  JsonArray arr;
  arr.reserve(xs.size());
  for (double x : xs) arr.emplace_back(x);
  return Json(std::move(arr));
}

std::vector<double> Json::to_doubles() const {
  const auto& arr = as_array();
  std::vector<double> out;
  out.reserve(arr.size());
  for (const auto& v : arr) out.push_back(v.as_double());
  return out;
}

}  // namespace lts
