// Fixed-size worker pool with a parallel-for helper.
//
// Used by the ML module to train random-forest trees concurrently (each tree
// is independent given its own Rng stream, so results stay deterministic
// regardless of worker count or interleaving). On single-core hosts the pool
// degrades gracefully to sequential execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lts {

class ThreadPool {
 public:
  /// `num_threads == 0` selects hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when it finishes.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n), blocking until all complete. Exceptions
  /// from tasks are rethrown (first one wins). Safe to call from inside a
  /// task running on this same pool: nested calls execute inline on the
  /// calling worker instead of deadlocking on helpers that could never be
  /// scheduled.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool for library internals.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace lts
