// ASCII table rendering for bench output — the table/figure benches print
// rows in the same layout as the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace lts {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats each double with `%.*f`.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 3);

  /// Renders with column padding, a header separator, and an optional title.
  std::string render(const std::string& title = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lts
