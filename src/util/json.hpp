// Minimal JSON value type with parser and serializer.
//
// Used for model serialization (lts::ml::save_model/load_model) and for the
// rendered Kubernetes manifests' structured metadata. Supports the JSON
// subset LTS emits: objects, arrays, strings, doubles, bools, null. Numbers
// round-trip through double, which is sufficient for model parameters.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace lts {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

/// A JSON value. Value-semantic; nested containers are heap-allocated.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), num_(d) {}
  Json(int i) : type_(Type::kNumber), num_(i) {}
  Json(std::size_t i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(JsonArray a)
      : type_(Type::kArray), arr_(std::make_shared<JsonArray>(std::move(a))) {}
  Json(JsonObject o)
      : type_(Type::kObject),
        obj_(std::make_shared<JsonObject>(std::move(o))) {}

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  bool as_bool() const;
  double as_double() const;
  int as_int() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  JsonArray& as_array();
  const JsonObject& as_object() const;
  JsonObject& as_object();

  /// Object access; throws if not an object / key missing (const form).
  const Json& at(const std::string& key) const;
  Json& operator[](const std::string& key);
  bool contains(const std::string& key) const;

  /// Array element access with bounds check.
  const Json& at(std::size_t i) const;
  void push_back(Json v);
  std::size_t size() const;

  /// Serializes compactly; `indent` > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  /// Parses a complete JSON document; throws lts::Error on malformed input.
  static Json parse(const std::string& text);

  /// Convenience: vector<double> <-> JSON array.
  static Json from_doubles(const std::vector<double>& xs);
  std::vector<double> to_doubles() const;

 private:
  void dump_impl(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::shared_ptr<JsonArray> arr_;
  std::shared_ptr<JsonObject> obj_;
};

}  // namespace lts
