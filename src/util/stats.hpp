// Descriptive statistics helpers used by telemetry, feature construction and
// the ML metrics module.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lts {

/// Streaming mean/variance accumulator (Welford). Numerically stable for the
/// long telemetry streams the exporters produce.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponential moving average with a configurable time constant; mirrors how
/// node-exporter style load averages decay.
class Ema {
 public:
  /// `tau` is the decay time constant in the same unit as the update
  /// timestamps (seconds of simulated time for LTS exporters).
  explicit Ema(double tau) : tau_(tau) {}

  /// Folds in observation `x` taken at time `t`. Observations must arrive
  /// in nondecreasing time order; a late one (t earlier than the last
  /// update, which a delayed telemetry pipeline can legally deliver) is
  /// dropped, returning false, rather than corrupting the decayed state.
  bool update(double t, double x);
  double value() const { return value_; }
  bool empty() const { return !initialized_; }

 private:
  double tau_;
  double value_ = 0.0;
  double last_t_ = 0.0;
  bool initialized_ = false;
};

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // population variance
double stddev(std::span<const double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);
double sum(std::span<const double> xs);

/// Linear-interpolated percentile, q in [0, 100]. Copies + sorts; intended
/// for reporting paths, not hot loops.
double percentile(std::span<const double> xs, double q);

/// Pearson correlation; 0 if either side is constant.
double pearson(std::span<const double> a, std::span<const double> b);

/// Spearman rank correlation (average ranks for ties).
double spearman(std::span<const double> a, std::span<const double> b);

/// Ranks with ties averaged, 1-based (rank 1 = smallest).
std::vector<double> ranks_average_ties(std::span<const double> xs);

}  // namespace lts
