#include "util/string_util.hpp"

#include <cstdarg>
#include <cstdio>

#include "util/common.hpp"

namespace lts {

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  LTS_ASSERT(needed >= 0);
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string human_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return strformat("%.1f %s", bytes, kUnits[unit]);
}

std::string human_duration(double seconds) {
  if (seconds < 60.0) return strformat("%.2fs", seconds);
  const int minutes = static_cast<int>(seconds / 60.0);
  const double rem = seconds - 60.0 * minutes;
  if (minutes < 60) return strformat("%dm %.1fs", minutes, rem);
  const int hours = minutes / 60;
  return strformat("%dh %dm %.0fs", hours, minutes % 60, rem);
}

}  // namespace lts
