// Minimal leveled logger. LTS is a library: logging defaults to WARN so that
// tests and benches stay quiet, and experiment binaries can raise verbosity.
#pragma once

#include <sstream>
#include <string>

namespace lts {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-global log threshold. Not synchronized: set it once at startup.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

/// Stream-style log statement: LTS_LOG(kInfo) << "trained " << n << " trees";
#define LTS_LOG(level_name)                                              \
  for (bool lts_log_once =                                               \
           (::lts::LogLevel::level_name >= ::lts::log_level());          \
       lts_log_once; lts_log_once = false)                               \
  ::lts::detail::LogLine(::lts::LogLevel::level_name)

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace lts
