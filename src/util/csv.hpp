// CSV reading/writing for training logs and experiment outputs.
//
// The training log produced by lts::core::TrainingLogger and consumed by
// lts::core::Trainer is a plain CSV with a header row — the same "existing
// logs and off-policy data" workflow the paper motivates for supervised
// training (§2.3).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lts {

/// In-memory CSV table: a header and rows of string cells.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

  /// Column index for `name`; throws lts::Error if absent.
  std::size_t col(const std::string& name) const;
  bool has_col(const std::string& name) const;

  void add_row(std::vector<std::string> row);
  const std::vector<std::string>& row(std::size_t i) const;

  const std::string& cell(std::size_t row, const std::string& col_name) const;
  double cell_double(std::size_t row, const std::string& col_name) const;

  /// Entire column parsed as double.
  std::vector<double> column_double(const std::string& col_name) const;

  /// Serializes with RFC-4180 quoting where needed.
  void write(std::ostream& os) const;
  void write_file(const std::string& path) const;

  /// Parses from a stream; first row is the header.
  static CsvTable read(std::istream& is);
  static CsvTable read_file(const std::string& path);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quotes a single CSV field if it contains a comma, quote or newline.
std::string csv_escape(const std::string& field);

/// Splits one CSV line honoring quotes.
std::vector<std::string> csv_parse_line(const std::string& line);

}  // namespace lts
