#include "util/table.hpp"

#include <algorithm>

#include "util/common.hpp"
#include "util/string_util.hpp"

namespace lts {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::add_row(std::vector<std::string> row) {
  LTS_REQUIRE(row.size() == header_.size(),
              "AsciiTable: row width mismatch");
  rows_.push_back(std::move(row));
}

void AsciiTable::add_row_numeric(const std::string& label,
                                 const std::vector<double>& values,
                                 int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(strformat("%.*f", precision, v));
  add_row(std::move(row));
}

std::string AsciiTable::render(const std::string& title) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    return line;
  };
  std::string sep = "+";
  for (const auto w : widths) {
    sep.append(w + 2, '-');
    sep += '+';
  }
  std::string out;
  if (!title.empty()) {
    out += title;
    out += '\n';
  }
  out += sep;
  out += '\n';
  out += render_row(header_);
  out += '\n';
  out += sep;
  out += '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
    out += '\n';
  }
  out += sep;
  out += '\n';
  return out;
}

}  // namespace lts
