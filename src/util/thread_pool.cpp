#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace lts {

namespace {
/// The pool whose worker_loop is running on this thread, if any. Lets
/// parallel_for detect re-entrant (nested) use: an outer task that blocked
/// in parallel_for while holding a worker would deadlock waiting for inner
/// helper tasks that can never be scheduled.
thread_local const ThreadPool* t_current_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Nested use from one of our own workers runs inline: submitting helpers
  // and blocking would hold this worker while the outer parallel_for's
  // sibling tasks occupy the rest, leaving no thread free to ever run the
  // helpers — a deadlock once the outer loop fans out wider than the pool.
  if (size() <= 1 || n == 1 || t_current_pool == this) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) break;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::future<void>> futures;
  const std::size_t helpers = std::min(size(), n) - 1;
  futures.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) futures.push_back(submit(drain));
  drain();  // The calling thread participates too.
  for (auto& f : futures) f.wait();
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace lts
