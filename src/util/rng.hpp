// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic decision in the simulator draws from an lts::Rng seeded
// explicitly by the experiment harness. Determinism is what makes the
// counterfactual evaluation in exp/evaluate exact: re-running a scenario with
// a different driver node replays the identical background-load schedule.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace lts {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
/// Satisfies UniformRandomBitGenerator so it plugs into <random> if needed,
/// but the member helpers below cover everything LTS uses.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the stream via SplitMix64 so that nearby seeds give uncorrelated
  /// streams (raw xoshiro seeding from small integers is weak).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent child stream; used to give each simulator
  /// component its own stream so adding draws in one component does not
  /// perturb another (critical for counterfactual replay).
  Rng split() { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    LTS_ASSERT(lo <= hi);
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    // Lemire's multiply-shift rejection method for unbiased bounded draws.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto l = static_cast<std::uint64_t>(m);
    if (l < range) {
      const std::uint64_t threshold = (-range) % range;
      while (l < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * range;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return u * factor;
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Lognormal with the *median* at `median` and shape sigma. Used for task
  /// runtime jitter: multiplicative, positively skewed, median-preserving.
  double lognormal_median(double median, double sigma) {
    return median * std::exp(sigma * normal());
  }

  double exponential(double mean) {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Zipf-distributed integer in [0, n). Used for skewed Join partitions.
  /// Simple inverse-CDF over precomputed weights is avoided to keep this
  /// allocation-free: rejection sampling per Devroye.
  std::int64_t zipf(std::int64_t n, double exponent) {
    LTS_ASSERT(n >= 1);
    // Rejection method; fine for the moderate n (<= few thousand) LTS uses.
    const double b = std::pow(2.0, exponent - 1.0);
    for (;;) {
      const double u = uniform();
      const double v = uniform();
      const auto x = static_cast<std::int64_t>(
          std::floor(std::pow(static_cast<double>(n), 1.0 - u)));
      if (x < 1 || x > n) continue;
      const double t = std::pow(1.0 + 1.0 / static_cast<double>(x), exponent - 1.0);
      if (v * static_cast<double>(x) * (t - 1.0) / (b - 1.0) <= t / b) {
        return x - 1;
      }
    }
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k) {
    std::vector<std::size_t> pool;
    sample_without_replacement(n, k, pool);
    return pool;
  }

  /// Allocation-reusing overload: fills `out` with the sample. Draws the
  /// identical sequence as the returning overload (same generator calls,
  /// same swaps), so callers can switch without perturbing seeded results.
  void sample_without_replacement(std::size_t n, std::size_t k,
                                  std::vector<std::size_t>& out) {
    LTS_ASSERT(k <= n);
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(static_cast<std::int64_t>(i),
                      static_cast<std::int64_t>(n) - 1));
      using std::swap;
      swap(out[i], out[j]);
    }
    out.resize(k);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace lts
