#include "util/csv.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/common.hpp"
#include "util/string_util.hpp"

namespace lts {

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

std::size_t CsvTable::col(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  throw Error("CsvTable: no column named '" + name + "'");
}

bool CsvTable::has_col(const std::string& name) const {
  for (const auto& h : header_) {
    if (h == name) return true;
  }
  return false;
}

void CsvTable::add_row(std::vector<std::string> row) {
  LTS_REQUIRE(row.size() == header_.size(),
              "CsvTable::add_row: wrong number of cells");
  rows_.push_back(std::move(row));
}

const std::vector<std::string>& CsvTable::row(std::size_t i) const {
  LTS_REQUIRE(i < rows_.size(), "CsvTable::row: index out of range");
  return rows_[i];
}

const std::string& CsvTable::cell(std::size_t row_idx,
                                  const std::string& col_name) const {
  return row(row_idx)[col(col_name)];
}

double CsvTable::cell_double(std::size_t row_idx,
                             const std::string& col_name) const {
  const std::string& s = cell(row_idx, col_name);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  LTS_REQUIRE(end != s.c_str(), "CsvTable: cell not numeric: '" + s + "'");
  return v;
}

std::vector<double> CsvTable::column_double(const std::string& col_name) const {
  std::vector<double> out;
  out.reserve(rows_.size());
  const std::size_t c = col(col_name);
  for (const auto& r : rows_) {
    char* end = nullptr;
    const double v = std::strtod(r[c].c_str(), &end);
    LTS_REQUIRE(end != r[c].c_str(),
                "CsvTable: cell not numeric: '" + r[c] + "'");
    out.push_back(v);
  }
  return out;
}

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> csv_parse_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

void CsvTable::write(std::ostream& os) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) os << ',';
    os << csv_escape(header_[i]);
  }
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i > 0) os << ',';
      os << csv_escape(r[i]);
    }
    os << '\n';
  }
}

void CsvTable::write_file(const std::string& path) const {
  std::ofstream f(path);
  LTS_REQUIRE(f.good(), "CsvTable: cannot open for write: " + path);
  write(f);
}

CsvTable CsvTable::read(std::istream& is) {
  std::string line;
  CsvTable table;
  bool have_header = false;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() && !have_header) continue;
    if (line.empty()) continue;
    auto fields = csv_parse_line(line);
    if (!have_header) {
      table.header_ = std::move(fields);
      have_header = true;
    } else {
      table.add_row(std::move(fields));
    }
  }
  return table;
}

CsvTable CsvTable::read_file(const std::string& path) {
  std::ifstream f(path);
  LTS_REQUIRE(f.good(), "CsvTable: cannot open for read: " + path);
  return read(f);
}

}  // namespace lts
