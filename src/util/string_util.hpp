// Small string helpers (formatting, splitting) used across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lts {

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

std::vector<std::string> split(std::string_view s, char delim);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);

/// Joins elements with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Renders a byte count human-readably ("12.5 MB").
std::string human_bytes(double bytes);

/// Renders a duration in seconds human-readably ("1m 23.4s").
std::string human_duration(double seconds);

}  // namespace lts
