#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/common.hpp"

namespace lts {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

bool Ema::update(double t, double x) {
  if (!initialized_) {
    value_ = x;
    last_t_ = t;
    initialized_ = true;
    return true;
  }
  if (t < last_t_) return false;  // late observation, dropped
  const double dt = t - last_t_;
  const double alpha = 1.0 - std::exp(-dt / tau_);
  value_ += alpha * (x - value_);
  last_t_ = t;
  return true;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double sum(std::span<const double> xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

double percentile(std::span<const double> xs, double q) {
  LTS_REQUIRE(!xs.empty(), "percentile of empty span");
  LTS_REQUIRE(q >= 0.0 && q <= 100.0, "percentile q out of [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  LTS_REQUIRE(a.size() == b.size(), "pearson: size mismatch");
  if (a.size() < 2) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double xa = a[i] - ma;
    const double xb = b[i] - mb;
    num += xa * xb;
    da += xa * xa;
    db += xb * xb;
  }
  if (da == 0.0 || db == 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

std::vector<double> ranks_average_ties(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return xs[i] < xs[j]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average 1-based rank over the tie group [i, j].
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double spearman(std::span<const double> a, std::span<const double> b) {
  LTS_REQUIRE(a.size() == b.size(), "spearman: size mismatch");
  if (a.size() < 2) return 0.0;
  const auto ra = ranks_average_ties(a);
  const auto rb = ranks_average_ties(b);
  return pearson(ra, rb);
}

}  // namespace lts
