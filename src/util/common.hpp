// Common small utilities shared by every LTS module.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace lts {

/// Simulation time in seconds. All simulator components use this unit.
using SimTime = double;

/// Bytes, kept as double because the flow model is fluid (fractional
/// remaining bytes are meaningful mid-transfer).
using Bytes = double;

/// Bandwidth in bytes per second.
using Rate = double;

/// Thrown by LTS components on contract violations that are recoverable by
/// the caller (bad configuration, malformed input, unknown names).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "LTS_ASSERT failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace detail

/// Internal invariant check. Unlike `assert`, stays on in release builds:
/// simulator correctness bugs must not silently corrupt experiment results.
#define LTS_ASSERT(expr)                                        \
  do {                                                          \
    if (!(expr)) {                                              \
      ::lts::detail::assert_fail(#expr, __FILE__, __LINE__);    \
    }                                                           \
  } while (0)

/// Validates caller-supplied input; throws lts::Error with `msg` on failure.
#define LTS_REQUIRE(expr, msg)          \
  do {                                  \
    if (!(expr)) {                      \
      throw ::lts::Error(msg);          \
    }                                   \
  } while (0)

}  // namespace lts
