#include "net/topology.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace lts::net {

VertexId Topology::add_host(const std::string& name) {
  return add_vertex(name, true);
}

VertexId Topology::add_router(const std::string& name) {
  return add_vertex(name, false);
}

VertexId Topology::add_vertex(const std::string& name, bool is_host) {
  LTS_REQUIRE(find_vertex(name) == kNoVertex,
              "Topology: duplicate vertex name: " + name);
  Vertex v;
  v.id = static_cast<VertexId>(vertices_.size());
  v.name = name;
  v.is_host = is_host;
  vertices_.push_back(std::move(v));
  invalidate_routes();
  return vertices_.back().id;
}

LinkId Topology::add_link(VertexId u, VertexId v, Rate capacity_bps,
                          SimTime prop_delay) {
  LTS_REQUIRE(u >= 0 && static_cast<std::size_t>(u) < vertices_.size(),
              "Topology: bad source vertex");
  LTS_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < vertices_.size(),
              "Topology: bad target vertex");
  LTS_REQUIRE(capacity_bps > 0.0, "Topology: non-positive capacity");
  LTS_REQUIRE(prop_delay >= 0.0, "Topology: negative delay");
  Link l;
  l.id = static_cast<LinkId>(links_.size());
  l.from = u;
  l.to = v;
  l.capacity = capacity_bps;
  l.prop_delay = prop_delay;
  links_.push_back(l);
  vertices_[static_cast<std::size_t>(u)].out_links.push_back(l.id);
  invalidate_routes();
  return l.id;
}

LinkId Topology::add_duplex_link(VertexId u, VertexId v, Rate capacity_bps,
                                 SimTime prop_delay) {
  const LinkId forward = add_link(u, v, capacity_bps, prop_delay);
  add_link(v, u, capacity_bps, prop_delay);
  return forward;
}

void Topology::set_link_capacity(LinkId l, Rate capacity_bps) {
  LTS_REQUIRE(l >= 0 && static_cast<std::size_t>(l) < links_.size(),
              "Topology: bad link id");
  LTS_REQUIRE(capacity_bps > 0.0, "Topology: non-positive capacity");
  links_[static_cast<std::size_t>(l)].capacity = capacity_bps;
}

void Topology::set_link_prop_delay(LinkId l, SimTime prop_delay) {
  LTS_REQUIRE(l >= 0 && static_cast<std::size_t>(l) < links_.size(),
              "Topology: bad link id");
  LTS_REQUIRE(prop_delay >= 0.0, "Topology: negative delay");
  links_[static_cast<std::size_t>(l)].prop_delay = prop_delay;
}

const Vertex& Topology::vertex(VertexId v) const {
  LTS_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < vertices_.size(),
              "Topology: bad vertex id");
  return vertices_[static_cast<std::size_t>(v)];
}

const Link& Topology::link(LinkId l) const {
  LTS_REQUIRE(l >= 0 && static_cast<std::size_t>(l) < links_.size(),
              "Topology: bad link id");
  return links_[static_cast<std::size_t>(l)];
}

VertexId Topology::find_vertex(const std::string& name) const {
  for (const auto& v : vertices_) {
    if (v.name == name) return v.id;
  }
  return kNoVertex;
}

void Topology::invalidate_routes() {
  routes_.assign(vertices_.size(), {});
  routes_ready_.assign(vertices_.size(), false);
}

void Topology::compute_routes_from(VertexId src) const {
  const std::size_t n = vertices_.size();
  std::vector<SimTime> dist(n, std::numeric_limits<SimTime>::infinity());
  std::vector<LinkId> via(n, -1);  // link used to reach each vertex
  using Entry = std::pair<SimTime, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  dist[static_cast<std::size_t>(src)] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (const LinkId lid : vertices_[static_cast<std::size_t>(u)].out_links) {
      const Link& l = links_[static_cast<std::size_t>(lid)];
      const SimTime nd = d + l.prop_delay;
      if (nd < dist[static_cast<std::size_t>(l.to)]) {
        dist[static_cast<std::size_t>(l.to)] = nd;
        via[static_cast<std::size_t>(l.to)] = lid;
        pq.emplace(nd, l.to);
      }
    }
  }
  auto& table = routes_[static_cast<std::size_t>(src)];
  table.assign(n, {});
  for (std::size_t dst = 0; dst < n; ++dst) {
    if (static_cast<VertexId>(dst) == src) continue;
    if (via[dst] < 0) continue;  // unreachable; route() reports it
    std::vector<LinkId> path;
    VertexId cur = static_cast<VertexId>(dst);
    while (cur != src) {
      const LinkId lid = via[static_cast<std::size_t>(cur)];
      path.push_back(lid);
      cur = links_[static_cast<std::size_t>(lid)].from;
    }
    std::reverse(path.begin(), path.end());
    table[dst] = std::move(path);
  }
  routes_ready_[static_cast<std::size_t>(src)] = true;
}

const std::vector<LinkId>& Topology::route(VertexId src, VertexId dst) const {
  LTS_REQUIRE(src >= 0 && static_cast<std::size_t>(src) < vertices_.size(),
              "Topology: bad route source");
  LTS_REQUIRE(dst >= 0 && static_cast<std::size_t>(dst) < vertices_.size(),
              "Topology: bad route target");
  LTS_REQUIRE(src != dst, "Topology: route to self");
  if (!routes_ready_[static_cast<std::size_t>(src)]) {
    compute_routes_from(src);
  }
  const auto& path = routes_[static_cast<std::size_t>(src)][
      static_cast<std::size_t>(dst)];
  LTS_REQUIRE(!path.empty(), "Topology: no route " + vertex(src).name +
                                 " -> " + vertex(dst).name);
  return path;
}

SimTime Topology::path_prop_delay(VertexId src, VertexId dst) const {
  SimTime total = 0.0;
  for (const LinkId lid : route(src, dst)) {
    total += link(lid).prop_delay;
  }
  return total;
}

void Topology::set_vertex_site(VertexId v, int site) {
  LTS_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < vertices_.size(),
              "Topology: bad vertex id");
  LTS_REQUIRE(site >= 0, "Topology: site index must be >= 0");
  if (vertex_site_.size() < vertices_.size()) {
    vertex_site_.resize(vertices_.size(), -1);
  }
  vertex_site_[static_cast<std::size_t>(v)] = site;
  num_sites_ = std::max(num_sites_, site + 1);
}

int Topology::vertex_site(VertexId v) const {
  LTS_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < vertices_.size(),
              "Topology: bad vertex id");
  if (static_cast<std::size_t>(v) >= vertex_site_.size()) return -1;
  return vertex_site_[static_cast<std::size_t>(v)];
}

int Topology::link_site(LinkId l) const {
  const Link& lk = link(l);
  const int s = vertex_site(lk.from);
  if (s < 0 || vertex_site(lk.to) != s) return -1;
  return s;
}

std::vector<VertexId> Topology::hosts() const {
  std::vector<VertexId> out;
  for (const auto& v : vertices_) {
    if (v.is_host) out.push_back(v.id);
  }
  return out;
}

}  // namespace lts::net
