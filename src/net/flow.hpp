// Fluid flow model with max-min fair bandwidth allocation.
//
// Rather than simulating packets, each transfer is a fluid "flow" with a
// current rate. Rates are recomputed whenever the set of active flows
// changes, using progressive filling (the classic max-min fair algorithm)
// extended with a per-flow cap of tcp_window / base_RTT — the bandwidth-delay
// product limit that makes long-RTT WAN paths slower per flow. This is the
// physical mechanism behind the paper's observation that network telemetry
// (RTT, tx/rx rates) predicts job completion time.
//
// Recomputation is deferred and batched: start()/cancel()/invalidate_rates()
// only mark the allocation stale and arm a same-timestamp engine hook, so a
// storm of same-instant mutations (a Spark stage opening M×N shuffle flows)
// pays one progressive fill instead of one per call. This is observationally
// identical to eager recomputation because no simulated time elapses between
// the mutations and the hook: byte accounting over a zero-length interval is
// unaffected by which intermediate rates were in force, and every accessor
// that exposes rates flushes the pending recompute first.
//
// The manager also maintains cumulative per-host transmit/receive byte
// counters (what node-exporter exposes as NIC counters) and an instantaneous
// utilization-dependent queueing-delay estimate per link (what inflates the
// ping mesh RTTs under load).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "net/topology.hpp"
#include "simcore/engine.hpp"
#include "util/common.hpp"

namespace lts::net {

using FlowId = std::uint64_t;
inline constexpr FlowId kInvalidFlow = 0;

/// Which progressive-filling strategy recompute_rates uses.
///
/// kFlat runs one global fill over every active flow — exact max-min
/// fairness, cost proportional to (global rounds × unfrozen flows).
///
/// kHierarchical exploits the site partition of the topology
/// (Topology::set_vertex_site): a flow whose endpoints share a site and
/// whose path never leaves that site's links is site-local. Sites touched
/// by any cross-site flow are *coupled* — their flows compete with WAN
/// traffic for access links — and are solved together with the cross-site
/// flows by the same exact fill the flat mode runs, merged in FlowId order.
/// The remaining sites are independent subproblems over disjoint link sets:
/// they are solved per site (thread-pool parallel; every write is to
/// site-owned state, so the result is deterministic regardless of worker
/// interleaving and identical to running the sites sequentially). When
/// every flow lands in the coupled set — e.g. the paper topology, where
/// shuffles span sites — the hierarchical path degenerates to the flat
/// fill and is bit-identical to it.
enum class SolverMode { kFlat, kHierarchical };

struct FlowOptions {
  /// TCP congestion-window proxy: a single flow's rate never exceeds
  /// tcp_window_bytes / base_rtt(src, dst).
  Bytes tcp_window_bytes = 16.0 * 1024 * 1024;
  /// Fixed per-host protocol stack latency added to each measured RTT
  /// (kernel, virtualization). One-way, seconds.
  SimTime host_stack_delay = 50e-6;
  /// Maximum queueing delay a fully utilized link adds (one-way). The
  /// queueing curve is max_queue_delay * utilization^4: negligible when
  /// idle, steep near saturation.
  SimTime max_queue_delay = 0.030;
  /// Solver strategy; kHierarchical needs the topology's vertices tagged
  /// with sites (it silently behaves like kFlat on an untagged topology).
  SolverMode solver = SolverMode::kFlat;
};

/// Snapshot of one flow's progress.
struct FlowInfo {
  VertexId src = kNoVertex;
  VertexId dst = kNoVertex;
  Bytes total = 0.0;
  Bytes transferred = 0.0;
  Rate rate = 0.0;
};

class FlowManager {
 public:
  FlowManager(sim::Engine& engine, const Topology& topo,
              FlowOptions options = {});

  FlowManager(const FlowManager&) = delete;
  FlowManager& operator=(const FlowManager&) = delete;

  /// Starts a transfer of `size` bytes from src to dst. `on_complete` fires
  /// (via the engine, at the completion instant) once the last byte is
  /// delivered. Returns a handle usable with cancel()/info(). The rate
  /// recompute is deferred to a same-timestamp hook (or the first rate
  /// observation, whichever comes first), so batches of starts at one
  /// event time share a single progressive fill.
  FlowId start(VertexId src, VertexId dst, Bytes size,
               std::function<void()> on_complete);

  /// Aborts a flow; its callback never fires. No-op if already finished.
  /// Deferred-batched like start().
  void cancel(FlowId id);

  /// Marks the max-min allocation stale against the topology's *current*
  /// link capacities; the next same-timestamp hook (or rate observation)
  /// re-runs the solver and reschedules the pending completion. Must be
  /// called after mutating link attributes (Topology::set_link_capacity /
  /// set_link_prop_delay), which the fault injector does mid-run — several
  /// same-instant calls (e.g. a site partition cutting many links) coalesce
  /// into one recompute. Byte accounting up to now uses the old rates, as
  /// physics requires.
  void invalidate_rates();

  bool active(FlowId id) const { return find_slot(id) != kNoSlot; }
  FlowInfo info(FlowId id) const;
  std::size_t num_active() const { return by_id_.size(); }
  std::uint64_t num_completed() const { return completed_; }

  /// Instantaneous allocated-rate / capacity for a link, in [0, 1].
  double link_utilization(LinkId link) const;

  /// Current one-way queueing delay estimate for a link.
  SimTime link_queue_delay(LinkId link) const;

  /// Measures RTT between two hosts right now: propagation + current
  /// queueing on the forward and reverse routes + stack latency at both
  /// ends. This is what the ping-mesh exporter samples (plus noise).
  SimTime current_rtt(VertexId a, VertexId b) const;

  /// Base (uncongested) RTT between two hosts.
  SimTime base_rtt(VertexId a, VertexId b) const;

  /// Cumulative bytes transmitted / received by a host since construction
  /// (or since its last counter reset). Accurate as of the current engine
  /// time. O(flows terminating at the host) via the per-host flow index.
  Bytes host_tx_bytes(VertexId host) const;
  Bytes host_rx_bytes(VertexId host) const;

  /// Zeroes a host's cumulative NIC counters, as a reboot does to
  /// /proc/net/dev. The fault injector calls this when a crashed node
  /// recovers; consumers of the exported counter series must handle the
  /// resulting reset (Tsdb::rate does).
  void reset_host_counters(VertexId host);

  /// Sum of current send rates of flows originating at / arriving at host.
  /// O(flows on that host), not O(all flows).
  Rate host_tx_rate(VertexId host) const;
  Rate host_rx_rate(VertexId host) const;

  /// Number of active flows terminating at this host (either direction) —
  /// the passive flow-level statistic of the paper's §8 telemetry wishlist.
  /// O(1) from the per-host index counters.
  std::size_t host_active_flows(VertexId host) const;

  /// How the last fill partitioned the flows (all-coupled under kFlat).
  /// Exposed so tests can assert the hierarchical solver actually
  /// decomposed (or refused to decompose) a given workload.
  struct SolverStats {
    std::size_t coupled_flows = 0;     // solved by the global exact fill
    std::size_t site_local_flows = 0;  // solved by per-site sub-fills
    std::size_t sites_solved = 0;      // independent site subproblems
  };
  SolverStats solver_stats() const {
    ensure_fresh();
    return stats_;
  }

  const Topology& topology() const { return topo_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct Flow {
    FlowId id = kInvalidFlow;
    VertexId src = kNoVertex;
    VertexId dst = kNoVertex;
    Bytes total = 0.0;
    Bytes remaining = 0.0;
    Rate rate = 0.0;
    Rate cap = 0.0;  // tcp window / base rtt
    // Site owning every link of the flow's path (and both endpoints), or
    // -1 for cross-site flows. Classified once at start().
    std::int32_t site = -1;
    // Path span into path_arena_ (one contiguous block per flow).
    std::uint32_t path_begin = 0;
    std::uint32_t path_len = 0;
    // Intrusive per-host list links (slot indices): the tx list of src and
    // the rx list of dst. Tail insertion keeps both lists in FlowId order,
    // so per-host floating-point sums add in the same order as a full scan
    // in id order would.
    std::uint32_t tx_prev = kNoSlot;
    std::uint32_t tx_next = kNoSlot;
    std::uint32_t rx_prev = kNoSlot;
    std::uint32_t rx_next = kNoSlot;
    std::function<void()> on_complete;
  };

  /// Predicted time-to-completion at current rates, keyed for the min-heap
  /// that replaces the O(flows) min-scan when (re)scheduling the completion
  /// event. Rebuilt by every recompute, so entries never go stale.
  struct HeapEntry {
    SimTime eta = 0.0;  // remaining / rate, relative to the last recompute
    std::uint32_t slot = kNoSlot;
  };

  /// Applies elapsed time to all flows (byte accounting) up to engine.now().
  /// Always safe while dirty: a stale allocation implies the last mutation
  /// happened at the current instant, so the elapsed interval is zero.
  void advance();

  /// Marks the allocation stale and arms the same-timestamp flush hook.
  /// Idempotent; the hook runs after every already-queued event at this
  /// instant, which is what batches same-time mutation storms.
  void mark_dirty();

  /// Runs the deferred recompute now (byte accounting first, at the old
  /// rates) and reschedules the completion event. No-op when clean.
  void flush();

  /// Accessors that expose rates call this so deferred state is never
  /// observable. Logically const: flushing only materializes the allocation
  /// the eager solver would already have computed.
  void ensure_fresh() const { const_cast<FlowManager*>(this)->flush(); }

  /// Progressive-filling max-min fair allocation with per-flow caps.
  /// Dispatches to the core solver, adding instrumentation when the
  /// observability registry is enabled.
  void recompute_rates();

  /// The solver proper; returns the number of filling rounds it ran.
  std::size_t recompute_rates_core();

  /// One progressive fill over `flows` (slot indices, ascending FlowId).
  /// `fill_epoch` stamps this fill's residual/alloc state; `epoch_cursor`
  /// supplies per-round stamps (pre-incremented each round, starting from
  /// fill_epoch). The flat path passes by_id_/epoch_ and is arithmetically
  /// identical to the pre-hierarchical solver; per-site sub-fills pass
  /// their own cursor and scratch so they can run concurrently over
  /// disjoint link sets. Returns the number of rounds.
  std::size_t fill_flows(const std::vector<std::uint32_t>& flows,
                         std::uint64_t fill_epoch,
                         std::uint64_t& epoch_cursor,
                         std::vector<LinkId>& touched,
                         std::vector<std::uint32_t>& unfrozen);

  /// Partitions the active flows into the coupled set (cross-site flows
  /// plus all flows of sites they touch) and independent per-site lists,
  /// fills the coupled set with the exact global machinery, then fills the
  /// independent sites in parallel. Returns total rounds across sub-fills.
  std::size_t hierarchical_fill(std::uint64_t fill_epoch);

  /// Site index if src, dst, and every path link belong to one site.
  std::int32_t classify_site(VertexId src, VertexId dst, const LinkId* path,
                             std::uint32_t path_len) const;

  /// (Re)schedules the single pending completion event from the heap top.
  void schedule_next_completion();

  void handle_completion_event();

  /// Slot index for a live flow id, or kNoSlot. Binary search over the
  /// id-ordered index.
  std::uint32_t find_slot(FlowId id) const;

  std::uint32_t acquire_slot();
  /// Unlinks a flow from both host lists and returns its slot to the free
  /// list. Does not touch by_id_ (callers compact that themselves).
  void release_slot(std::uint32_t slot);
  /// Rewrites path_arena_ without the dead spans once they dominate it.
  void maybe_compact_arena();

  /// Outlined so an unobserved recompute pays only a relaxed load and a
  /// predictable branch for its instrumentation.
  __attribute__((noinline)) void record_recompute_metrics(
      // lts-lint: nondeterminism-ok(wall-clock type names the obs-only timing argument; no simulation state depends on it)
      std::size_t rounds, std::chrono::steady_clock::time_point wall_begin);

  sim::Engine& engine_;
  const Topology& topo_;
  FlowOptions options_;
  // Cached once at construction (see simcore::Engine): skips the registry's
  // static-init guard on every recompute.
  const std::atomic<bool>* obs_enabled_;

  std::uint64_t next_id_ = 1;
  std::uint64_t completed_ = 0;

  // Flat slot-map flow storage: flows live in slots_, dead slots are
  // recycled LIFO, and by_id_ lists live slots in ascending FlowId order —
  // the deterministic iteration order every solver pass and byte-accounting
  // sweep uses (ids are handed out monotonically, so appends keep it
  // sorted without any per-insert work).
  std::vector<Flow> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint32_t> by_id_;
  // All live flows' paths, one contiguous span each.
  std::vector<LinkId> path_arena_;
  std::size_t live_path_words_ = 0;

  // Per-host intrusive flow lists (heads/tails hold slot indices).
  std::vector<std::uint32_t> tx_head_;
  std::vector<std::uint32_t> tx_tail_;
  std::vector<std::uint32_t> rx_head_;
  std::vector<std::uint32_t> rx_tail_;
  std::vector<std::uint32_t> tx_count_;
  std::vector<std::uint32_t> rx_count_;

  SimTime last_update_ = 0.0;
  sim::EventId completion_event_ = sim::kInvalidEvent;
  sim::EventId flush_event_ = sim::kInvalidEvent;
  bool dirty_ = false;

  // Epoch-stamped per-link solver state: instead of O(links) refills per
  // round, a link's residual/count/bottleneck-mark entries are valid only
  // when their stamp matches the current fill/round epoch, making per-round
  // work O(unfrozen flows × path length).
  std::uint64_t epoch_ = 0;
  std::uint64_t last_fill_epoch_ = 0;
  std::vector<Rate> link_alloc_;
  std::vector<std::uint64_t> alloc_epoch_;
  std::vector<Rate> residual_;
  std::vector<std::uint64_t> residual_epoch_;
  std::vector<int> link_count_;
  std::vector<std::uint64_t> count_epoch_;
  std::vector<std::uint64_t> bottleneck_epoch_;
  // Solver scratch, reused across recomputes to stay allocation-free on the
  // hot path.
  std::vector<LinkId> touched_links_;
  std::vector<std::uint32_t> unfrozen_;
  std::vector<HeapEntry> completion_heap_;

  // Hierarchical-mode state. link_site_/num_sites_ snapshot the topology's
  // site partition at construction (the partition is structural; capacities
  // may mutate, sites may not). Each independent site solves against its
  // own persistent scratch, so the parallel section shares no growable
  // containers across workers.
  std::vector<int> link_site_;
  int num_sites_ = 0;
  struct SiteScratch {
    std::vector<std::uint32_t> flows;
    std::vector<std::uint32_t> unfrozen;
    std::vector<LinkId> touched;
    std::uint64_t epoch_end = 0;
    std::size_t rounds = 0;
  };
  std::vector<SiteScratch> site_scratch_;
  std::vector<std::uint32_t> coupled_;
  std::vector<std::uint8_t> site_coupled_;  // per site: touched by WAN flow
  std::vector<int> active_sites_;
  SolverStats stats_;

  mutable std::vector<Bytes> host_tx_;
  mutable std::vector<Bytes> host_rx_;
};

}  // namespace lts::net
