// Fluid flow model with max-min fair bandwidth allocation.
//
// Rather than simulating packets, each transfer is a fluid "flow" with a
// current rate. Rates are recomputed whenever the set of active flows
// changes, using progressive filling (the classic max-min fair algorithm)
// extended with a per-flow cap of tcp_window / base_RTT — the bandwidth-delay
// product limit that makes long-RTT WAN paths slower per flow. This is the
// physical mechanism behind the paper's observation that network telemetry
// (RTT, tx/rx rates) predicts job completion time.
//
// The manager also maintains cumulative per-host transmit/receive byte
// counters (what node-exporter exposes as NIC counters) and an instantaneous
// utilization-dependent queueing-delay estimate per link (what inflates the
// ping mesh RTTs under load).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/topology.hpp"
#include "simcore/engine.hpp"
#include "util/common.hpp"

namespace lts::net {

using FlowId = std::uint64_t;
inline constexpr FlowId kInvalidFlow = 0;

struct FlowOptions {
  /// TCP congestion-window proxy: a single flow's rate never exceeds
  /// tcp_window_bytes / base_rtt(src, dst).
  Bytes tcp_window_bytes = 16.0 * 1024 * 1024;
  /// Fixed per-host protocol stack latency added to each measured RTT
  /// (kernel, virtualization). One-way, seconds.
  SimTime host_stack_delay = 50e-6;
  /// Maximum queueing delay a fully utilized link adds (one-way). The
  /// queueing curve is max_queue_delay * utilization^4: negligible when
  /// idle, steep near saturation.
  SimTime max_queue_delay = 0.030;
};

/// Snapshot of one flow's progress.
struct FlowInfo {
  VertexId src = kNoVertex;
  VertexId dst = kNoVertex;
  Bytes total = 0.0;
  Bytes transferred = 0.0;
  Rate rate = 0.0;
};

class FlowManager {
 public:
  FlowManager(sim::Engine& engine, const Topology& topo,
              FlowOptions options = {});

  FlowManager(const FlowManager&) = delete;
  FlowManager& operator=(const FlowManager&) = delete;

  /// Starts a transfer of `size` bytes from src to dst. `on_complete` fires
  /// (via the engine, at the completion instant) once the last byte is
  /// delivered. Returns a handle usable with cancel()/info().
  FlowId start(VertexId src, VertexId dst, Bytes size,
               std::function<void()> on_complete);

  /// Aborts a flow; its callback never fires. No-op if already finished.
  void cancel(FlowId id);

  /// Re-runs the max-min fair allocation against the topology's *current*
  /// link capacities and reschedules the pending completion. Must be called
  /// after mutating link attributes (Topology::set_link_capacity /
  /// set_link_prop_delay), which the fault injector does mid-run. Byte
  /// accounting up to now uses the old rates, as physics requires.
  void refresh();

  bool active(FlowId id) const { return flows_.count(id) > 0; }
  FlowInfo info(FlowId id) const;
  std::size_t num_active() const { return flows_.size(); }
  std::uint64_t num_completed() const { return completed_; }

  /// Instantaneous allocated-rate / capacity for a link, in [0, 1].
  double link_utilization(LinkId link) const;

  /// Current one-way queueing delay estimate for a link.
  SimTime link_queue_delay(LinkId link) const;

  /// Measures RTT between two hosts right now: propagation + current
  /// queueing on the forward and reverse routes + stack latency at both
  /// ends. This is what the ping-mesh exporter samples (plus noise).
  SimTime current_rtt(VertexId a, VertexId b) const;

  /// Base (uncongested) RTT between two hosts.
  SimTime base_rtt(VertexId a, VertexId b) const;

  /// Cumulative bytes transmitted / received by a host since construction
  /// (or since its last counter reset). Accurate as of the current engine
  /// time.
  Bytes host_tx_bytes(VertexId host) const;
  Bytes host_rx_bytes(VertexId host) const;

  /// Zeroes a host's cumulative NIC counters, as a reboot does to
  /// /proc/net/dev. The fault injector calls this when a crashed node
  /// recovers; consumers of the exported counter series must handle the
  /// resulting reset (Tsdb::rate does).
  void reset_host_counters(VertexId host);

  /// Sum of current send rates of flows originating at / arriving at host.
  Rate host_tx_rate(VertexId host) const;
  Rate host_rx_rate(VertexId host) const;

  /// Number of active flows terminating at this host (either direction) —
  /// the passive flow-level statistic of the paper's §8 telemetry wishlist.
  std::size_t host_active_flows(VertexId host) const;

  const Topology& topology() const { return topo_; }

 private:
  struct Flow {
    FlowId id = kInvalidFlow;
    VertexId src = kNoVertex;
    VertexId dst = kNoVertex;
    Bytes total = 0.0;
    Bytes remaining = 0.0;
    Rate rate = 0.0;
    Rate cap = 0.0;  // tcp window / base rtt
    std::vector<LinkId> path;
    std::function<void()> on_complete;
  };

  /// Applies elapsed time to all flows (byte accounting) up to engine.now().
  void advance();

  /// Progressive-filling max-min fair allocation with per-flow caps.
  /// Dispatches to the core solver, adding instrumentation when the
  /// observability registry is enabled.
  void recompute_rates();

  /// The solver proper; returns the number of filling rounds it ran.
  std::size_t recompute_rates_core();

  /// (Re)schedules the single pending completion event.
  void schedule_next_completion();

  void handle_completion_event();

  /// Outlined so an unobserved recompute pays only a relaxed load and a
  /// predictable branch for its instrumentation.
  __attribute__((noinline)) void record_recompute_metrics(
      // lts-lint: nondeterminism-ok(wall-clock type names the obs-only timing argument; no simulation state depends on it)
      std::size_t rounds, std::chrono::steady_clock::time_point wall_begin);

  sim::Engine& engine_;
  const Topology& topo_;
  FlowOptions options_;
  // Cached once at construction (see simcore::Engine): skips the registry's
  // static-init guard on every recompute.
  const std::atomic<bool>* obs_enabled_;

  std::uint64_t next_id_ = 1;
  std::uint64_t completed_ = 0;
  // std::map keeps iteration order deterministic across platforms.
  std::map<FlowId, Flow> flows_;
  SimTime last_update_ = 0.0;
  sim::EventId completion_event_ = sim::kInvalidEvent;

  std::vector<Rate> link_alloc_;  // per link, recomputed
  mutable std::vector<Bytes> host_tx_;
  mutable std::vector<Bytes> host_rx_;
};

}  // namespace lts::net
