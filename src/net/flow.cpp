#include "net/flow.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"

namespace lts::net {

namespace {
// Flows with fewer remaining bytes than this are considered delivered; it is
// far below one byte so no real transfer is cut short.
constexpr Bytes kRemainingEpsilon = 1e-6;

struct RecomputeMetrics {
  obs::Counter& total = obs::counter(
      "lts_net_rate_recomputes_total", {},
      "Max-min fair rate recomputations run by FlowManager");
  obs::Histogram& rounds = obs::histogram(
      "lts_net_rate_recompute_rounds", {1, 2, 4, 8, 16, 32, 64}, {},
      "Progressive-filling rounds per rate recomputation");
  obs::Histogram& duration = obs::histogram(
      "lts_net_rate_recompute_duration_seconds",
      {1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2}, {},
      "Wall-clock duration of one rate recomputation");
  static RecomputeMetrics& get() {
    static RecomputeMetrics m;
    return m;
  }
};
}  // namespace

FlowManager::FlowManager(sim::Engine& engine, const Topology& topo,
                         FlowOptions options)
    : engine_(engine),
      topo_(topo),
      options_(options),
      obs_enabled_(obs::MetricsRegistry::global().enabled_flag()) {
  link_alloc_.assign(topo_.num_links(), 0.0);
  host_tx_.assign(topo_.num_vertices(), 0.0);
  host_rx_.assign(topo_.num_vertices(), 0.0);
  last_update_ = engine_.now();
}

FlowId FlowManager::start(VertexId src, VertexId dst, Bytes size,
                          std::function<void()> on_complete) {
  LTS_REQUIRE(size > 0.0, "FlowManager: flow size must be positive");
  LTS_REQUIRE(src != dst, "FlowManager: flow to self");
  advance();
  Flow flow;
  flow.id = next_id_++;
  flow.src = src;
  flow.dst = dst;
  flow.total = size;
  flow.remaining = size;
  flow.path = topo_.route(src, dst);
  const SimTime rtt = base_rtt(src, dst);
  flow.cap = options_.tcp_window_bytes / std::max(rtt, 1e-6);
  flow.on_complete = std::move(on_complete);
  const FlowId id = flow.id;
  flows_.emplace(id, std::move(flow));
  recompute_rates();
  schedule_next_completion();
  return id;
}

void FlowManager::cancel(FlowId id) {
  advance();
  if (flows_.erase(id) > 0) {
    recompute_rates();
    schedule_next_completion();
  }
}

void FlowManager::refresh() {
  advance();
  recompute_rates();
  schedule_next_completion();
}

FlowInfo FlowManager::info(FlowId id) const {
  const auto it = flows_.find(id);
  LTS_REQUIRE(it != flows_.end(), "FlowManager: unknown flow");
  // const_cast-free lazy accounting: report based on last_update_ plus
  // extrapolation at the current rate.
  const Flow& f = it->second;
  const SimTime dt = engine_.now() - last_update_;
  const Bytes extra = std::min(f.remaining, f.rate * dt);
  return FlowInfo{f.src, f.dst, f.total, f.total - f.remaining + extra,
                  f.rate};
}

double FlowManager::link_utilization(LinkId link) const {
  LTS_REQUIRE(link >= 0 && static_cast<std::size_t>(link) < link_alloc_.size(),
              "FlowManager: bad link id");
  const Rate cap = topo_.link(link).capacity;
  return std::clamp(link_alloc_[static_cast<std::size_t>(link)] / cap, 0.0,
                    1.0);
}

SimTime FlowManager::link_queue_delay(LinkId link) const {
  const double u = link_utilization(link);
  return options_.max_queue_delay * u * u * u * u;
}

SimTime FlowManager::current_rtt(VertexId a, VertexId b) const {
  SimTime total = 2.0 * options_.host_stack_delay;
  for (const LinkId lid : topo_.route(a, b)) {
    total += topo_.link(lid).prop_delay + link_queue_delay(lid);
  }
  for (const LinkId lid : topo_.route(b, a)) {
    total += topo_.link(lid).prop_delay + link_queue_delay(lid);
  }
  return total;
}

SimTime FlowManager::base_rtt(VertexId a, VertexId b) const {
  return 2.0 * options_.host_stack_delay + topo_.path_prop_delay(a, b) +
         topo_.path_prop_delay(b, a);
}

Bytes FlowManager::host_tx_bytes(VertexId host) const {
  LTS_REQUIRE(host >= 0 && static_cast<std::size_t>(host) < host_tx_.size(),
              "FlowManager: bad host id");
  Bytes total = host_tx_[static_cast<std::size_t>(host)];
  const SimTime dt = engine_.now() - last_update_;
  for (const auto& [id, f] : flows_) {
    if (f.src == host) total += std::min(f.remaining, f.rate * dt);
  }
  return total;
}

Bytes FlowManager::host_rx_bytes(VertexId host) const {
  LTS_REQUIRE(host >= 0 && static_cast<std::size_t>(host) < host_rx_.size(),
              "FlowManager: bad host id");
  Bytes total = host_rx_[static_cast<std::size_t>(host)];
  const SimTime dt = engine_.now() - last_update_;
  for (const auto& [id, f] : flows_) {
    if (f.dst == host) total += std::min(f.remaining, f.rate * dt);
  }
  return total;
}

void FlowManager::reset_host_counters(VertexId host) {
  LTS_REQUIRE(host >= 0 && static_cast<std::size_t>(host) < host_tx_.size(),
              "FlowManager: bad host id");
  advance();
  host_tx_[static_cast<std::size_t>(host)] = 0.0;
  host_rx_[static_cast<std::size_t>(host)] = 0.0;
}

Rate FlowManager::host_tx_rate(VertexId host) const {
  Rate total = 0.0;
  for (const auto& [id, f] : flows_) {
    if (f.src == host) total += f.rate;
  }
  return total;
}

std::size_t FlowManager::host_active_flows(VertexId host) const {
  std::size_t count = 0;
  for (const auto& [id, f] : flows_) {
    if (f.src == host || f.dst == host) ++count;
  }
  return count;
}

Rate FlowManager::host_rx_rate(VertexId host) const {
  Rate total = 0.0;
  for (const auto& [id, f] : flows_) {
    if (f.dst == host) total += f.rate;
  }
  return total;
}

void FlowManager::advance() {
  const SimTime now = engine_.now();
  const SimTime dt = now - last_update_;
  if (dt <= 0.0) {
    last_update_ = now;
    return;
  }
  for (auto& [id, f] : flows_) {
    const Bytes delta = std::min(f.remaining, f.rate * dt);
    f.remaining -= delta;
    host_tx_[static_cast<std::size_t>(f.src)] += delta;
    host_rx_[static_cast<std::size_t>(f.dst)] += delta;
  }
  last_update_ = now;
}

void FlowManager::recompute_rates() {
  // Instrumentation stays out of the solver itself: holding the clock value
  // and enabled flag live across the progressive fill measurably slows the
  // unobserved path through extra register spills.
  if (!obs_enabled_->load(std::memory_order_relaxed)) {
    recompute_rates_core();
    return;
  }
  // lts-lint: nondeterminism-ok(wall time measures real solver cost for the obs duration histogram only; it never reaches flow state, rates, or telemetry series)
  const auto wall_begin = std::chrono::steady_clock::now();
  const std::size_t rounds = recompute_rates_core();
  record_recompute_metrics(rounds, wall_begin);
}

std::size_t FlowManager::recompute_rates_core() {
  std::size_t rounds = 0;
  std::fill(link_alloc_.begin(), link_alloc_.end(), 0.0);
  if (flows_.empty()) return 0;

  std::vector<Flow*> unfrozen;
  unfrozen.reserve(flows_.size());
  for (auto& [id, f] : flows_) {
    f.rate = 0.0;
    unfrozen.push_back(&f);
  }
  std::vector<Rate> residual(topo_.num_links());
  for (std::size_t i = 0; i < residual.size(); ++i) {
    residual[i] = topo_.link(static_cast<LinkId>(i)).capacity;
  }
  std::vector<int> link_count(topo_.num_links(), 0);

  auto freeze = [&](Flow* f, Rate rate) {
    // Floor guards against rounding freezing a flow at exactly zero, which
    // would make its completion time unschedulable. 1e-3 B/s is far below
    // any physically meaningful rate in the model.
    f->rate = std::max(rate, 1e-3);
    for (const LinkId lid : f->path) {
      residual[static_cast<std::size_t>(lid)] =
          std::max(0.0, residual[static_cast<std::size_t>(lid)] - rate);
    }
  };

  // Progressive filling freezes at least one flow per iteration; anything
  // beyond flows+1 iterations is a logic error, not a slow convergence.
  std::size_t iteration_guard = flows_.size() + 2;
  while (!unfrozen.empty()) {
    LTS_ASSERT(iteration_guard-- > 0);
    ++rounds;
    std::fill(link_count.begin(), link_count.end(), 0);
    for (const Flow* f : unfrozen) {
      for (const LinkId lid : f->path) {
        ++link_count[static_cast<std::size_t>(lid)];
      }
    }
    // Fair share currently offered by the tightest link.
    Rate bottleneck_share = std::numeric_limits<Rate>::infinity();
    for (std::size_t i = 0; i < link_count.size(); ++i) {
      if (link_count[i] == 0) continue;
      bottleneck_share = std::min(
          bottleneck_share, residual[i] / static_cast<Rate>(link_count[i]));
    }
    LTS_ASSERT(std::isfinite(bottleneck_share));

    // Flows whose TCP cap is below the share freeze at their cap first: they
    // cannot use their full fair share, which frees capacity for the rest.
    bool froze_capped = false;
    for (std::size_t i = 0; i < unfrozen.size();) {
      if (unfrozen[i]->cap <= bottleneck_share) {
        freeze(unfrozen[i], unfrozen[i]->cap);
        unfrozen[i] = unfrozen.back();
        unfrozen.pop_back();
        froze_capped = true;
      } else {
        ++i;
      }
    }
    if (froze_capped) continue;

    // Otherwise freeze every flow crossing a bottleneck link at the share.
    // The bottleneck set must come from the state at the start of the round:
    // freeze() lowers residuals as it goes, and testing links against the
    // mutated residuals would pull extra links into this round's bottleneck
    // set, freezing their flows at a share that belongs to a tighter link —
    // flows with identical paths then end up with different rates, which is
    // exactly the unfairness max-min forbids.
    std::vector<char> is_bottleneck(link_count.size(), 0);
    for (std::size_t li = 0; li < link_count.size(); ++li) {
      if (link_count[li] > 0 &&
          residual[li] / static_cast<Rate>(link_count[li]) <=
              bottleneck_share * (1.0 + 1e-12)) {
        is_bottleneck[li] = 1;
      }
    }
    for (std::size_t i = 0; i < unfrozen.size();) {
      bool on_bottleneck = false;
      for (const LinkId lid : unfrozen[i]->path) {
        if (is_bottleneck[static_cast<std::size_t>(lid)]) {
          on_bottleneck = true;
          break;
        }
      }
      if (on_bottleneck) {
        freeze(unfrozen[i], bottleneck_share);
        unfrozen[i] = unfrozen.back();
        unfrozen.pop_back();
      } else {
        ++i;
      }
    }
  }

  for (const auto& [id, f] : flows_) {
    for (const LinkId lid : f.path) {
      link_alloc_[static_cast<std::size_t>(lid)] += f.rate;
    }
  }
  return rounds;
}

void FlowManager::record_recompute_metrics(
    // lts-lint: nondeterminism-ok(wall-clock type in the signature of the observability-only recording path)
    std::size_t rounds, std::chrono::steady_clock::time_point wall_begin) {
  auto& metrics = RecomputeMetrics::get();
  metrics.total.inc();
  metrics.rounds.observe(static_cast<double>(rounds));
  metrics.duration.observe(
      // lts-lint: nondeterminism-ok(wall-clock delta recorded into the obs histogram; values are observational only and never read back)
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_begin)
          .count());
}

void FlowManager::schedule_next_completion() {
  if (completion_event_ != sim::kInvalidEvent) {
    engine_.cancel(completion_event_);
    completion_event_ = sim::kInvalidEvent;
  }
  if (flows_.empty()) return;
  SimTime earliest = std::numeric_limits<SimTime>::infinity();
  for (const auto& [id, f] : flows_) {
    LTS_ASSERT(f.rate > 0.0);
    earliest = std::min(earliest, f.remaining / f.rate);
  }
  completion_event_ = engine_.schedule_in(
      std::max(earliest, 0.0), [this] { handle_completion_event(); });
}

void FlowManager::handle_completion_event() {
  completion_event_ = sim::kInvalidEvent;
  advance();
  // Collect finished flows first: completion callbacks may start new flows,
  // which would invalidate iterators.
  std::vector<std::function<void()>> callbacks;
  for (auto it = flows_.begin(); it != flows_.end();) {
    // A flow is done when its remaining bytes are negligible OR it would
    // finish within a nanosecond — the latter guards against zero-progress
    // event loops when remaining/rate underflows the clock's resolution.
    if (it->second.remaining <=
        std::max(kRemainingEpsilon, it->second.rate * 1e-9)) {
      if (it->second.on_complete) {
        callbacks.push_back(std::move(it->second.on_complete));
      }
      it = flows_.erase(it);
      ++completed_;
    } else {
      ++it;
    }
  }
  recompute_rates();
  schedule_next_completion();
  for (auto& cb : callbacks) cb();
}

}  // namespace lts::net
