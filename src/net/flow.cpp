#include "net/flow.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace lts::net {

namespace {
// Flows with fewer remaining bytes than this are considered delivered; it is
// far below one byte so no real transfer is cut short.
constexpr Bytes kRemainingEpsilon = 1e-6;

struct RecomputeMetrics {
  obs::Counter& total = obs::counter(
      "lts_net_rate_recomputes_total", {},
      "Max-min fair rate recomputations run by FlowManager");
  obs::Histogram& rounds = obs::histogram(
      "lts_net_rate_recompute_rounds", {1, 2, 4, 8, 16, 32, 64}, {},
      "Progressive-filling rounds per rate recomputation");
  obs::Histogram& duration = obs::histogram(
      "lts_net_rate_recompute_duration_seconds",
      {1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2}, {},
      "Wall-clock duration of one rate recomputation");
  static RecomputeMetrics& get() {
    static RecomputeMetrics m;
    return m;
  }
};
}  // namespace

FlowManager::FlowManager(sim::Engine& engine, const Topology& topo,
                         FlowOptions options)
    : engine_(engine),
      topo_(topo),
      options_(options),
      obs_enabled_(obs::MetricsRegistry::global().enabled_flag()) {
  const std::size_t links = topo_.num_links();
  link_alloc_.assign(links, 0.0);
  alloc_epoch_.assign(links, 0);
  residual_.assign(links, 0.0);
  residual_epoch_.assign(links, 0);
  link_count_.assign(links, 0);
  count_epoch_.assign(links, 0);
  bottleneck_epoch_.assign(links, 0);
  const std::size_t vertices = topo_.num_vertices();
  tx_head_.assign(vertices, kNoSlot);
  tx_tail_.assign(vertices, kNoSlot);
  rx_head_.assign(vertices, kNoSlot);
  rx_tail_.assign(vertices, kNoSlot);
  tx_count_.assign(vertices, 0);
  rx_count_.assign(vertices, 0);
  host_tx_.assign(vertices, 0.0);
  host_rx_.assign(vertices, 0.0);
  // Snapshot the site partition: the hierarchical solver needs per-link
  // ownership on the hot path and the partition is fixed at construction
  // time (fault injection mutates capacities/delays, never sites).
  if (options_.solver == SolverMode::kHierarchical) {
    num_sites_ = topo_.num_sites();
    link_site_.resize(links);
    for (std::size_t l = 0; l < links; ++l) {
      link_site_[l] = topo_.link_site(static_cast<LinkId>(l));
    }
    site_scratch_.resize(static_cast<std::size_t>(num_sites_));
    site_coupled_.assign(static_cast<std::size_t>(num_sites_), 0);
  }
  last_update_ = engine_.now();
}

std::int32_t FlowManager::classify_site(VertexId src, VertexId dst,
                                        const LinkId* path,
                                        std::uint32_t path_len) const {
  if (num_sites_ == 0) return -1;
  const int site = topo_.vertex_site(src);
  if (site < 0 || topo_.vertex_site(dst) != site) return -1;
  for (std::uint32_t k = 0; k < path_len; ++k) {
    if (link_site_[static_cast<std::size_t>(path[k])] != site) return -1;
  }
  return site;
}

std::uint32_t FlowManager::find_slot(FlowId id) const {
  const auto it = std::lower_bound(
      by_id_.begin(), by_id_.end(), id,
      [this](std::uint32_t s, FlowId v) { return slots_[s].id < v; });
  if (it == by_id_.end() || slots_[*it].id != id) return kNoSlot;
  return *it;
}

std::uint32_t FlowManager::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void FlowManager::release_slot(std::uint32_t slot) {
  Flow& f = slots_[slot];
  const auto src = static_cast<std::size_t>(f.src);
  const auto dst = static_cast<std::size_t>(f.dst);
  if (f.tx_prev != kNoSlot) {
    slots_[f.tx_prev].tx_next = f.tx_next;
  } else {
    tx_head_[src] = f.tx_next;
  }
  if (f.tx_next != kNoSlot) {
    slots_[f.tx_next].tx_prev = f.tx_prev;
  } else {
    tx_tail_[src] = f.tx_prev;
  }
  --tx_count_[src];
  if (f.rx_prev != kNoSlot) {
    slots_[f.rx_prev].rx_next = f.rx_next;
  } else {
    rx_head_[dst] = f.rx_next;
  }
  if (f.rx_next != kNoSlot) {
    slots_[f.rx_next].rx_prev = f.rx_prev;
  } else {
    rx_tail_[dst] = f.rx_prev;
  }
  --rx_count_[dst];
  live_path_words_ -= f.path_len;
  f.id = kInvalidFlow;
  f.on_complete = nullptr;
  free_slots_.push_back(slot);
}

void FlowManager::maybe_compact_arena() {
  // Dead spans accumulate as flows finish; rewrite once they dominate. The
  // floor keeps short-lived small workloads from compacting constantly.
  if (path_arena_.size() <= 64 ||
      path_arena_.size() <= 2 * live_path_words_) {
    return;
  }
  std::vector<LinkId> fresh;
  fresh.reserve(live_path_words_);
  for (const std::uint32_t s : by_id_) {
    Flow& f = slots_[s];
    const auto new_begin = static_cast<std::uint32_t>(fresh.size());
    fresh.insert(fresh.end(), path_arena_.begin() + f.path_begin,
                 path_arena_.begin() + f.path_begin + f.path_len);
    f.path_begin = new_begin;
  }
  path_arena_ = std::move(fresh);
}

FlowId FlowManager::start(VertexId src, VertexId dst, Bytes size,
                          std::function<void()> on_complete) {
  LTS_REQUIRE(size > 0.0, "FlowManager: flow size must be positive");
  LTS_REQUIRE(src != dst, "FlowManager: flow to self");
  advance();
  const SimTime rtt = base_rtt(src, dst);
  const auto& route = topo_.route(src, dst);
  const std::uint32_t slot = acquire_slot();
  Flow& f = slots_[slot];
  f.id = next_id_++;
  f.src = src;
  f.dst = dst;
  f.total = size;
  f.remaining = size;
  f.rate = 0.0;
  f.cap = options_.tcp_window_bytes / std::max(rtt, 1e-6);
  f.path_begin = static_cast<std::uint32_t>(path_arena_.size());
  f.path_len = static_cast<std::uint32_t>(route.size());
  path_arena_.insert(path_arena_.end(), route.begin(), route.end());
  live_path_words_ += f.path_len;
  f.site = classify_site(src, dst, path_arena_.data() + f.path_begin,
                         f.path_len);
  f.on_complete = std::move(on_complete);
  // Tail insertion: new ids are maximal, so both lists stay in id order.
  const auto srci = static_cast<std::size_t>(src);
  const auto dsti = static_cast<std::size_t>(dst);
  f.tx_prev = tx_tail_[srci];
  f.tx_next = kNoSlot;
  if (tx_tail_[srci] != kNoSlot) {
    slots_[tx_tail_[srci]].tx_next = slot;
  } else {
    tx_head_[srci] = slot;
  }
  tx_tail_[srci] = slot;
  ++tx_count_[srci];
  f.rx_prev = rx_tail_[dsti];
  f.rx_next = kNoSlot;
  if (rx_tail_[dsti] != kNoSlot) {
    slots_[rx_tail_[dsti]].rx_next = slot;
  } else {
    rx_head_[dsti] = slot;
  }
  rx_tail_[dsti] = slot;
  ++rx_count_[dsti];
  by_id_.push_back(slot);
  mark_dirty();
  return f.id;
}

void FlowManager::cancel(FlowId id) {
  advance();
  const std::uint32_t slot = find_slot(id);
  if (slot == kNoSlot) return;
  const auto it = std::lower_bound(
      by_id_.begin(), by_id_.end(), id,
      [this](std::uint32_t s, FlowId v) { return slots_[s].id < v; });
  by_id_.erase(it);
  release_slot(slot);
  maybe_compact_arena();
  mark_dirty();
}

void FlowManager::invalidate_rates() {
  advance();
  mark_dirty();
}

void FlowManager::mark_dirty() {
  if (dirty_) return;
  dirty_ = true;
  // Same-timestamp hook: it runs after every event already queued at this
  // instant, so a storm of same-time mutations shares one recompute. The
  // first rate observation before the hook fires flushes early instead;
  // either way no stale rate is ever visible and no simulated time passes
  // while the allocation is stale.
  flush_event_ = engine_.schedule_in(0.0, [this] {
    flush_event_ = sim::kInvalidEvent;
    flush();
  });
}

void FlowManager::flush() {
  if (!dirty_) return;
  dirty_ = false;
  if (flush_event_ != sim::kInvalidEvent) {
    engine_.cancel(flush_event_);
    flush_event_ = sim::kInvalidEvent;
  }
  // Byte accounting first, at the pre-mutation rates (a no-op in practice:
  // dirtiness never survives a clock advance).
  advance();
  recompute_rates();
  schedule_next_completion();
}

FlowInfo FlowManager::info(FlowId id) const {
  ensure_fresh();
  const std::uint32_t slot = find_slot(id);
  LTS_REQUIRE(slot != kNoSlot, "FlowManager: unknown flow");
  // const_cast-free lazy accounting: report based on last_update_ plus
  // extrapolation at the current rate.
  const Flow& f = slots_[slot];
  const SimTime dt = engine_.now() - last_update_;
  const Bytes extra = std::min(f.remaining, f.rate * dt);
  return FlowInfo{f.src, f.dst, f.total, f.total - f.remaining + extra,
                  f.rate};
}

double FlowManager::link_utilization(LinkId link) const {
  ensure_fresh();
  LTS_REQUIRE(link >= 0 && static_cast<std::size_t>(link) < link_alloc_.size(),
              "FlowManager: bad link id");
  const Rate cap = topo_.link(link).capacity;
  const auto li = static_cast<std::size_t>(link);
  // Links untouched by the last fill carry no allocation; their stale array
  // entries are simply never read.
  const Rate alloc = alloc_epoch_[li] == last_fill_epoch_ ? link_alloc_[li]
                                                          : 0.0;
  return std::clamp(alloc / cap, 0.0, 1.0);
}

SimTime FlowManager::link_queue_delay(LinkId link) const {
  const double u = link_utilization(link);
  return options_.max_queue_delay * u * u * u * u;
}

SimTime FlowManager::current_rtt(VertexId a, VertexId b) const {
  SimTime total = 2.0 * options_.host_stack_delay;
  for (const LinkId lid : topo_.route(a, b)) {
    total += topo_.link(lid).prop_delay + link_queue_delay(lid);
  }
  for (const LinkId lid : topo_.route(b, a)) {
    total += topo_.link(lid).prop_delay + link_queue_delay(lid);
  }
  return total;
}

SimTime FlowManager::base_rtt(VertexId a, VertexId b) const {
  return 2.0 * options_.host_stack_delay + topo_.path_prop_delay(a, b) +
         topo_.path_prop_delay(b, a);
}

Bytes FlowManager::host_tx_bytes(VertexId host) const {
  LTS_REQUIRE(host >= 0 && static_cast<std::size_t>(host) < host_tx_.size(),
              "FlowManager: bad host id");
  ensure_fresh();
  Bytes total = host_tx_[static_cast<std::size_t>(host)];
  const SimTime dt = engine_.now() - last_update_;
  for (std::uint32_t s = tx_head_[static_cast<std::size_t>(host)];
       s != kNoSlot; s = slots_[s].tx_next) {
    const Flow& f = slots_[s];
    total += std::min(f.remaining, f.rate * dt);
  }
  return total;
}

Bytes FlowManager::host_rx_bytes(VertexId host) const {
  LTS_REQUIRE(host >= 0 && static_cast<std::size_t>(host) < host_rx_.size(),
              "FlowManager: bad host id");
  ensure_fresh();
  Bytes total = host_rx_[static_cast<std::size_t>(host)];
  const SimTime dt = engine_.now() - last_update_;
  for (std::uint32_t s = rx_head_[static_cast<std::size_t>(host)];
       s != kNoSlot; s = slots_[s].rx_next) {
    const Flow& f = slots_[s];
    total += std::min(f.remaining, f.rate * dt);
  }
  return total;
}

void FlowManager::reset_host_counters(VertexId host) {
  LTS_REQUIRE(host >= 0 && static_cast<std::size_t>(host) < host_tx_.size(),
              "FlowManager: bad host id");
  advance();
  host_tx_[static_cast<std::size_t>(host)] = 0.0;
  host_rx_[static_cast<std::size_t>(host)] = 0.0;
}

Rate FlowManager::host_tx_rate(VertexId host) const {
  LTS_REQUIRE(host >= 0 && static_cast<std::size_t>(host) < tx_head_.size(),
              "FlowManager: bad host id");
  ensure_fresh();
  Rate total = 0.0;
  for (std::uint32_t s = tx_head_[static_cast<std::size_t>(host)];
       s != kNoSlot; s = slots_[s].tx_next) {
    total += slots_[s].rate;
  }
  return total;
}

Rate FlowManager::host_rx_rate(VertexId host) const {
  LTS_REQUIRE(host >= 0 && static_cast<std::size_t>(host) < rx_head_.size(),
              "FlowManager: bad host id");
  ensure_fresh();
  Rate total = 0.0;
  for (std::uint32_t s = rx_head_[static_cast<std::size_t>(host)];
       s != kNoSlot; s = slots_[s].rx_next) {
    total += slots_[s].rate;
  }
  return total;
}

std::size_t FlowManager::host_active_flows(VertexId host) const {
  LTS_REQUIRE(host >= 0 && static_cast<std::size_t>(host) < tx_count_.size(),
              "FlowManager: bad host id");
  // src != dst always, so the two counters never double-count a flow.
  return tx_count_[static_cast<std::size_t>(host)] +
         rx_count_[static_cast<std::size_t>(host)];
}

void FlowManager::advance() {
  const SimTime now = engine_.now();
  const SimTime dt = now - last_update_;
  if (dt <= 0.0) {
    last_update_ = now;
    return;
  }
  for (const std::uint32_t s : by_id_) {
    Flow& f = slots_[s];
    const Bytes delta = std::min(f.remaining, f.rate * dt);
    f.remaining -= delta;
    host_tx_[static_cast<std::size_t>(f.src)] += delta;
    host_rx_[static_cast<std::size_t>(f.dst)] += delta;
  }
  last_update_ = now;
}

void FlowManager::recompute_rates() {
  // Instrumentation stays out of the solver itself: holding the clock value
  // and enabled flag live across the progressive fill measurably slows the
  // unobserved path through extra register spills.
  if (!obs_enabled_->load(std::memory_order_relaxed)) {
    recompute_rates_core();
    return;
  }
  // lts-lint: nondeterminism-ok(wall time measures real solver cost for the obs duration histogram only; it never reaches flow state, rates, or telemetry series)
  const auto wall_begin = std::chrono::steady_clock::now();
  const std::size_t rounds = recompute_rates_core();
  record_recompute_metrics(rounds, wall_begin);
}

std::size_t FlowManager::recompute_rates_core() {
  const std::uint64_t fill_epoch = ++epoch_;
  last_fill_epoch_ = fill_epoch;
  completion_heap_.clear();
  stats_ = SolverStats{by_id_.size(), 0, 0};
  if (by_id_.empty()) return 0;

  std::size_t rounds;
  if (options_.solver == SolverMode::kHierarchical && num_sites_ > 0) {
    rounds = hierarchical_fill(fill_epoch);
  } else {
    rounds = fill_flows(by_id_, fill_epoch, epoch_, touched_links_, unfrozen_);
  }

  // Final accumulation in id order (the order the old full-map walk used,
  // so per-link sums round identically) doubles as the heap build.
  completion_heap_.reserve(by_id_.size());
  for (const std::uint32_t s : by_id_) {
    const Flow& f = slots_[s];
    const LinkId* path = path_arena_.data() + f.path_begin;
    for (std::uint32_t k = 0; k < f.path_len; ++k) {
      const auto li = static_cast<std::size_t>(path[k]);
      if (alloc_epoch_[li] != fill_epoch) {
        alloc_epoch_[li] = fill_epoch;
        link_alloc_[li] = 0.0;
      }
      link_alloc_[li] += f.rate;
    }
    LTS_ASSERT(f.rate > 0.0);
    completion_heap_.push_back(HeapEntry{f.remaining / f.rate, s});
  }
  const auto later = [](const HeapEntry& a, const HeapEntry& b) {
    return a.eta > b.eta;
  };
  std::make_heap(completion_heap_.begin(), completion_heap_.end(), later);
  return rounds;
}

std::size_t FlowManager::hierarchical_fill(std::uint64_t fill_epoch) {
  // Pass 1: a cross-site flow couples every site whose links it crosses —
  // those sites' local flows share access links with WAN traffic, so their
  // fair shares are not a site-local question.
  std::fill(site_coupled_.begin(), site_coupled_.end(), 0);
  for (const std::uint32_t s : by_id_) {
    const Flow& f = slots_[s];
    if (f.site >= 0) continue;
    const LinkId* path = path_arena_.data() + f.path_begin;
    for (std::uint32_t k = 0; k < f.path_len; ++k) {
      const int site = link_site_[static_cast<std::size_t>(path[k])];
      if (site >= 0) site_coupled_[static_cast<std::size_t>(site)] = 1;
    }
  }

  // Pass 2: split, preserving FlowId order within every list (by_id_ is
  // already sorted, so plain appends keep each sub-list sorted too).
  coupled_.clear();
  active_sites_.clear();
  for (auto& sc : site_scratch_) sc.flows.clear();
  for (const std::uint32_t s : by_id_) {
    const std::int32_t site = slots_[s].site;
    if (site >= 0 && site_coupled_[static_cast<std::size_t>(site)] == 0) {
      auto& sc = site_scratch_[static_cast<std::size_t>(site)];
      // lts-lint: alloc-ok(persistent scratch: cleared per solve with capacity retained, bounded by site count)
      if (sc.flows.empty()) active_sites_.push_back(site);
      // lts-lint: alloc-ok(persistent per-site scratch: cleared per solve with capacity retained, bounded by active flows)
      sc.flows.push_back(s);
    } else {
      // lts-lint: alloc-ok(persistent scratch: cleared per solve with capacity retained, bounded by active flows)
      coupled_.push_back(s);
    }
  }
  stats_ = SolverStats{coupled_.size(), by_id_.size() - coupled_.size(),
                       active_sites_.size()};

  // The coupled set runs through the exact global fill. When it holds every
  // flow (spanning traffic on the paper topology), this is bit-for-bit the
  // flat solver: same list, same epochs, same arithmetic.
  std::size_t rounds = 0;
  if (!coupled_.empty()) {
    rounds += fill_flows(coupled_, fill_epoch, epoch_, touched_links_,
                         unfrozen_);
  }
  if (active_sites_.empty()) return rounds;

  // Independent sites: disjoint flow lists over disjoint site-owned links.
  // Each worker stamps only its site's entries of the shared per-link
  // arrays, using a private epoch cursor started from a common base — the
  // base exceeds every stamp written so far, and equal cursor values across
  // sites can never meet on the same array element. The outcome is
  // byte-identical to solving the sites sequentially.
  const std::uint64_t epoch_base = epoch_;
  // lts-lint: shared-guarded(site-partitioned: each worker fills one site's flow list over that site's links only — every shared-array write lands on a site-owned element, and epoch cursors are thread-private)
  ThreadPool::global().parallel_for(active_sites_.size(), [&](std::size_t i) {
    auto& sc = site_scratch_[static_cast<std::size_t>(active_sites_[i])];
    std::uint64_t cursor = epoch_base + 1;
    sc.rounds =
        fill_flows(sc.flows, epoch_base + 1, cursor, sc.touched, sc.unfrozen);
    sc.epoch_end = cursor;
  });

  // Serial merge in site order: deterministic totals, and the shared epoch
  // jumps past every per-site cursor so no later fill can collide with a
  // stamp written inside the parallel section.
  std::uint64_t epoch_end = epoch_base;
  for (const int site : active_sites_) {
    const auto& sc = site_scratch_[static_cast<std::size_t>(site)];
    rounds += sc.rounds;
    epoch_end = std::max(epoch_end, sc.epoch_end);
  }
  epoch_ = epoch_end;
  return rounds;
}

std::size_t FlowManager::fill_flows(const std::vector<std::uint32_t>& flows,
                                    std::uint64_t fill_epoch,
                                    std::uint64_t& epoch_cursor,
                                    std::vector<LinkId>& touched,
                                    std::vector<std::uint32_t>& unfrozen) {
  std::size_t rounds = 0;
  unfrozen.clear();
  unfrozen.reserve(flows.size());
  for (const std::uint32_t s : flows) {
    slots_[s].rate = 0.0;
    unfrozen.push_back(s);
  }

  auto freeze = [&](std::uint32_t slot, Rate rate) {
    Flow& f = slots_[slot];
    // Floor guards against rounding freezing a flow at exactly zero, which
    // would make its completion time unschedulable. 1e-3 B/s is far below
    // any physically meaningful rate in the model. The links are debited by
    // the rate actually assigned (floor included), so floored flows never
    // oversubscribe their path.
    f.rate = std::max(rate, 1e-3);
    const LinkId* path = path_arena_.data() + f.path_begin;
    for (std::uint32_t k = 0; k < f.path_len; ++k) {
      const auto li = static_cast<std::size_t>(path[k]);
      residual_[li] = std::max(0.0, residual_[li] - f.rate);
    }
  };

  // Progressive filling freezes at least one flow per iteration; anything
  // beyond flows+1 iterations is a logic error, not a slow convergence.
  std::size_t iteration_guard = flows.size() + 2;
  while (!unfrozen.empty()) {
    LTS_ASSERT(iteration_guard-- > 0);
    ++rounds;
    // Per-round link state is epoch-stamped: a link's count (and later its
    // bottleneck mark) is valid only when stamped with this round's epoch,
    // so resetting costs nothing and per-round work is proportional to the
    // unfrozen flows' total path length, not to the number of links.
    const std::uint64_t round_epoch = ++epoch_cursor;
    touched.clear();
    for (const std::uint32_t s : unfrozen) {
      const Flow& f = slots_[s];
      const LinkId* path = path_arena_.data() + f.path_begin;
      for (std::uint32_t k = 0; k < f.path_len; ++k) {
        const LinkId lid = path[k];
        const auto li = static_cast<std::size_t>(lid);
        if (count_epoch_[li] != round_epoch) {
          count_epoch_[li] = round_epoch;
          link_count_[li] = 0;
          // lts-lint: alloc-ok(caller-owned scratch: cleared per round with capacity retained, bounded by touched links)
          touched.push_back(lid);
          if (residual_epoch_[li] != fill_epoch) {
            residual_epoch_[li] = fill_epoch;
            residual_[li] = topo_.link(lid).capacity;
          }
        }
        ++link_count_[li];
      }
    }
    // Fair share currently offered by the tightest link. A min over a set
    // of doubles is order-independent, so visiting links in touch order
    // gives the exact value the full index-order scan used to produce.
    Rate bottleneck_share = std::numeric_limits<Rate>::infinity();
    for (const LinkId lid : touched) {
      const auto li = static_cast<std::size_t>(lid);
      bottleneck_share =
          std::min(bottleneck_share,
                   residual_[li] / static_cast<Rate>(link_count_[li]));
    }
    LTS_ASSERT(std::isfinite(bottleneck_share));

    // Flows whose TCP cap is below the share freeze at their cap first: they
    // cannot use their full fair share, which frees capacity for the rest.
    bool froze_capped = false;
    for (std::size_t i = 0; i < unfrozen.size();) {
      if (slots_[unfrozen[i]].cap <= bottleneck_share) {
        freeze(unfrozen[i], slots_[unfrozen[i]].cap);
        unfrozen[i] = unfrozen.back();
        unfrozen.pop_back();
        froze_capped = true;
      } else {
        ++i;
      }
    }
    if (froze_capped) continue;

    // Otherwise freeze every flow crossing a bottleneck link at the share.
    // The bottleneck set must come from the state at the start of the round:
    // freeze() lowers residuals as it goes, and testing links against the
    // mutated residuals would pull extra links into this round's bottleneck
    // set, freezing their flows at a share that belongs to a tighter link —
    // flows with identical paths then end up with different rates, which is
    // exactly the unfairness max-min forbids.
    for (const LinkId lid : touched) {
      const auto li = static_cast<std::size_t>(lid);
      if (residual_[li] / static_cast<Rate>(link_count_[li]) <=
          bottleneck_share * (1.0 + 1e-12)) {
        bottleneck_epoch_[li] = round_epoch;
      }
    }
    for (std::size_t i = 0; i < unfrozen.size();) {
      const Flow& f = slots_[unfrozen[i]];
      bool on_bottleneck = false;
      const LinkId* path = path_arena_.data() + f.path_begin;
      for (std::uint32_t k = 0; k < f.path_len; ++k) {
        if (bottleneck_epoch_[static_cast<std::size_t>(path[k])] ==
            round_epoch) {
          on_bottleneck = true;
          break;
        }
      }
      if (on_bottleneck) {
        freeze(unfrozen[i], bottleneck_share);
        unfrozen[i] = unfrozen.back();
        unfrozen.pop_back();
      } else {
        ++i;
      }
    }
  }
  return rounds;
}

void FlowManager::record_recompute_metrics(
    // lts-lint: nondeterminism-ok(wall-clock type in the signature of the observability-only recording path)
    std::size_t rounds, std::chrono::steady_clock::time_point wall_begin) {
  auto& metrics = RecomputeMetrics::get();
  metrics.total.inc();
  metrics.rounds.observe(static_cast<double>(rounds));
  metrics.duration.observe(
      // lts-lint: nondeterminism-ok(wall-clock delta recorded into the obs histogram; values are observational only and never read back)
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_begin)
          .count());
}

void FlowManager::schedule_next_completion() {
  if (completion_event_ != sim::kInvalidEvent) {
    engine_.cancel(completion_event_);
    completion_event_ = sim::kInvalidEvent;
  }
  if (completion_heap_.empty()) return;
  // The heap top is the same minimum the old full scan computed; its eta is
  // relative to the last recompute, and every recompute rebuilds the heap,
  // so the offset base is always the current instant.
  completion_event_ =
      engine_.schedule_in(std::max(completion_heap_.front().eta, 0.0),
                          [this] { handle_completion_event(); });
}

void FlowManager::handle_completion_event() {
  completion_event_ = sim::kInvalidEvent;
  // A pending deferred recompute (some same-instant mutation queued before
  // this event) flushes first: bytes accrue at the old rates, then the
  // harvest below tests against the same fresh rates the eager solver would
  // have been using.
  const bool flushed = dirty_;
  if (flushed) {
    flush();
  } else {
    advance();
  }
  // Collect finished flows first: completion callbacks may start new flows,
  // which would invalidate any iteration state.
  std::vector<std::function<void()>> callbacks;
  bool removed = false;
  std::size_t w = 0;
  for (std::size_t i = 0; i < by_id_.size(); ++i) {
    const std::uint32_t s = by_id_[i];
    Flow& f = slots_[s];
    // A flow is done when its remaining bytes are negligible OR it would
    // finish within a nanosecond — the latter guards against zero-progress
    // event loops when remaining/rate underflows the clock's resolution.
    if (f.remaining <= std::max(kRemainingEpsilon, f.rate * 1e-9)) {
      if (f.on_complete) callbacks.push_back(std::move(f.on_complete));
      release_slot(s);
      ++completed_;
      removed = true;
    } else {
      by_id_[w++] = s;
    }
  }
  by_id_.resize(w);
  if (removed) {
    maybe_compact_arena();
    // One deferred recompute covers this harvest plus whatever flows the
    // callbacks below start at this same instant.
    mark_dirty();
  } else if (!flushed) {
    // Spurious wakeup: accumulated rounding pushed the true completion just
    // past this event. Recompute (rates are unchanged — they depend only on
    // the flow set — but remaining bytes moved) and reschedule, exactly as
    // the eager path did.
    recompute_rates();
    schedule_next_completion();
  }
  for (auto& cb : callbacks) cb();
}

}  // namespace lts::net
