// Network topology: hosts and routers connected by directed links, with
// latency-weighted shortest-path routing.
//
// Models the FABRIC substrate of the paper: each node has an access link to
// its site router, and site routers are connected by WAN links whose
// propagation delays reproduce the inter-site RTTs of Figure 4. Links are
// directed so that transmit and receive directions have independent capacity
// and utilization — exactly why the paper's tx/rx-rate features carry signal.
#pragma once

#include <string>
#include <vector>

#include "util/common.hpp"

namespace lts::net {

using VertexId = int;
using LinkId = int;
inline constexpr VertexId kNoVertex = -1;

/// A directed link. Physical cables are modeled as two Links, one per
/// direction, each with its own capacity.
struct Link {
  LinkId id = -1;
  VertexId from = kNoVertex;
  VertexId to = kNoVertex;
  Rate capacity = 0.0;       // bytes/sec
  SimTime prop_delay = 0.0;  // one-way propagation, seconds
};

struct Vertex {
  VertexId id = kNoVertex;
  std::string name;
  bool is_host = false;  // hosts source/sink traffic; routers only forward
  std::vector<LinkId> out_links;
};

class Topology {
 public:
  /// Adds a vertex; names must be unique.
  VertexId add_host(const std::string& name);
  VertexId add_router(const std::string& name);

  /// Adds a pair of directed links (u->v and v->u) with the same capacity
  /// and propagation delay. Returns the id of the u->v direction; the v->u
  /// direction is the returned id + 1.
  LinkId add_duplex_link(VertexId u, VertexId v, Rate capacity_bps,
                         SimTime prop_delay);

  /// Adds a single directed link.
  LinkId add_link(VertexId u, VertexId v, Rate capacity_bps,
                  SimTime prop_delay);

  /// Mutates a link's capacity (fault injection: degraded or partitioned
  /// links). Deliberately does NOT invalidate routes: real WAN routing is
  /// static on the timescale of a job, so traffic keeps crossing the
  /// degraded link instead of rerouting around it. Callers holding a
  /// FlowManager must call its refresh() afterwards.
  void set_link_capacity(LinkId l, Rate capacity_bps);

  /// Mutates a link's one-way propagation delay (fault injection: RTT
  /// spikes). Routes stay fixed, like set_link_capacity.
  void set_link_prop_delay(LinkId l, SimTime prop_delay);

  std::size_t num_vertices() const { return vertices_.size(); }
  std::size_t num_links() const { return links_.size(); }

  const Vertex& vertex(VertexId v) const;
  const Link& link(LinkId l) const;
  VertexId find_vertex(const std::string& name) const;  // kNoVertex if absent

  /// Directed link ids along the latency-shortest path src -> dst. Throws if
  /// unreachable. Routes are computed once and cached; call invalidate()
  /// after mutating the topology (experiments never do mid-run).
  const std::vector<LinkId>& route(VertexId src, VertexId dst) const;

  /// One-way propagation delay along route(src, dst).
  SimTime path_prop_delay(VertexId src, VertexId dst) const;

  void invalidate_routes();

  std::vector<VertexId> hosts() const;

  /// Optional site partition used by the hierarchical max-min solver: tags
  /// a vertex with the site it belongs to (>= 0). Vertices never tagged
  /// (core/backbone routers) belong to no site and report -1. A directed
  /// link is site-owned iff both endpoints carry the same site tag, so the
  /// partition of links is derived, never stored separately.
  void set_vertex_site(VertexId v, int site);
  int vertex_site(VertexId v) const;

  /// One past the largest site index ever assigned (0 when untagged).
  int num_sites() const { return num_sites_; }

  /// Site of a link, or -1 when it bridges sites (WAN/core links) or
  /// touches an untagged vertex.
  int link_site(LinkId l) const;

 private:
  VertexId add_vertex(const std::string& name, bool is_host);
  void compute_routes_from(VertexId src) const;

  std::vector<Vertex> vertices_;
  std::vector<Link> links_;
  std::vector<int> vertex_site_;  // parallel to vertices_; -1 = untagged
  int num_sites_ = 0;
  // routes_[src][dst] = link ids; lazily filled per source via Dijkstra.
  mutable std::vector<std::vector<std::vector<LinkId>>> routes_;
  mutable std::vector<bool> routes_ready_;
};

}  // namespace lts::net
