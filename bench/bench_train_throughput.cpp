// Training-path throughput sweep: fit and rolling-window refit timings for
// the tree / forest / GBT trainers, each run twice — once through the
// embedded pre-overhaul reference (per-node gather + std::sort split
// search, scalar per-row GBT round updates; bench/train_reference.hpp) and
// once through the real trainers (presorted column indexes repartitioned
// down the recursion, parallel per-feature scans, batched round updates).
//
// The overhaul's contract is that it changes nothing but time: every case
// compares the serialized models and a probe-matrix prediction sweep bit
// for bit and the binary exits nonzero on any divergence. Two speedup
// gates ride on top (this container is single-core, so both are serial,
// algorithmic wins — no parallel scan contributes):
//
//   - gbt/10000 (fit + warm-start refit at the 10k-row window scale) must
//     hold >= 5x. Boosting scans every column it maintains, so the
//     presorted indexes replace the per-node sorts outright.
//   - forest/10000 (the OnlineTrainer retrain shape: 120 trees,
//     max_features 3, 10k-row windows) must hold >= 1.5x on both fit and
//     rolling refit. Feature subsampling bounds this family: repartition
//     maintains all 12 columns while each node's scan reads only 3, so
//     the measured ~2x is the structural ceiling's neighborhood, not a
//     regression (EXPERIMENTS.md carries the profile and the argument).
//
// Emits BENCH_train_throughput.json via exp::BenchReport; CI uploads it as
// a perf-trajectory artifact next to BENCH_flow_scale.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "exp/benchio.hpp"
#include "ml/dataset.hpp"
#include "ml/forest.hpp"
#include "ml/gbt.hpp"
#include "ml/tree.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

#include "train_reference.hpp"

namespace {

using namespace lts;

// ========================================================== workload ====
// Synthetic retraining windows shaped like the scheduler's observation
// features: a mix of continuous columns, quantized duplicate-heavy columns
// (queue depths, bucketized link loads — many tied values, exercising the
// equal-x boundary skips), and small-cardinality categorical-ish columns.
// The target mixes linear, smooth nonlinear, and interaction terms plus
// bounded noise.

constexpr std::size_t kFeatures = 12;

ml::Dataset make_window(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  ml::Matrix x(rows, kFeatures);
  std::vector<double> y(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < kFeatures; ++c) {
      double v = rng.uniform();
      if (c % 3 == 1) v = std::floor(v * 16.0) / 16.0;  // duplicate-heavy
      if (c % 3 == 2) v = std::floor(v * 4.0);          // categorical-ish
      x(r, c) = v;
    }
    const auto* row = &x(r, 0);
    y[r] = 3.0 * row[0] + 2.0 * std::sin(3.0 * row[1]) +
           4.0 * row[2] * row[3] + row[4] * row[4] - 1.5 * row[5] +
           0.5 * row[6] * row[7] + 0.05 * (rng.uniform() - 0.5);
  }
  std::vector<std::string> names;
  names.reserve(kFeatures);
  for (std::size_t c = 0; c < kFeatures; ++c) {
    names.push_back("f" + std::to_string(c));
  }
  return ml::Dataset(std::move(x), std::move(y), std::move(names));
}

// The OnlineTrainer retrain configuration: deep trees, feature subsampling,
// no OOB pass.
ml::ForestParams retrain_forest_params() {
  ml::ForestParams p;
  p.n_estimators = 120;
  p.tree.max_depth = 25;
  p.tree.min_samples_leaf = 1;
  p.max_features = 3;
  p.seed = 42;
  return p;
}

ml::TreeParams bench_tree_params() {
  ml::TreeParams p;
  p.max_depth = 25;
  p.min_samples_leaf = 1;
  return p;
}

ml::GbtParams bench_gbt_params() {
  ml::GbtParams p;
  p.n_rounds = 40;
  p.learning_rate = 0.08;
  p.max_depth = 4;
  p.subsample = 0.8;
  p.colsample = 0.8;
  p.early_stopping_rounds = 5;
  p.validation_fraction = 0.15;
  p.seed = 42;
  return p;
}

// ============================================================ helpers ====

template <typename Fn>
double time_call(Fn&& fn) {
  const auto begin = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       begin)
      .count();
}

double percentile(std::vector<double> samples, double pct) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double pos =
      pct / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

bool rows_bitwise_equal(const std::vector<double>& a,
                        const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

/// Tree-by-tree serialized comparison: a 120-tree forest on a 10k window
/// holds ~10^6 nodes, so materializing two whole-forest JSON dumps at once
/// would dwarf the models themselves. Scalars first, then one tree's dump
/// on each side at a time.
bool forests_identical(const ml::RandomForestRegressor& opt,
                       const trainref::RefForest& ref) {
  if (opt.num_trees() != ref.trees.size()) return false;
  if (opt.refit_generation() != ref.refit_generation) return false;
  if (opt.params().to_json().dump() != ref.params.to_json().dump()) {
    return false;
  }
  for (std::size_t i = 0; i < ref.trees.size(); ++i) {
    const std::string a = opt.tree(i).to_json().dump();
    const std::string b =
        trainref::tree_model_json(ref.trees[i], ref.effective_tree,
                                  ref.num_features)
            .dump();
    if (a != b) return false;
  }
  return true;
}

std::string fmt(double v, const char* spec = "%.4f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

struct CaseResult {
  double ref_seconds = 0.0;
  double opt_seconds = 0.0;  // mean per fit
  bool identical = false;
};

}  // namespace

int main() {
  exp::BenchReport report("train_throughput");
  report.note("workload",
              "synthetic 12-feature retraining windows (continuous + "
              "duplicate-heavy quantized + categorical-ish columns)");
  report.note("baseline",
              "pre-overhaul trainers: per-node gather + std::sort split "
              "search, scalar per-row GBT round updates");
  report.note("identity",
              "serialized models and probe predictions compared bit for "
              "bit against the baseline; nonzero exit on divergence");
  report.note("gate",
              "gbt/10000 >= 5x; forest/10000 fit and refit >= 1.5x "
              "(single-core serial; forest feature subsampling bounds the "
              "win — see EXPERIMENTS.md)");

  AsciiTable table({"case", "reference (s)", "optimized (s)", "speedup",
                    "identical"});
  bool all_identical = true;
  double forest_fit_speedup = 0.0;
  double forest_refit_speedup = 0.0;
  double gbt10k_speedup = 0.0;
  const ml::Dataset probe = make_window(512, 0xBEEF);

  const auto record = [&](const std::string& label, const CaseResult& r) {
    all_identical = all_identical && r.identical;
    const double speedup = r.ref_seconds / r.opt_seconds;
    report.add(label, "reference_seconds", r.ref_seconds, "s");
    report.add(label, "optimized_seconds", r.opt_seconds, "s");
    report.add(label, "speedup", speedup);
    report.add(label, "fits_per_second", 1.0 / r.opt_seconds, "1/s");
    report.add(label, "bit_identical", r.identical ? 1.0 : 0.0);
    table.add_row({label, fmt(r.ref_seconds), fmt(r.opt_seconds),
                   fmt(speedup, "%.1fx"), r.identical ? "yes" : "NO"});
    return speedup;
  };

  // ------------------------------------------------------ single tree ----
  for (const std::size_t rows : {std::size_t{2000}, std::size_t{10000}}) {
    const ml::Dataset window = make_window(rows, 0xA5);
    const ml::TreeParams tp = bench_tree_params();
    CaseResult r;
    trainref::RefTree ref;
    r.ref_seconds =
        time_call([&] { ref = trainref::fit_tree(window, tp, /*seed=*/7); });
    ml::DecisionTreeRegressor tree(tp);
    const int reps = rows <= 2000 ? 5 : 3;
    r.opt_seconds = time_call([&] {
                      for (int i = 0; i < reps; ++i) tree.fit(window);
                    }) /
                    reps;
    std::vector<double> opt_pred(probe.size(), 0.0);
    tree.predict_batch(probe.x().data(), probe.size(), kFeatures, opt_pred);
    std::vector<double> ref_pred(probe.size(), 0.0);
    for (std::size_t i = 0; i < probe.size(); ++i) {
      ref_pred[i] = trainref::tree_value(ref, probe.row(i));
    }
    r.identical =
        tree.to_json().dump() ==
            trainref::tree_model_json(ref, tp, kFeatures).dump() &&
        rows_bitwise_equal(opt_pred, ref_pred);
    record("tree/" + std::to_string(rows), r);
  }

  // --------------------------------------------- forest, 2k-row window ----
  {
    const ml::Dataset window = make_window(2000, 0xA5);
    const ml::ForestParams fp = retrain_forest_params();
    CaseResult r;
    trainref::RefForest ref;
    ref.params = fp;
    r.ref_seconds = time_call([&] { ref.fit(window); });
    ml::RandomForestRegressor forest(fp);
    const int reps = 3;
    r.opt_seconds = time_call([&] {
                      for (int i = 0; i < reps; ++i) forest.fit(window);
                    }) /
                    reps;
    std::vector<double> opt_pred(probe.size(), 0.0);
    forest.predict_batch(probe.x().data(), probe.size(), kFeatures,
                         opt_pred);
    std::vector<double> ref_pred(probe.size(), 0.0);
    for (std::size_t i = 0; i < probe.size(); ++i) {
      ref_pred[i] = ref.predict_one(probe.row(i));
    }
    r.identical = forests_identical(forest, ref) &&
                  rows_bitwise_equal(opt_pred, ref_pred);
    record("forest/2000", r);
  }

  // ------------------- forest, 10k-row window: the gated retrain case ----
  // Fit once on window 0, then roll through successive windows with
  // refit() exactly as OnlineTrainer does. Both sides see the identical
  // window sequence, so the models must agree bit for bit after the rolls.
  {
    const std::size_t rows = 10000;
    const ml::Dataset window0 = make_window(rows, 0xA5);
    std::vector<ml::Dataset> windows;
    for (std::uint64_t k = 1; k <= 4; ++k) {
      windows.push_back(make_window(rows, 0xA5 + k));
    }
    const ml::ForestParams fp = retrain_forest_params();

    trainref::RefForest ref;
    ref.params = fp;
    CaseResult r;
    r.ref_seconds = time_call([&] { ref.fit(window0); });
    ml::RandomForestRegressor forest(fp);
    r.opt_seconds = time_call([&] { forest.fit(window0); });

    // Rolling refits, identity-paired: two windows through both trainers.
    double ref_refit_total = 0.0, opt_refit_total = 0.0;
    std::vector<double> opt_refit_samples;
    for (int k = 0; k < 2; ++k) {
      const ml::Dataset& w = windows[static_cast<std::size_t>(k)];
      ref_refit_total += time_call([&] { ref.refit(w); });
      const double dt = time_call([&] { forest.refit(w); });
      opt_refit_total += dt;
      opt_refit_samples.push_back(dt);
    }
    std::vector<double> opt_pred(probe.size(), 0.0);
    forest.predict_batch(probe.x().data(), probe.size(), kFeatures,
                         opt_pred);
    std::vector<double> ref_pred(probe.size(), 0.0);
    for (std::size_t i = 0; i < probe.size(); ++i) {
      ref_pred[i] = ref.predict_one(probe.row(i));
    }
    r.identical = forests_identical(forest, ref) &&
                  rows_bitwise_equal(opt_pred, ref_pred);
    const std::string label = "forest/" + std::to_string(rows);
    forest_fit_speedup = record(label, r);

    // Optimized-only tail: keep rolling to collect a latency distribution
    // (identity was already pinned above; these windows cycle).
    for (int k = 0; k < 10; ++k) {
      const ml::Dataset& w = windows[static_cast<std::size_t>((k + 2) % 4)];
      opt_refit_samples.push_back(time_call([&] { forest.refit(w); }));
    }
    const double refit_ref_mean = ref_refit_total / 2.0;
    const double refit_opt_mean = opt_refit_total / 2.0;
    const double p50 = percentile(opt_refit_samples, 50.0);
    const double p99 = percentile(opt_refit_samples, 99.0);
    double sample_total = 0.0;
    for (const double s : opt_refit_samples) sample_total += s;
    forest_refit_speedup = refit_ref_mean / refit_opt_mean;
    report.add(label, "refit_reference_seconds", refit_ref_mean, "s");
    report.add(label, "refit_optimized_seconds", refit_opt_mean, "s");
    report.add(label, "refit_speedup", forest_refit_speedup);
    report.add(label, "refit_p50_seconds", p50, "s");
    report.add(label, "refit_p99_seconds", p99, "s");
    report.add(label, "refits_per_second",
               static_cast<double>(opt_refit_samples.size()) / sample_total,
               "1/s");
    table.add_row({label + " refit", fmt(refit_ref_mean),
                   fmt(refit_opt_mean),
                   fmt(refit_ref_mean / refit_opt_mean, "%.1fx"),
                   r.identical ? "yes" : "NO"});
  }

  // ------------------------------- GBT, fit + warm-start continuation ----
  // The 10k-row case is the gated one: boosting scans every column its
  // per-round index maintains, so this family carries the >= 5x headline.
  for (const std::size_t rows : {std::size_t{2000}, std::size_t{10000}}) {
    const ml::Dataset window0 = make_window(rows, 0xA5);
    const ml::Dataset window1 = make_window(rows, 0xA6);
    const ml::GbtParams gp = bench_gbt_params();
    CaseResult r;
    trainref::RefGbt ref(gp);
    r.ref_seconds = time_call([&] {
      ref.fit(window0);
      ref.refit(window1);  // continued boosting on the next window
    });
    ml::GradientBoostedTrees gbt(gp);
    const int reps = rows <= 2000 ? 3 : 2;
    r.opt_seconds = time_call([&] {
                      for (int i = 0; i < reps; ++i) {
                        gbt.fit(window0);
                        gbt.refit(window1);
                      }
                    }) /
                    reps;
    std::vector<double> opt_pred(probe.size(), 0.0);
    gbt.predict_batch(probe.x().data(), probe.size(), kFeatures, opt_pred);
    std::vector<double> ref_pred(probe.size(), 0.0);
    for (std::size_t i = 0; i < probe.size(); ++i) {
      ref_pred[i] = ref.predict_one(probe.row(i));
    }
    r.identical = gbt.to_json().dump() == ref.model_json().dump() &&
                  rows_bitwise_equal(opt_pred, ref_pred);
    const double speedup = record("gbt/" + std::to_string(rows), r);
    if (rows == 10000) gbt10k_speedup = speedup;
  }

  std::printf("%s", table.render("Training-path throughput sweep").c_str());
  report.write("BENCH_train_throughput.json");
  std::printf("\nwrote BENCH_train_throughput.json\n");

  if (!all_identical) {
    std::fprintf(stderr,
                 "ERROR: optimized trainer diverged from the pre-overhaul "
                 "reference\n");
    return 1;
  }
  if (gbt10k_speedup < 5.0) {
    std::fprintf(stderr,
                 "ERROR: gbt/10000 speedup %.2fx is below the 5x gate\n",
                 gbt10k_speedup);
    return 1;
  }
  if (forest_fit_speedup < 1.5 || forest_refit_speedup < 1.5) {
    std::fprintf(stderr,
                 "ERROR: forest/10000 speedup (fit %.2fx, refit %.2fx) is "
                 "below the 1.5x floor\n",
                 forest_fit_speedup, forest_refit_speedup);
    return 1;
  }
  return 0;
}
