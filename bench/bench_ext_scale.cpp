// §8 extension: evaluation at larger scale.
//
// Sweeps the cluster size (3 sites x 2 nodes up to 6 sites x 4 nodes) and
// reports (a) Top-1/Top-2 accuracy of a random forest trained at that
// scale and (b) the scheduling decision latency, which grows linearly in
// the candidate count. Larger clusters make Top-1 strictly harder (more
// candidates), so accuracy is also shown relative to random choice.
#include <chrono>
#include <cstdio>
#include <memory>

#include "core/scheduler.hpp"
#include "core/trainer.hpp"
#include "exp/collector.hpp"
#include "exp/evaluate.hpp"
#include "exp/scenario.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace lts;
  auto matrix = exp::paper_scenario_matrix();
  matrix.resize(24);  // keep per-scale collection affordable

  AsciiTable table({"cluster", "nodes", "RF Top-1", "Random Top-1",
                    "RF Top-2", "decision latency (us)"});

  struct Scale {
    int sites;
    int nodes_per_site;
  };
  for (const Scale scale : {Scale{3, 2}, Scale{4, 3}, Scale{6, 4}}) {
    exp::EnvOptions env;
    env.cluster_spec = exp::scaled_cluster_spec(scale.sites,
                                                scale.nodes_per_site);
    exp::CollectorOptions collect;
    collect.repeats = 2;
    collect.base_seed = 52000;
    collect.env = env;
    const CsvTable log = exp::collect_training_data(matrix, collect);
    const auto model = std::shared_ptr<const ml::Regressor>(
        core::Trainer::train("random_forest",
                             core::Trainer::dataset_from_log(log)));

    exp::EvalOptions eval;
    eval.num_scenarios = 40;
    eval.truth_repeats = 1;
    eval.base_seed = 63000;
    eval.env = env;
    std::vector<exp::MethodUnderTest> methods;
    methods.push_back({"rf", model, core::FeatureSet::kTable1});
    const auto result = exp::evaluate_methods(methods, matrix, eval);

    // Decision latency on a warm environment.
    exp::SimEnv probe(1, env);
    probe.warmup();
    core::LtsScheduler scheduler(
        core::TelemetryFetcher(probe.tsdb(), probe.node_names()), model);
    spark::JobConfig job;
    job.executors = 4;
    const auto start = std::chrono::steady_clock::now();
    constexpr int kReps = 50;
    for (int i = 0; i < kReps; ++i) {
      (void)scheduler.schedule(job, probe.engine().now());
    }
    const double micros =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count() /
        kReps;

    std::vector<std::string> row;
    row.push_back(strformat("%d sites x %d", scale.sites,
                            scale.nodes_per_site));
    row.push_back(std::to_string(scale.sites * scale.nodes_per_site));
    row.push_back(strformat("%.3f", result.by_method("rf").top1));
    row.push_back(strformat("%.3f", result.by_method("random").top1));
    row.push_back(strformat("%.3f", result.by_method("rf").top2));
    row.push_back(strformat("%.0f", micros));
    table.add_row(std::move(row));
  }
  std::printf("%s", table.render("Scale sweep").c_str());
  return 0;
}
