// Table 4 reproduction: Top-1 and Top-2 accuracy of different scheduling
// approaches in selecting the fastest execution node.
//
// Protocol (paper §5.2 + §6):
//   1. Collect the training corpus: 60 job configurations x 6 target nodes
//      x 10 repetitions = 3600 samples of (pre-launch telemetry, job
//      config, completion time).
//   2. Train linear regression, XGBoost-style GBT and a random forest.
//   3. On fresh scenarios, rank nodes with each method and score Top-1 /
//      Top-2 hits against the counterfactual fastest node.
//
// Expected shape (paper): Kubernetes default 0.16/0.26 << linear 0.50/0.60
// < XGBoost 0.56/0.72 < Random Forest 0.70/0.88.
//
// Flags: --quick shrinks the corpus for smoke runs;
//        --train-log <path> writes the training CSV for reuse.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/trainer.hpp"
#include "exp/collector.hpp"
#include "exp/evaluate.hpp"
#include "exp/scenario.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lts;
  bool quick = false;
  std::string train_log_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--train-log") == 0 && i + 1 < argc) {
      train_log_path = argv[++i];
    }
  }

  // ---- 1. Training corpus (§5.2 workflow). -------------------------------
  auto matrix = exp::paper_scenario_matrix();
  exp::CollectorOptions collect;
  collect.repeats = quick ? 2 : 10;
  collect.base_seed = 12000;
  if (quick) matrix.resize(20);
  std::printf("Collecting training data: %zu configs x 6 nodes x %d reps\n",
              matrix.size(), collect.repeats);
  const CsvTable log = exp::collect_training_data(matrix, collect);
  std::printf("  %zu samples collected\n", log.num_rows());
  if (!train_log_path.empty()) {
    log.write_file(train_log_path);
    std::printf("  training log written to %s\n", train_log_path.c_str());
  }

  // ---- 2. Offline training (§3.2.3). --------------------------------------
  const ml::Dataset data = core::Trainer::dataset_from_log(log);
  std::vector<std::pair<std::string, std::shared_ptr<const ml::Regressor>>>
      models;
  AsciiTable quality({"model", "holdout RMSE (s)", "holdout R^2"});
  for (const std::string name : {"linear", "xgboost", "random_forest"}) {
    std::unique_ptr<ml::Regressor> fitted;
    const auto report = core::Trainer::train_and_evaluate(
        name, data, /*test_fraction=*/0.2, /*seed=*/5, Json(), &fitted);
    quality.add_row_numeric(name, {report.test_rmse, report.test_r2});
    models.emplace_back(
        name, std::shared_ptr<const ml::Regressor>(std::move(fitted)));
  }
  std::printf("%s\n", quality.render("Model quality (holdout)").c_str());

  // ---- 3. Evaluation on fresh scenarios (§6). -----------------------------
  exp::EvalOptions eval;
  eval.num_scenarios = quick ? 30 : 100;
  eval.base_seed = 770000;
  const auto result =
      exp::evaluate_methods(models, exp::paper_scenario_matrix(), eval);

  AsciiTable table4({"Method", "Top-1", "Top-2"});
  const auto label = [](const std::string& m) -> std::string {
    if (m == "kube_default") return "Kubernetes Default";
    if (m == "random") return "Random";
    if (m == "linear") return "Linear Regression";
    if (m == "xgboost") return "XGBoost";
    if (m == "random_forest") return "Random Forest";
    return m;
  };
  for (const auto& acc : result.accuracy) {
    table4.add_row_numeric(label(acc.method), {acc.top1, acc.top2}, 3);
  }
  std::printf("%s", table4
                        .render("Table 4: Top-1/Top-2 accuracy in selecting "
                                "the fastest execution node (" +
                                std::to_string(eval.num_scenarios) +
                                " scenarios)")
                        .c_str());
  std::printf(
      "\nPaper reports: default 0.160/0.260, linear 0.500/0.600, "
      "xgboost 0.560/0.720, random forest 0.700/0.880.\n");
  return 0;
}
