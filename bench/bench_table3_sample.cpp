// Table 3 reproduction: a representative training row — the pre-launch
// telemetry joined with the job configuration and the measured duration.
//
// Collects a handful of real samples with the production collector and
// prints them in the paper's layout (RTT, Rx, Tx, CPU, Mem, input size,
// duration).
#include <cstdio>

#include "core/logger.hpp"
#include "exp/collector.hpp"
#include "exp/scenario.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace lts;
  auto matrix = exp::paper_scenario_matrix();
  matrix.resize(2);
  exp::CollectorOptions options;
  options.repeats = 1;
  options.base_seed = 42;
  const CsvTable log = exp::collect_training_data(matrix, options);

  AsciiTable table({"RTT (s)", "Rx (MB/s)", "Tx (MB/s)", "CPU", "Mem (GiB)",
                    "App", "Input Size", "Dur. (s)"});
  const std::size_t rows = log.num_rows() < 8 ? log.num_rows() : 8;
  for (std::size_t i = 0; i < rows; ++i) {
    const auto r = core::TrainingLogger::parse_row(log, i);
    table.add_row({
        strformat("%.4f", r.telemetry.rtt_mean),
        strformat("%.1f", r.telemetry.rx_rate / 1e6),
        strformat("%.1f", r.telemetry.tx_rate / 1e6),
        strformat("%.2f", r.telemetry.cpu_load),
        strformat("%.2f", r.telemetry.mem_available / (1024.0 * 1024 * 1024)),
        spark::to_string(r.config.app),
        std::to_string(r.config.input_records),
        strformat("%.2f", r.duration),
    });
  }
  std::printf("%s", table
                        .render("Table 3: training samples (subset of the "
                                "full feature set)")
                        .c_str());
  std::printf("\nPaper's example row: RTT 0.011 s, input 100000, "
              "duration 18.18 s.\n");
  return 0;
}
