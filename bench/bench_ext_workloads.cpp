// §8 extension: generalization to unseen application types.
//
// The paper trains and evaluates on the same four applications. §8 asks
// about "real-world applications such as distributed ML pipelines ... and
// multi-stage streaming jobs". This bench adds exactly those two apps and
// asks: does a model trained only on the paper's matrix transfer to them?
// Unseen app types encode as the all-zero application one-hot, so the
// model must rely on telemetry and numeric configuration alone. The
// transfer gap is then measured against a model whose corpus includes the
// new apps.
#include <cstdio>
#include <memory>

#include "core/trainer.hpp"
#include "exp/collector.hpp"
#include "exp/evaluate.hpp"
#include "exp/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace lts;
  const auto paper = exp::paper_scenario_matrix();
  const auto extension = exp::extension_scenario_matrix();
  auto combined = paper;
  combined.insert(combined.end(), extension.begin(), extension.end());

  exp::CollectorOptions collect;
  collect.repeats = 5;
  collect.base_seed = 12000;
  std::printf("Collecting paper-apps corpus (%zu configs x 6 x %d)...\n",
              paper.size(), collect.repeats);
  const CsvTable paper_log = exp::collect_training_data(paper, collect);
  std::printf("Collecting combined corpus (+%zu extension configs)...\n",
              extension.size());
  exp::CollectorOptions collect2 = collect;
  collect2.base_seed = 13000;
  const CsvTable combined_log =
      exp::collect_training_data(combined, collect2);

  std::vector<exp::MethodUnderTest> methods;
  methods.push_back(
      {"rf_paper_apps_only",
       std::shared_ptr<const ml::Regressor>(core::Trainer::train(
           "random_forest", core::Trainer::dataset_from_log(paper_log)))});
  methods.push_back(
      {"rf_with_new_apps",
       std::shared_ptr<const ml::Regressor>(core::Trainer::train(
           "random_forest",
           core::Trainer::dataset_from_log(combined_log)))});

  // Evaluate on the NEW apps only.
  exp::EvalOptions eval;
  eval.num_scenarios = 60;
  eval.base_seed = 881000;
  const auto result = exp::evaluate_methods(methods, extension, eval);

  AsciiTable table({"Model", "Top-1", "Top-2", "Regret (s)"});
  for (const auto& acc : result.accuracy) {
    table.add_row_numeric(acc.method, {acc.top1, acc.top2, acc.mean_regret},
                          3);
  }
  std::printf("%s", table
                        .render("Generalization to unseen applications "
                                "(ml_pipeline + streaming scenarios)")
                        .c_str());
  return 0;
}
