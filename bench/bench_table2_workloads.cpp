// Table 2 reproduction: characteristics of the selected workloads.
//
// The paper characterizes Sort / PageRank / Join qualitatively; this bench
// measures the quantities behind that characterization by running each
// application on a quiet cluster and reporting shuffle volume, total CPU
// work, driver-coordination traffic, result size and the spill factor.
#include <cstdio>

#include "exp/envgen.hpp"
#include "spark/workloads.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace lts;
  exp::EnvOptions quiet;
  quiet.min_background_pods = 0;
  quiet.max_background_pods = 0;

  AsciiTable table({"Application", "duration (s)", "shuffle", "cpu work (core-s)",
                    "driver sync", "result", "max spill"});
  for (const auto app : spark::kAllAppTypes) {
    spark::JobConfig job;
    job.app = app;
    job.input_records = 1000000;
    job.executors = 4;

    Rng dag_rng(1);
    const auto dag = spark::build_dag(job, dag_rng);
    Bytes sync_bytes = 0.0;
    for (const auto& stage : dag.stages) {
      sync_bytes += stage.driver_sync_in +
                    stage.driver_sync_out * static_cast<double>(job.executors);
    }

    exp::SimEnv env(7, quiet);
    env.warmup();
    const auto result = env.run_job(job, 0, 99);
    table.add_row({
        spark::to_string(app),
        strformat("%.1f", result.duration()),
        human_bytes(result.total_shuffle_bytes),
        strformat("%.1f", dag.total_cpu_work()),
        human_bytes(sync_bytes),
        human_bytes(result.result_bytes),
        strformat("%.2fx", result.max_spill_penalty),
    });
  }
  std::printf("%s", table
                        .render("Table 2: measured workload characteristics "
                                "(1M records, 4 executors, quiet cluster)")
                        .c_str());
  std::printf(
      "\nPaper characterization: Sort = high network+CPU from large\n"
      "shuffles; PageRank = high network+CPU from iterative exchange;\n"
      "Join = skewed network, CPU and memory from imbalanced joins.\n");
  return 0;
}
