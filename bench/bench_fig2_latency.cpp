// Figure 2 reproduction: average latency per node across five runs of Sort.
//
// Runs five Sort jobs in one living environment (background load included)
// and prints each node's mean RTT-to-peers averaged over the five run
// windows — the series the paper plots. The expected shape: FIU nodes sit
// higher (cross-country RTTs), and nodes carrying background traffic are
// further inflated by queueing delay.
#include <cstdio>

#include "exp/figures.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace lts;
  spark::JobConfig sort_config;
  sort_config.app = spark::AppType::kSort;
  sort_config.input_records = 1000000;
  sort_config.executors = 4;

  exp::FigureOptions options;
  options.seed = 118;  // a seed with visible background contention
  options.runs = 5;
  options.driver_node = 0;

  const auto figures = exp::figure_sort_telemetry(sort_config, options);

  AsciiTable table({"node", "avg latency (ms)"});
  for (std::size_t i = 0; i < figures.avg_latency_ms.nodes.size(); ++i) {
    table.add_row({figures.avg_latency_ms.nodes[i],
                   strformat("%.2f", figures.avg_latency_ms.values[i])});
  }
  std::printf("%s", table
                        .render("Figure 2: average latency per node across "
                                "five runs of Sort")
                        .c_str());
  std::printf("\nrun durations:");
  for (const double d : figures.run_durations) std::printf(" %.1fs", d);
  std::printf("\n");
  return 0;
}
