// Table 1 reproduction: the input features used by the scheduling model.
//
// Prints the feature schema the Feature Constructor emits (grouped as the
// paper groups them: network / node / job), then one live feature vector
// per node built from a real telemetry snapshot.
#include <cstdio>

#include "core/features.hpp"
#include "exp/envgen.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace lts;
  const auto& names = core::FeatureConstructor::feature_names();

  AsciiTable schema({"#", "feature", "type"});
  const auto type_of = [](const std::string& name) -> std::string {
    if (name.rfind("rtt_", 0) == 0 || name.rfind("tx_", 0) == 0 ||
        name.rfind("rx_", 0) == 0) {
      return "Network";
    }
    if (name.rfind("cpu_", 0) == 0 || name.rfind("mem_", 0) == 0) {
      return "Node";
    }
    return "Job";
  };
  for (std::size_t i = 0; i < names.size(); ++i) {
    schema.add_row({std::to_string(i), names[i], type_of(names[i])});
  }
  std::printf("%s\n", schema
                          .render("Table 1: input features used by the "
                                  "scheduling model")
                          .c_str());

  // A live vector per node for a representative job.
  exp::SimEnv env(118);
  env.warmup();
  const auto snapshot = env.snapshot();
  spark::JobConfig job;
  job.app = spark::AppType::kSort;
  job.input_records = 1000000;
  job.executors = 4;

  std::vector<std::string> header{"feature"};
  for (const auto& node : snapshot.nodes) header.push_back(node.node);
  AsciiTable live(header);
  std::vector<std::vector<double>> vectors =
      core::FeatureConstructor::build_all(snapshot, job);
  for (std::size_t f = 0; f < names.size(); ++f) {
    std::vector<std::string> row{names[f]};
    for (const auto& vec : vectors) row.push_back(strformat("%.3g", vec[f]));
    live.add_row(std::move(row));
  }
  std::printf("%s", live
                        .render("Live feature vectors (sort, 1M records, "
                                "seed 118)")
                        .c_str());
  return 0;
}
