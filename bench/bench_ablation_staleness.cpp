// Ablation: telemetry staleness.
//
// The scheduler fetches telemetry at decision time; this sweep measures how
// accuracy decays when the snapshot is T seconds old by the time the job
// launches — the "model accuracy vs scheduling latency" trade-off the
// paper's future work calls out (§8, deployability).
#include <cstdio>
#include <memory>

#include "core/scheduler.hpp"
#include "core/trainer.hpp"
#include "exp/collector.hpp"
#include "exp/scenario.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace lts;
  const auto matrix = exp::paper_scenario_matrix();
  exp::CollectorOptions collect;
  collect.repeats = 10;
  collect.base_seed = 12000;
  std::printf("Collecting the training corpus...\n");
  const CsvTable log = exp::collect_training_data(matrix, collect);
  const ml::Dataset data = core::Trainer::dataset_from_log(log);
  const std::shared_ptr<const ml::Regressor> model(
      core::Trainer::train("random_forest", data));

  const double staleness_values[] = {0.0, 30.0, 60.0, 120.0, 300.0};
  const int num_scenarios = 60;
  AsciiTable table({"staleness (s)", "Top-1", "Top-2"});

  for (const double staleness : staleness_values) {
    int top1 = 0, top2 = 0;
    for (int s = 0; s < num_scenarios; ++s) {
      const std::uint64_t seed = 660000 + 104729ULL * s;
      Rng pick(seed ^ 0x77);
      const auto& scenario = exp::sample_scenario(matrix, pick);
      const std::uint64_t job_seed = seed ^ 0xfeedULL;

      // The ranking uses a snapshot taken `staleness` seconds before launch.
      std::vector<std::size_t> ranking;
      std::size_t n_nodes = 0;
      {
        exp::SimEnv env(seed);
        env.warmup();
        const auto snapshot = env.snapshot();
        n_nodes = env.node_names().size();
        core::LtsScheduler scheduler(
            core::TelemetryFetcher(env.tsdb(), env.node_names()), model);
        const auto decision =
            scheduler.schedule_from_snapshot(snapshot, scenario.config);
        for (const auto& p : decision.ranking) {
          ranking.push_back(env.cluster().node_index(p.node));
        }
      }
      // Truth: jobs launch `staleness` seconds later.
      std::vector<double> durations;
      for (std::size_t node = 0; node < n_nodes; ++node) {
        exp::SimEnv env(seed);
        env.warmup();
        env.engine().run_until(env.options().warmup + staleness);
        durations.push_back(
            env.run_job(scenario.config, node, job_seed).duration());
      }
      const std::size_t fastest = static_cast<std::size_t>(
          std::min_element(durations.begin(), durations.end()) -
          durations.begin());
      if (ranking[0] == fastest) ++top1;
      if (ranking[0] == fastest || ranking[1] == fastest) ++top2;
    }
    table.add_row_numeric(
        strformat("%.0f", staleness),
        {static_cast<double>(top1) / num_scenarios,
         static_cast<double>(top2) / num_scenarios},
        3);
  }
  std::printf("%s", table
                        .render("Telemetry staleness ablation (random "
                                "forest)")
                        .c_str());
  std::printf("\nNote: background load in this simulator is stationary per\n"
              "scenario, so decay with staleness is expected to be mild; on\n"
              "bursty real clusters it would be steeper.\n");
  return 0;
}
