// Fault-injection experiment: how scheduling quality degrades as the
// substrate and the telemetry pipeline fail, and what the degradation
// policies buy back.
//
// For each fault rate (faults per 100 simulated seconds) we generate one
// deterministic fault schedule — WAN capacity cuts, RTT spikes, exporter
// silences/delays, occasional site partitions; no node crashes, so the
// counterfactual ground-truth replays terminate — and measure:
//
//   * Top-1/Top-2 node-selection accuracy (the Table 4 protocol) of the LTS
//     model with and without its degradation policies (staleness
//     annotation + imputation + stale-demotion + fallback), vs the default
//     Kubernetes scheduler and random placement;
//   * P50/P99 job completion time of a live 30-job stream placed by each
//     policy under the identical fault timeline.
//
// Output: human-readable tables per rate, then one machine-readable JSON
// results table on stdout.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/trainer.hpp"
#include "exp/collector.hpp"
#include "exp/evaluate.hpp"
#include "exp/scenario.hpp"
#include "exp/stream.hpp"
#include "fault/fault.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace lts;
  const auto matrix = exp::paper_scenario_matrix();

  std::printf("Training the scheduler model (720 samples)...\n");
  exp::CollectorOptions collect;
  collect.repeats = 2;
  collect.base_seed = 12000;
  const CsvTable log = exp::collect_training_data(matrix, collect);
  const auto model = std::shared_ptr<const ml::Regressor>(
      core::Trainer::train("random_forest",
                           core::Trainer::dataset_from_log(log)));

  core::DegradationOptions degradation;
  degradation.enabled = true;
  degradation.max_staleness = 10.0;
  core::FallbackOptions fallback;
  fallback.enabled = true;

  Json results = Json::array();
  for (const double rate : {0.0, 2.0, 6.0, 12.0}) {
    std::printf("=== fault rate %.0f / 100 s ===\n", rate);
    exp::FaultScheduleOptions fault_options;
    fault_options.faults_per_100s = rate;
    fault_options.include_crashes = false;

    // --- Top-k accuracy under faults (Table 4 protocol) -----------------
    // Faults concentrate on the pre-decision telemetry window and the
    // measured job's execution (decision at t=40, job done well before
    // t=160), so the configured rate is the rate the decision actually
    // experiences.
    exp::FaultScheduleOptions eval_faults = fault_options;
    eval_faults.start = 10.0;
    eval_faults.horizon = 150.0;
    exp::EvalOptions eval;
    eval.num_scenarios = 10;
    eval.truth_repeats = 1;
    eval.base_seed = 770000;
    eval.env.faults = exp::generate_fault_schedule(
        eval.env.cluster_spec, /*seed=*/9000 + static_cast<int>(rate),
        eval_faults);
    // Escalate telemetry loss with the fault rate: silence 0/1/2/3 node
    // exporters across the decision window, so every decision at higher
    // rates is made from a snapshot with that many stale rows. This is the
    // axis that separates the degraded scheduler (stale rows imputed and
    // demoted) from the plain one (stale rows taken at face value).
    const char* kSilenced[] = {"node-2", "node-5", "node-3"};
    const int silenced = rate >= 12 ? 3 : rate >= 6 ? 2 : rate >= 2 ? 1 : 0;
    for (int i = 0; i < silenced; ++i) {
      fault::FaultSpec silence;
      silence.kind = fault::FaultKind::kExporterSilence;
      silence.target = kSilenced[i];
      silence.at = 15.0 + 5.0 * i;
      silence.duration = 200.0;
      eval.env.faults.push_back(silence);
    }
    std::vector<exp::MethodUnderTest> methods(2);
    methods[0].name = "lts";
    methods[0].model = model;
    methods[1].name = "lts_degraded";
    methods[1].model = model;
    methods[1].degradation = degradation;
    methods[1].fallback = fallback;
    const auto accuracy = exp::evaluate_methods(methods, matrix, eval);

    AsciiTable acc_table({"Method", "Top-1", "Top-2", "Regret (s)"});
    for (const auto& acc : accuracy.accuracy) {
      acc_table.add_row_numeric(acc.method,
                                {acc.top1, acc.top2, acc.mean_regret}, 3);
    }
    std::printf("%s\n", acc_table.render("Node-selection accuracy").c_str());

    // --- live stream JCT under the same fault timeline ------------------
    struct Policy {
      const char* label;
      exp::StreamPolicy policy;
      std::shared_ptr<const ml::Regressor> model;
      bool degraded;
    };
    const Policy policies[] = {
        {"lts_degraded", exp::StreamPolicy::kModel, model, true},
        {"lts", exp::StreamPolicy::kModel, model, false},
        {"kube_default", exp::StreamPolicy::kKubeDefault, nullptr, false},
        {"random", exp::StreamPolicy::kRandom, nullptr, false},
    };
    AsciiTable jct_table(
        {"Scheduler", "P50 JCT (s)", "P99 JCT (s)", "makespan (s)"});
    Json stream_json = Json::object();
    // The stream runs for ~320 s of simulated time; spread its faults over
    // the whole run.
    exp::FaultScheduleOptions stream_faults = fault_options;
    stream_faults.start = 10.0;
    stream_faults.horizon = 350.0;
    for (const auto& p : policies) {
      exp::StreamOptions stream;
      stream.num_jobs = 30;
      stream.mean_interarrival = 12.0;
      stream.seed = 33000;
      stream.env.faults = exp::generate_fault_schedule(
          stream.env.cluster_spec, /*seed=*/9000 + static_cast<int>(rate),
          stream_faults);
      if (p.degraded) {
        stream.degradation = degradation;
        stream.fallback = fallback;
      }
      const auto run = exp::run_job_stream(p.policy, p.model, matrix, stream);
      std::vector<double> durations;
      for (const auto& job : run.jobs) durations.push_back(job.duration);
      const double p50 = percentile(durations, 50);
      const double p99 = percentile(durations, 99);
      jct_table.add_row_numeric(p.label, {p50, p99, run.makespan}, 1);
      JsonObject row;
      row["p50_jct_s"] = p50;
      row["p99_jct_s"] = p99;
      row["makespan_s"] = run.makespan;
      stream_json[p.label] = Json(std::move(row));
    }
    std::printf("%s\n",
                jct_table.render("Live stream: 30 jobs under faults").c_str());

    JsonObject entry;
    entry["fault_rate_per_100s"] = rate;
    Json acc_json = Json::object();
    for (const auto& acc : accuracy.accuracy) {
      JsonObject row;
      row["top1"] = acc.top1;
      row["top2"] = acc.top2;
      row["mean_regret_s"] = acc.mean_regret;
      acc_json[acc.method] = Json(std::move(row));
    }
    entry["accuracy"] = acc_json;
    entry["stream"] = stream_json;
    results.push_back(Json(std::move(entry)));
  }

  std::printf("JSON results:\n%s\n", results.dump(2).c_str());
  return 0;
}
