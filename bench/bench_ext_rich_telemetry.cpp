// §8 extension: richer network telemetry integration.
//
// The paper's future work proposes link-level utilization, queueing-delay
// estimates and passive flow statistics as additional features. This bench
// measures what they are worth: the random forest is trained once on the
// paper's Table-1 features and once on Table-1 + the rich set, from the
// same 3600-sample corpus, and both are evaluated on the same scenarios.
#include <cstdio>
#include <memory>

#include "core/trainer.hpp"
#include "exp/collector.hpp"
#include "exp/evaluate.hpp"
#include "exp/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace lts;
  const auto matrix = exp::paper_scenario_matrix();
  exp::CollectorOptions collect;
  collect.repeats = 10;
  collect.base_seed = 12000;
  std::printf("Collecting the 3600-sample corpus...\n");
  const CsvTable log = exp::collect_training_data(matrix, collect);

  const ml::Dataset table1 =
      core::Trainer::dataset_from_log(log, core::FeatureSet::kTable1);
  const ml::Dataset rich =
      core::Trainer::dataset_from_log(log, core::FeatureSet::kRich);
  std::printf("Feature widths: Table-1 = %zu, rich = %zu\n",
              table1.num_features(), rich.num_features());

  std::vector<exp::MethodUnderTest> methods;
  methods.push_back({"rf_table1",
                     std::shared_ptr<const ml::Regressor>(
                         core::Trainer::train("random_forest", table1)),
                     core::FeatureSet::kTable1});
  methods.push_back({"rf_rich",
                     std::shared_ptr<const ml::Regressor>(
                         core::Trainer::train("random_forest", rich)),
                     core::FeatureSet::kRich});
  methods.push_back({"xgb_table1",
                     std::shared_ptr<const ml::Regressor>(
                         core::Trainer::train("xgboost", table1)),
                     core::FeatureSet::kTable1});
  methods.push_back({"xgb_rich",
                     std::shared_ptr<const ml::Regressor>(
                         core::Trainer::train("xgboost", rich)),
                     core::FeatureSet::kRich});

  exp::EvalOptions eval;
  eval.num_scenarios = 100;
  eval.base_seed = 774000;
  const auto result = exp::evaluate_methods(methods, matrix, eval);

  AsciiTable table({"Method", "Top-1", "Top-2", "Regret (s)"});
  for (const auto& acc : result.accuracy) {
    table.add_row_numeric(acc.method, {acc.top1, acc.top2, acc.mean_regret},
                          3);
  }
  std::printf("%s", table
                        .render("Rich telemetry extension (100 scenarios)")
                        .c_str());
  return 0;
}
