// Figure 4 reproduction: geographic layout of the cluster across three
// FABRIC sites with RTT measurements along the connecting lines.
//
// Prints the measured inter-site RTT matrix (from the live network model,
// i.e. what the ping mesh would report between site routers) plus the
// full node-to-node base RTT matrix.
#include <cstdio>

#include "exp/envgen.hpp"
#include "exp/figures.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace lts;
  const exp::EnvOptions env_options;

  const auto matrix = exp::figure_topology(env_options);
  AsciiTable site_table([&] {
    std::vector<std::string> header{"site"};
    for (const auto& s : matrix.sites) header.push_back(s);
    return header;
  }());
  for (std::size_t i = 0; i < matrix.sites.size(); ++i) {
    std::vector<std::string> row{matrix.sites[i]};
    for (std::size_t j = 0; j < matrix.sites.size(); ++j) {
      row.push_back(i == j ? "-" : strformat("%.1f ms", matrix.rtt_ms[i][j]));
    }
    site_table.add_row(std::move(row));
  }
  std::printf("%s\n",
              site_table
                  .render("Figure 4: inter-site RTTs (ucsd=UC San Diego, "
                          "fiu=Florida International, sri=SRI International)")
                  .c_str());

  // Node-to-node detail (includes per-node access-path heterogeneity).
  exp::SimEnv env(1, env_options);
  const auto& names = env.node_names();
  AsciiTable node_table([&] {
    std::vector<std::string> header{"node"};
    for (const auto& n : names) header.push_back(n);
    return header;
  }());
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::vector<std::string> row{names[i]};
    for (std::size_t j = 0; j < names.size(); ++j) {
      if (i == j) {
        row.push_back("-");
      } else {
        const SimTime rtt = env.cluster().flows().base_rtt(
            env.cluster().node(i).vertex(), env.cluster().node(j).vertex());
        row.push_back(strformat("%.1f", rtt * 1e3));
      }
    }
    node_table.add_row(std::move(row));
  }
  std::printf("%s", node_table
                        .render("Node-to-node base RTT (ms), seed 1")
                        .c_str());
  return 0;
}
