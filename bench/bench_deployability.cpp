// Deployability microbenchmarks (§8 future work: "Quantifying deployability
// and retraining costs"): how much wall-clock the scheduling pipeline and
// the offline training loop actually cost.
//
//   - feature construction per candidate node
//   - model inference per candidate (all three families)
//   - the full prediction-and-ranking decision for a 6-node cluster
//   - offline retraining on the 3600-sample corpus
//   - model (de)serialization
#include <benchmark/benchmark.h>

#include <memory>

#include "core/scheduler.hpp"
#include "core/trainer.hpp"
#include "exp/collector.hpp"
#include "exp/envgen.hpp"
#include "exp/scenario.hpp"

namespace {

using namespace lts;

struct Fixture {
  CsvTable log;
  ml::Dataset data;
  std::map<std::string, std::shared_ptr<const ml::Regressor>> models;
  std::unique_ptr<exp::SimEnv> env;
  telemetry::ClusterSnapshot snapshot;
  spark::JobConfig job;

  Fixture() {
    auto matrix = exp::paper_scenario_matrix();
    matrix.resize(12);  // enough rows for stable models, fast setup
    exp::CollectorOptions collect;
    collect.repeats = 3;
    collect.base_seed = 31;
    log = exp::collect_training_data(matrix, collect);
    data = core::Trainer::dataset_from_log(log);
    for (const std::string name : {"linear", "xgboost", "random_forest"}) {
      models[name] = std::shared_ptr<const ml::Regressor>(
          core::Trainer::train(name, data));
    }
    env = std::make_unique<exp::SimEnv>(118);
    env->warmup();
    snapshot = env->snapshot();
    job.app = spark::AppType::kSort;
    job.input_records = 1000000;
    job.executors = 4;
  }

  static Fixture& get() {
    static Fixture fixture;
    return fixture;
  }
};

void BM_FeatureConstruction(benchmark::State& state) {
  auto& f = Fixture::get();
  for (auto _ : state) {
    for (const auto& node : f.snapshot.nodes) {
      benchmark::DoNotOptimize(
          core::FeatureConstructor::build(node, f.job));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.snapshot.nodes.size()));
}
BENCHMARK(BM_FeatureConstruction);

void BM_Inference(benchmark::State& state, const std::string& model_name) {
  auto& f = Fixture::get();
  const auto& model = *f.models.at(model_name);
  const auto features =
      core::FeatureConstructor::build(f.snapshot.nodes[0], f.job);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_row(features));
  }
}
BENCHMARK_CAPTURE(BM_Inference, linear, "linear");
BENCHMARK_CAPTURE(BM_Inference, xgboost, "xgboost");
BENCHMARK_CAPTURE(BM_Inference, random_forest, "random_forest");

void BM_FullSchedulingDecision(benchmark::State& state) {
  auto& f = Fixture::get();
  core::LtsScheduler scheduler(
      core::TelemetryFetcher(f.env->tsdb(), f.env->node_names()),
      f.models.at("random_forest"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scheduler.schedule(f.job, f.env->engine().now()));
  }
}
BENCHMARK(BM_FullSchedulingDecision);

void BM_KubeDefaultDecision(benchmark::State& state) {
  auto& f = Fixture::get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.env->kube_ranking(f.job));
  }
}
BENCHMARK(BM_KubeDefaultDecision);

void BM_Retrain(benchmark::State& state, const std::string& model_name) {
  auto& f = Fixture::get();
  for (auto _ : state) {
    auto model = core::Trainer::train(model_name, f.data);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.data.size()));
}
BENCHMARK_CAPTURE(BM_Retrain, linear, "linear")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Retrain, xgboost, "xgboost")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Retrain, random_forest, "random_forest")
    ->Unit(benchmark::kMillisecond);

void BM_ModelSerialize(benchmark::State& state) {
  auto& f = Fixture::get();
  const auto& model = *f.models.at("random_forest");
  std::string out;
  for (auto _ : state) {
    out = ml::model_to_json(model).dump();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_ModelSerialize)->Unit(benchmark::kMillisecond);

void BM_ModelDeserialize(benchmark::State& state) {
  auto& f = Fixture::get();
  const std::string text = ml::model_to_json(*f.models.at("random_forest")).dump();
  for (auto _ : state) {
    auto model = ml::model_from_json(Json::parse(text));
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_ModelDeserialize)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
