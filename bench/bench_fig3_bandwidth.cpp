// Figure 3 reproduction: average transmit bandwidth per node across five
// runs of Sort.
//
// Same collection as Figure 2, reporting each node's NIC transmit rate
// averaged over the run windows. Expected shape: nodes hosting background
// HTTP servers or shuffle-heavy executors transmit more; the driver node
// shows the jar/broadcast bursts.
#include <cstdio>

#include "exp/figures.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace lts;
  spark::JobConfig sort_config;
  sort_config.app = spark::AppType::kSort;
  sort_config.input_records = 1000000;
  sort_config.executors = 4;

  exp::FigureOptions options;
  options.seed = 118;
  options.runs = 5;
  options.driver_node = 0;

  const auto figures = exp::figure_sort_telemetry(sort_config, options);

  AsciiTable table({"node", "avg transmit bandwidth (MB/s)"});
  for (std::size_t i = 0; i < figures.avg_tx_mbps.nodes.size(); ++i) {
    table.add_row({figures.avg_tx_mbps.nodes[i],
                   strformat("%.1f", figures.avg_tx_mbps.values[i])});
  }
  std::printf("%s", table
                        .render("Figure 3: average transmit bandwidth per "
                                "node across five runs of Sort")
                        .c_str());
  std::printf("\nrun durations:");
  for (const double d : figures.run_durations) std::printf(" %.1fs", d);
  std::printf("\n");
  return 0;
}
