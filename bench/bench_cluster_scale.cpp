// Cluster scale-out benchmark: the hierarchical max-min solver and the
// sharded event engine at 100 sites / 1k nodes.
//
// Part 1 — solver: a 100-site, 100k-flow storm where traffic is mostly
// site-local (the regime the decomposition targets: WAN flows confined to
// two sites, every other site an independent subproblem). Per-node NIC
// jitter makes every fair share distinct, the worst case for a global
// progressive fill. Measures wall time per full recompute, flat vs
// hierarchical, on the SAME topology and flow set, and cross-checks the
// resulting rates agree. Exits nonzero if the speedup falls below the 5x
// acceptance floor or the rates diverge.
//
// Part 2 — sharded stream: a 1k-node cluster under per-site periodic flow
// churn, every event tagged with its site's shard, shard-batch hooks
// counting the (time, shard) batches the engine forms. Measures end-to-end
// events/sec with the hierarchical solver serving every recompute.
//
// Emits BENCH_cluster_scale.json via exp::BenchReport; CI uploads it with
// the other perf-trajectory artifacts.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "exp/benchio.hpp"
#include "exp/envgen.hpp"
#include "net/flow.hpp"
#include "simcore/engine.hpp"
#include "util/table.hpp"

namespace {

using namespace lts;

constexpr int kSites = 100;
constexpr int kNodesPerSite = 10;
constexpr int kLocalFlowsPerSite = 1000;  // 100 sites x 1000 = 100k flows
constexpr int kCrossSiteFlows = 20;       // confined to sites 0 and 1
constexpr int kMeasuredRecomputes = 2;

exp::ScaledClusterOptions scale_options() {
  exp::ScaledClusterOptions o;
  o.sites = kSites;
  o.nodes_per_site = kNodesPerSite;
  o.nic_jitter = 0.3;  // distinct per-node shares: every share its own round
  return o;
}

// Deterministic site-local pair for the k-th flow of a site: walks the
// nodes with a varying stride so every node sources and sinks many flows.
std::pair<int, int> local_pair(int k) {
  const int src = k % kNodesPerSite;
  const int dst = (src + 1 + (k / kNodesPerSite) % (kNodesPerSite - 1)) %
                  kNodesPerSite;
  return {src, dst};
}

double elapsed_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct SolverRun {
  double seconds_per_recompute = 0.0;
  std::vector<Rate> rates;  // by flow start order
  net::FlowManager::SolverStats stats;
};

SolverRun run_solver(cluster::Cluster& cl, net::SolverMode mode) {
  sim::Engine engine;  // private engine: never run, flushes are on-demand
  net::FlowOptions options;
  options.solver = mode;
  net::FlowManager fm(engine, cl.topology(), options);

  std::vector<net::FlowId> ids;
  ids.reserve(static_cast<std::size_t>(kSites) * kLocalFlowsPerSite +
              kCrossSiteFlows);
  for (int s = 0; s < kSites; ++s) {
    const int base = s * kNodesPerSite;
    for (int k = 0; k < kLocalFlowsPerSite; ++k) {
      const auto [src, dst] = local_pair(k);
      ids.push_back(fm.start(
          cl.node(static_cast<std::size_t>(base + src)).vertex(),
          cl.node(static_cast<std::size_t>(base + dst)).vertex(), 1e15,
          nullptr));
    }
  }
  for (int k = 0; k < kCrossSiteFlows; ++k) {
    ids.push_back(fm.start(
        cl.node(static_cast<std::size_t>(k % kNodesPerSite)).vertex(),
        cl.node(static_cast<std::size_t>(kNodesPerSite + k % kNodesPerSite))
            .vertex(),
        1e15, nullptr));
  }

  SolverRun out;
  (void)fm.solver_stats();  // warmup: first full fill outside the clock
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < kMeasuredRecomputes; ++r) {
    fm.invalidate_rates();
    out.stats = fm.solver_stats();  // flushes the recompute
  }
  out.seconds_per_recompute = elapsed_since(t0) / kMeasuredRecomputes;

  out.rates.reserve(ids.size());
  for (const auto id : ids) out.rates.push_back(fm.info(id).rate);
  return out;
}

struct StreamRun {
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t completed = 0;
  std::uint64_t batches_begun = 0;
  std::uint64_t batches_closed = 0;
};

StreamRun run_sharded_stream() {
  sim::Engine engine;
  auto spec_options = scale_options();
  spec_options.hierarchical_solver = true;
  cluster::Cluster cl(engine, exp::scaled_cluster_spec(spec_options));

  StreamRun out;
  engine.set_shard_batch_hooks([&](int) { ++out.batches_begun; },
                               [&](int) { ++out.batches_closed; });

  // One periodic churn source per site, tagged with the site's shard: all
  // of a site's same-instant work (flow starts here, exporter scrapes in
  // the full SimEnv) batches together under the deterministic cross-site
  // merge. Phases de-synchronize the sites like real scrape jitter does.
  std::vector<std::unique_ptr<sim::PeriodicTask>> churn;
  std::vector<int> next_flow(kSites, 0);
  churn.reserve(kSites);
  for (int s = 0; s < kSites; ++s) {
    churn.push_back(std::make_unique<sim::PeriodicTask>(
        engine, 0.1, 1e-4 * static_cast<double>(s), /*shard=*/s + 1, [&, s] {
          const int base = s * kNodesPerSite;
          const auto [src, dst] = local_pair(next_flow[
              static_cast<std::size_t>(s)]++);
          cl.flows().start(
              cl.node(static_cast<std::size_t>(base + src)).vertex(),
              cl.node(static_cast<std::size_t>(base + dst)).vertex(), 1e6,
              nullptr);
        }));
  }

  const auto t0 = std::chrono::steady_clock::now();
  engine.run_until(5.0);
  for (auto& task : churn) task->stop();
  engine.run();
  out.wall_seconds = elapsed_since(t0);
  out.events = engine.num_processed();
  out.completed = cl.flows().num_completed();
  return out;
}

std::string fmt(double v, const char* spec = "%.4f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

}  // namespace

int main() {
  exp::BenchReport report("cluster_scale");
  report.note("topology",
              "scaled_cluster_spec: 100 sites x 10 nodes, nic_jitter 0.3 "
              "(every fair share distinct)");
  report.note("workload",
              "100k site-local flows (1000/site) + 20 WAN flows confined "
              "to sites 0-1; full-recompute wall time, flat vs "
              "hierarchical, identical topology and flow set");

  // ---- Part 1: hierarchical vs flat solver at 100 sites / 100k flows ----
  sim::Engine topo_engine;
  cluster::Cluster cl(topo_engine, exp::scaled_cluster_spec(scale_options()));
  const SolverRun flat = run_solver(cl, net::SolverMode::kFlat);
  const SolverRun hier = run_solver(cl, net::SolverMode::kHierarchical);

  double max_rel_diff = 0.0;
  for (std::size_t i = 0; i < flat.rates.size(); ++i) {
    const double denom = std::max(std::abs(flat.rates[i]), 1e-9);
    max_rel_diff =
        std::max(max_rel_diff, std::abs(hier.rates[i] - flat.rates[i]) / denom);
  }
  const double speedup =
      flat.seconds_per_recompute / hier.seconds_per_recompute;
  const std::size_t total_flows = flat.rates.size();

  const std::string solver = "hierarchical_solver/100sites_100kflows";
  report.add(solver, "flat_seconds_per_recompute", flat.seconds_per_recompute,
             "s");
  report.add(solver, "hierarchical_seconds_per_recompute",
             hier.seconds_per_recompute, "s");
  report.add(solver, "speedup", speedup);
  report.add(solver, "max_rel_rate_diff", max_rel_diff);
  report.add(solver, "total_flows", static_cast<double>(total_flows));
  report.add(solver, "coupled_flows",
             static_cast<double>(hier.stats.coupled_flows));
  report.add(solver, "site_local_flows",
             static_cast<double>(hier.stats.site_local_flows));
  report.add(solver, "sites_solved_independently",
             static_cast<double>(hier.stats.sites_solved));

  AsciiTable solver_table({"solver", "s/recompute", "speedup", "coupled",
                           "site-local", "indep sites"});
  solver_table.add_row({"flat", fmt(flat.seconds_per_recompute), "1.0x",
                        std::to_string(total_flows), "0", "0"});
  solver_table.add_row({"hierarchical", fmt(hier.seconds_per_recompute),
                        fmt(speedup, "%.1fx"),
                        std::to_string(hier.stats.coupled_flows),
                        std::to_string(hier.stats.site_local_flows),
                        std::to_string(hier.stats.sites_solved)});
  std::printf("%s", solver_table
                        .render("Max-min solver at 100 sites / 100k flows")
                        .c_str());

  // ---- Part 2: sharded 1k-node stream ----
  const StreamRun stream = run_sharded_stream();
  const std::string shard = "sharded_stream/1000nodes";
  report.add(shard, "wall_seconds", stream.wall_seconds, "s");
  report.add(shard, "events", static_cast<double>(stream.events));
  report.add(shard, "events_per_second",
             static_cast<double>(stream.events) / stream.wall_seconds);
  report.add(shard, "flows_completed", static_cast<double>(stream.completed));
  report.add(shard, "shard_batches",
             static_cast<double>(stream.batches_begun));

  AsciiTable stream_table(
      {"nodes", "wall (s)", "events", "events/s", "completed", "batches"});
  stream_table.add_row(
      {"1000", fmt(stream.wall_seconds), std::to_string(stream.events),
       fmt(static_cast<double>(stream.events) / stream.wall_seconds, "%.0f"),
       std::to_string(stream.completed), std::to_string(stream.batches_begun)});
  std::printf("\n%s",
              stream_table.render("Sharded 1k-node stream").c_str());

  report.write("BENCH_cluster_scale.json");
  std::printf("\nwrote BENCH_cluster_scale.json\n");

  // ---- acceptance gates ----
  int rc = 0;
  if (speedup < 5.0) {
    std::fprintf(stderr,
                 "ERROR: hierarchical solver speedup %.2fx below the 5x "
                 "floor at 100 sites / 100k flows\n",
                 speedup);
    rc = 1;
  }
  if (max_rel_diff > 1e-6) {
    std::fprintf(stderr,
                 "ERROR: hierarchical rates diverged from flat by %.3e "
                 "(relative)\n",
                 max_rel_diff);
    rc = 1;
  }
  if (stream.batches_begun == 0 ||
      stream.batches_begun != stream.batches_closed) {
    std::fprintf(stderr, "ERROR: shard batch hooks unbalanced (%llu vs %llu)\n",
                 static_cast<unsigned long long>(stream.batches_begun),
                 static_cast<unsigned long long>(stream.batches_closed));
    rc = 1;
  }
  return rc;
}
