// Ablation: which telemetry families earn the accuracy?
//
// Trains the random forest on (a) the full Table-1 feature set, (b) host
// metrics only (CPU + memory zeroed-network), (c) network metrics only,
// and (d) job configuration only, then evaluates Top-1/Top-2 against the
// same counterfactual truth. Also includes the two one-signal heuristics
// (pick least-loaded / pick lowest-RTT) as non-learning baselines.
//
// Because tree models never split on a column that was constant during
// training, zeroing a feature group in the training corpus is a faithful
// inference-time ablation as well.
#include <cstdio>
#include <memory>
#include <set>

#include "core/features.hpp"
#include "core/trainer.hpp"
#include "exp/collector.hpp"
#include "exp/evaluate.hpp"
#include "exp/scenario.hpp"
#include "util/table.hpp"

namespace {

// Returns a copy of `data` with the named feature columns zeroed.
lts::ml::Dataset mask_features(const lts::ml::Dataset& data,
                               const std::set<std::string>& keep_prefixes) {
  using namespace lts;
  const auto& names = data.feature_names();
  std::vector<bool> keep(names.size(), false);
  for (std::size_t j = 0; j < names.size(); ++j) {
    for (const auto& prefix : keep_prefixes) {
      if (names[j].rfind(prefix, 0) == 0) keep[j] = true;
    }
  }
  ml::Matrix x = data.x();
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      if (!keep[j]) x(i, j) = 0.0;
    }
  }
  std::vector<double> y = data.y();
  return ml::Dataset(std::move(x), std::move(y), names);
}

}  // namespace

int main() {
  using namespace lts;
  const auto matrix = exp::paper_scenario_matrix();
  exp::CollectorOptions collect;
  collect.repeats = 10;
  collect.base_seed = 12000;
  std::printf("Collecting the 3600-sample corpus...\n");
  const CsvTable log = exp::collect_training_data(matrix, collect);
  const ml::Dataset full = core::Trainer::dataset_from_log(log);

  // Feature-name prefixes per group. Job-config features are always kept:
  // without them the model cannot even normalize across workloads.
  const std::set<std::string> job = {"app_", "input_", "executors",
                                     "executor_", "shuffle_"};
  auto with_job = [&](std::set<std::string> extra) {
    extra.insert(job.begin(), job.end());
    return extra;
  };

  struct Variant {
    std::string label;
    ml::Dataset data;
  };
  std::vector<Variant> variants;
  variants.push_back({"full (Table 1)", full});
  variants.push_back(
      {"host-only (cpu+mem)", mask_features(full, with_job({"cpu_", "mem_"}))});
  variants.push_back({"network-only (rtt+tx/rx)",
                      mask_features(full, with_job({"rtt_", "tx_", "rx_"}))});
  variants.push_back({"config-only", mask_features(full, job)});

  std::vector<std::pair<std::string, std::shared_ptr<const ml::Regressor>>>
      models;
  for (auto& v : variants) {
    models.emplace_back(v.label, std::shared_ptr<const ml::Regressor>(
                                     core::Trainer::train("random_forest",
                                                          v.data)));
  }

  exp::EvalOptions eval;
  eval.num_scenarios = 80;
  eval.base_seed = 880000;
  eval.heuristics = {"least_cpu", "least_rtt"};
  const auto result = exp::evaluate_methods(models, matrix, eval);

  AsciiTable table({"Variant", "Top-1", "Top-2", "Regret (s)"});
  for (const auto& acc : result.accuracy) {
    table.add_row_numeric(acc.method, {acc.top1, acc.top2, acc.mean_regret},
                          3);
  }
  std::printf("%s", table
                        .render("Feature ablation (random forest, 80 "
                                "scenarios)")
                        .c_str());
  return 0;
}
