// Online-retraining experiment: does closing the training loop at serving
// time pay for itself when the network drifts away from the training
// distribution?
//
// One offline model is trained on pristine-cluster data, then serves a live
// job stream under two conditions:
//
//   * stationary — the cluster stays as it was during data collection;
//   * drifting   — a deterministic escalating WAN degradation staircase
//     (generate_drift_schedule) permanently cuts link capacity and inflates
//     RTTs in steps, so the (telemetry -> duration) mapping the model
//     learned goes progressively stale.
//
// Each condition runs the identical pre-drawn stream (same seed, same jobs,
// same arrivals) under the static policy (kModel: the offline model serves
// unchanged) and the retrained policy (kModelRetrain: completed jobs feed a
// rolling window, periodic + drift-triggered refits hot-swap the model).
// Retraining should match the static scheduler on the stationary stream
// (nothing to learn, nothing to lose) and beat it on the drifting one.
//
// Output: human-readable tables, a JSON blob on stdout, and
// BENCH_retrain.json for the CI perf-artifact trail.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/trainer.hpp"
#include "exp/benchio.hpp"
#include "exp/collector.hpp"
#include "exp/envgen.hpp"
#include "exp/evaluate.hpp"
#include "exp/scenario.hpp"
#include "exp/stream.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

int main() {
  using namespace lts;
  const auto matrix = exp::paper_scenario_matrix();

  std::printf("Training the offline scheduler model (720 samples)...\n");
  exp::CollectorOptions collect;
  collect.repeats = 2;
  collect.base_seed = 12000;
  const CsvTable log = exp::collect_training_data(matrix, collect);
  const auto model = std::shared_ptr<const ml::Regressor>(
      core::Trainer::train("random_forest",
                           core::Trainer::dataset_from_log(log)));

  exp::BenchReport report("retrain");
  report.note("initial_model", "random_forest (offline, 720 samples)");
  report.note("stream", "120 jobs, mean interarrival 10 s, seed 51000");
  report.note("drift", "escalating permanent WAN degradation staircase");

  struct Condition {
    const char* label;
    bool drift;
  };
  const Condition conditions[] = {{"stationary", false}, {"drifting", true}};
  struct Policy {
    const char* label;
    exp::StreamPolicy policy;
  };
  const Policy policies[] = {
      {"static", exp::StreamPolicy::kModel},
      {"retrained", exp::StreamPolicy::kModelRetrain},
  };

  Json results = Json::object();
  for (const auto& condition : conditions) {
    std::printf("=== %s stream ===\n", condition.label);
    AsciiTable table({"Scheduler", "mean JCT (s)", "P50 JCT (s)",
                      "P99 JCT (s)", "makespan (s)", "retrains"});
    Json condition_json = Json::object();
    for (const auto& p : policies) {
      exp::StreamOptions stream;
      stream.num_jobs = 120;
      stream.mean_interarrival = 10.0;
      stream.seed = 51000;
      if (condition.drift) {
        // Capacity-only drift: the cut is nearly invisible in the RTT
        // features the offline model leans on, but it chokes shuffles —
        // exactly the mapping shift retraining is supposed to catch.
        exp::DriftScheduleOptions drift;
        drift.max_capacity_cut = 0.93;
        drift.max_rtt_spike = 0.0;
        stream.env.faults = exp::generate_drift_schedule(
            stream.env.cluster_spec, stream.seed, drift);
      }
      // Mostly drift-triggered: the periodic schedule is a slow safety net
      // and the EWMA trigger does the real work, so a stationary stream
      // (error stays low) retrains rarely while each drift step (error
      // jumps) pulls a refit forward. The short window keeps refits
      // focused on post-step completions.
      stream.retrain.retrain_every = 40;
      stream.retrain.min_rows = 30;
      stream.retrain.window_size = 90;
      stream.retrain.drift_threshold = 0.35;
      stream.retrain.drift_cooldown = 6;
      stream.retrain.warm_start = false;
      const auto run = exp::run_job_stream(p.policy, model, matrix, stream);
      const auto summary = exp::summarize_stream(run);
      table.add_row_numeric(
          p.label,
          {summary.mean_jct, summary.p50_jct, summary.p99_jct,
           summary.makespan, static_cast<double>(summary.retrains)},
          1);
      const std::string bench =
          std::string(condition.label) + "/" + p.label;
      report.add(bench, "mean_jct", summary.mean_jct, "s");
      report.add(bench, "p50_jct", summary.p50_jct, "s");
      report.add(bench, "p99_jct", summary.p99_jct, "s");
      report.add(bench, "makespan", summary.makespan, "s");
      report.add(bench, "retrains",
                 static_cast<double>(summary.retrains), "count");
      report.add(bench, "retrain_failures",
                 static_cast<double>(summary.retrain_failures), "count");
      report.add(bench, "retrain_skips",
                 static_cast<double>(summary.retrain_skips), "count");
      report.add(bench, "model_version",
                 static_cast<double>(summary.model_version), "version");
      condition_json[p.label] = summary.to_json();
      for (const auto& event : run.retrain_events) {
        std::printf("  [%s] retrain -> %s: version %llu, %zu rows, "
                    "drift %.3f%s\n",
                    p.label, core::to_string(event.outcome).c_str(),
                    static_cast<unsigned long long>(event.version),
                    event.window_rows, event.drift_score,
                    event.drift_triggered ? " [drift-triggered]" : "");
      }
    }
    std::printf("%s\n",
                table.render(std::string("Live stream (") + condition.label +
                             "): static vs retrained")
                    .c_str());
    results[condition.label] = condition_json;
  }

  report.write("BENCH_retrain.json");
  std::printf("JSON results:\n%s\n", results.dump(2).c_str());
  std::printf("bench report written to BENCH_retrain.json\n");
  return 0;
}
