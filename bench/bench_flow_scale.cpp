// Flow-solver scale sweep: shuffle storms of 100 / 1k / 10k concurrent
// flows, run twice — once through a transcription of the pre-overhaul
// FlowManager (eager per-call recompute, map storage, O(links) refills,
// min-scan completion tracking) and once through the real, batched
// epoch-stamped solver. Both simulate the identical workload; the sweep
// proves the wall-clock win AND that the overhaul changed no simulated
// timestamp (final sim times are compared bit-for-bit).
//
// Emits BENCH_flow_scale.json via exp::BenchReport; CI uploads it as the
// perf-trajectory artifact.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "exp/benchio.hpp"
#include "net/flow.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "simcore/engine.hpp"
#include "util/table.hpp"

namespace {

using namespace lts;

// ===================================================== naive reference ====
// The pre-overhaul FlowManager, kept verbatim in spirit: one full max-min
// recompute per start/cancel/completion event, std::map flow storage,
// per-round O(links) count refills, and an O(flows) min-scan to schedule
// the next completion. This is the baseline the acceptance criterion's
// ">= 5x at 10k flows" is measured against.
class NaiveFlowManager {
 public:
  NaiveFlowManager(sim::Engine& engine, const net::Topology& topo)
      : engine_(engine), topo_(topo) {
    link_alloc_.assign(topo_.num_links(), 0.0);
  }

  net::FlowId start(net::VertexId src, net::VertexId dst, Bytes size) {
    advance();
    Flow flow;
    flow.id = next_id_++;
    flow.src = src;
    flow.dst = dst;
    flow.remaining = size;
    flow.path = topo_.route(src, dst);
    const SimTime rtt = 2.0 * 50e-6 + topo_.path_prop_delay(src, dst) +
                        topo_.path_prop_delay(dst, src);
    flow.cap = 16.0 * 1024 * 1024 / std::max(rtt, 1e-6);
    const net::FlowId id = flow.id;
    flows_.emplace(id, std::move(flow));
    recompute_rates();
    schedule_next_completion();
    return id;
  }

  Rate host_tx_rate(net::VertexId host) const {
    Rate total = 0.0;
    for (const auto& [id, f] : flows_) {
      if (f.src == host) total += f.rate;
    }
    return total;
  }

  Rate host_rx_rate(net::VertexId host) const {
    Rate total = 0.0;
    for (const auto& [id, f] : flows_) {
      if (f.dst == host) total += f.rate;
    }
    return total;
  }

  std::uint64_t num_completed() const { return completed_; }
  std::uint64_t num_recomputes() const { return recomputes_; }

 private:
  struct Flow {
    net::FlowId id = net::kInvalidFlow;
    net::VertexId src = net::kNoVertex;
    net::VertexId dst = net::kNoVertex;
    Bytes remaining = 0.0;
    Rate rate = 0.0;
    Rate cap = 0.0;
    std::vector<net::LinkId> path;
  };

  void advance() {
    const SimTime now = engine_.now();
    const SimTime dt = now - last_update_;
    if (dt <= 0.0) {
      last_update_ = now;
      return;
    }
    for (auto& [id, f] : flows_) {
      f.remaining -= std::min(f.remaining, f.rate * dt);
    }
    last_update_ = now;
  }

  void recompute_rates() {
    ++recomputes_;
    std::fill(link_alloc_.begin(), link_alloc_.end(), 0.0);
    if (flows_.empty()) return;
    std::vector<Flow*> unfrozen;
    unfrozen.reserve(flows_.size());
    for (auto& [id, f] : flows_) {
      f.rate = 0.0;
      unfrozen.push_back(&f);
    }
    std::vector<Rate> residual(topo_.num_links());
    for (std::size_t i = 0; i < residual.size(); ++i) {
      residual[i] = topo_.link(static_cast<net::LinkId>(i)).capacity;
    }
    std::vector<int> link_count(topo_.num_links(), 0);
    auto freeze = [&](Flow* f, Rate rate) {
      f->rate = std::max(rate, 1e-3);
      for (const net::LinkId lid : f->path) {
        residual[static_cast<std::size_t>(lid)] = std::max(
            0.0, residual[static_cast<std::size_t>(lid)] - f->rate);
      }
    };
    while (!unfrozen.empty()) {
      std::fill(link_count.begin(), link_count.end(), 0);
      for (const Flow* f : unfrozen) {
        for (const net::LinkId lid : f->path) {
          ++link_count[static_cast<std::size_t>(lid)];
        }
      }
      Rate share = std::numeric_limits<Rate>::infinity();
      for (std::size_t i = 0; i < link_count.size(); ++i) {
        if (link_count[i] == 0) continue;
        share = std::min(share, residual[i] / static_cast<Rate>(link_count[i]));
      }
      bool froze_capped = false;
      for (std::size_t i = 0; i < unfrozen.size();) {
        if (unfrozen[i]->cap <= share) {
          freeze(unfrozen[i], unfrozen[i]->cap);
          unfrozen[i] = unfrozen.back();
          unfrozen.pop_back();
          froze_capped = true;
        } else {
          ++i;
        }
      }
      if (froze_capped) continue;
      std::vector<char> is_bottleneck(link_count.size(), 0);
      for (std::size_t li = 0; li < link_count.size(); ++li) {
        if (link_count[li] > 0 &&
            residual[li] / static_cast<Rate>(link_count[li]) <=
                share * (1.0 + 1e-12)) {
          is_bottleneck[li] = 1;
        }
      }
      for (std::size_t i = 0; i < unfrozen.size();) {
        bool on_bottleneck = false;
        for (const net::LinkId lid : unfrozen[i]->path) {
          if (is_bottleneck[static_cast<std::size_t>(lid)]) {
            on_bottleneck = true;
            break;
          }
        }
        if (on_bottleneck) {
          freeze(unfrozen[i], share);
          unfrozen[i] = unfrozen.back();
          unfrozen.pop_back();
        } else {
          ++i;
        }
      }
    }
    for (const auto& [id, f] : flows_) {
      for (const net::LinkId lid : f.path) {
        link_alloc_[static_cast<std::size_t>(lid)] += f.rate;
      }
    }
  }

  void schedule_next_completion() {
    if (completion_event_ != sim::kInvalidEvent) {
      engine_.cancel(completion_event_);
      completion_event_ = sim::kInvalidEvent;
    }
    if (flows_.empty()) return;
    SimTime earliest = std::numeric_limits<SimTime>::infinity();
    for (const auto& [id, f] : flows_) {
      earliest = std::min(earliest, f.remaining / f.rate);
    }
    completion_event_ = engine_.schedule_in(
        std::max(earliest, 0.0), [this] { handle_completion_event(); });
  }

  void handle_completion_event() {
    completion_event_ = sim::kInvalidEvent;
    advance();
    for (auto it = flows_.begin(); it != flows_.end();) {
      if (it->second.remaining <= std::max(1e-6, it->second.rate * 1e-9)) {
        it = flows_.erase(it);
        ++completed_;
      } else {
        ++it;
      }
    }
    recompute_rates();
    schedule_next_completion();
  }

  sim::Engine& engine_;
  const net::Topology& topo_;
  std::uint64_t next_id_ = 1;
  std::uint64_t completed_ = 0;
  std::uint64_t recomputes_ = 0;
  std::map<net::FlowId, Flow> flows_;
  SimTime last_update_ = 0.0;
  sim::EventId completion_event_ = sim::kInvalidEvent;
  std::vector<Rate> link_alloc_;
};

// ========================================================== workload ====
// M sources on one site, N sinks on another, one backbone: a Spark shuffle
// stage opening every src->dst pair at t=0 in a single event. Sizes vary a
// few percent so completions stagger into many distinct event times.

struct Shuffle {
  net::Topology topo;
  std::vector<net::VertexId> sources;
  std::vector<net::VertexId> sinks;
};

Shuffle make_shuffle_topology(int m, int n) {
  Shuffle s;
  const auto r1 = s.topo.add_router("r1");
  const auto r2 = s.topo.add_router("r2");
  s.topo.add_duplex_link(r1, r2, 100e9, 5e-3);
  for (int i = 0; i < m; ++i) {
    s.sources.push_back(s.topo.add_host("src" + std::to_string(i)));
    s.topo.add_duplex_link(s.sources.back(), r1, 10e9, 1e-4);
  }
  for (int j = 0; j < n; ++j) {
    s.sinks.push_back(s.topo.add_host("dst" + std::to_string(j)));
    s.topo.add_duplex_link(s.sinks.back(), r2, 10e9, 1e-4);
  }
  return s;
}

Bytes shuffle_size(int i, int j) {
  // Deterministic per-pair size variation: staggers the completion times
  // without random draws.
  return 2e6 * (1.0 + static_cast<double>((13 * i + 7 * j) % 97) / 97.0);
}

struct RunResult {
  double wall_seconds = 0.0;
  SimTime final_sim_time = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t recomputes = 0;
  Rate scrape_checksum = 0.0;
};

// Periodically reads every host's tx/rx rate mid-run — the exporter scrape
// pattern whose cost the per-host flow indexes collapse from O(hosts x
// flows) to O(flows).
template <typename ScrapeFn>
void arm_scrapes(sim::Engine& engine, SimTime interval, int count,
                 ScrapeFn scrape) {
  for (int k = 1; k <= count; ++k) {
    engine.schedule_at(interval * static_cast<double>(k), scrape);
  }
}

RunResult run_naive(int m, int n) {
  Shuffle s = make_shuffle_topology(m, n);
  sim::Engine engine;
  NaiveFlowManager fm(engine, s.topo);
  RunResult out;
  engine.schedule_at(0.0, [&] {
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        fm.start(s.sources[static_cast<std::size_t>(i)],
                 s.sinks[static_cast<std::size_t>(j)], shuffle_size(i, j));
      }
    }
  });
  arm_scrapes(engine, 0.05, 20, [&] {
    for (const auto h : s.sources) out.scrape_checksum += fm.host_tx_rate(h);
    for (const auto h : s.sinks) out.scrape_checksum += fm.host_rx_rate(h);
  });
  const auto wall_begin = std::chrono::steady_clock::now();
  engine.run();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_begin)
          .count();
  out.final_sim_time = engine.now();
  out.completed = fm.num_completed();
  out.recomputes = fm.num_recomputes();
  return out;
}

RunResult run_optimized(int m, int n) {
  Shuffle s = make_shuffle_topology(m, n);
  sim::Engine engine;
  net::FlowManager fm(engine, s.topo);
  auto& registry = obs::MetricsRegistry::global();
  auto& recompute_counter = registry.counter("lts_net_rate_recomputes_total");
  registry.set_enabled(true);
  const double recomputes_before = recompute_counter.value();
  RunResult out;
  engine.schedule_at(0.0, [&] {
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        fm.start(s.sources[static_cast<std::size_t>(i)],
                 s.sinks[static_cast<std::size_t>(j)], shuffle_size(i, j),
                 nullptr);
      }
    }
  });
  arm_scrapes(engine, 0.05, 20, [&] {
    for (const auto h : s.sources) out.scrape_checksum += fm.host_tx_rate(h);
    for (const auto h : s.sinks) out.scrape_checksum += fm.host_rx_rate(h);
  });
  const auto wall_begin = std::chrono::steady_clock::now();
  engine.run();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_begin)
          .count();
  registry.set_enabled(false);
  out.final_sim_time = engine.now();
  out.completed = fm.num_completed();
  out.recomputes = static_cast<std::uint64_t>(
      std::llround(recompute_counter.value() - recomputes_before));
  return out;
}

// 100k-flow tier: the naive baseline's eager O(flows x links) recomputes
// would run for hours here, so the storm runs through the optimized solver
// only and stops after the scrape window instead of draining — measuring
// the cost of the initial 100k-flow fill plus the periodic all-host
// scrapes, which is the quantity that scales.
RunResult run_optimized_bounded(int m, int n, SimTime horizon) {
  Shuffle s = make_shuffle_topology(m, n);
  sim::Engine engine;
  net::FlowManager fm(engine, s.topo);
  RunResult out;
  engine.schedule_at(0.0, [&] {
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        fm.start(s.sources[static_cast<std::size_t>(i)],
                 s.sinks[static_cast<std::size_t>(j)], shuffle_size(i, j),
                 nullptr);
      }
    }
  });
  arm_scrapes(engine, 0.05, 20, [&] {
    for (const auto h : s.sources) out.scrape_checksum += fm.host_tx_rate(h);
    for (const auto h : s.sinks) out.scrape_checksum += fm.host_rx_rate(h);
  });
  const auto wall_begin = std::chrono::steady_clock::now();
  engine.run_until(horizon);
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_begin)
          .count();
  out.final_sim_time = engine.now();
  out.completed = fm.num_completed();
  return out;
}

std::string fmt(double v, const char* spec = "%.4f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

}  // namespace

int main() {
  exp::BenchReport report("flow_scale");
  report.note("workload",
              "M x N shuffle storm started in one event; sizes vary ~2x; "
              "20 periodic all-host rate scrapes");
  report.note("baseline",
              "pre-overhaul FlowManager: eager recompute per start/"
              "completion, map storage, O(links) refills, min-scan "
              "completion tracking");

  AsciiTable table({"flows", "naive (s)", "optimized (s)", "speedup",
                    "naive recomputes", "opt recomputes", "sim time equal"});
  const std::vector<std::pair<int, int>> sweep{{10, 10}, {32, 32}, {100, 100}};
  bool all_match = true;
  for (const auto& [m, n] : sweep) {
    const int flows = m * n;
    const RunResult naive = run_naive(m, n);
    const RunResult opt = run_optimized(m, n);
    // The deferred/batched solver must not move a single simulated
    // timestamp: the drained engines' clocks agree bit-for-bit.
    const bool match = naive.final_sim_time == opt.final_sim_time &&
                       naive.completed == opt.completed &&
                       naive.completed == static_cast<std::uint64_t>(flows);
    all_match = all_match && match;
    const double speedup = naive.wall_seconds / opt.wall_seconds;
    const std::string label = "shuffle_storm/" + std::to_string(flows);
    report.add(label, "naive_seconds", naive.wall_seconds, "s");
    report.add(label, "optimized_seconds", opt.wall_seconds, "s");
    report.add(label, "speedup", speedup);
    report.add(label, "naive_recomputes",
               static_cast<double>(naive.recomputes));
    report.add(label, "optimized_recomputes",
               static_cast<double>(opt.recomputes));
    report.add(label, "final_sim_time", opt.final_sim_time, "simulated s");
    report.add(label, "sim_time_matches_naive", match ? 1.0 : 0.0);
    table.add_row({std::to_string(flows), fmt(naive.wall_seconds),
                   fmt(opt.wall_seconds), fmt(speedup, "%.1fx"),
                   std::to_string(naive.recomputes),
                   std::to_string(opt.recomputes), match ? "yes" : "NO"});
  }
  // 316 x 316 = 99856 concurrent flows: optimized solver only (the naive
  // baseline is infeasible at this size), bounded to the scrape window.
  {
    const int m = 316, n = 316;
    const RunResult big = run_optimized_bounded(m, n, /*horizon=*/1.0);
    const int flows = m * n;
    const std::string label = "shuffle_storm/" + std::to_string(flows);
    report.add(label, "optimized_seconds", big.wall_seconds, "s");
    report.add(label, "scrape_checksum", big.scrape_checksum, "bytes/s");
    report.add(label, "bounded_horizon", 1.0, "simulated s");
    table.add_row({std::to_string(flows), "skipped", fmt(big.wall_seconds),
                   "-", "-", "-", "n/a"});
  }
  std::printf("%s", table.render("Flow-solver scale sweep").c_str());
  report.write("BENCH_flow_scale.json");
  std::printf("\nwrote BENCH_flow_scale.json\n");
  if (!all_match) {
    std::fprintf(stderr,
                 "ERROR: optimized solver diverged from the naive baseline\n");
    return 1;
  }
  return 0;
}
