// Substrate microbenchmarks: raw throughput of the simulator layers, to
// back the claim that full-scale data collection (3600 jobs) is cheap.
#include <benchmark/benchmark.h>

#include "exp/benchio.hpp"
#include "exp/envgen.hpp"
#include "exp/scenario.hpp"
#include "net/flow.hpp"
#include "obs/metrics.hpp"
#include "simcore/engine.hpp"
#include "telemetry/tsdb.hpp"

namespace {

using namespace lts;

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    int counter = 0;
    std::function<void()> tick = [&] {
      if (++counter < 10000) engine.schedule_in(0.001, tick);
    };
    engine.schedule_in(0.001, tick);
    engine.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_EngineEventThroughput);

void BM_FlowFairShareRecompute(benchmark::State& state) {
  const auto n_flows = static_cast<int>(state.range(0));
  sim::Engine engine;
  net::Topology topo;
  const auto a = topo.add_host("a");
  const auto b = topo.add_host("b");
  const auto r = topo.add_router("r");
  topo.add_duplex_link(a, r, 1e9, 1e-4);
  topo.add_duplex_link(r, b, 1e8, 1e-3);
  net::FlowManager fm(engine, topo);
  for (int i = 0; i < n_flows - 1; ++i) {
    fm.start(a, b, 1e12, nullptr);  // long-lived background flows
  }
  for (auto _ : state) {
    // start/cancel only mark the solver dirty now; observing a host rate
    // forces the flush, so each iteration still measures two full max-min
    // recomputations over n_flows.
    const auto id = fm.start(a, b, 1e12, nullptr);
    benchmark::DoNotOptimize(fm.host_tx_rate(a));
    fm.cancel(id);
    benchmark::DoNotOptimize(fm.host_tx_rate(a));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_FlowFairShareRecompute)->Arg(4)->Arg(32)->Arg(128);

void BM_TsdbAppendQuery(benchmark::State& state) {
  telemetry::Tsdb tsdb;
  const telemetry::Labels labels{{"node", "node-1"}};
  double t = 0.0;
  for (auto _ : state) {
    tsdb.append("metric", labels, t, t * 2.0);
    benchmark::DoNotOptimize(tsdb.rate("metric", labels, t, 30.0));
    t += 1.0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TsdbAppendQuery);

void BM_EnvWarmup(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    exp::SimEnv env(seed++);
    env.warmup();
    benchmark::DoNotOptimize(env.snapshot());
  }
}
BENCHMARK(BM_EnvWarmup)->Unit(benchmark::kMillisecond);

void BM_FullJobSimulation(benchmark::State& state) {
  spark::JobConfig job;
  job.app = spark::AppType::kSort;
  job.input_records = 1000000;
  job.executors = 4;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    exp::SimEnv env(seed++);
    env.warmup();
    benchmark::DoNotOptimize(env.run_job(job, 0, seed));
  }
}
BENCHMARK(BM_FullJobSimulation)->Unit(benchmark::kMillisecond);

// Cost of a permanently-instrumented hot path: disabled, a counter inc is a
// relaxed load + branch; enabled, it adds an atomic fetch_add. Both must be
// far below the cost of any simulated event.
void BM_ObsCounterDisabled(benchmark::State& state) {
  auto& registry = obs::MetricsRegistry::global();
  registry.set_enabled(false);
  auto& counter = registry.counter("bench_disabled_total");
  for (auto _ : state) {
    counter.inc();
    benchmark::DoNotOptimize(&counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsCounterDisabled);

void BM_ObsCounterEnabled(benchmark::State& state) {
  auto& registry = obs::MetricsRegistry::global();
  registry.set_enabled(true);
  auto& counter = registry.counter("bench_enabled_total");
  for (auto _ : state) {
    counter.inc();
    benchmark::DoNotOptimize(&counter);
  }
  registry.set_enabled(false);  // leave the shared registry as it was found
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsCounterEnabled);

// The full simulation stack with the registry enabled: the acceptance bar
// is that this stays within noise of BM_EnvWarmup (instrumentation must
// not tax the event loop, the flow solver, or TSDB ingestion noticeably).
void BM_EnvWarmupObserved(benchmark::State& state) {
  auto& registry = obs::MetricsRegistry::global();
  registry.set_enabled(true);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    exp::SimEnv env(seed++);
    env.warmup();
    benchmark::DoNotOptimize(env.snapshot());
  }
  registry.set_enabled(false);
}
BENCHMARK(BM_EnvWarmupObserved)->Unit(benchmark::kMillisecond);

// Console output for humans plus a BENCH_sim_microbench.json artifact for
// CI, through the same exp::BenchReport writer bench_flow_scale uses.
class JsonWriterReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonWriterReporter(exp::BenchReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      report_.add(run.benchmark_name(), "real_time", run.GetAdjustedRealTime(),
                  benchmark::GetTimeUnitString(run.time_unit));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  exp::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  lts::exp::BenchReport report("sim_microbench");
  JsonWriterReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  report.write("BENCH_sim_microbench.json");
  return 0;
}
