// Serving-path decision throughput: a queue of pending pods ranked on the
// paper topology, run twice — once through the scalar path (one TSDB sweep
// and one predict_row pointer walk per candidate, per decision; the
// pre-batching serving loop, reproduced honestly by disabling the snapshot
// cache) and once through the batched path (schedule_many: one epoch-cached
// snapshot fetch and one flattened predict_batch over every (pod, node)
// candidate). Both paths rank the identical queue; the run FAILS (nonzero
// exit) if any decision — node order or predicted duration, compared
// bit-for-bit — diverges between them.
//
// Reports decisions/sec plus p50/p99 per-decision latency for both paths
// and emits BENCH_decision_throughput.json via exp::BenchReport; CI uploads
// it as the perf-trajectory artifact.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/features.hpp"
#include "core/fetcher.hpp"
#include "core/scheduler.hpp"
#include "exp/benchio.hpp"
#include "exp/envgen.hpp"
#include "ml/model.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace lts;

/// Forest with the Table-1 feature layout, trained on a synthetic corpus
/// where duration tracks load and network rates: rankings are non-trivial.
std::shared_ptr<const ml::Regressor> train_model(std::uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data;
  data.set_feature_names(core::FeatureConstructor::feature_names());
  telemetry::NodeTelemetry t;
  t.node = "x";
  t.rtt_mean = 0.03;
  t.rtt_max = 0.07;
  t.rtt_std = 0.02;
  t.mem_available = 6.0 * 1024 * 1024 * 1024;
  spark::JobConfig config;
  for (int i = 0; i < 600; ++i) {
    t.cpu_load = rng.uniform(0.0, 6.0);
    t.tx_rate = rng.uniform(1e6, 200e6);
    t.rx_rate = rng.uniform(1e6, 100e6);
    config.app = spark::kAllAppTypes[static_cast<std::size_t>(i) %
                                     spark::kNumAppTypes];
    config.input_records = 100000 * (1 + i % 10);
    const auto x = core::FeatureConstructor::build(t, config);
    data.add_row(x, 2.0 + t.cpu_load + t.tx_rate / 100e6 +
                        config.input_records / 4e5 + 0.05 * rng.normal());
  }
  auto model = ml::create_regressor("random_forest");
  model->fit(data);
  return std::shared_ptr<const ml::Regressor>(std::move(model));
}

/// A queue the way a real control plane sees one: deployments and batch
/// jobs submit replicas, so the 64 pending pods come from 16 distinct pod
/// templates (4 app types x 4 size/executor shapes), 4 replicas each.
/// Replicas are interleaved rather than adjacent — the batched path's row
/// dedup keys on content, not position.
std::vector<spark::JobConfig> make_queue(std::size_t n) {
  constexpr std::size_t kTemplates = 16;
  std::vector<spark::JobConfig> templates;
  for (std::size_t s = 0; s < kTemplates; ++s) {
    spark::JobConfig config;
    config.app = spark::kAllAppTypes[s % spark::kNumAppTypes];
    const auto shape = static_cast<long long>(s / spark::kNumAppTypes);
    config.input_records = 200000 * (1 + shape);
    config.executors = 2 + static_cast<int>(shape % 3);
    config.validate();
    templates.push_back(config);
  }
  std::vector<spark::JobConfig> configs;
  for (std::size_t q = 0; q < n; ++q) {
    configs.push_back(templates[q % kTemplates]);
  }
  return configs;
}

bool decisions_equal(const core::Decision& a, const core::Decision& b) {
  if (a.used_fallback != b.used_fallback ||
      a.stale_demoted != b.stale_demoted ||
      a.ranking.size() != b.ranking.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.ranking.size(); ++i) {
    if (a.ranking[i].node != b.ranking[i].node ||
        a.ranking[i].predicted_duration != b.ranking[i].predicted_duration) {
      return false;
    }
  }
  return true;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1));
  return samples[idx];
}

struct PathResult {
  std::vector<core::Decision> decisions;
  double wall_seconds = 0.0;
  std::vector<double> per_decision_us;
};

std::string fmt(double v, const char* spec = "%.2f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

}  // namespace

int main() {
  // Paper topology (6 nodes / 3 sites), warmed so load averages and NIC
  // rate windows carry signal.
  exp::SimEnv env(118);
  env.warmup();
  const SimTime now = env.engine().now();
  const auto model = train_model(7);

  constexpr std::size_t kQueue = 64;
  constexpr int kIterations = 200;
  const auto configs = make_queue(kQueue);

  // Scalar baseline: cache disabled, so every schedule() pays the full
  // pre-batching cost — one TSDB sweep plus per-node predict_row walks.
  core::TelemetryFetcher scalar_fetcher(env.tsdb(), env.node_names());
  scalar_fetcher.set_cache_enabled(false);
  core::LtsScheduler scalar(scalar_fetcher, model);
  // Batched path: epoch-keyed cache on, one schedule_many per queue.
  core::LtsScheduler batched(
      core::TelemetryFetcher(env.tsdb(), env.node_names()), model);

  PathResult scalar_result, batched_result;
  using Clock = std::chrono::steady_clock;
  bool identical = true;

  for (int it = 0; it < kIterations; ++it) {
    std::vector<core::Decision> seq;
    seq.reserve(kQueue);
    const auto seq_begin = Clock::now();
    for (const auto& config : configs) {
      const auto d_begin = Clock::now();
      seq.push_back(scalar.schedule(config, now));
      scalar_result.per_decision_us.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - d_begin)
              .count());
    }
    scalar_result.wall_seconds +=
        std::chrono::duration<double>(Clock::now() - seq_begin).count();

    const auto batch_begin = Clock::now();
    auto batch = batched.schedule_many(configs, now);
    const double batch_seconds =
        std::chrono::duration<double>(Clock::now() - batch_begin).count();
    batched_result.wall_seconds += batch_seconds;
    batched_result.per_decision_us.push_back(batch_seconds * 1e6 /
                                             static_cast<double>(kQueue));

    for (std::size_t q = 0; q < kQueue; ++q) {
      identical = identical && decisions_equal(seq[q], batch[q]);
    }
    if (it == 0) {
      scalar_result.decisions = std::move(seq);
      batched_result.decisions = std::move(batch);
    }
  }

  const double total =
      static_cast<double>(kQueue) * static_cast<double>(kIterations);
  const double scalar_dps = total / scalar_result.wall_seconds;
  const double batched_dps = total / batched_result.wall_seconds;
  const double speedup = batched_dps / scalar_dps;

  exp::BenchReport report("decision_throughput");
  report.note("workload",
              "64-pod queue (16 pod templates x 4 replicas) on the paper "
              "topology (6 nodes / 3 sites), random-forest model, 200 "
              "iterations");
  report.note("baseline",
              "scalar serving loop: per-decision TSDB sweep (cache "
              "disabled) + per-node predict_row pointer walks");
  report.note("optimized",
              "schedule_many: epoch-cached snapshot fetch + exact dedup of "
              "replica (pod, node) rows + flattened predict_batch over the "
              "distinct candidates");
  const std::string label = "queue/" + std::to_string(kQueue);
  report.add(label, "scalar_decisions_per_sec", scalar_dps, "1/s");
  report.add(label, "batched_decisions_per_sec", batched_dps, "1/s");
  report.add(label, "speedup", speedup);
  report.add(label, "scalar_p50_us",
             percentile(scalar_result.per_decision_us, 0.50), "us");
  report.add(label, "scalar_p99_us",
             percentile(scalar_result.per_decision_us, 0.99), "us");
  report.add(label, "batched_p50_us",
             percentile(batched_result.per_decision_us, 0.50), "us");
  report.add(label, "batched_p99_us",
             percentile(batched_result.per_decision_us, 0.99), "us");
  report.add(label, "decisions_identical", identical ? 1.0 : 0.0);

  AsciiTable table({"path", "decisions/sec", "p50 (us)", "p99 (us)"});
  table.add_row({"scalar", fmt(scalar_dps, "%.0f"),
                 fmt(percentile(scalar_result.per_decision_us, 0.50)),
                 fmt(percentile(scalar_result.per_decision_us, 0.99))});
  table.add_row({"batched+cached", fmt(batched_dps, "%.0f"),
                 fmt(percentile(batched_result.per_decision_us, 0.50)),
                 fmt(percentile(batched_result.per_decision_us, 0.99))});
  std::printf("%s", table.render("Decision throughput (64-pod queue)")
                        .c_str());
  std::printf("\nspeedup: %.1fx  decisions identical: %s\n", speedup,
              identical ? "yes" : "NO");
  report.write("BENCH_decision_throughput.json");
  std::printf("wrote BENCH_decision_throughput.json\n");

  if (!identical) {
    std::fprintf(stderr,
                 "ERROR: batched decisions diverged from the scalar path\n");
    return 1;
  }
  return 0;
}
