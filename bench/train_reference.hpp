// Pre-overhaul training reference, kept verbatim in spirit: the per-node
// gather + std::sort split search that ml::DecisionTreeRegressor and
// ml::GradientBoostedTrees ran before the presorted-column overhaul, plus
// the scalar per-row tree walk the GBT used for its per-round prediction
// update. bench_train_throughput measures the real trainers against these,
// and tests/train_test.cpp pins the two implementations together bit for
// bit (serialized models and predictions compare with EXPECT_EQ).
//
// The one deliberate divergence from the historical code: the GBT split
// threshold carries the adjacent-double midpoint snap (the fix the tree
// got first). The historical behavior for that input was an LTS_ASSERT
// abort, so both sides embody the fix and the regression test exercises it.
//
// Deliberately NOT reached by production code; shared by bench + tests via
// a relative include.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/forest.hpp"
#include "ml/gbt.hpp"
#include "ml/tree.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace lts::trainref {

// ======================================================= decision tree ====

struct RefTree {
  std::vector<ml::TreeNode> nodes;
  std::vector<double> importance;
};

struct RefSplit {
  int feature = -1;
  double threshold = 0.0;
  double gain = 0.0;
};

/// Per-node exact greedy split search: gather (x, y) pairs for every
/// candidate feature, std::sort, prefix-scan — the O(features x n log n)
/// per-node pattern the presorted columns replaced.
inline std::optional<RefSplit> split_search(
    const ml::Dataset& data, const ml::TreeParams& params,
    std::size_t num_features, std::span<const std::size_t> rows, Rng& rng,
    std::vector<std::size_t>& features,
    std::vector<std::pair<double, double>>& vals) {
  const std::size_t n = rows.size();
  double sum = 0.0, sumsq = 0.0;
  for (const std::size_t r : rows) {
    const double y = data.target(r);
    sum += y;
    sumsq += y * y;
  }
  const double parent_sse = sumsq - sum * sum / static_cast<double>(n);
  if (parent_sse <= 1e-12) return std::nullopt;  // pure node

  if (params.max_features > 0 &&
      static_cast<std::size_t>(params.max_features) < num_features) {
    rng.sample_without_replacement(
        num_features, static_cast<std::size_t>(params.max_features),
        features);
  } else {
    features.resize(num_features);
    std::iota(features.begin(), features.end(), std::size_t{0});
  }

  RefSplit best;
  vals.reserve(n);
  const auto min_leaf = static_cast<std::size_t>(params.min_samples_leaf);
  for (const std::size_t f : features) {
    vals.clear();
    for (const std::size_t r : rows) {
      vals.emplace_back(data.x()(r, f), data.target(r));
    }
    std::sort(vals.begin(), vals.end());
    double left_sum = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      left_sum += vals[i].second;
      if (i + 1 < min_leaf || n - i - 1 < min_leaf) continue;
      if (vals[i].first == vals[i + 1].first) continue;  // no boundary here
      const double nl = static_cast<double>(i + 1);
      const double nr = static_cast<double>(n - i - 1);
      const double right_sum = sum - left_sum;
      const double gain = left_sum * left_sum / nl +
                          right_sum * right_sum / nr -
                          sum * sum / static_cast<double>(n);
      if (gain > best.gain) {
        best.feature = static_cast<int>(f);
        double threshold = (vals[i].first + vals[i + 1].first) / 2.0;
        if (threshold >= vals[i + 1].first) threshold = vals[i].first;
        best.threshold = threshold;
        best.gain = gain;
      }
    }
  }
  if (best.feature < 0 || best.gain < params.min_impurity_decrease ||
      best.gain <= 1e-12) {
    return std::nullopt;
  }
  return best;
}

inline int grow_node(const ml::Dataset& data, const ml::TreeParams& params,
                     std::size_t num_features, RefTree& out,
                     std::vector<std::size_t>& rows, std::size_t begin,
                     std::size_t end, int depth, Rng& rng,
                     std::vector<std::size_t>& features,
                     std::vector<std::pair<double, double>>& vals) {
  const std::size_t n = end - begin;
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += data.target(rows[i]);
  const double node_mean = sum / static_cast<double>(n);

  const int node_index = static_cast<int>(out.nodes.size());
  out.nodes.push_back(ml::TreeNode{});
  out.nodes[static_cast<std::size_t>(node_index)].value = node_mean;
  out.nodes[static_cast<std::size_t>(node_index)].n_samples =
      static_cast<int>(n);

  const bool can_split =
      depth < params.max_depth &&
      n >= static_cast<std::size_t>(params.min_samples_split) &&
      n >= 2 * static_cast<std::size_t>(params.min_samples_leaf);
  if (!can_split) return node_index;

  const auto split = split_search(
      data, params, num_features,
      std::span<const std::size_t>(rows.data() + begin, n), rng, features,
      vals);
  if (!split.has_value()) return node_index;

  const auto mid_it = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(begin),
      rows.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t r) {
        return data.x()(r, static_cast<std::size_t>(split->feature)) <=
               split->threshold;
      });
  const std::size_t mid = static_cast<std::size_t>(mid_it - rows.begin());
  LTS_ASSERT(mid > begin && mid < end);

  out.importance[static_cast<std::size_t>(split->feature)] += split->gain;

  const int left = grow_node(data, params, num_features, out, rows, begin,
                             mid, depth + 1, rng, features, vals);
  const int right = grow_node(data, params, num_features, out, rows, mid,
                              end, depth + 1, rng, features, vals);
  auto& node = out.nodes[static_cast<std::size_t>(node_index)];
  node.feature = split->feature;
  node.threshold = split->threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

inline RefTree fit_tree_on(const ml::Dataset& data,
                           const ml::TreeParams& params,
                           std::span<const std::size_t> rows, Rng& rng) {
  RefTree out;
  out.importance.assign(data.num_features(), 0.0);
  std::vector<std::size_t> working(rows.begin(), rows.end());
  std::vector<std::size_t> features;
  std::vector<std::pair<double, double>> vals;
  grow_node(data, params, data.num_features(), out, working, 0,
            working.size(), 0, rng, features, vals);
  return out;
}

/// Matches DecisionTreeRegressor::fit(data) with the given seed.
inline RefTree fit_tree(const ml::Dataset& data, const ml::TreeParams& params,
                        std::uint64_t seed) {
  std::vector<std::size_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  Rng rng(seed);
  return fit_tree_on(data, params, rows, rng);
}

inline double tree_value(const RefTree& t, std::span<const double> features) {
  int idx = 0;
  while (!t.nodes[static_cast<std::size_t>(idx)].is_leaf()) {
    const auto& node = t.nodes[static_cast<std::size_t>(idx)];
    idx = features[static_cast<std::size_t>(node.feature)] <= node.threshold
              ? node.left
              : node.right;
  }
  return t.nodes[static_cast<std::size_t>(idx)].value;
}

/// Mirrors DecisionTreeRegressor::to_json field for field.
inline Json tree_model_json(const RefTree& t, const ml::TreeParams& params,
                            std::size_t num_features) {
  Json j = Json::object();
  j["params"] = params.to_json();
  j["num_features"] = num_features;
  JsonArray nodes;
  nodes.reserve(t.nodes.size());
  for (const auto& node : t.nodes) {
    JsonArray fields;
    fields.emplace_back(node.feature);
    fields.emplace_back(node.threshold);
    fields.emplace_back(node.left);
    fields.emplace_back(node.right);
    fields.emplace_back(node.value);
    fields.emplace_back(node.n_samples);
    nodes.emplace_back(std::move(fields));
  }
  j["nodes"] = Json(std::move(nodes));
  j["importance"] = Json::from_doubles(t.importance);
  return j;
}

// ======================================================= random forest ====

struct RefForest {
  ml::ForestParams params;
  std::size_t num_features = 0;
  std::uint64_t refit_generation = 0;
  ml::TreeParams effective_tree;  // per-tree params with max_features applied
  std::vector<RefTree> trees;

  void grow(const ml::Dataset& data, std::size_t count, std::uint64_t salt,
            std::vector<RefTree>& grown) {
    const std::size_t n = data.size();
    grown.assign(count, RefTree{});
    // Same per-tree Rng derivation and parallel growth discipline as
    // RandomForestRegressor::grow_trees — only the split finder inside each
    // tree differs, so the timing delta isolates the presort.
    // lts-lint: shared-guarded(partitioned: tree b writes only grown[b]; data/params are read-only)
    ThreadPool::global().parallel_for(count, [&](std::size_t b) {
      Rng rng((params.seed + salt) * 0x9e3779b97f4a7c15ULL + b * 2 + 1);
      std::vector<std::size_t> rows;
      rows.reserve(n);
      if (params.bootstrap) {
        for (std::size_t i = 0; i < n; ++i) {
          rows.push_back(static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
        }
      } else {
        rows.resize(n);
        std::iota(rows.begin(), rows.end(), std::size_t{0});
      }
      grown[b] = fit_tree_on(data, effective_tree, rows, rng);
    });
  }

  void fit(const ml::Dataset& data) {
    num_features = data.num_features();
    effective_tree = params.tree;
    effective_tree.max_features =
        params.max_features > 0
            ? params.max_features
            : std::max(1, static_cast<int>(num_features) / 3);
    refit_generation = 0;
    grow(data, static_cast<std::size_t>(params.n_estimators), /*salt=*/0,
         trees);
  }

  void refit(const ml::Dataset& data) {
    // FIFO half-replacement with a generation-salted Rng, as
    // RandomForestRegressor::refit does.
    ++refit_generation;
    const std::size_t replaced = std::max<std::size_t>(1, trees.size() / 2);
    std::vector<RefTree> fresh;
    grow(data, replaced, refit_generation, fresh);
    std::vector<RefTree> next;
    next.reserve(trees.size());
    for (std::size_t i = replaced; i < trees.size(); ++i) {
      next.push_back(std::move(trees[i]));
    }
    for (auto& t : fresh) next.push_back(std::move(t));
    trees = std::move(next);
  }

  double predict_one(std::span<const double> features) const {
    double total = 0.0;
    for (const auto& t : trees) total += tree_value(t, features);
    return total / static_cast<double>(trees.size());
  }
};

/// Mirrors RandomForestRegressor::to_json field for field.
inline Json forest_model_json(const RefForest& f) {
  Json j = Json::object();
  j["params"] = f.params.to_json();
  j["num_features"] = f.num_features;
  j["refit_generation"] = static_cast<double>(f.refit_generation);
  JsonArray trees;
  trees.reserve(f.trees.size());
  for (const auto& t : f.trees) {
    trees.push_back(tree_model_json(t, f.effective_tree, f.num_features));
  }
  j["trees"] = Json(std::move(trees));
  return j;
}

// ============================================= gradient-boosted trees ====

class RefGbt {
 public:
  explicit RefGbt(ml::GbtParams params) : params_(params) {}

  void fit(const ml::Dataset& data) {
    num_features_ = data.num_features();
    trees_.clear();
    importance_.assign(num_features_, 0.0);
    best_val_rmse_ = std::numeric_limits<double>::quiet_NaN();
    Rng rng(params_.seed);

    std::vector<std::size_t> train_rows(data.size());
    std::iota(train_rows.begin(), train_rows.end(), std::size_t{0});
    std::vector<std::size_t> val_rows;
    if (params_.early_stopping_rounds > 0 &&
        params_.validation_fraction > 0.0) {
      rng.shuffle(train_rows);
      const auto n_val = static_cast<std::size_t>(
          std::max(1.0, params_.validation_fraction *
                            static_cast<double>(data.size())));
      if (n_val + 4 <= data.size()) {
        val_rows.assign(
            train_rows.end() - static_cast<std::ptrdiff_t>(n_val),
            train_rows.end());
        train_rows.resize(train_rows.size() - n_val);
      }
    }

    base_score_ = mean(data.y());
    std::vector<double> pred(data.size(), base_score_);
    std::vector<double> grad(data.size(), 0.0);
    std::vector<double> hess(data.size(), 1.0);

    double best_rmse = std::numeric_limits<double>::infinity();
    int rounds_since_best = 0;
    std::size_t best_n_trees = 0;

    for (int round = 0; round < params_.n_rounds; ++round) {
      run_round(data, train_rows, pred, grad, hess, rng);
      if (!val_rows.empty()) {
        double acc = 0.0;
        for (const std::size_t i : val_rows) {
          const double d = pred[i] - data.target(i);
          acc += d * d;
        }
        const double val_rmse =
            std::sqrt(acc / static_cast<double>(val_rows.size()));
        if (val_rmse + 1e-12 < best_rmse) {
          best_rmse = val_rmse;
          best_n_trees = trees_.size();
          rounds_since_best = 0;
        } else if (++rounds_since_best >= params_.early_stopping_rounds) {
          break;
        }
      }
    }
    if (!val_rows.empty() && best_n_trees > 0) {
      trees_.resize(best_n_trees);
      best_val_rmse_ = best_rmse;
    }
    fitted_ = true;
  }

  void refit(const ml::Dataset& data) {
    const auto reset_cap =
        3 * static_cast<std::size_t>(std::max(1, params_.n_rounds));
    if (!fitted_ || data.num_features() != num_features_ ||
        trees_.size() >= reset_cap) {
      fit(data);
      return;
    }
    Rng rng(params_.seed + 0x5bd1e995ULL * (trees_.size() + 1));
    std::vector<std::size_t> train_rows(data.size());
    std::iota(train_rows.begin(), train_rows.end(), std::size_t{0});
    // predict() rides the flat kernel, which is bit-identical to the scalar
    // base + per-tree walk by construction.
    std::vector<double> pred(data.size(), 0.0);
    for (std::size_t i = 0; i < data.size(); ++i) {
      pred[i] = predict_one(data.row(i));
    }
    std::vector<double> grad(data.size(), 0.0);
    std::vector<double> hess(data.size(), 1.0);

    const int extra = std::max(1, params_.n_rounds / 4);
    for (int round = 0; round < extra; ++round) {
      run_round(data, train_rows, pred, grad, hess, rng);
    }
    best_val_rmse_ = std::numeric_limits<double>::quiet_NaN();
  }

  double predict_one(std::span<const double> features) const {
    double y = base_score_;
    for (const auto& tree : trees_) y += walk_tree(tree, features);
    return y;
  }

  /// Mirrors GradientBoostedTrees::to_json field for field.
  Json model_json() const {
    Json j = Json::object();
    j["params"] = params_.to_json();
    j["fitted"] = fitted_;
    j["base_score"] = base_score_;
    j["num_features"] = num_features_;
    JsonArray trees;
    trees.reserve(trees_.size());
    for (const auto& tree : trees_) {
      JsonArray nodes;
      nodes.reserve(tree.size());
      for (const auto& node : tree) {
        JsonArray fields;
        fields.emplace_back(node.feature);
        fields.emplace_back(node.threshold);
        fields.emplace_back(node.left);
        fields.emplace_back(node.right);
        fields.emplace_back(node.value);
        nodes.emplace_back(std::move(fields));
      }
      trees.emplace_back(std::move(nodes));
    }
    j["trees"] = Json(std::move(trees));
    j["importance"] = Json::from_doubles(importance_);
    return j;
  }

  std::size_t num_trees() const { return trees_.size(); }

 private:
  struct Ctx {
    const ml::Dataset* data = nullptr;
    const std::vector<double>* grad = nullptr;
    const std::vector<double>* hess = nullptr;
    std::vector<std::size_t> feature_pool;
  };

  static double walk_tree(const std::vector<ml::GbtNode>& tree,
                          std::span<const double> features) {
    int idx = 0;
    while (!tree[static_cast<std::size_t>(idx)].is_leaf()) {
      const auto& node = tree[static_cast<std::size_t>(idx)];
      idx =
          features[static_cast<std::size_t>(node.feature)] <= node.threshold
              ? node.left
              : node.right;
    }
    return tree[static_cast<std::size_t>(idx)].value;
  }

  int grow_gbt_node(Ctx& ctx, std::vector<std::size_t>& rows,
                    std::size_t begin, std::size_t end, int depth,
                    std::vector<ml::GbtNode>& tree) {
    const auto& grad = *ctx.grad;
    const auto& hess = *ctx.hess;
    double g_total = 0.0, h_total = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      g_total += grad[rows[i]];
      h_total += hess[rows[i]];
    }
    const double lambda = params_.reg_lambda;

    const int node_index = static_cast<int>(tree.size());
    tree.push_back(ml::GbtNode{});
    tree[static_cast<std::size_t>(node_index)].value =
        -g_total / (h_total + lambda) * params_.learning_rate;

    if (depth >= params_.max_depth || end - begin < 2) return node_index;

    double best_gain = 0.0;
    int best_feature = -1;
    double best_threshold = 0.0;
    const double parent_term = g_total * g_total / (h_total + lambda);
    std::vector<std::pair<double, std::size_t>> vals;  // (x, row)
    vals.reserve(end - begin);
    for (const std::size_t f : ctx.feature_pool) {
      vals.clear();
      for (std::size_t i = begin; i < end; ++i) {
        vals.emplace_back(ctx.data->x()(rows[i], f), rows[i]);
      }
      std::sort(vals.begin(), vals.end());
      double g_left = 0.0, h_left = 0.0;
      for (std::size_t i = 0; i + 1 < vals.size(); ++i) {
        g_left += grad[vals[i].second];
        h_left += hess[vals[i].second];
        if (vals[i].first == vals[i + 1].first) continue;
        const double h_right = h_total - h_left;
        if (h_left < params_.min_child_weight ||
            h_right < params_.min_child_weight) {
          continue;
        }
        const double g_right = g_total - g_left;
        const double gain =
            0.5 * (g_left * g_left / (h_left + lambda) +
                   g_right * g_right / (h_right + lambda) - parent_term) -
            params_.gamma;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int>(f);
          double threshold = (vals[i].first + vals[i + 1].first) / 2.0;
          if (threshold >= vals[i + 1].first) threshold = vals[i].first;
          best_threshold = threshold;
        }
      }
    }
    if (best_feature < 0) return node_index;

    importance_[static_cast<std::size_t>(best_feature)] += best_gain;

    const auto mid_it = std::partition(
        rows.begin() + static_cast<std::ptrdiff_t>(begin),
        rows.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t r) {
          return ctx.data->x()(r, static_cast<std::size_t>(best_feature)) <=
                 best_threshold;
        });
    const std::size_t mid = static_cast<std::size_t>(mid_it - rows.begin());
    LTS_ASSERT(mid > begin && mid < end);

    const int left = grow_gbt_node(ctx, rows, begin, mid, depth + 1, tree);
    const int right = grow_gbt_node(ctx, rows, mid, end, depth + 1, tree);
    auto& node = tree[static_cast<std::size_t>(node_index)];
    node.feature = best_feature;
    node.threshold = best_threshold;
    node.left = left;
    node.right = right;
    return node_index;
  }

  void run_round(const ml::Dataset& data,
                 const std::vector<std::size_t>& train_rows,
                 std::vector<double>& pred, std::vector<double>& grad,
                 std::vector<double>& hess, Rng& rng) {
    for (const std::size_t i : train_rows) {
      grad[i] = pred[i] - data.target(i);
    }
    std::vector<std::size_t> rows;
    if (params_.subsample < 1.0) {
      for (const std::size_t i : train_rows) {
        if (rng.uniform() < params_.subsample) rows.push_back(i);
      }
      if (rows.size() < 2) rows = train_rows;
    } else {
      rows = train_rows;
    }
    Ctx ctx;
    ctx.data = &data;
    ctx.grad = &grad;
    ctx.hess = &hess;
    if (params_.colsample < 1.0) {
      const auto k = static_cast<std::size_t>(std::max(
          1.0, params_.colsample * static_cast<double>(num_features_)));
      ctx.feature_pool = rng.sample_without_replacement(num_features_, k);
    } else {
      ctx.feature_pool.resize(num_features_);
      std::iota(ctx.feature_pool.begin(), ctx.feature_pool.end(),
                std::size_t{0});
    }

    std::vector<ml::GbtNode> tree;
    grow_gbt_node(ctx, rows, 0, rows.size(), 0, tree);
    for (std::size_t i = 0; i < data.size(); ++i) {
      pred[i] += walk_tree(tree, data.row(i));
    }
    trees_.push_back(std::move(tree));
  }

  ml::GbtParams params_;
  bool fitted_ = false;
  double base_score_ = 0.0;
  std::size_t num_features_ = 0;
  std::vector<std::vector<ml::GbtNode>> trees_;
  std::vector<double> importance_;
  double best_val_rmse_ = std::numeric_limits<double>::quiet_NaN();
};

}  // namespace lts::trainref
