// Multi-tenant fairness experiment: does two-level DRF sharing actually
// buy fairness over an unweighted FIFO queue on one shared cluster?
//
// Three tenants with deliberately clashing workloads share the paper's
// 6-node testbed:
//
//   * batch — a best-effort bulk tenant arriving in tight bursts, sized to
//     monopolize the cluster whenever it is allowed to;
//   * svc   — a steady Poisson tenant with a guaranteed quota (its jobs may
//     preempt over-quota best-effort work);
//   * adhoc — a diurnal tenant (weight 2) whose demand peaks once per
//     simulated "day".
//
// The identical pre-drawn tenant mix (same seeds, same jobs, same arrival
// instants) runs under SharingMode::kFifo (offers follow global arrival
// order — the burst wins) and SharingMode::kDrf (offers go to the tenant
// with the lowest weighted dominant share; guaranteed-quota preemption
// enabled). Reported per tenant: mean/P95 JCT, mean queueing delay,
// placement deferrals, preemptions, and the dominant-share-time integral;
// per mode: Jain's fairness index over those integrals.
//
// The run fails (nonzero exit) unless DRF's Jain index strictly exceeds
// FIFO's — the fairness regression gate CI enforces.
//
// Output: human-readable tables, a JSON blob on stdout, and
// BENCH_multitenant.json for the CI perf-artifact trail.
#include <cstdio>
#include <vector>

#include "exp/benchio.hpp"
#include "exp/scenario.hpp"
#include "tenant/drf.hpp"
#include "tenant/stream.hpp"
#include "util/json.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace lts;
  const auto matrix = exp::paper_scenario_matrix();
  constexpr Bytes kGiB = 1024.0 * 1024.0 * 1024.0;

  tenant::TenantStreamsOptions base;
  base.seed = 73000;
  base.tenants.resize(3);

  tenant::TenantStreamOptions& batch = base.tenants[0];
  batch.spec.name = "batch";
  batch.spec.weight = 1.0;  // no quota: pure best-effort
  batch.policy = exp::StreamPolicy::kKubeDefault;
  batch.num_jobs = 32;
  batch.arrivals.process = tenant::ArrivalProcess::kBursty;
  batch.arrivals.mean_interarrival = 6.0;
  batch.arrivals.burst_size = 8;
  batch.arrivals.burst_spacing = 0.5;

  tenant::TenantStreamOptions& svc = base.tenants[1];
  svc.spec.name = "svc";
  svc.spec.weight = 1.0;
  svc.spec.quota = {12.0, 16.0 * kGiB};  // guaranteed floor, may preempt
  svc.policy = exp::StreamPolicy::kKubeDefault;
  svc.num_jobs = 12;
  svc.arrivals.process = tenant::ArrivalProcess::kExponential;
  svc.arrivals.mean_interarrival = 30.0;

  tenant::TenantStreamOptions& adhoc = base.tenants[2];
  adhoc.spec.name = "adhoc";
  adhoc.spec.weight = 2.0;  // entitled to twice the share
  adhoc.policy = exp::StreamPolicy::kKubeDefault;
  adhoc.num_jobs = 12;
  adhoc.arrivals.process = tenant::ArrivalProcess::kDiurnal;
  adhoc.arrivals.mean_interarrival = 25.0;
  adhoc.arrivals.diurnal_amplitude = 0.8;
  adhoc.arrivals.diurnal_period = 300.0;

  exp::BenchReport report("multitenant");
  report.note("cluster", "paper testbed: 3 sites x 2 nodes");
  report.note("mix",
              "batch 32 jobs bursty(8@0.5s, mean 6s) best-effort; "
              "svc 12 jobs poisson(30s) quota 12c/16Gi; "
              "adhoc 12 jobs diurnal(25s, A=0.8, P=300s) weight 2");
  report.note("gate", "jain_share(drf) > jain_share(fifo)");

  struct Mode {
    const char* label;
    tenant::SharingMode sharing;
  };
  const Mode modes[] = {
      {"fifo", tenant::SharingMode::kFifo},
      {"drf", tenant::SharingMode::kDrf},
  };

  Json results = Json::object();
  double jain_fifo = 0.0;
  double jain_drf = 0.0;
  for (const auto& mode : modes) {
    tenant::TenantStreamsOptions options = base;
    options.sharing = mode.sharing;
    const auto run = tenant::run_tenant_streams(matrix, options);
    const auto summaries = tenant::summarize_tenants(run);

    std::printf("=== %s sharing ===\n", mode.label);
    AsciiTable table({"Tenant", "jobs", "mean JCT (s)", "P95 JCT (s)",
                      "mean queue (s)", "retries", "preempted",
                      "share integral"});
    Json mode_json = Json::object();
    for (const auto& s : summaries) {
      table.add_row({s.tenant, std::to_string(s.jobs),
                     strformat("%.1f", s.mean_jct),
                     strformat("%.1f", s.p95_jct),
                     strformat("%.1f", s.mean_queueing_delay),
                     std::to_string(s.placement_retries),
                     std::to_string(s.preemptions_suffered),
                     strformat("%.1f", s.share_integral)});
      Json t = Json::object();
      t["jobs"] = static_cast<double>(s.jobs);
      t["mean_jct_s"] = s.mean_jct;
      t["p95_jct_s"] = s.p95_jct;
      t["mean_queueing_delay_s"] = s.mean_queueing_delay;
      t["p95_queueing_delay_s"] = s.p95_queueing_delay;
      t["placement_retries"] = static_cast<double>(s.placement_retries);
      t["preemptions_suffered"] =
          static_cast<double>(s.preemptions_suffered);
      t["share_integral"] = s.share_integral;
      mode_json[s.tenant] = t;
      const std::string row = std::string(mode.label) + "/" + s.tenant;
      report.add(row, "mean_jct", s.mean_jct, "s");
      report.add(row, "mean_queueing_delay", s.mean_queueing_delay, "s");
      report.add(row, "preemptions_suffered",
                 static_cast<double>(s.preemptions_suffered), "jobs");
      report.add(row, "share_integral", s.share_integral, "share*s");
    }
    std::printf("%s", table.render().c_str());
    std::printf("Jain(share integrals) = %.4f, preemptions = %d, "
                "offer rounds = %d, horizon = %.0f s\n\n",
                run.jain_share, run.total_preemptions, run.offer_rounds,
                run.horizon);
    mode_json["jain_share"] = run.jain_share;
    mode_json["total_preemptions"] =
        static_cast<double>(run.total_preemptions);
    mode_json["horizon_s"] = run.horizon;
    results[mode.label] = mode_json;
    report.add(mode.label, "jain_share", run.jain_share, "index");
    report.add(mode.label, "total_preemptions",
               static_cast<double>(run.total_preemptions), "jobs");
    if (mode.sharing == tenant::SharingMode::kFifo) {
      jain_fifo = run.jain_share;
    } else {
      jain_drf = run.jain_share;
    }
  }

  std::printf("JSON: %s\n", results.dump().c_str());
  report.write("BENCH_multitenant.json");

  if (!(jain_drf > jain_fifo)) {
    std::fprintf(stderr,
                 "FAIL: DRF Jain index %.4f is not above FIFO's %.4f — "
                 "two-level sharing bought no fairness\n",
                 jain_drf, jain_fifo);
    return 1;
  }
  std::printf("PASS: DRF Jain %.4f > FIFO Jain %.4f\n", jain_drf, jain_fifo);
  return 0;
}
