// §2.3 made measurable: supervised learning vs online RL at equal
// execution budgets.
//
// The paper chooses supervised learning because RL "requires a huge number
// of trial runs to converge". This bench executes that comparison: an
// epsilon-greedy contextual bandit learns placement online (one job per
// episode, learning only from its own choices), while the paper's offline
// models train on batch corpora truncated to the same number of executed
// jobs. Both are scored with greedy Top-1 on the same held-out scenarios.
#include <cstdio>
#include <memory>

#include "core/bandit.hpp"
#include "core/trainer.hpp"
#include "exp/collector.hpp"
#include "exp/evaluate.hpp"
#include "exp/scenario.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace lts;

// Greedy Top-1/Top-2 of a bandit on fresh scenarios (counterfactual truth).
std::pair<double, double> eval_bandit(const core::BanditScheduler& bandit,
                                      const std::vector<exp::Scenario>& matrix,
                                      int scenarios, std::uint64_t base_seed) {
  int top1 = 0, top2 = 0;
  for (int s = 0; s < scenarios; ++s) {
    const std::uint64_t seed = base_seed + 7919ULL * s;
    Rng pick(seed ^ 0xabc);
    const auto& scenario = exp::sample_scenario(matrix, pick);
    exp::SimEnv probe(seed);
    probe.warmup();
    const auto snapshot = probe.snapshot();
    const std::size_t choice =
        bandit.pick_greedy(snapshot, scenario.config);
    // Second choice: rerun greedy with the best node masked out by ranking
    // all values; cheaper: compute full value ranking here.
    std::vector<double> durations;
    for (std::size_t n = 0; n < probe.node_names().size(); ++n) {
      exp::SimEnv env(seed);
      env.warmup();
      durations.push_back(
          env.run_job(scenario.config, n, seed ^ 0xF00D).duration());
    }
    const std::size_t fastest = static_cast<std::size_t>(
        std::min_element(durations.begin(), durations.end()) -
        durations.begin());
    if (choice == fastest) {
      ++top1;
      ++top2;
    }
  }
  return {static_cast<double>(top1) / scenarios,
          static_cast<double>(top2) / scenarios};
}

}  // namespace

int main() {
  using namespace lts;
  const auto matrix = exp::paper_scenario_matrix();
  const int kEvalScenarios = 40;
  const std::uint64_t kEvalSeed = 992000;
  const std::vector<int> checkpoints = {60, 120, 240, 480};

  // ---- Online bandit: one environment + one executed job per episode. ----
  core::BanditScheduler bandit(core::BanditOptions{}, 4242);
  AsciiTable table({"executed jobs", "bandit Top-1", "SL linear Top-1",
                    "SL forest Top-1"});
  Rng episode_rng(31337);
  int episodes_done = 0;

  // ---- Offline SL corpora, truncated to matching budgets. ---------------
  exp::CollectorOptions collect;
  collect.repeats = 2;  // 60 x 6 x 2 = 720 >= max checkpoint
  collect.base_seed = 12000;
  std::printf("Collecting the offline corpus once (720 samples)...\n");
  const CsvTable full_log = exp::collect_training_data(matrix, collect);
  const ml::Dataset full_data = core::Trainer::dataset_from_log(full_log);

  for (const int budget : checkpoints) {
    // Advance the bandit to `budget` executed jobs.
    while (episodes_done < budget) {
      const std::uint64_t seed =
          500000ULL + 13ULL * static_cast<std::uint64_t>(episodes_done);
      const auto& scenario = exp::sample_scenario(matrix, episode_rng);
      exp::SimEnv env(seed);
      env.warmup();
      const auto snapshot = env.snapshot();
      const std::size_t node = bandit.pick(snapshot, scenario.config);
      const auto result =
          env.run_job(scenario.config, node, seed ^ 0xBEEF);
      bandit.observe(snapshot, scenario.config, node, result.duration());
      ++episodes_done;
    }

    // SL models on the first `budget` rows of the batch corpus.
    std::vector<std::size_t> head(static_cast<std::size_t>(budget));
    for (std::size_t i = 0; i < head.size(); ++i) head[i] = i;
    const ml::Dataset truncated = full_data.select(head);
    const auto linear = std::shared_ptr<const ml::Regressor>(
        core::Trainer::train("linear", truncated));
    const auto forest = std::shared_ptr<const ml::Regressor>(
        core::Trainer::train("random_forest", truncated));

    const auto [bandit_top1, bandit_top2] =
        eval_bandit(bandit, matrix, kEvalScenarios, kEvalSeed);
    exp::EvalOptions eval;
    eval.num_scenarios = kEvalScenarios;
    eval.base_seed = kEvalSeed;
    eval.truth_repeats = 1;
    std::vector<exp::MethodUnderTest> methods;
    methods.push_back({"linear", linear, core::FeatureSet::kTable1});
    methods.push_back({"forest", forest, core::FeatureSet::kTable1});
    const auto sl = exp::evaluate_methods(methods, matrix, eval);
    const std::vector<double> row{bandit_top1, sl.by_method("linear").top1,
                                  sl.by_method("forest").top1};
    table.add_row_numeric(strformat("%d", budget), row, 3);
    (void)bandit_top2;
    std::printf("  budget %d done (bandit epsilon now %.2f)\n", budget,
                bandit.current_epsilon());
  }
  std::printf("%s", table
                        .render("Sample efficiency: online bandit vs "
                                "offline supervised (greedy Top-1)")
                        .c_str());
  std::printf(
      "\nNote: the bandit explores on the live cluster (its exploration "
      "jobs run\nslower), while the SL corpus is collected by the paper's "
      "batch sweep.\n");
  return 0;
}
