// End-to-end benefit: a stream of jobs scheduled live.
//
// Top-k accuracy (Table 4) measures decision quality in isolation. This
// experiment measures what the decisions are worth operationally: the same
// Poisson arrival stream of jobs runs through one living cluster three
// times — placed by the supervised scheduler, by the default Kubernetes
// scheduler, and randomly — and we report mean/p90 job completion time.
// Concurrent jobs contend with each other, so good placement compounds.
#include <cstdio>
#include <memory>

#include "core/scheduler.hpp"
#include "core/trainer.hpp"
#include "exp/collector.hpp"
#include "exp/scenario.hpp"
#include "exp/stream.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace lts;
  const auto matrix = exp::paper_scenario_matrix();
  exp::CollectorOptions collect;
  collect.repeats = 5;
  collect.base_seed = 12000;
  std::printf("Training the scheduler model (1800 samples)...\n");
  const CsvTable log = exp::collect_training_data(matrix, collect);
  const auto model = std::shared_ptr<const ml::Regressor>(
      core::Trainer::train("random_forest",
                           core::Trainer::dataset_from_log(log)));

  // A second model trained on a distribution-matched corpus: each training
  // environment runs an unrecorded job first, so the telemetry windows
  // carry residual traffic the way a production queue's do.
  std::printf("Training the stream-matched model (residual-job corpus)...\n");
  exp::CollectorOptions stream_collect = collect;
  stream_collect.residual_job = true;
  stream_collect.base_seed = 15000;
  const CsvTable stream_log = exp::collect_training_data(matrix,
                                                         stream_collect);
  const auto stream_model = std::shared_ptr<const ml::Regressor>(
      core::Trainer::train("random_forest",
                           core::Trainer::dataset_from_log(stream_log)));

  // Two regimes: light load (jobs mostly sequential — each decision is an
  // isolated Table-4-style choice) and heavy load (jobs overlap — the
  // scheduler's own placements feed back through the lagging telemetry).
  for (const double interarrival : {35.0, 12.0}) {
    exp::StreamOptions options;
    options.num_jobs = 40;
    options.mean_interarrival = interarrival;
    options.seed = 33000;

    AsciiTable table({"Scheduler", "mean (s)", "p50 (s)", "p90 (s)",
                      "makespan (s)"});
    struct Row {
      const char* label;
      exp::StreamPolicy policy;
      std::shared_ptr<const ml::Regressor> model;
    };
    const Row rows[] = {
        {"LTS (batch-trained)", exp::StreamPolicy::kModel, model},
        {"LTS (stream-matched)", exp::StreamPolicy::kModel, stream_model},
        {"Kubernetes default", exp::StreamPolicy::kKubeDefault, nullptr},
        {"Random", exp::StreamPolicy::kRandom, nullptr},
    };
    for (const auto& row : rows) {
      const auto result =
          exp::run_job_stream(row.policy, row.model, matrix, options);
      std::vector<double> durations;
      for (const auto& job : result.jobs) durations.push_back(job.duration);
      table.add_row_numeric(row.label,
                            {mean(durations), percentile(durations, 50),
                             percentile(durations, 90), result.makespan},
                            1);
    }
    std::printf("%s\n",
                table
                    .render(strformat(
                        "End-to-end stream: 40 jobs, mean interarrival %.0fs",
                        interarrival))
                    .c_str());
  }
  std::printf(
      "Deployability caveat (found by this reproduction): under heavy\n"
      "overlap the pure predicted-duration policy can herd onto the\n"
      "predicted-best node faster than the telemetry (30s windows) reflects\n"
      "its own placements, eroding the isolated-decision advantage that\n"
      "Table 4 measures.\n");
  return 0;
}
