// Extension: uncertainty-aware (risk-averse) placement.
//
// A random forest exposes model uncertainty for free (the spread of its
// trees' predictions). Ranking nodes by mean + k*stddev avoids placements
// the model is unsure about. This bench sweeps k and reports Top-1/Top-2
// plus mean and tail regret — the pessimistic policy should trade a little
// Top-1 for a flatter regret tail.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/trainer.hpp"
#include "exp/collector.hpp"
#include "exp/evaluate.hpp"
#include "exp/scenario.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main() {
  using namespace lts;
  const auto matrix = exp::paper_scenario_matrix();
  exp::CollectorOptions collect;
  collect.repeats = 10;
  collect.base_seed = 12000;
  std::printf("Collecting the 3600-sample corpus...\n");
  const CsvTable log = exp::collect_training_data(matrix, collect);
  const auto model = std::shared_ptr<const ml::Regressor>(
      core::Trainer::train("random_forest",
                           core::Trainer::dataset_from_log(log)));

  std::vector<exp::MethodUnderTest> methods;
  for (const double k : {0.0, 0.5, 1.0, 2.0}) {
    methods.push_back({strformat("rf_k%.1f", k), model,
                       core::FeatureSet::kTable1, k});
  }
  exp::EvalOptions eval;
  eval.num_scenarios = 100;
  eval.base_seed = 778000;
  const auto result = exp::evaluate_methods(methods, matrix, eval);

  // Tail regret per method, from the per-scenario outcomes.
  AsciiTable table({"Policy", "Top-1", "Top-2", "mean regret (s)",
                    "p90 regret (s)"});
  for (const auto& acc : result.accuracy) {
    std::vector<double> regrets;
    for (const auto& outcome : result.outcomes) {
      const auto it = outcome.rankings.find(acc.method);
      if (it == outcome.rankings.end()) continue;
      regrets.push_back(outcome.node_durations[it->second.front()] -
                        outcome.node_durations[outcome.fastest_node]);
    }
    const double p90 =
        regrets.empty() ? 0.0 : percentile(regrets, 90);
    table.add_row_numeric(acc.method,
                          {acc.top1, acc.top2, acc.mean_regret, p90}, 3);
  }
  std::printf("%s", table
                        .render("Risk-averse placement sweep "
                                "(rank by mean + k*stddev, 100 scenarios)")
                        .c_str());
  return 0;
}
