file(REMOVE_RECURSE
  "CMakeFiles/lts.dir/lts_cli.cpp.o"
  "CMakeFiles/lts.dir/lts_cli.cpp.o.d"
  "lts"
  "lts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
