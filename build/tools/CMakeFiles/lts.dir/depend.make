# Empty dependencies file for lts.
# This may be replaced when dependencies are built.
