# Empty compiler generated dependencies file for bench_ext_e2e_stream.
# This may be replaced when dependencies are built.
