# Empty dependencies file for bench_sim_microbench.
# This may be replaced when dependencies are built.
