file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_scale.dir/bench_ext_scale.cpp.o"
  "CMakeFiles/bench_ext_scale.dir/bench_ext_scale.cpp.o.d"
  "bench_ext_scale"
  "bench_ext_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
