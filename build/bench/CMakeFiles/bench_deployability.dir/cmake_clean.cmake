file(REMOVE_RECURSE
  "CMakeFiles/bench_deployability.dir/bench_deployability.cpp.o"
  "CMakeFiles/bench_deployability.dir/bench_deployability.cpp.o.d"
  "bench_deployability"
  "bench_deployability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deployability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
