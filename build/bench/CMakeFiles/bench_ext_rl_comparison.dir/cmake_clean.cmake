file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_rl_comparison.dir/bench_ext_rl_comparison.cpp.o"
  "CMakeFiles/bench_ext_rl_comparison.dir/bench_ext_rl_comparison.cpp.o.d"
  "bench_ext_rl_comparison"
  "bench_ext_rl_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_rl_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
