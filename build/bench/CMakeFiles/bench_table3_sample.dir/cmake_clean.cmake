file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_sample.dir/bench_table3_sample.cpp.o"
  "CMakeFiles/bench_table3_sample.dir/bench_table3_sample.cpp.o.d"
  "bench_table3_sample"
  "bench_table3_sample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
