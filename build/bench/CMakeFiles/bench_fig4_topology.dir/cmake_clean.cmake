file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_topology.dir/bench_fig4_topology.cpp.o"
  "CMakeFiles/bench_fig4_topology.dir/bench_fig4_topology.cpp.o.d"
  "bench_fig4_topology"
  "bench_fig4_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
