file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_rich_telemetry.dir/bench_ext_rich_telemetry.cpp.o"
  "CMakeFiles/bench_ext_rich_telemetry.dir/bench_ext_rich_telemetry.cpp.o.d"
  "bench_ext_rich_telemetry"
  "bench_ext_rich_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_rich_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
