# Empty dependencies file for bench_ext_rich_telemetry.
# This may be replaced when dependencies are built.
