file(REMOVE_RECURSE
  "CMakeFiles/sort_campaign.dir/sort_campaign.cpp.o"
  "CMakeFiles/sort_campaign.dir/sort_campaign.cpp.o.d"
  "sort_campaign"
  "sort_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
