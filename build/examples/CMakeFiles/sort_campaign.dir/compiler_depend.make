# Empty compiler generated dependencies file for sort_campaign.
# This may be replaced when dependencies are built.
