file(REMOVE_RECURSE
  "CMakeFiles/retrain_loop.dir/retrain_loop.cpp.o"
  "CMakeFiles/retrain_loop.dir/retrain_loop.cpp.o.d"
  "retrain_loop"
  "retrain_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retrain_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
