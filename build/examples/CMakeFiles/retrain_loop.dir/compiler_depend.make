# Empty compiler generated dependencies file for retrain_loop.
# This may be replaced when dependencies are built.
