# Empty compiler generated dependencies file for whatif_placement.
# This may be replaced when dependencies are built.
