file(REMOVE_RECURSE
  "CMakeFiles/whatif_placement.dir/whatif_placement.cpp.o"
  "CMakeFiles/whatif_placement.dir/whatif_placement.cpp.o.d"
  "whatif_placement"
  "whatif_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
