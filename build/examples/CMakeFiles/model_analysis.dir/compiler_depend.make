# Empty compiler generated dependencies file for model_analysis.
# This may be replaced when dependencies are built.
