file(REMOVE_RECURSE
  "CMakeFiles/model_analysis.dir/model_analysis.cpp.o"
  "CMakeFiles/model_analysis.dir/model_analysis.cpp.o.d"
  "model_analysis"
  "model_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
