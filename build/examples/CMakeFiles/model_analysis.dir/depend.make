# Empty dependencies file for model_analysis.
# This may be replaced when dependencies are built.
