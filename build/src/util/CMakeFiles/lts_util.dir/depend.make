# Empty dependencies file for lts_util.
# This may be replaced when dependencies are built.
