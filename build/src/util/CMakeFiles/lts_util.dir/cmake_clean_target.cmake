file(REMOVE_RECURSE
  "liblts_util.a"
)
