file(REMOVE_RECURSE
  "CMakeFiles/lts_util.dir/csv.cpp.o"
  "CMakeFiles/lts_util.dir/csv.cpp.o.d"
  "CMakeFiles/lts_util.dir/json.cpp.o"
  "CMakeFiles/lts_util.dir/json.cpp.o.d"
  "CMakeFiles/lts_util.dir/logging.cpp.o"
  "CMakeFiles/lts_util.dir/logging.cpp.o.d"
  "CMakeFiles/lts_util.dir/stats.cpp.o"
  "CMakeFiles/lts_util.dir/stats.cpp.o.d"
  "CMakeFiles/lts_util.dir/string_util.cpp.o"
  "CMakeFiles/lts_util.dir/string_util.cpp.o.d"
  "CMakeFiles/lts_util.dir/table.cpp.o"
  "CMakeFiles/lts_util.dir/table.cpp.o.d"
  "CMakeFiles/lts_util.dir/thread_pool.cpp.o"
  "CMakeFiles/lts_util.dir/thread_pool.cpp.o.d"
  "liblts_util.a"
  "liblts_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lts_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
