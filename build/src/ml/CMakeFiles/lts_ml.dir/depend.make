# Empty dependencies file for lts_ml.
# This may be replaced when dependencies are built.
