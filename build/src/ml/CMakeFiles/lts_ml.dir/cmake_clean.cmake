file(REMOVE_RECURSE
  "CMakeFiles/lts_ml.dir/analysis.cpp.o"
  "CMakeFiles/lts_ml.dir/analysis.cpp.o.d"
  "CMakeFiles/lts_ml.dir/dataset.cpp.o"
  "CMakeFiles/lts_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/lts_ml.dir/forest.cpp.o"
  "CMakeFiles/lts_ml.dir/forest.cpp.o.d"
  "CMakeFiles/lts_ml.dir/gbt.cpp.o"
  "CMakeFiles/lts_ml.dir/gbt.cpp.o.d"
  "CMakeFiles/lts_ml.dir/linear.cpp.o"
  "CMakeFiles/lts_ml.dir/linear.cpp.o.d"
  "CMakeFiles/lts_ml.dir/matrix.cpp.o"
  "CMakeFiles/lts_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/lts_ml.dir/metrics.cpp.o"
  "CMakeFiles/lts_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/lts_ml.dir/model.cpp.o"
  "CMakeFiles/lts_ml.dir/model.cpp.o.d"
  "CMakeFiles/lts_ml.dir/preprocess.cpp.o"
  "CMakeFiles/lts_ml.dir/preprocess.cpp.o.d"
  "CMakeFiles/lts_ml.dir/tree.cpp.o"
  "CMakeFiles/lts_ml.dir/tree.cpp.o.d"
  "CMakeFiles/lts_ml.dir/validate.cpp.o"
  "CMakeFiles/lts_ml.dir/validate.cpp.o.d"
  "liblts_ml.a"
  "liblts_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lts_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
