file(REMOVE_RECURSE
  "liblts_ml.a"
)
