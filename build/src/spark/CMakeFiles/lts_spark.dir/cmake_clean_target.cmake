file(REMOVE_RECURSE
  "liblts_spark.a"
)
