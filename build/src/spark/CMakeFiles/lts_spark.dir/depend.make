# Empty dependencies file for lts_spark.
# This may be replaced when dependencies are built.
