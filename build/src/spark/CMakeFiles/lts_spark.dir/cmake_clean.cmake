file(REMOVE_RECURSE
  "CMakeFiles/lts_spark.dir/job.cpp.o"
  "CMakeFiles/lts_spark.dir/job.cpp.o.d"
  "CMakeFiles/lts_spark.dir/runtime.cpp.o"
  "CMakeFiles/lts_spark.dir/runtime.cpp.o.d"
  "CMakeFiles/lts_spark.dir/workloads.cpp.o"
  "CMakeFiles/lts_spark.dir/workloads.cpp.o.d"
  "liblts_spark.a"
  "liblts_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lts_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
