
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/background.cpp" "src/cluster/CMakeFiles/lts_cluster.dir/background.cpp.o" "gcc" "src/cluster/CMakeFiles/lts_cluster.dir/background.cpp.o.d"
  "/root/repo/src/cluster/cluster.cpp" "src/cluster/CMakeFiles/lts_cluster.dir/cluster.cpp.o" "gcc" "src/cluster/CMakeFiles/lts_cluster.dir/cluster.cpp.o.d"
  "/root/repo/src/cluster/cpu.cpp" "src/cluster/CMakeFiles/lts_cluster.dir/cpu.cpp.o" "gcc" "src/cluster/CMakeFiles/lts_cluster.dir/cpu.cpp.o.d"
  "/root/repo/src/cluster/node.cpp" "src/cluster/CMakeFiles/lts_cluster.dir/node.cpp.o" "gcc" "src/cluster/CMakeFiles/lts_cluster.dir/node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lts_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/lts_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lts_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
