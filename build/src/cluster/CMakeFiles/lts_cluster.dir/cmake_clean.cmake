file(REMOVE_RECURSE
  "CMakeFiles/lts_cluster.dir/background.cpp.o"
  "CMakeFiles/lts_cluster.dir/background.cpp.o.d"
  "CMakeFiles/lts_cluster.dir/cluster.cpp.o"
  "CMakeFiles/lts_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/lts_cluster.dir/cpu.cpp.o"
  "CMakeFiles/lts_cluster.dir/cpu.cpp.o.d"
  "CMakeFiles/lts_cluster.dir/node.cpp.o"
  "CMakeFiles/lts_cluster.dir/node.cpp.o.d"
  "liblts_cluster.a"
  "liblts_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lts_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
