# Empty compiler generated dependencies file for lts_cluster.
# This may be replaced when dependencies are built.
