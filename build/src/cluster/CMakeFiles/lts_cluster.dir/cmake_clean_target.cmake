file(REMOVE_RECURSE
  "liblts_cluster.a"
)
