# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("simcore")
subdirs("net")
subdirs("cluster")
subdirs("k8s")
subdirs("telemetry")
subdirs("spark")
subdirs("ml")
subdirs("core")
subdirs("exp")
