file(REMOVE_RECURSE
  "liblts_core.a"
)
