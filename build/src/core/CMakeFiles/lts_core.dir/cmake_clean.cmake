file(REMOVE_RECURSE
  "CMakeFiles/lts_core.dir/bandit.cpp.o"
  "CMakeFiles/lts_core.dir/bandit.cpp.o.d"
  "CMakeFiles/lts_core.dir/decision.cpp.o"
  "CMakeFiles/lts_core.dir/decision.cpp.o.d"
  "CMakeFiles/lts_core.dir/features.cpp.o"
  "CMakeFiles/lts_core.dir/features.cpp.o.d"
  "CMakeFiles/lts_core.dir/fetcher.cpp.o"
  "CMakeFiles/lts_core.dir/fetcher.cpp.o.d"
  "CMakeFiles/lts_core.dir/job_builder.cpp.o"
  "CMakeFiles/lts_core.dir/job_builder.cpp.o.d"
  "CMakeFiles/lts_core.dir/logger.cpp.o"
  "CMakeFiles/lts_core.dir/logger.cpp.o.d"
  "CMakeFiles/lts_core.dir/scheduler.cpp.o"
  "CMakeFiles/lts_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/lts_core.dir/trainer.cpp.o"
  "CMakeFiles/lts_core.dir/trainer.cpp.o.d"
  "liblts_core.a"
  "liblts_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lts_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
