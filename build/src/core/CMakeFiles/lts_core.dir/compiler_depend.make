# Empty compiler generated dependencies file for lts_core.
# This may be replaced when dependencies are built.
