file(REMOVE_RECURSE
  "liblts_exp.a"
)
