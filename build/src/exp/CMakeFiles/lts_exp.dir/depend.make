# Empty dependencies file for lts_exp.
# This may be replaced when dependencies are built.
