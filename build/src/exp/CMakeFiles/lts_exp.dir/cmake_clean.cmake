file(REMOVE_RECURSE
  "CMakeFiles/lts_exp.dir/collector.cpp.o"
  "CMakeFiles/lts_exp.dir/collector.cpp.o.d"
  "CMakeFiles/lts_exp.dir/envgen.cpp.o"
  "CMakeFiles/lts_exp.dir/envgen.cpp.o.d"
  "CMakeFiles/lts_exp.dir/evaluate.cpp.o"
  "CMakeFiles/lts_exp.dir/evaluate.cpp.o.d"
  "CMakeFiles/lts_exp.dir/figures.cpp.o"
  "CMakeFiles/lts_exp.dir/figures.cpp.o.d"
  "CMakeFiles/lts_exp.dir/scenario.cpp.o"
  "CMakeFiles/lts_exp.dir/scenario.cpp.o.d"
  "CMakeFiles/lts_exp.dir/stream.cpp.o"
  "CMakeFiles/lts_exp.dir/stream.cpp.o.d"
  "liblts_exp.a"
  "liblts_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lts_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
