file(REMOVE_RECURSE
  "CMakeFiles/lts_k8s.dir/api.cpp.o"
  "CMakeFiles/lts_k8s.dir/api.cpp.o.d"
  "CMakeFiles/lts_k8s.dir/manifest.cpp.o"
  "CMakeFiles/lts_k8s.dir/manifest.cpp.o.d"
  "CMakeFiles/lts_k8s.dir/resources.cpp.o"
  "CMakeFiles/lts_k8s.dir/resources.cpp.o.d"
  "CMakeFiles/lts_k8s.dir/scheduler.cpp.o"
  "CMakeFiles/lts_k8s.dir/scheduler.cpp.o.d"
  "liblts_k8s.a"
  "liblts_k8s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lts_k8s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
