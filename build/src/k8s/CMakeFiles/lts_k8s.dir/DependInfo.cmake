
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/k8s/api.cpp" "src/k8s/CMakeFiles/lts_k8s.dir/api.cpp.o" "gcc" "src/k8s/CMakeFiles/lts_k8s.dir/api.cpp.o.d"
  "/root/repo/src/k8s/manifest.cpp" "src/k8s/CMakeFiles/lts_k8s.dir/manifest.cpp.o" "gcc" "src/k8s/CMakeFiles/lts_k8s.dir/manifest.cpp.o.d"
  "/root/repo/src/k8s/resources.cpp" "src/k8s/CMakeFiles/lts_k8s.dir/resources.cpp.o" "gcc" "src/k8s/CMakeFiles/lts_k8s.dir/resources.cpp.o.d"
  "/root/repo/src/k8s/scheduler.cpp" "src/k8s/CMakeFiles/lts_k8s.dir/scheduler.cpp.o" "gcc" "src/k8s/CMakeFiles/lts_k8s.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
