# Empty dependencies file for lts_k8s.
# This may be replaced when dependencies are built.
