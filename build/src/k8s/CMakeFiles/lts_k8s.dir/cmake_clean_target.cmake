file(REMOVE_RECURSE
  "liblts_k8s.a"
)
