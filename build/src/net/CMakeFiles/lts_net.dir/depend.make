# Empty dependencies file for lts_net.
# This may be replaced when dependencies are built.
