file(REMOVE_RECURSE
  "CMakeFiles/lts_net.dir/flow.cpp.o"
  "CMakeFiles/lts_net.dir/flow.cpp.o.d"
  "CMakeFiles/lts_net.dir/topology.cpp.o"
  "CMakeFiles/lts_net.dir/topology.cpp.o.d"
  "liblts_net.a"
  "liblts_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lts_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
