file(REMOVE_RECURSE
  "liblts_net.a"
)
