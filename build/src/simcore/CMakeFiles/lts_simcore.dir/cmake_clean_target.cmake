file(REMOVE_RECURSE
  "liblts_simcore.a"
)
