file(REMOVE_RECURSE
  "CMakeFiles/lts_simcore.dir/engine.cpp.o"
  "CMakeFiles/lts_simcore.dir/engine.cpp.o.d"
  "liblts_simcore.a"
  "liblts_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lts_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
