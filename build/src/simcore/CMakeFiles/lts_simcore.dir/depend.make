# Empty dependencies file for lts_simcore.
# This may be replaced when dependencies are built.
