
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/exporters.cpp" "src/telemetry/CMakeFiles/lts_telemetry.dir/exporters.cpp.o" "gcc" "src/telemetry/CMakeFiles/lts_telemetry.dir/exporters.cpp.o.d"
  "/root/repo/src/telemetry/promql.cpp" "src/telemetry/CMakeFiles/lts_telemetry.dir/promql.cpp.o" "gcc" "src/telemetry/CMakeFiles/lts_telemetry.dir/promql.cpp.o.d"
  "/root/repo/src/telemetry/series.cpp" "src/telemetry/CMakeFiles/lts_telemetry.dir/series.cpp.o" "gcc" "src/telemetry/CMakeFiles/lts_telemetry.dir/series.cpp.o.d"
  "/root/repo/src/telemetry/snapshot.cpp" "src/telemetry/CMakeFiles/lts_telemetry.dir/snapshot.cpp.o" "gcc" "src/telemetry/CMakeFiles/lts_telemetry.dir/snapshot.cpp.o.d"
  "/root/repo/src/telemetry/tsdb.cpp" "src/telemetry/CMakeFiles/lts_telemetry.dir/tsdb.cpp.o" "gcc" "src/telemetry/CMakeFiles/lts_telemetry.dir/tsdb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lts_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/lts_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lts_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/lts_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
