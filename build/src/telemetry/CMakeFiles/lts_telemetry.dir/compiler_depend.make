# Empty compiler generated dependencies file for lts_telemetry.
# This may be replaced when dependencies are built.
