file(REMOVE_RECURSE
  "liblts_telemetry.a"
)
