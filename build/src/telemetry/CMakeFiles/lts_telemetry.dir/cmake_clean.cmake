file(REMOVE_RECURSE
  "CMakeFiles/lts_telemetry.dir/exporters.cpp.o"
  "CMakeFiles/lts_telemetry.dir/exporters.cpp.o.d"
  "CMakeFiles/lts_telemetry.dir/promql.cpp.o"
  "CMakeFiles/lts_telemetry.dir/promql.cpp.o.d"
  "CMakeFiles/lts_telemetry.dir/series.cpp.o"
  "CMakeFiles/lts_telemetry.dir/series.cpp.o.d"
  "CMakeFiles/lts_telemetry.dir/snapshot.cpp.o"
  "CMakeFiles/lts_telemetry.dir/snapshot.cpp.o.d"
  "CMakeFiles/lts_telemetry.dir/tsdb.cpp.o"
  "CMakeFiles/lts_telemetry.dir/tsdb.cpp.o.d"
  "liblts_telemetry.a"
  "liblts_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lts_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
