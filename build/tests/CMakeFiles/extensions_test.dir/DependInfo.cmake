
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/extensions_test.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/extensions_test.dir/extensions_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/lts_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lts_core.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/lts_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/spark/CMakeFiles/lts_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/lts_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/k8s/CMakeFiles/lts_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/lts_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lts_net.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/lts_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
