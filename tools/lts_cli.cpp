// lts — command-line front end for the Learning-to-Schedule library.
//
//   lts topology  [--sites N] [--nodes-per-site M]
//   lts collect   --out FILE [--configs N] [--repeats R] [--seed S]
//                 [--residual-job]
//   lts train     --log FILE --out FILE [--model NAME] [--features SET]
//   lts evaluate  --model-file FILE [--scenarios N] [--seed S]
//                 [--features SET]
//   lts schedule  --model-file FILE [--seed S] [--app TYPE]
//                 [--records N] [--executors E] [--features SET]
//                 [--faults FILE] [--at T] [--degraded] [--max-staleness S]
//                 [--queue N]
//   lts stream    --model-file FILE [--policy model|model-retrain|kube|random]
//                 [--jobs N] [--interarrival S] [--seed S] [--features SET]
//                 [--faults FILE] [--drift] [--degraded] [--max-staleness S]
//                 [--retrain-every K] [--retrain-window N] [--retrain-model M]
//                 [--drift-threshold X] [--model-out FILE]
//   lts whatif    [--seed S] [--app TYPE] [--records N] [--executors E]
//
// SET is "table1" (paper) or "rich" (§8 extension). --faults FILE injects a
// JSON fault schedule (array of {kind, target, at, duration, severity}; see
// src/fault/fault.hpp) into the simulated cluster, and --degraded turns on
// the scheduler's staleness/fallback policies (and makes --model-file
// optional: with no model every decision uses the fallback ranking). All
// commands are self-contained simulations; no external services are needed.
// --queue N ranks a queue of N pending jobs (the requested job plus N-1
// variants cycling the app mix) in one batched schedule_many pass: one
// cached snapshot fetch, one flattened-tree predict over every (pod, node)
// candidate.
//
// `lts stream` runs a live job stream under one placement policy. With
// --policy model-retrain the scheduler retrains online: every K completions
// (or when the prediction-error EWMA exceeds --drift-threshold) it refits
// on the rolling window and hot-swaps the model; --model-out saves the
// final versioned model. --drift overlays a deterministic escalating WAN
// degradation staircase so the network actually shifts mid-stream.
//
// Observability (evaluate/schedule/query): --metrics-out FILE enables the
// lts::obs metrics registry and writes a Prometheus text-format dump after
// the command finishes; --trace-out FILE enables per-decision trace spans
// and writes them as a JSON array. Both are off without the flags and add
// no overhead.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "core/trainer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "exp/collector.hpp"
#include "exp/envgen.hpp"
#include "exp/evaluate.hpp"
#include "exp/figures.hpp"
#include "exp/scenario.hpp"
#include "exp/stream.hpp"
#include "telemetry/promql.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace lts;

class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw Error("unexpected argument: " + key);
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "true";  // boolean flag
      }
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  std::string require(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) throw Error("missing required --" + key);
    return it->second;
  }
  long long get_int(const std::string& key, long long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  bool get_flag(const std::string& key) const {
    return values_.count(key) > 0;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Enables the global metrics registry / tracer when --metrics-out /
/// --trace-out are present (must happen before the simulation runs) and
/// writes the files on flush().
class ObsSink {
 public:
  explicit ObsSink(const Args& args)
      : metrics_path_(args.get("metrics-out", "")),
        trace_path_(args.get("trace-out", "")) {
    if (!metrics_path_.empty()) {
      obs::MetricsRegistry::global().set_enabled(true);
    }
    if (!trace_path_.empty()) obs::Tracer::global().set_enabled(true);
  }

  void flush() const {
    if (!metrics_path_.empty()) {
      std::ofstream out(metrics_path_);
      if (!out) throw Error("cannot write metrics file: " + metrics_path_);
      out << obs::MetricsRegistry::global().prometheus_text();
      std::fprintf(stderr, "metrics written to %s\n", metrics_path_.c_str());
    }
    if (!trace_path_.empty()) {
      std::ofstream out(trace_path_);
      if (!out) throw Error("cannot write trace file: " + trace_path_);
      out << obs::Tracer::global().to_json().dump(2) << "\n";
      std::fprintf(stderr, "%zu trace span(s) written to %s\n",
                   obs::Tracer::global().num_spans(), trace_path_.c_str());
    }
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
};

core::FeatureSet feature_set(const Args& args) {
  const std::string set = args.get("features", "table1");
  if (set == "table1") return core::FeatureSet::kTable1;
  if (set == "rich") return core::FeatureSet::kRich;
  throw Error("unknown --features (use table1 or rich): " + set);
}

std::vector<fault::FaultSpec> faults_from_args(const Args& args) {
  const std::string path = args.get("faults", "");
  if (path.empty()) return {};
  std::ifstream in(path);
  if (!in) throw Error("cannot read fault schedule: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return fault::faults_from_json(Json::parse(text.str()));
}

/// Loads a model envelope with a clean diagnostic on failure (unreadable
/// file, corrupt JSON, unknown model type — the load path reports the file
/// and the reason instead of letting a raw parse exception escape). With
/// `allow_fallback` (--degraded), a bad model file degrades to the
/// spreading fallback ranking (null model) instead of aborting the command.
std::shared_ptr<const ml::Regressor> load_model_cli(const std::string& path,
                                                    bool allow_fallback) {
  try {
    auto loaded = ml::load_model_envelope(path);
    if (loaded.version > 0) {
      std::fprintf(stderr, "loaded %s (model version %llu)\n", path.c_str(),
                   static_cast<unsigned long long>(loaded.version));
    }
    return std::shared_ptr<const ml::Regressor>(std::move(loaded.model));
  } catch (const std::exception& e) {
    if (!allow_fallback) throw;
    std::fprintf(stderr,
                 "warning: %s\nwarning: --degraded set, continuing with the "
                 "fallback spreading heuristic (no model)\n",
                 e.what());
    return nullptr;
  }
}

spark::JobConfig job_from_args(const Args& args) {
  spark::JobConfig job;
  job.app = spark::app_type_from_string(args.get("app", "sort"));
  job.input_records = args.get_int("records", 1000000);
  job.executors = static_cast<int>(args.get_int("executors", 4));
  job.record_bytes = 200.0;
  job.validate();
  return job;
}

int cmd_topology(const Args& args) {
  exp::EnvOptions env_options;
  const int sites = static_cast<int>(args.get_int("sites", 3));
  const int per_site = static_cast<int>(args.get_int("nodes-per-site", 2));
  if (sites != 3 || per_site != 2) {
    env_options.cluster_spec = exp::scaled_cluster_spec(sites, per_site);
  }
  const auto matrix = exp::figure_topology(env_options);
  std::vector<std::string> header{"site"};
  for (const auto& s : matrix.sites) header.push_back(s);
  AsciiTable table(header);
  for (std::size_t i = 0; i < matrix.sites.size(); ++i) {
    std::vector<std::string> row{matrix.sites[i]};
    for (std::size_t j = 0; j < matrix.sites.size(); ++j) {
      row.push_back(i == j ? "-" : strformat("%.1f", matrix.rtt_ms[i][j]));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.render("Inter-site RTT (ms)").c_str());
  return 0;
}

int cmd_collect(const Args& args) {
  const std::string out = args.require("out");
  auto matrix = exp::paper_scenario_matrix();
  const auto configs = args.get_int("configs", 60);
  if (configs < static_cast<long long>(matrix.size())) {
    matrix.resize(static_cast<std::size_t>(configs));
  }
  exp::CollectorOptions options;
  options.repeats = static_cast<int>(args.get_int("repeats", 10));
  options.base_seed = static_cast<std::uint64_t>(args.get_int("seed", 12000));
  options.residual_job = args.get_flag("residual-job");
  options.progress = [](std::size_t done, std::size_t total) {
    if (done % 360 == 0 || done == total) {
      std::fprintf(stderr, "  %zu/%zu samples\n", done, total);
    }
  };
  const CsvTable log = exp::collect_training_data(matrix, options);
  log.write_file(out);
  std::printf("wrote %zu samples to %s\n", log.num_rows(), out.c_str());
  return 0;
}

int cmd_train(const Args& args) {
  const CsvTable log = CsvTable::read_file(args.require("log"));
  const std::string out = args.require("out");
  const std::string model_name = args.get("model", "random_forest");
  const auto set = feature_set(args);
  const auto data = core::Trainer::dataset_from_log(log, set);
  std::unique_ptr<ml::Regressor> model;
  const auto report = core::Trainer::train_and_evaluate(
      model_name, data, 0.2, 7, Json(), &model);
  // Refit on everything before shipping.
  model = core::Trainer::train(model_name, data);
  ml::save_model(*model, out);
  std::printf("trained %s on %zu rows (holdout RMSE %.2fs, R^2 %.3f)\n",
              model_name.c_str(), data.size(), report.test_rmse,
              report.test_r2);
  std::printf("model written to %s\n", out.c_str());
  return 0;
}

int cmd_evaluate(const Args& args) {
  ObsSink obs_sink(args);
  const auto set = feature_set(args);
  const auto model =
      load_model_cli(args.require("model-file"), /*allow_fallback=*/false);
  exp::EvalOptions eval;
  eval.num_scenarios = static_cast<int>(args.get_int("scenarios", 60));
  eval.base_seed = static_cast<std::uint64_t>(args.get_int("seed", 770000));
  std::vector<exp::MethodUnderTest> methods;
  methods.push_back({model->name(), model, set});
  const auto result =
      exp::evaluate_methods(methods, exp::paper_scenario_matrix(), eval);
  AsciiTable table({"Method", "Top-1", "Top-2", "Regret (s)"});
  for (const auto& acc : result.accuracy) {
    table.add_row_numeric(acc.method, {acc.top1, acc.top2, acc.mean_regret},
                          3);
  }
  std::printf("%s", table.render("Node-selection accuracy").c_str());
  obs_sink.flush();
  return 0;
}

int cmd_schedule(const Args& args) {
  ObsSink obs_sink(args);
  const auto set = feature_set(args);
  // With --degraded the fallback ranking handles a missing model, so
  // --model-file becomes optional (useful to inspect the pure fallback).
  std::shared_ptr<const ml::Regressor> model;
  if (!args.get_flag("degraded") || !args.get("model-file", "").empty()) {
    model = load_model_cli(args.require("model-file"),
                           args.get_flag("degraded"));
  }
  const auto job = job_from_args(args);
  exp::EnvOptions env_options;
  env_options.faults = faults_from_args(args);
  exp::SimEnv env(static_cast<std::uint64_t>(args.get_int("seed", 118)),
                  env_options);
  env.warmup();
  const auto at = static_cast<SimTime>(
      args.get_double("at", env.options().warmup));
  env.engine().run_until(at);
  core::DegradationOptions degradation;
  core::FallbackOptions fallback;
  if (args.get_flag("degraded")) {
    degradation.enabled = true;
    degradation.max_staleness = args.get_double("max-staleness", 10.0);
    fallback.enabled = true;
  }
  core::LtsScheduler scheduler(
      core::TelemetryFetcher(env.tsdb(), env.node_names(), {}, degradation),
      model, set, /*risk_aversion=*/0.0, fallback);
  const auto queue = args.get_int("queue", 1);
  if (queue > 1) {
    // Batched serving path: the requested job plus queue-1 variants cycling
    // the app mix, ranked in one schedule_many pass (one cached snapshot
    // fetch, one batched predict over every (pod, node) candidate).
    std::vector<spark::JobConfig> configs;
    for (long long q = 0; q < queue; ++q) {
      spark::JobConfig item = job;
      item.app = spark::kAllAppTypes[static_cast<std::size_t>(q) %
                                     spark::kNumAppTypes];
      configs.push_back(item);
    }
    const auto decisions =
        scheduler.schedule_many(configs, env.engine().now());
    AsciiTable table({"job", "app", "node", "predicted duration (s)",
                      "note"});
    for (std::size_t q = 0; q < decisions.size(); ++q) {
      const auto& d = decisions[q];
      std::string note;
      if (d.used_fallback) {
        note = "fallback";
      } else if (d.stale_demoted > 0) {
        note = strformat("%d stale demoted", d.stale_demoted);
      }
      table.add_row({std::to_string(q + 1),
                     spark::to_string(configs[q].app), d.selected(),
                     strformat("%.2f", d.ranking.front().predicted_duration),
                     note});
    }
    std::printf("%s", table.render(strformat("Queue of %lld decisions",
                                             queue)).c_str());
    obs_sink.flush();
    return 0;
  }
  const auto decision = scheduler.schedule(job, env.engine().now());
  AsciiTable table({"rank", "node", "predicted duration (s)"});
  for (std::size_t i = 0; i < decision.ranking.size(); ++i) {
    table.add_row({std::to_string(i + 1), decision.ranking[i].node,
                   strformat("%.2f", decision.ranking[i].predicted_duration)});
  }
  std::printf("%s\n", table.render("Decision").c_str());
  if (decision.used_fallback) {
    std::printf("note: fallback ranking used (model or telemetry unusable)\n");
  } else if (decision.stale_demoted > 0) {
    std::printf("note: %d stale node(s) demoted to the bottom of the ranking\n",
                decision.stale_demoted);
  }
  std::printf("%s", scheduler.build_manifest(job, "lts-cli-job", decision)
                        .c_str());
  obs_sink.flush();
  return 0;
}

int cmd_stream(const Args& args) {
  ObsSink obs_sink(args);
  const std::string policy_name = args.get("policy", "model");
  exp::StreamPolicy policy;
  if (policy_name == "model") {
    policy = exp::StreamPolicy::kModel;
  } else if (policy_name == "model-retrain") {
    policy = exp::StreamPolicy::kModelRetrain;
  } else if (policy_name == "kube") {
    policy = exp::StreamPolicy::kKubeDefault;
  } else if (policy_name == "random") {
    policy = exp::StreamPolicy::kRandom;
  } else {
    throw Error("unknown --policy (use model, model-retrain, kube or "
                "random): " + policy_name);
  }

  exp::StreamOptions stream;
  stream.num_jobs = static_cast<int>(args.get_int("jobs", 30));
  stream.mean_interarrival = args.get_double("interarrival", 12.0);
  stream.seed = static_cast<std::uint64_t>(args.get_int("seed", 118));
  stream.features = feature_set(args);
  stream.env.faults = faults_from_args(args);
  if (args.get_flag("degraded")) {
    stream.degradation.enabled = true;
    stream.degradation.max_staleness = args.get_double("max-staleness", 10.0);
    stream.fallback.enabled = true;
  }
  stream.retrain.retrain_every = static_cast<int>(
      args.get_int("retrain-every", stream.retrain.retrain_every));
  stream.retrain.window_size = static_cast<std::size_t>(args.get_int(
      "retrain-window", static_cast<long long>(stream.retrain.window_size)));
  stream.retrain.drift_threshold =
      args.get_double("drift-threshold", stream.retrain.drift_threshold);
  stream.retrain.model_name =
      args.get("retrain-model", stream.retrain.model_name);
  if (args.get_flag("drift")) {
    const auto drift = exp::generate_drift_schedule(stream.env.cluster_spec,
                                                    stream.seed);
    stream.env.faults.insert(stream.env.faults.end(), drift.begin(),
                             drift.end());
  }

  const bool model_policy = policy == exp::StreamPolicy::kModel ||
                            policy == exp::StreamPolicy::kModelRetrain;
  std::shared_ptr<const ml::Regressor> model;
  if (model_policy &&
      (!args.get_flag("degraded") || !args.get("model-file", "").empty())) {
    model = load_model_cli(args.require("model-file"),
                           args.get_flag("degraded"));
  }

  const auto run = exp::run_job_stream(policy, model,
                                       exp::paper_scenario_matrix(), stream);
  const auto summary = exp::summarize_stream(run);

  AsciiTable table({"metric", "value"});
  table.add_row({"jobs", std::to_string(summary.jobs)});
  table.add_row({"mean JCT (s)", strformat("%.2f", summary.mean_jct)});
  table.add_row({"p50 JCT (s)", strformat("%.2f", summary.p50_jct)});
  table.add_row({"p95 JCT (s)", strformat("%.2f", summary.p95_jct)});
  table.add_row({"p99 JCT (s)", strformat("%.2f", summary.p99_jct)});
  table.add_row({"makespan (s)", strformat("%.2f", summary.makespan)});
  if (policy == exp::StreamPolicy::kModelRetrain) {
    table.add_row({"model version", std::to_string(summary.model_version)});
    table.add_row({"retrains", std::to_string(summary.retrains)});
    table.add_row({"retrain failures",
                   std::to_string(summary.retrain_failures)});
    table.add_row({"retrain skips", std::to_string(summary.retrain_skips)});
  }
  std::printf("%s", table.render("Stream (" + policy_name + ")").c_str());
  for (const auto& event : run.retrain_events) {
    std::printf("retrain -> %s: version %llu, %zu rows, drift %.3f%s (%s)\n",
                core::to_string(event.outcome).c_str(),
                static_cast<unsigned long long>(event.version),
                event.window_rows, event.drift_score,
                event.drift_triggered ? " [drift-triggered]" : "",
                event.detail.c_str());
  }

  const std::string model_out = args.get("model-out", "");
  if (!model_out.empty()) {
    LTS_REQUIRE(run.final_model != nullptr,
                "lts stream: --model-out needs --policy model-retrain");
    ml::save_model(*run.final_model, model_out, run.model_version);
    std::printf("model (version %llu) written to %s\n",
                static_cast<unsigned long long>(run.model_version),
                model_out.c_str());
  }
  obs_sink.flush();
  return 0;
}

int cmd_query(const Args& args) {
  // Evaluates a PromQL-mini expression against a warmed environment's
  // metrics server: lts query --expr 'node_cpu_load' [--seed S] [--at T]
  ObsSink obs_sink(args);
  exp::SimEnv env(static_cast<std::uint64_t>(args.get_int("seed", 118)));
  const SimTime at = static_cast<SimTime>(
      args.get_int("at", static_cast<long long>(env.options().warmup)));
  env.engine().run_until(at);
  const auto query = telemetry::parse_promql(args.require("expr"));
  const auto results = telemetry::eval_promql(query, env.tsdb(), at);
  if (results.empty()) {
    std::printf("(no data)\n");
    obs_sink.flush();
    return 0;
  }
  AsciiTable table({"series", "value"});
  for (const auto& r : results) {
    std::string labels;
    for (const auto& [k, v] : r.labels) {
      if (!labels.empty()) labels += ",";
      labels += k + "=" + v;
    }
    table.add_row({"{" + labels + "}", strformat("%.6g", r.value)});
  }
  std::printf("%s", table.render(query.to_string()).c_str());
  obs_sink.flush();
  return 0;
}

int cmd_whatif(const Args& args) {
  const auto job = job_from_args(args);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 118));
  exp::SimEnv probe(seed);
  probe.warmup();
  const auto snap = probe.snapshot();
  AsciiTable table({"node", "rtt_mean(ms)", "tx(MB/s)", "rx(MB/s)",
                    "cpu_load", "duration(s)"});
  for (std::size_t n = 0; n < probe.node_names().size(); ++n) {
    exp::SimEnv env(seed);
    env.warmup();
    const auto result = env.run_job(job, n, seed ^ 0xF00DULL);
    const auto& t = snap.nodes[n];
    table.add_row({t.node, strformat("%.1f", t.rtt_mean * 1e3),
                   strformat("%.1f", t.tx_rate / 1e6),
                   strformat("%.1f", t.rx_rate / 1e6),
                   strformat("%.2f", t.cpu_load),
                   strformat("%.2f", result.duration())});
  }
  std::printf("%s", table.render("Counterfactual placements").c_str());
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: lts "
               "<topology|collect|train|evaluate|schedule|stream|whatif|query> "
               "[--flags]\n(see the header of tools/lts_cli.cpp)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    const Args args(argc, argv, 2);
    if (command == "topology") return cmd_topology(args);
    if (command == "collect") return cmd_collect(args);
    if (command == "train") return cmd_train(args);
    if (command == "evaluate") return cmd_evaluate(args);
    if (command == "schedule") return cmd_schedule(args);
    if (command == "stream") return cmd_stream(args);
    if (command == "whatif") return cmd_whatif(args);
    if (command == "query") return cmd_query(args);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lts %s: %s\n", command.c_str(), e.what());
    return 1;
  }
}
