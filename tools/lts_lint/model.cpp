#include "lts_lint/model.hpp"

#include <algorithm>
#include <regex>

namespace lts::lint {

// ------------------------------------------------------------------ text ----

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  lines.push_back(std::move(current));
  return lines;
}

/// Strips comments and literals line by line, tracking block-comment state
/// across lines. Escaped quotes inside literals are honored; raw strings are
/// not (the codebase does not use them in linted directories).
std::vector<SourceLine> preprocess(const std::string& text) {
  std::vector<SourceLine> out;
  bool in_block_comment = false;
  for (const std::string& raw : split_lines(text)) {
    SourceLine line;
    std::size_t i = 0;
    while (i < raw.size()) {
      if (in_block_comment) {
        const std::size_t end = raw.find("*/", i);
        if (end == std::string::npos) {
          line.comment.append(raw, i, raw.size() - i);
          i = raw.size();
        } else {
          line.comment.append(raw, i, end - i);
          i = end + 2;
          in_block_comment = false;
        }
        continue;
      }
      const char c = raw[i];
      if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '/') {
        line.comment.append(raw, i + 2, raw.size() - i - 2);
        break;
      }
      if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        line.code.push_back(quote);
        ++i;
        while (i < raw.size()) {
          if (raw[i] == '\\' && i + 1 < raw.size()) {
            i += 2;
            continue;
          }
          if (raw[i] == quote) {
            line.code.push_back(quote);
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      line.code.push_back(c);
      ++i;
    }
    out.push_back(std::move(line));
  }
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_header_path(const std::string& path) {
  return ends_with(path, ".hpp") || ends_with(path, ".h");
}

bool is_blank(const std::string& s) {
  return s.find_first_not_of(" \t") == std::string::npos;
}

bool under_any(const std::string& path,
               std::initializer_list<const char*> dirs) {
  for (const char* d : dirs) {
    if (starts_with(path, d)) return true;
  }
  return false;
}

// --------------------------------------------------------------- waivers ----

std::vector<Waiver> collect_waivers(
    const std::vector<SourceLine>& lines,
    const std::map<std::string, std::string>& tokens,
    std::vector<Diagnostic>& diags, const std::string& path) {
  static const std::regex kWaiverRe(
      R"(lts-lint:\s*([A-Za-z][A-Za-z-]*)\s*(\(([^)]*)\))?)");
  std::vector<Waiver> waivers;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& comment = lines[i].comment;
    if (comment.find("lts-lint:") == std::string::npos) continue;
    std::smatch m;
    if (!std::regex_search(comment, m, kWaiverRe)) {
      diags.push_back(
          {path, i + 1, "waiver-syntax", "unparseable lts-lint annotation"});
      continue;
    }
    Waiver w;
    w.line = i + 1;
    w.token = m[1].str();
    w.justification = m[3].matched ? m[3].str() : "";
    const auto it = tokens.find(w.token);
    if (it == tokens.end()) {
      diags.push_back({path, w.line, "waiver-syntax",
                       "unknown waiver token '" + w.token + "'"});
      continue;
    }
    if (!m[2].matched || is_blank(w.justification)) {
      diags.push_back({path, w.line, "waiver-syntax",
                       "waiver '" + w.token +
                           "' requires a justification: // lts-lint: " +
                           w.token + "(<why>)"});
      continue;
    }
    if (w.token == "shared-guarded") {
      // site-partitioned is listed before partitioned so the alternation
      // matches the longer, more specific strategy name; the \b after the
      // group keeps e.g. "partitioned-ish" from sneaking through.
      static const std::regex kStrategy(
          R"(^\s*(mutex|atomic|site-partitioned|partitioned)\b)");
      if (!std::regex_search(w.justification, kStrategy)) {
        diags.push_back(
            {path, w.line, "waiver-syntax",
             "shared-guarded strategy must be mutex, atomic, partitioned, "
             "or site-partitioned (got '" +
                 w.justification + "')"});
        continue;
      }
    }
    w.rule = it->second;
    w.target = w.line;
    if (is_blank(lines[i].code)) {
      for (std::size_t j = i + 1; j < lines.size() && j <= i + 3; ++j) {
        if (!is_blank(lines[j].code)) {
          w.target = j + 1;
          break;
        }
      }
    }
    waivers.push_back(std::move(w));
  }
  return waivers;
}

// ----------------------------------------------------------------- index ----

const MemberField* ClassInfo::field(const std::string& n) const {
  for (const MemberField& f : fields) {
    if (f.name == n) return &f;
  }
  return nullptr;
}

const MemberFunction* ClassInfo::function(const std::string& n) const {
  for (const MemberFunction& f : functions) {
    if (f.name == n) return &f;
  }
  return nullptr;
}

namespace {

bool is_identifier_keyword(const std::string& name) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",      "while",    "switch",   "return",
      "sizeof",   "alignof",  "decltype", "noexcept", "static_assert",
      "operator", "throw",    "catch",    "new",      "delete",
      "void",     "defined",  "assert",   "explicit", "co_return",
      "case",     "default",  "do",       "else",     "goto"};
  return kKeywords.count(name) > 0;
}

/// The identifier (possibly ::-qualified) immediately preceding position
/// `paren` in `code`; empty if none.
std::string qualified_name_before(const std::string& code, std::size_t paren) {
  std::size_t end = paren;
  while (end > 0 && (code[end - 1] == ' ' || code[end - 1] == '\t')) --end;
  std::size_t begin = end;
  auto is_name_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '~';
  };
  while (begin > 0 && is_name_char(code[begin - 1])) --begin;
  // Trim leading ':' fragments from e.g. "a ? b : c()".
  while (begin < end && code[begin] == ':') ++begin;
  return code.substr(begin, end - begin);
}

/// Collects class/struct definitions with member fields (the `_`-suffix
/// convention) and member-function declarations, tracking access sections.
void scan_classes(FileModel& fm) {
  static const std::regex kClassOpen(
      R"(\b(enum\s+class|enum\s+struct|class|struct)\s+([A-Za-z_]\w*))");
  static const std::regex kAccess(R"(^\s*(public|protected|private)\s*:)");
  // One member declaration per line; the name carries the trailing `_`.
  static const std::regex kField(
      R"(^\s*((?:mutable\s+|static\s+|constexpr\s+|inline\s+)*(?:const\s+)?[A-Za-z_][\w:]*(?:\s*<[^;]*>)?(?:\s*[&\*])*)\s+([A-Za-z_]\w*_)\s*(?:\{[^}]*\}|=[^;]*)?;)");

  struct OpenClass {
    ClassInfo info;
    int body_depth = 0;     // brace depth inside the class body
    std::string access;
  };
  std::vector<OpenClass> stack;
  int depth = 0;
  bool pending = false;
  ClassInfo pending_info;
  std::string pending_access;

  for (std::size_t i = 0; i < fm.lines.size(); ++i) {
    const std::string& code = fm.lines[i].code;
    std::smatch m;
    if (!pending && std::regex_search(code, m, kClassOpen) &&
        !starts_with(m[1].str(), "enum") &&
        code.find("template") == std::string::npos) {
      // Only treat it as a definition if a '{' follows before any ';'
      // (skips forward declarations and friend decls); the brace may sit
      // on the match line or lines below.
      const std::string tail = m.suffix().str();
      const std::size_t tail_brace = tail.find('{');
      const std::size_t tail_semi = tail.find(';');
      bool opens = tail_brace != std::string::npos &&
                   (tail_semi == std::string::npos || tail_brace < tail_semi);
      bool closed = !opens && tail_semi != std::string::npos;
      if (!opens && !closed) {
        for (std::size_t j = i + 1; j < fm.lines.size() && j <= i + 3; ++j) {
          const std::string& look = fm.lines[j].code;
          const std::size_t brace = look.find('{');
          const std::size_t semi = look.find(';');
          if (brace != std::string::npos &&
              (semi == std::string::npos || brace < semi)) {
            opens = true;
            break;
          }
          if (semi != std::string::npos) break;
        }
      }
      if (opens) {
        pending = true;
        pending_info = ClassInfo{};
        pending_info.name = m[2].str();
        pending_info.file = fm.path;
        pending_access = m[1].str() == "class" ? "private" : "public";
      }
    }

    // Record members only for lines sitting directly in the innermost
    // class body (depth == its body_depth): nested classes collect their
    // own members, function bodies are deeper and skipped.
    if (!stack.empty() && !pending) {
      OpenClass& cls = stack.back();
      if (depth == cls.body_depth) {
        std::smatch am;
        if (std::regex_search(code, am, kAccess)) {
          cls.access = am[1].str();
        } else if (std::regex_search(code, am, kField)) {
          cls.info.fields.push_back(
              MemberField{am[2].str(), am[1].str(), cls.access});
        } else {
          // Member function declaration: first unqualified identifier
          // followed by '('.
          for (std::size_t p = code.find('('); p != std::string::npos;
               p = code.find('(', p + 1)) {
            std::string name = qualified_name_before(code, p);
            if (name.empty()) continue;
            if (!name.empty() && name[0] == '~') name = name.substr(1);
            if (name.find(':') != std::string::npos) continue;  // a call
            if (is_identifier_keyword(name)) continue;
            if (ends_with(name, "_")) continue;  // field with init, not fn
            cls.info.functions.push_back(MemberFunction{name, cls.access});
            break;
          }
        }
      }
    }

    // Brace tracking, attaching the pending class at its opening brace.
    for (char c : code) {
      if (c == '{') {
        ++depth;
        if (pending) {
          OpenClass oc;
          oc.info = std::move(pending_info);
          oc.body_depth = depth;
          oc.access = pending_access;
          stack.push_back(std::move(oc));
          pending = false;
        }
      } else if (c == '}') {
        --depth;
        while (!stack.empty() && stack.back().body_depth > depth) {
          fm.classes.push_back(std::move(stack.back().info));
          stack.pop_back();
        }
      }
    }
  }
  while (!stack.empty()) {  // unterminated (truncated fixture): keep what we saw
    fm.classes.push_back(std::move(stack.back().info));
    stack.pop_back();
  }
}

/// Collects namespace-level function definitions (free and out-of-line
/// member) with their body line ranges. "Namespace level" means the brace
/// depth contributed by anything other than `namespace {` / `extern "C" {`
/// is zero, so class bodies and function bodies are never scanned twice.
void scan_functions(FileModel& fm) {
  static const std::regex kControl(R"(^\s*(?:#|template\b))");
  int depth = 0;
  int ns_depth = 0;           // how many open braces are namespace braces
  std::vector<bool> ns_open;  // per open brace: was it a namespace?
  bool pending_ns = false;

  for (std::size_t i = 0; i < fm.lines.size(); ++i) {
    const std::string& code = fm.lines[i].code;
    if (code.find("namespace") != std::string::npos) pending_ns = true;

    if (depth == ns_depth && !std::regex_search(code, kControl)) {
      const std::size_t paren = code.find('(');
      if (paren != std::string::npos) {
        std::string qual = qualified_name_before(code, paren);
        if (!qual.empty() && qual.find('~') == std::string::npos) {
          // A definition's '{' appears before any ';' (declarations and
          // plain statements end with ';' first).
          std::size_t open_line = 0;
          bool is_def = false;
          for (std::size_t j = i; j < fm.lines.size() && j <= i + 12; ++j) {
            const std::string& look = fm.lines[j].code;
            std::size_t from = j == i ? paren : 0;
            const std::size_t brace = look.find('{', from);
            const std::size_t semi = look.find(';', from);
            const std::size_t eq = look.find('=', from);
            if (brace != std::string::npos &&
                (semi == std::string::npos || brace < semi) &&
                (eq == std::string::npos || brace < eq)) {
              is_def = true;
              open_line = j;
              break;
            }
            if (semi != std::string::npos || eq != std::string::npos) break;
          }
          std::string cls;
          std::string name = qual;
          const std::size_t sep = qual.rfind("::");
          if (sep != std::string::npos) {
            cls = qual.substr(0, sep);
            name = qual.substr(sep + 2);
            const std::size_t cls_sep = cls.rfind("::");
            if (cls_sep != std::string::npos) cls = cls.substr(cls_sep + 2);
          }
          if (is_def && !is_identifier_keyword(name)) {
            // Walk to the matching close brace.
            int fn_depth = 0;
            std::size_t end_line = open_line;
            bool closed = false;
            for (std::size_t j = open_line;
                 j < fm.lines.size() && !closed; ++j) {
              std::size_t from = j == open_line
                                     ? fm.lines[j].code.find('{')
                                     : 0;
              const std::string& look = fm.lines[j].code;
              for (std::size_t k = from; k < look.size(); ++k) {
                if (look[k] == '{') ++fn_depth;
                if (look[k] == '}') {
                  --fn_depth;
                  if (fn_depth == 0) {
                    end_line = j;
                    closed = true;
                    break;
                  }
                }
              }
            }
            if (closed) {
              fm.functions.push_back(FunctionDef{cls, name, i + 1,
                                                 open_line + 1, end_line + 1});
              // Skip the body: nothing inside is at namespace level.
              // (Brace tracking below still needs to see these lines, so
              // only the *function scan* skips ahead.)
            }
          }
        }
      }
    }

    for (char c : code) {
      if (c == '{') {
        ++depth;
        ns_open.push_back(pending_ns);
        if (pending_ns) {
          ++ns_depth;
          pending_ns = false;
        }
      } else if (c == '}') {
        if (!ns_open.empty()) {
          if (ns_open.back()) --ns_depth;
          ns_open.pop_back();
        }
        if (depth > 0) --depth;
      }
    }
    if (pending_ns && code.find(';') != std::string::npos) {
      pending_ns = false;  // e.g. `namespace fs = std::filesystem;`
    }
  }
}

void scan_includes(FileModel& fm) {
  static const std::regex kInclude(R"(^\s*#\s*include\s+\"([^\"]+)\")");
  for (const SourceLine& l : fm.lines) {
    std::smatch m;
    if (std::regex_search(l.code, m, kInclude)) {
      fm.includes.push_back(m[1].str());
    }
  }
}

std::string stem_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

}  // namespace

std::set<std::string> unordered_names(const std::vector<SourceLine>& lines) {
  static const std::regex kDecl(
      R"(unordered_(?:map|set)\s*<[^;{]*>\s*&?\s*(\w+)\s*[;={])");
  std::set<std::string> names;
  for (const SourceLine& l : lines) {
    std::smatch m;
    std::string rest = l.code;
    while (std::regex_search(rest, m, kDecl)) {
      names.insert(m[1].str());
      rest = m.suffix();
    }
  }
  return names;
}

FileModel build_file_model(const std::string& rel_path,
                           const std::string& content,
                           const std::map<std::string, std::string>& tokens) {
  FileModel fm;
  fm.path = rel_path;
  fm.lines = preprocess(content);
  fm.waivers = collect_waivers(fm.lines, tokens, fm.waiver_diags, rel_path);
  scan_includes(fm);
  scan_classes(fm);
  scan_functions(fm);
  return fm;
}

// ---------------------------------------------------------------- project ----

const ClassInfo* ProjectModel::find_class(const std::string& name) const {
  const auto it = classes.find(name);
  return it == classes.end() ? nullptr : &it->second;
}

const FileModel* ProjectModel::companion_of(const std::string& cpp_path) const {
  if (!ends_with(cpp_path, ".cpp") && !ends_with(cpp_path, ".cc")) {
    return nullptr;
  }
  const std::string stem = stem_of(cpp_path);
  const auto edges = include_edges.find(cpp_path);
  if (edges != include_edges.end()) {
    for (const std::string& target : edges->second) {
      if (is_header_path(target) && stem_of(target) == stem) {
        const auto f = files.find(target);
        if (f != files.end()) return &f->second;
      }
    }
  }
  const std::string sibling =
      (dir_of(cpp_path).empty() ? stem : dir_of(cpp_path) + "/" + stem) +
      ".hpp";
  const auto f = files.find(sibling);
  return f == files.end() ? nullptr : &f->second;
}

ProjectModel ProjectModel::from_files(
    const std::vector<std::pair<std::string, std::string>>& path_content,
    const std::vector<std::string>& include_roots,
    const std::map<std::string, std::string>& tokens) {
  ProjectModel pm;
  for (const auto& [path, content] : path_content) {
    pm.files.emplace(path, build_file_model(path, content, tokens));
  }
  // Merge the class index: the richest definition wins, so a forward
  // declaration or a stub never shadows the real member list.
  for (const auto& [path, fm] : pm.files) {
    for (const ClassInfo& c : fm.classes) {
      auto [it, inserted] = pm.classes.emplace(c.name, c);
      if (!inserted &&
          c.fields.size() + c.functions.size() >
              it->second.fields.size() + it->second.functions.size()) {
        it->second = c;
      }
    }
  }
  // Resolve quoted includes against the scanned set: first the include
  // roots, then the including file's own directory.
  for (const auto& [path, fm] : pm.files) {
    std::vector<std::string> resolved;
    for (const std::string& inc : fm.includes) {
      std::string hit;
      for (const std::string& r : include_roots) {
        const std::string candidate = r.empty() ? inc : r + "/" + inc;
        if (pm.files.count(candidate) > 0) {
          hit = candidate;
          break;
        }
      }
      if (hit.empty()) {
        const std::string local = dir_of(path);
        const std::string candidate =
            local.empty() ? inc : local + "/" + inc;
        if (pm.files.count(candidate) > 0) hit = candidate;
      }
      if (!hit.empty()) resolved.push_back(hit);
    }
    if (!resolved.empty()) pm.include_edges.emplace(path, std::move(resolved));
  }
  return pm;
}

std::vector<std::string> include_roots_from_compile_commands(
    const std::string& json_text, const std::string& root) {
  std::vector<std::string> roots;
  if (!json_text.empty()) {
    // The compilation database is machine-written JSON; the -I arguments
    // are what matter, and a tolerant scan keeps this free of a hard
    // dependency on any one generator's quoting style.
    static const std::regex kInclude(R"(-I\s*([^\s\",\\]+))");
    std::string prefix = root;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    auto begin =
        std::sregex_iterator(json_text.begin(), json_text.end(), kInclude);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      std::string dir = (*it)[1].str();
      if (starts_with(dir, prefix)) {
        dir = dir.substr(prefix.size());
      } else if (dir == root) {
        dir.clear();
      } else if (!starts_with(dir, "/")) {
        // Already relative (some generators emit relative -I).
      } else {
        continue;  // include dir outside the repo: irrelevant to the graph
      }
      while (!dir.empty() && dir.back() == '/') dir.pop_back();
      if (std::find(roots.begin(), roots.end(), dir) == roots.end()) {
        roots.push_back(dir);
      }
    }
  }
  if (roots.empty()) roots = {"src", "tools"};
  return roots;
}

}  // namespace lts::lint
