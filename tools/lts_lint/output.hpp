// lts_lint output backends and baseline diffing.
//
// Three renderings of the same diagnostic list: GCC-style text (editors,
// ctest logs), a flat JSON array (scripting), and SARIF 2.1.0 (code-scanning
// upload; the rule table is generated from the registry so SARIF rule
// metadata never drifts from --list-rules).
//
// The baseline is a checked-in JSON array of fingerprint counts. A
// fingerprint is (path, rule, message) — deliberately *without* the line
// number, so unrelated edits that shift a pre-existing finding do not count
// as "new". Counts make the subtraction multiset-aware: a file with two
// identical pre-existing findings does not get a third for free.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lts_lint/model.hpp"

namespace lts::lint {

/// GCC-style rendering: "path:line: error[rule]: message\n" per entry.
std::string format_diagnostics(const std::vector<Diagnostic>& diags);

/// Flat JSON array: [{"path","line","rule","message"}...], pretty-printed.
std::string to_json(const std::vector<Diagnostic>& diags);

/// SARIF 2.1.0 document with the registry-derived rule table. Deterministic:
/// object keys are sorted (lts::Json is std::map-backed) and results keep
/// the input (path, line, rule) order.
std::string to_sarif(const std::vector<Diagnostic>& diags);

/// Fingerprint multiset: fingerprint -> count.
using Baseline = std::map<std::string, int>;

std::string fingerprint(const Diagnostic& d);

/// Serializes the diagnostics' fingerprint counts as the baseline document.
std::string write_baseline(const std::vector<Diagnostic>& diags);

/// Parses a baseline document; throws lts::Error on malformed input.
Baseline load_baseline(const std::string& text);

/// Diagnostics not covered by the baseline: each fingerprint consumes
/// baseline count first; the overflow (new findings) is returned in the
/// input order.
std::vector<Diagnostic> diff_baseline(const std::vector<Diagnostic>& diags,
                                      const Baseline& baseline);

}  // namespace lts::lint
