#include "lts_lint/output.hpp"

#include <sstream>

#include "lts_lint/rules.hpp"
#include "util/json.hpp"

namespace lts::lint {

std::string format_diagnostics(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  for (const Diagnostic& d : diags) {
    out << d.path << ':' << d.line << ": error[" << d.rule
        << "]: " << d.message << '\n';
  }
  return out.str();
}

std::string to_json(const std::vector<Diagnostic>& diags) {
  Json arr = Json::array();
  for (const Diagnostic& d : diags) {
    Json entry = Json::object();
    entry["path"] = Json(d.path);
    entry["line"] = Json(d.line);
    entry["rule"] = Json(d.rule);
    entry["message"] = Json(d.message);
    arr.push_back(std::move(entry));
  }
  return arr.dump(2) + "\n";
}

std::string to_sarif(const std::vector<Diagnostic>& diags) {
  Json rules = Json::array();
  for (const Rule& r : rule_registry()) {
    Json rule = Json::object();
    rule["id"] = Json(r.info.id);
    rule["name"] = Json(r.info.name);
    Json short_desc = Json::object();
    short_desc["text"] = Json(r.info.summary);
    rule["shortDescription"] = std::move(short_desc);
    Json help = Json::object();
    help["text"] = Json(r.info.rationale);
    rule["help"] = std::move(help);
    Json props = Json::object();
    if (!r.info.waiver.empty()) props["waiverToken"] = Json(r.info.waiver);
    rule["properties"] = std::move(props);
    rules.push_back(std::move(rule));
  }
  // The waiver machinery's own diagnostics appear in results; list them in
  // the rule table too so every result's ruleId resolves.
  for (const char* id : {"waiver-syntax", "waiver-unused"}) {
    Json rule = Json::object();
    rule["id"] = Json(id);
    Json short_desc = Json::object();
    short_desc["text"] =
        Json(std::string(id) == "waiver-syntax"
                 ? "malformed lts-lint waiver annotation"
                 : "waiver that suppresses no violation");
    rule["shortDescription"] = std::move(short_desc);
    rules.push_back(std::move(rule));
  }

  Json driver = Json::object();
  driver["name"] = Json("lts_lint");
  driver["informationUri"] =
      Json("https://github.com/lts/lts/blob/main/tools/lts_lint");
  driver["version"] = Json("2.0.0");
  driver["rules"] = std::move(rules);
  Json tool = Json::object();
  tool["driver"] = std::move(driver);

  Json results = Json::array();
  for (const Diagnostic& d : diags) {
    Json result = Json::object();
    result["ruleId"] = Json(d.rule);
    result["level"] = Json("error");
    Json message = Json::object();
    message["text"] = Json(d.message);
    result["message"] = std::move(message);
    Json artifact = Json::object();
    artifact["uri"] = Json(d.path);
    Json region = Json::object();
    region["startLine"] = Json(d.line == 0 ? std::size_t{1} : d.line);
    Json physical = Json::object();
    physical["artifactLocation"] = std::move(artifact);
    physical["region"] = std::move(region);
    Json location = Json::object();
    location["physicalLocation"] = std::move(physical);
    Json locations = Json::array();
    locations.push_back(std::move(location));
    result["locations"] = std::move(locations);
    results.push_back(std::move(result));
  }

  Json run = Json::object();
  run["tool"] = std::move(tool);
  run["results"] = std::move(results);
  Json runs = Json::array();
  runs.push_back(std::move(run));

  Json doc = Json::object();
  doc["$schema"] = Json(
      "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json");
  doc["version"] = Json("2.1.0");
  doc["runs"] = std::move(runs);
  return doc.dump(2) + "\n";
}

std::string fingerprint(const Diagnostic& d) {
  // Unit separator: cannot occur in paths, rule ids, or messages.
  return d.path + '\x1f' + d.rule + '\x1f' + d.message;
}

std::string write_baseline(const std::vector<Diagnostic>& diags) {
  Baseline counts;
  for (const Diagnostic& d : diags) {
    ++counts[fingerprint(d)];
  }
  Json arr = Json::array();
  for (const auto& [fp, count] : counts) {
    const std::size_t first = fp.find('\x1f');
    const std::size_t second = fp.find('\x1f', first + 1);
    Json entry = Json::object();
    entry["path"] = Json(fp.substr(0, first));
    entry["rule"] = Json(fp.substr(first + 1, second - first - 1));
    entry["message"] = Json(fp.substr(second + 1));
    entry["count"] = Json(count);
    arr.push_back(std::move(entry));
  }
  return arr.dump(2) + "\n";
}

Baseline load_baseline(const std::string& text) {
  Baseline counts;
  if (is_blank(text)) return counts;
  const Json doc = Json::parse(text);
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const Json& entry = doc.at(i);
    Diagnostic d;
    d.path = entry.at("path").as_string();
    d.rule = entry.at("rule").as_string();
    d.message = entry.at("message").as_string();
    const int count = entry.contains("count") ? entry.at("count").as_int() : 1;
    counts[fingerprint(d)] += count;
  }
  return counts;
}

std::vector<Diagnostic> diff_baseline(const std::vector<Diagnostic>& diags,
                                      const Baseline& baseline) {
  Baseline remaining = baseline;
  std::vector<Diagnostic> fresh;
  for (const Diagnostic& d : diags) {
    const auto it = remaining.find(fingerprint(d));
    if (it != remaining.end() && it->second > 0) {
      --it->second;
      continue;
    }
    fresh.push_back(d);
  }
  return fresh;
}

}  // namespace lts::lint
