// lts_lint CLI: walks the repository and reports invariant violations.
//
//   lts_lint [--root <dir>] [--no-unused-waivers]
//
// Exit code 0 when the tree is clean, 1 when any diagnostic was emitted,
// 2 on usage errors. Output is GCC-style `file:line: error[rule]: message`
// so editors and CI annotate it natively.
#include <cstdio>
#include <string>
#include <vector>

#include "lts_lint/linter.hpp"

namespace {

void print_rules() {
  std::puts(
      "lts_lint rule catalog:\n"
      "  R1  nondeterminism sources (random_device, rand, wall clocks,\n"
      "      getenv) in src/ outside the obs/CLI layers\n"
      "  R2  std::unordered_map/set in determinism-critical dirs\n"
      "      (simcore, net, core, cluster, spark)\n"
      "  R3  obs instrumentation in hot paths (simcore, net) outside the\n"
      "      static-Metrics-struct / record_* / cached-enabled-flag pattern\n"
      "  R4  raw std::thread or detach() outside src/util/thread_pool;\n"
      "      parallel_for lambdas with by-reference captures lacking a\n"
      "      shared-guarded(mutex|atomic|partitioned) annotation\n"
      "  R5  headers without #pragma once / include guards, or with\n"
      "      file-scope `using namespace`\n"
      "waivers: // lts-lint: <token>(<justification>) on or directly above\n"
      "the flagged line; tokens: nondeterminism-ok ordered-ok obs-gated\n"
      "thread-ok shared-guarded. Malformed or unused waivers are errors.");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  lts::lint::Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--no-unused-waivers") {
      opts.check_unused_waivers = false;
    } else if (arg == "--list-rules") {
      print_rules();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::puts("usage: lts_lint [--root <dir>] [--no-unused-waivers] "
                "[--list-rules]");
      return 0;
    } else {
      std::fprintf(stderr, "lts_lint: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  const std::vector<lts::lint::Diagnostic> diags =
      lts::lint::lint_tree(root, opts);
  if (diags.empty()) {
    std::puts("lts_lint: clean");
    return 0;
  }
  std::fputs(lts::lint::format_diagnostics(diags).c_str(), stderr);
  std::fprintf(stderr, "lts_lint: %zu violation(s)\n", diags.size());
  return 1;
}
