// lts_lint CLI: walks the repository and reports invariant violations.
//
//   lts_lint [--root <dir>] [--format text|json|sarif] [--out <file>]
//            [--baseline <file>] [--write-baseline <file>]
//            [--jobs <n>] [--no-unused-waivers]
//            [--list-rules] [--explain <rule>]
//
// Exit code 0 when the tree is clean (or, under --baseline, when every
// finding is covered by the baseline), 1 when any new diagnostic was
// emitted, 2 on usage errors. Default output is GCC-style
// `file:line: error[rule]: message` so editors and CI annotate it natively;
// --format json/sarif render the same findings for scripting and
// code-scanning upload, and --out writes the rendering to a file while the
// human-readable summary stays on stderr.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lts_lint/linter.hpp"
#include "lts_lint/rules.hpp"

namespace {

void print_rules() {
  std::puts("lts_lint rule catalog:");
  for (const lts::lint::Rule& r : lts::lint::rule_registry()) {
    std::printf("  %-3s %s\n      %s\n", r.info.id.c_str(),
                r.info.name.c_str(), r.info.summary.c_str());
  }
  std::puts(
      "waivers: // lts-lint: <token>(<justification>) on or directly above\n"
      "the flagged line. Malformed or unused waivers are errors.\n"
      "Use --explain <rule> for rationale, an example, and the waiver "
      "token.");
}

int explain_rule(const std::string& id) {
  const lts::lint::Rule* r = lts::lint::find_rule(id);
  if (r == nullptr) {
    std::fprintf(stderr, "lts_lint: unknown rule '%s' (try --list-rules)\n",
                 id.c_str());
    return 2;
  }
  std::printf("%s (%s)\n  %s\n\nWhy:\n  %s\n\nExample violation:\n  %s\n",
              r->info.id.c_str(), r->info.name.c_str(),
              r->info.summary.c_str(), r->info.rationale.c_str(),
              r->info.example.c_str());
  if (!r->info.waiver.empty()) {
    std::printf("\nWaiver:\n  // lts-lint: %s(<why this instance is safe>)\n",
                r->info.waiver.c_str());
  } else {
    std::puts("\nWaiver:\n  none — violations of this rule must be fixed");
  }
  return 0;
}

std::string read_file_or_die(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "lts_lint: cannot read '%s'\n", path.c_str());
    ok = false;
    return "";
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ok = true;
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string format = "text";
  std::string out_path;
  std::string baseline_path;
  std::string write_baseline_path;
  lts::lint::Options opts;

  // Value-taking flags accept both `--flag value` and `--flag=value`; the
  // lambda splits the latter so the dispatch below sees one shape.
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string raw = argv[i];
    const auto eq = raw.find('=');
    if (raw.rfind("--", 0) == 0 && eq != std::string::npos) {
      args.push_back(raw.substr(0, eq));
      args.push_back(raw.substr(eq + 1));
    } else {
      args.push_back(raw);
    }
  }

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--root" && i + 1 < args.size()) {
      root = args[++i];
    } else if (arg == "--format" && i + 1 < args.size()) {
      format = args[++i];
      if (format != "text" && format != "json" && format != "sarif") {
        std::fprintf(stderr, "lts_lint: unknown format '%s'\n",
                     format.c_str());
        return 2;
      }
    } else if (arg == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (arg == "--baseline" && i + 1 < args.size()) {
      baseline_path = args[++i];
    } else if (arg == "--write-baseline" && i + 1 < args.size()) {
      write_baseline_path = args[++i];
    } else if (arg == "--jobs" && i + 1 < args.size()) {
      opts.jobs = static_cast<std::size_t>(std::stoul(args[++i]));
    } else if (arg == "--no-unused-waivers") {
      opts.check_unused_waivers = false;
    } else if (arg == "--list-rules") {
      print_rules();
      return 0;
    } else if (arg == "--explain" && i + 1 < args.size()) {
      return explain_rule(args[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::puts(
          "usage: lts_lint [--root <dir>] [--format text|json|sarif]\n"
          "                [--out <file>] [--baseline <file>]\n"
          "                [--write-baseline <file>] [--jobs <n>]\n"
          "                [--no-unused-waivers] [--list-rules]\n"
          "                [--explain <rule>]");
      return 0;
    } else {
      std::fprintf(stderr, "lts_lint: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  const std::vector<lts::lint::Diagnostic> all =
      lts::lint::lint_tree(root, opts);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    out << lts::lint::write_baseline(all);
    if (!out) {
      std::fprintf(stderr, "lts_lint: cannot write '%s'\n",
                   write_baseline_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "lts_lint: wrote baseline (%zu finding(s)) to %s\n",
                 all.size(), write_baseline_path.c_str());
    return 0;
  }

  std::vector<lts::lint::Diagnostic> diags = all;
  std::size_t suppressed = 0;
  if (!baseline_path.empty()) {
    bool ok = false;
    const std::string text = read_file_or_die(baseline_path, ok);
    if (!ok) return 2;
    try {
      diags = lts::lint::diff_baseline(all, lts::lint::load_baseline(text));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "lts_lint: malformed baseline '%s': %s\n",
                   baseline_path.c_str(), e.what());
      return 2;
    }
    suppressed = all.size() - diags.size();
  }

  // Render the post-baseline findings: that is what CI gates on, and a
  // SARIF upload should not resurface accepted pre-existing debt.
  std::string rendered;
  if (format == "json") {
    rendered = lts::lint::to_json(diags);
  } else if (format == "sarif") {
    rendered = lts::lint::to_sarif(diags);
  } else {
    rendered = lts::lint::format_diagnostics(diags);
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    out << rendered;
    if (!out) {
      std::fprintf(stderr, "lts_lint: cannot write '%s'\n", out_path.c_str());
      return 2;
    }
  } else if (format != "text") {
    std::fputs(rendered.c_str(), stdout);
  }

  if (diags.empty()) {
    if (suppressed > 0) {
      std::fprintf(stderr,
                   "lts_lint: clean (%zu baseline finding(s) suppressed)\n",
                   suppressed);
    } else {
      std::puts("lts_lint: clean");
    }
    return 0;
  }
  // The human-readable rendering always reaches stderr so a failing ctest
  // run or CI log shows the actual findings, not just a count.
  std::fputs(lts::lint::format_diagnostics(diags).c_str(), stderr);
  std::fprintf(stderr, "lts_lint: %zu %sviolation(s)\n", diags.size(),
               baseline_path.empty() ? "" : "new ");
  return 1;
}
