#include "lts_lint/linter.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace lts::lint {
namespace {

// ------------------------------------------------------------------ text ----

/// One physical line split into executable text and comment text. String and
/// character literals are blanked from `code` so patterns inside them (e.g.
/// this linter's own rule regexes) never fire; comment text is kept separately
/// because waivers live there.
struct SourceLine {
  std::string code;
  std::string comment;
};

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  lines.push_back(std::move(current));
  return lines;
}

/// Strips comments and literals line by line, tracking block-comment state
/// across lines. Escaped quotes inside literals are honored; raw strings are
/// not (the codebase does not use them in linted directories).
std::vector<SourceLine> preprocess(const std::string& text) {
  std::vector<SourceLine> out;
  bool in_block_comment = false;
  for (const std::string& raw : split_lines(text)) {
    SourceLine line;
    std::size_t i = 0;
    while (i < raw.size()) {
      if (in_block_comment) {
        const std::size_t end = raw.find("*/", i);
        if (end == std::string::npos) {
          line.comment.append(raw, i, raw.size() - i);
          i = raw.size();
        } else {
          line.comment.append(raw, i, end - i);
          i = end + 2;
          in_block_comment = false;
        }
        continue;
      }
      const char c = raw[i];
      if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '/') {
        line.comment.append(raw, i + 2, raw.size() - i - 2);
        break;
      }
      if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        line.code.push_back(quote);
        ++i;
        while (i < raw.size()) {
          if (raw[i] == '\\' && i + 1 < raw.size()) {
            i += 2;
            continue;
          }
          if (raw[i] == quote) {
            line.code.push_back(quote);
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      line.code.push_back(c);
      ++i;
    }
    out.push_back(std::move(line));
  }
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_header_path(const std::string& path) {
  return ends_with(path, ".hpp") || ends_with(path, ".h");
}

bool is_blank(const std::string& s) {
  return s.find_first_not_of(" \t") == std::string::npos;
}

// --------------------------------------------------------------- waivers ----

struct Waiver {
  std::size_t line = 0;    // 1-based line the waiver comment sits on
  std::size_t target = 0;  // 1-based line it applies to
  std::string token;
  std::string justification;
  std::string rule;  // rule id the token waives; empty if malformed
  bool used = false;
};

const std::map<std::string, std::string>& waiver_tokens() {
  static const std::map<std::string, std::string> tokens = {
      {"nondeterminism-ok", "R1"}, {"ordered-ok", "R2"},
      {"obs-gated", "R3"},         {"thread-ok", "R4"},
      {"shared-guarded", "R4"},
  };
  return tokens;
}

/// Finds waivers in comment text and resolves each to its target line: the
/// same line when it trails code, otherwise the next line that carries code
/// (within a 3-line window, so a standalone comment block can precede its
/// target).
std::vector<Waiver> collect_waivers(const std::vector<SourceLine>& lines,
                                    std::vector<Diagnostic>& diags,
                                    const std::string& path) {
  static const std::regex kWaiverRe(
      R"(lts-lint:\s*([A-Za-z][A-Za-z-]*)\s*(\(([^)]*)\))?)");
  std::vector<Waiver> waivers;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& comment = lines[i].comment;
    if (comment.find("lts-lint:") == std::string::npos) continue;
    std::smatch m;
    if (!std::regex_search(comment, m, kWaiverRe)) {
      diags.push_back({path, i + 1, "waiver-syntax",
                       "unparseable lts-lint annotation"});
      continue;
    }
    Waiver w;
    w.line = i + 1;
    w.token = m[1].str();
    w.justification = m[3].matched ? m[3].str() : "";
    const auto it = waiver_tokens().find(w.token);
    if (it == waiver_tokens().end()) {
      diags.push_back({path, w.line, "waiver-syntax",
                       "unknown waiver token '" + w.token + "'"});
      continue;
    }
    if (!m[2].matched || is_blank(w.justification)) {
      diags.push_back({path, w.line, "waiver-syntax",
                       "waiver '" + w.token +
                           "' requires a justification: // lts-lint: " +
                           w.token + "(<why>)"});
      continue;
    }
    if (w.token == "shared-guarded") {
      // site-partitioned is listed before partitioned so the alternation
      // matches the longer, more specific strategy name; the \b after the
      // group keeps e.g. "partitioned-ish" from sneaking through.
      static const std::regex kStrategy(
          R"(^\s*(mutex|atomic|site-partitioned|partitioned)\b)");
      if (!std::regex_search(w.justification, kStrategy)) {
        diags.push_back(
            {path, w.line, "waiver-syntax",
             "shared-guarded strategy must be mutex, atomic, partitioned, "
             "or site-partitioned (got '" +
                 w.justification + "')"});
        continue;
      }
    }
    w.rule = it->second;
    w.target = w.line;
    if (is_blank(lines[i].code)) {
      for (std::size_t j = i + 1; j < lines.size() && j <= i + 3; ++j) {
        if (!is_blank(lines[j].code)) {
          w.target = j + 1;
          break;
        }
      }
    }
    waivers.push_back(std::move(w));
  }
  return waivers;
}

// -------------------------------------------------------------- scoping ----

bool under_any(const std::string& path, std::initializer_list<const char*> dirs) {
  for (const char* d : dirs) {
    if (starts_with(path, d)) return true;
  }
  return false;
}

bool r1_scope(const std::string& p) {
  // Wall-clock timing is the obs layer's business (span durations); the CLI
  // layer may read the environment. Everything else under src/ must be a
  // pure function of its inputs.
  return starts_with(p, "src/") && !starts_with(p, "src/obs/");
}

bool r2_scope(const std::string& p) {
  return under_any(p, {"src/simcore/", "src/net/", "src/core/",
                       "src/cluster/", "src/spark/"});
}

bool r3_scope(const std::string& p) {
  return under_any(p, {"src/simcore/", "src/net/"});
}

bool thread_pool_path(const std::string& p) {
  return starts_with(p, "src/util/thread_pool.");
}

// ------------------------------------------------------------ rule state ----

struct Context {
  std::string path;
  std::vector<SourceLine> lines;
  std::vector<Waiver> waivers;
  std::vector<Diagnostic> diags;

  /// Reports a violation of `rule` at 1-based `line` unless a matching
  /// waiver targets that line (waivers on the preceding standalone comment
  /// line resolve their target during collection).
  void report(std::size_t line, const std::string& rule,
              const std::string& message) {
    for (Waiver& w : waivers) {
      if (w.rule == rule && w.target == line) {
        w.used = true;
        return;
      }
    }
    diags.push_back({path, line, rule, message});
  }

  /// True if a shared-guarded annotation targets `line` (and marks it used).
  bool consume_shared_guarded(std::size_t line) {
    for (Waiver& w : waivers) {
      if (w.token == "shared-guarded" && w.target == line) {
        w.used = true;
        return true;
      }
    }
    return false;
  }
};

// ------------------------------------------------------------------- R1 ----

void check_r1(Context& ctx) {
  if (!r1_scope(ctx.path)) return;
  struct Pattern {
    std::regex re;
    const char* what;
  };
  static const std::vector<Pattern> kPatterns = [] {
    std::vector<Pattern> p;
    p.push_back({std::regex(R"(std::random_device)"),
                 "std::random_device (seed via lts::Rng instead)"});
    p.push_back({std::regex(R"(\bs?rand\s*\()"),
                 "rand()/srand() (use the seeded lts::Rng streams)"});
    p.push_back({std::regex(
                     R"(\b(system_clock|steady_clock|high_resolution_clock)\b)"),
                 "wall-clock time (simulation time comes from sim::Engine)"});
    return p;
  }();
  static const std::regex kGetenv(R"(\bgetenv\s*\()");
  for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    if (code.empty()) continue;
    for (const Pattern& p : kPatterns) {
      if (std::regex_search(code, p.re)) {
        ctx.report(i + 1, "R1",
                   std::string("nondeterminism source in sim/decision code: ") +
                       p.what);
      }
    }
    if (std::regex_search(code, kGetenv)) {
      ctx.report(i + 1, "R1",
                 "getenv outside the CLI layer: configuration must flow "
                 "through explicit options");
    }
  }
}

// ------------------------------------------------------------------- R2 ----

/// Unordered-container member/variable names declared in `lines`, for the
/// cross-file iteration check (a header declares, the .cpp iterates).
std::set<std::string> unordered_names(const std::vector<SourceLine>& lines) {
  static const std::regex kDecl(
      R"(unordered_(?:map|set)\s*<[^;{]*>\s*&?\s*(\w+)\s*[;={])");
  std::set<std::string> names;
  for (const SourceLine& l : lines) {
    std::smatch m;
    std::string rest = l.code;
    while (std::regex_search(rest, m, kDecl)) {
      names.insert(m[1].str());
      rest = m.suffix();
    }
  }
  return names;
}

void check_r2(Context& ctx, const std::vector<SourceLine>& companion) {
  if (!r2_scope(ctx.path)) return;
  static const std::regex kUnordered(R"(\bunordered_(map|set)\b)");
  static const std::regex kPreprocessor(R"(^\s*#)");
  for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
    // #include lines are exempt: the rule targets declarations and
    // iteration, and an include with no use is dead code, not a hazard.
    if (std::regex_search(ctx.lines[i].code, kPreprocessor)) continue;
    if (std::regex_search(ctx.lines[i].code, kUnordered)) {
      ctx.report(i + 1, "R2",
                 "unordered container in determinism-critical code: "
                 "hash-iteration order is implementation-defined; use "
                 "std::map/std::set or sorted iteration");
    }
  }
  // Iteration in this file over a container the companion header declared.
  std::set<std::string> names = unordered_names(companion);
  if (names.empty()) return;
  for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    for (const std::string& name : names) {
      const bool range_for =
          std::regex_search(code, std::regex(R"(for\s*\([^;)]*:\s*)" + name +
                                             R"(\b)"));
      const bool begin_call =
          code.find(name + ".begin(") != std::string::npos ||
          code.find(name + ".cbegin(") != std::string::npos;
      if (range_for || begin_call) {
        ctx.report(i + 1, "R2",
                   "iteration over unordered container '" + name +
                       "' declared in the companion header: order is "
                       "implementation-defined");
      }
    }
  }
}

// ------------------------------------------------------------------- R3 ----

/// Region kinds tracked while scanning a hot-path file. The PR-2 pattern
/// keeps hot loops clean: instruments are registered once inside a static
/// *Metrics struct, mutated only inside an outlined record_* function, and
/// the call into record_* is gated on a cached enabled flag.
enum class Region { kMetricsStruct, kRecordFn };

void check_r3(Context& ctx, const std::vector<SourceLine>& companion) {
  if (!r3_scope(ctx.path)) return;

  static const std::regex kMetricsStructRe(R"(\bstruct\s+\w*Metrics\b)");
  static const std::regex kRecordDefRe(R"(\brecord_\w+\s*\()");
  static const std::regex kRegisterRe(R"(\bobs::(counter|gauge|histogram)\s*\()");
  static const std::regex kInstrumentDeclRe(
      R"(obs::(?:Counter|Gauge|Histogram)&\s*(\w+))");
  static const std::regex kGuardRe(
      R"(obs_enabled_\s*->\s*load\s*\(\s*std::memory_order_relaxed\s*\))");

  // Instrument member names (from this file and the companion header) whose
  // .set()/.add() calls count as obs mutations; .inc()/.observe() are
  // obs-specific enough to match unconditionally.
  std::set<std::string> instruments;
  for (const std::vector<SourceLine>* lines :
       {static_cast<const std::vector<SourceLine>*>(&ctx.lines), &companion}) {
    for (const SourceLine& l : *lines) {
      std::smatch m;
      std::string rest = l.code;
      while (std::regex_search(rest, m, kInstrumentDeclRe)) {
        instruments.insert(m[1].str());
        rest = m.suffix();
      }
    }
  }

  bool has_guard = false;
  for (const SourceLine& l : ctx.lines) {
    if (std::regex_search(l.code, kGuardRe)) {
      has_guard = true;
      break;
    }
  }

  // Forward scan with a region stack keyed on brace depth.
  struct Open {
    Region region;
    int close_depth;  // depth to return to for the region to end
  };
  std::vector<Open> stack;
  int depth = 0;
  bool saw_record_fn = false;
  std::size_t first_record_line = 0;

  // Pending region whose opening brace has not appeared yet.
  bool pending = false;
  Region pending_region = Region::kMetricsStruct;

  auto in_region = [&](Region r) {
    return std::any_of(stack.begin(), stack.end(),
                       [&](const Open& o) { return o.region == r; });
  };

  /// True if the statement containing line i (joined with up to 4 previous
  /// lines, back to the prior ';', '{' or '}') contains `static` — the
  /// function-local `static obs::Counter& c = obs::counter(...)` idiom.
  auto statement_is_static = [&](std::size_t i) {
    std::string stmt;
    for (std::size_t back = 0; back <= 4 && back <= i; ++back) {
      const std::string& code = ctx.lines[i - back].code;
      if (back > 0) {
        const std::size_t boundary = code.find_last_of(";{}");
        if (boundary != std::string::npos) {
          stmt.insert(0, code.substr(boundary + 1) + " ");
          break;
        }
      }
      stmt.insert(0, code + " ");
    }
    return std::regex_search(stmt, std::regex(R"(\bstatic\b)"));
  };

  for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;

    // Region openers are recognized before brace counting so a same-line
    // '{' attaches to the region.
    if (!pending && std::regex_search(code, kMetricsStructRe)) {
      pending = true;
      pending_region = Region::kMetricsStruct;
    } else if (!pending && std::regex_search(code, kRecordDefRe)) {
      // A definition's '{' appears (possibly lines later) before any ';';
      // declarations end with ';' first and open no region.
      for (std::size_t j = i; j < ctx.lines.size() && j <= i + 6; ++j) {
        const std::string& look = ctx.lines[j].code;
        const std::size_t brace = look.find('{');
        const std::size_t semi = look.find(';');
        if (brace != std::string::npos &&
            (semi == std::string::npos || brace < semi)) {
          pending = true;
          pending_region = Region::kRecordFn;
          saw_record_fn = true;
          if (first_record_line == 0) first_record_line = i + 1;
          break;
        }
        if (semi != std::string::npos) break;
      }
    }

    // Registrations: allowed inside a *Metrics struct or a static statement.
    if (std::regex_search(code, kRegisterRe)) {
      const bool allowed = in_region(Region::kMetricsStruct) ||
                           (pending && pending_region == Region::kMetricsStruct) ||
                           statement_is_static(i);
      if (!allowed) {
        ctx.report(i + 1, "R3",
                   "obs instrument registration in a hot path: hoist into a "
                   "static *Metrics struct so lookups never run per event");
      }
    }

    // Mutations: allowed only inside record_* functions.
    bool mutation = std::regex_search(
        code, std::regex(R"(\.\s*(inc|observe)\s*\()"));
    if (!mutation) {
      for (const std::string& name : instruments) {
        if (std::regex_search(
                code, std::regex(R"(\b)" + name + R"(\s*\.\s*(set|add)\s*\()"))) {
          mutation = true;
          break;
        }
      }
    }
    // A pending region counts as entered: a one-line definition's mutation
    // shares the line with the '{' that brace-tracking sees only afterward.
    if (mutation && !in_region(Region::kRecordFn) &&
        !(pending && pending_region == Region::kRecordFn)) {
      ctx.report(i + 1, "R3",
                 "obs instrument mutation in a hot path outside a record_* "
                 "function: outline it and gate the call on the cached "
                 "enabled flag (obs_enabled_->load(relaxed))");
    }

    // Brace tracking, attaching pending regions at their opening brace.
    for (char c : code) {
      if (c == '{') {
        ++depth;
        if (pending) {
          stack.push_back({pending_region, depth - 1});
          pending = false;
        }
      } else if (c == '}') {
        --depth;
        while (!stack.empty() && stack.back().close_depth >= depth) {
          stack.pop_back();
        }
      }
    }
  }

  if (saw_record_fn && !has_guard) {
    ctx.report(first_record_line, "R3",
               "record_* instrumentation present but no cached enabled-flag "
               "guard found: cache MetricsRegistry::global().enabled_flag() "
               "and branch on obs_enabled_->load(std::memory_order_relaxed)");
  }
}

// ------------------------------------------------------------------- R4 ----

void check_r4(Context& ctx) {
  if (thread_pool_path(ctx.path)) return;  // the one sanctioned implementation
  static const std::regex kRawThread(R"(std::j?thread\b(?!::))");
  static const std::regex kDetach(R"(\.\s*detach\s*\()");
  static const std::regex kParallelForCall(R"(\bparallel_for\s*\()");

  for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
    const std::string& code = ctx.lines[i].code;
    if (code.empty()) continue;
    if (std::regex_search(code, kRawThread)) {
      ctx.report(i + 1, "R4",
                 "raw std::thread outside src/util/thread_pool: use "
                 "ThreadPool (or justify with // lts-lint: thread-ok(...))");
    }
    if (std::regex_search(code, kDetach)) {
      ctx.report(i + 1, "R4",
                 "detach() leaks a thread past its owner's lifetime: join "
                 "via ThreadPool futures instead");
    }
    if (std::regex_search(code, kParallelForCall)) {
      // Join the argument list (bounded lookahead) to see the lambda's
      // capture list even when it starts on a later line.
      std::string call = code;
      for (std::size_t j = i + 1; j < ctx.lines.size() && j <= i + 12; ++j) {
        if (call.find("[&") != std::string::npos ||
            call.find('{') != std::string::npos ||
            call.find(';') != std::string::npos) {
          break;
        }
        call += ctx.lines[j].code;
      }
      if (call.find("[&") == std::string::npos) continue;  // no shared capture
      if (ctx.consume_shared_guarded(i + 1)) continue;
      ctx.report(i + 1, "R4",
                 "parallel_for lambda captures by reference: declare the "
                 "sharing discipline with // lts-lint: "
                 "shared-guarded(mutex|atomic|partitioned|site-partitioned)");
    }
  }
}

// ------------------------------------------------------------------- R5 ----

void check_r5(Context& ctx) {
  if (!is_header_path(ctx.path)) return;
  bool guarded = false;
  for (const SourceLine& l : ctx.lines) {
    if (l.code.find("#pragma once") != std::string::npos ||
        l.code.find("#ifndef") != std::string::npos) {
      guarded = true;
      break;
    }
    // Only leading blank/comment lines may precede the guard.
    if (!is_blank(l.code)) break;
  }
  if (!guarded) {
    ctx.report(1, "R5",
               "header lacks #pragma once (or an include guard) before its "
               "first declaration");
  }
  static const std::regex kUsingNamespace(R"(\busing\s+namespace\b)");
  for (std::size_t i = 0; i < ctx.lines.size(); ++i) {
    if (std::regex_search(ctx.lines[i].code, kUsingNamespace)) {
      ctx.report(i + 1, "R5",
                 "`using namespace` in a header leaks into every includer");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------- driver ----

std::vector<Diagnostic> lint_text(const std::string& rel_path,
                                  const std::string& content,
                                  const std::string& companion,
                                  const Options& opts) {
  Context ctx;
  ctx.path = rel_path;
  ctx.lines = preprocess(content);
  ctx.waivers = collect_waivers(ctx.lines, ctx.diags, ctx.path);
  const std::vector<SourceLine> companion_lines = preprocess(companion);

  check_r1(ctx);
  check_r2(ctx, companion_lines);
  check_r3(ctx, companion_lines);
  check_r4(ctx);
  check_r5(ctx);

  if (opts.check_unused_waivers) {
    for (const Waiver& w : ctx.waivers) {
      if (!w.used) {
        ctx.diags.push_back(
            {ctx.path, w.line, "waiver-unused",
             "waiver '" + w.token +
                 "' suppresses nothing: remove it (stale waivers hide "
                 "future violations)"});
      }
    }
  }

  std::sort(ctx.diags.begin(), ctx.diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.path, a.line, a.rule) <
                     std::tie(b.path, b.line, b.rule);
            });
  return ctx.diags;
}

std::vector<Diagnostic> lint_tree(const std::string& root,
                                  const Options& opts) {
  namespace fs = std::filesystem;
  const std::vector<std::string> kDirs = {"src", "tools", "bench", "tests"};
  const std::vector<std::string> kExts = {".cpp", ".hpp", ".h", ".cc"};

  std::vector<std::string> files;
  for (const std::string& dir : kDirs) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      if (rel.find("lint_fixtures") != std::string::npos) continue;
      if (rel.find("build") == 0) continue;
      const std::string ext = entry.path().extension().string();
      if (std::find(kExts.begin(), kExts.end(), ext) == kExts.end()) continue;
      files.push_back(rel);
    }
  }
  std::sort(files.begin(), files.end());

  auto read_file = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };

  std::vector<Diagnostic> all;
  for (const std::string& rel : files) {
    const fs::path abs = fs::path(root) / rel;
    std::string companion;
    if (ends_with(rel, ".cpp") || ends_with(rel, ".cc")) {
      fs::path header = abs;
      header.replace_extension(".hpp");
      if (fs::exists(header)) companion = read_file(header);
    }
    std::vector<Diagnostic> diags =
        lint_text(rel, read_file(abs), companion, opts);
    all.insert(all.end(), diags.begin(), diags.end());
  }
  return all;
}

std::string format_diagnostics(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  for (const Diagnostic& d : diags) {
    out << d.path << ':' << d.line << ": error[" << d.rule
        << "]: " << d.message << '\n';
  }
  return out.str();
}

}  // namespace lts::lint
